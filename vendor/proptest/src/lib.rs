//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment of this repository cannot reach crates.io, so the
//! workspace patches `proptest` to this crate (see `[patch.crates-io]` in
//! the root `Cargo.toml`). It reimplements the subset of the proptest 1.x
//! API the workspace's test suites use:
//!
//! - [`strategy::Strategy`] with `prop_map` and `boxed`, plus strategy
//!   implementations for integer ranges (`a..b`, `a..=b`, `a..`), tuples
//!   of strategies up to arity 6, [`strategy::Just`] and
//!   [`strategy::OneOf`] (behind [`prop_oneof!`]);
//! - [`arbitrary::any`] for the primitive types;
//! - [`collection::vec`] with fixed or ranged sizes;
//! - the [`proptest!`], [`prop_compose!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`] macros;
//! - [`test_runner::ProptestConfig`] (only `cases` is honoured).
//!
//! Semantics differ from upstream in two deliberate ways: generation is
//! fully deterministic (seeded from the test name and case index, so
//! failures reproduce without `.proptest-regressions` files), and there is
//! **no shrinking** — a failing case reports its input seed and message
//! as-is. For a reproduction codebase that trades acceptably against
//! carrying the real dependency tree.

/// Strategy trait, combinators and primitive strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Erases the strategy type behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Clone, F: Clone> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Map {
                source: self.source.clone(),
                f: self.f.clone(),
            }
        }
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of its payload.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Object-safe generation interface backing [`BoxedStrategy`].
    pub trait DynStrategy<V> {
        /// Draws one value through the erased strategy.
        fn dyn_generate(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<V>(pub(crate) Rc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Weighted choice between boxed strategies; built by [`prop_oneof!`].
    pub struct OneOf<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u32,
    }

    impl<V> OneOf<V> {
        /// Builds a weighted union; weights must sum to a positive value.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            OneOf { arms, total }
        }
    }

    impl<V> Clone for OneOf<V> {
        fn clone(&self) -> Self {
            OneOf {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.gen_range(0..self.total);
            for (weight, arm) in &self.arms {
                if pick < *weight {
                    return arm.generate(rng);
                }
                pick -= *weight;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }
    int_range_strategies!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// `any::<T>()` for primitives.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value uniformly over the domain.
        fn generate_arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }
    impl<T> Copy for Any<T> {}

    /// The canonical strategy over `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::generate_arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate_arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary!(bool, u8, i8, u16, i16, u32, i32, u64, i64, usize, isize, f32, f64);
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Config, RNG and the case-driving loop behind `proptest!`.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-case RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// RNG for one test case, derived from test name + case index so
        /// every run of the suite regenerates identical inputs.
        pub fn deterministic(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure: aborts the whole test.
        Fail(String),
        /// `prop_assume!` rejection: the case is skipped, not failed.
        Reject(String),
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Subset of proptest's runner configuration; only `cases` matters.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drives one property: generates cases until `config.cases` pass,
    /// panicking on the first failure. Called by the `proptest!` macro.
    pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut test: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let mut case: u64 = 0;
        while passed < config.cases {
            let mut rng = TestRng::deterministic(name, case);
            match test(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(msg)) => {
                    rejected += 1;
                    if rejected > 16 * config.cases as u64 + 256 {
                        panic!(
                            "proptest `{name}`: gave up after {rejected} rejected cases \
                             (last: {msg})"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed at deterministic case {case}: {msg}")
                }
            }
            case += 1;
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_proptest(
                &__config,
                stringify!($name),
                |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __outcome
                },
            );
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

/// Defines a named strategy function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
        ($($pat:pat in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($pat,)+)| $body,
            )
        }
    };
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
}

/// Assertion that fails the current case instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            __left, __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+), __left, __right
        );
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `left != right` (both: `{:?}`)",
            __left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "{} (both: `{:?}`)",
            format!($($fmt)+), __left
        );
    }};
}

/// Skips the current case (without failing) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        $crate::prop_assume!($cond, concat!("assumption failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject(format!($($fmt)+)),
            );
        }
    };
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };

    /// Namespace mirror so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let strat = (0u8..8, 1u16.., -4i32..=4);
        let elems = prop::collection::vec(strat, 3..10);
        for case in 0..200 {
            let mut rng = TestRng::deterministic("bounds", case);
            let v = Strategy::generate(&elems, &mut rng);
            assert!((3..10).contains(&v.len()));
            for (a, b, c) in v {
                assert!(a < 8);
                assert!(b >= 1);
                assert!((-4..=4).contains(&c));
            }
        }
    }

    #[test]
    fn oneof_respects_zero_weight_exclusion() {
        let strat = prop_oneof![
            1 => Just(1u8),
            3 => Just(2u8),
        ];
        let mut saw = [false; 3];
        for case in 0..100 {
            let mut rng = TestRng::deterministic("oneof", case);
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v == 1 || v == 2);
            saw[v as usize] = true;
        }
        assert!(saw[1] && saw[2], "both arms reachable");
    }

    #[test]
    fn generation_is_deterministic_per_name_and_case() {
        let strat = prop::collection::vec(0u32..1000, 0..20);
        let a = Strategy::generate(&strat, &mut TestRng::deterministic("t", 7));
        let b = Strategy::generate(&strat, &mut TestRng::deterministic("t", 7));
        let c = Strategy::generate(&strat, &mut TestRng::deterministic("t", 8));
        assert_eq!(a, b);
        assert!(a != c || a.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_pipeline_works(x in 0u16..100, ys in prop::collection::vec(0u8..10, 1..5)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_ne!(x, 13u16);
            prop_assert_eq!(ys.len(), ys.len(), "length {} mismatch", ys.len());
        }
    }
}
