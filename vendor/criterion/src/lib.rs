//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment of this repository cannot reach crates.io, so the
//! workspace patches `criterion` to this crate (see `[patch.crates-io]` in
//! the root `Cargo.toml`). It provides the API subset the `disc-bench`
//! benches use — [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, `sample_size`, [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`] and [`criterion_main!`] — with a deliberately
//! simple measurement loop: each routine is warmed up once, then timed
//! over a fixed batch of iterations, and the mean ns/iter is printed.
//! There is no statistical analysis, no HTML report and no saved
//! baseline; `cargo bench` stays useful for relative comparisons while
//! `cargo test` (which also runs harness-less bench targets) completes in
//! milliseconds because routines run only a handful of times.

use std::fmt::Display;
use std::time::Instant;

/// Opaque hint preventing the optimizer from deleting a benchmark body.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `iters` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.last_ns_per_iter = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

fn run_bench(id: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        last_ns_per_iter: f64::NAN,
    };
    f(&mut b);
    if b.last_ns_per_iter.is_nan() {
        println!("{id:<48} (no measurement)");
    } else {
        println!(
            "{id:<48} {:>14.1} ns/iter  [{} iters]",
            b.last_ns_per_iter, b.iters
        );
    }
}

/// Number of timed iterations per benchmark. Deliberately tiny: this
/// stand-in favours fast, repeatable smoke timing over statistics.
const DEFAULT_ITERS: u64 = 3;

/// Top-level harness handle.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            iters: DEFAULT_ITERS,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.iters, &mut f);
        self
    }
}

/// Group of benchmarks sharing a prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stand-in keeps its own fixed
    /// iteration count rather than criterion's sample model.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.parent.iters, &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.parent.iters, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_chains() {
        let mut c = Criterion::default();
        c.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)))
            .bench_function("mul", |b| b.iter(|| black_box(2u64) * black_box(3)));
    }

    #[test]
    fn groups_run_parameterized_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("plain", |b| b.iter(|| black_box(1)));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
