//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace patches `rand` to this crate (see `[patch.crates-io]` in
//! the root `Cargo.toml`). It implements exactly the subset the workspace
//! uses — [`rngs::SmallRng`] seeded through [`SeedableRng::seed_from_u64`],
//! and the [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`] sampling
//! methods — with the same trait shapes as rand 0.8 so the dependent code
//! compiles unchanged.
//!
//! `SmallRng` is xoshiro256++ (the algorithm rand 0.8 uses on 64-bit
//! targets), seeded via SplitMix64, so sequences are high-quality and
//! reproducible per seed. They are not guaranteed bit-identical to
//! upstream rand, only deterministic for this repository's experiments.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: raw 32/64-bit output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits, the conventional uniform [0, 1) construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

/// High-level sampling interface, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's domain
    /// (floats: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for serialization.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`state`](Self::state). An all-zero
        /// state (a fixed point of the algorithm, never produced by
        /// seeding) gets the same nudge as
        /// [`from_seed`](super::SeedableRng::from_seed).
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                SmallRng::from_seed([0; 32])
            } else {
                SmallRng { s }
            }
        }
    }

    /// Alias kept for API compatibility; same algorithm as [`SmallRng`].
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_sequences_reproduce() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
