//! # DISC — Dynamic Instruction Stream Computer
//!
//! A full reproduction of *"DISC: Dynamic Instruction Stream Computer"*
//! (Nemirovsky, Brewer & Wood, MICRO 1991) as a family of Rust crates.
//! This facade crate re-exports the whole public API:
//!
//! * [`isa`] — the DISC1 instruction set, encoder/decoder, assembler and
//!   disassembler.
//! * [`core`] — the cycle-accurate DISC1 machine: dynamically interleaved
//!   pipeline, hardware scheduler with 1/16-granularity throughput
//!   partitioning, stack-window register files, asynchronous bus interface
//!   and per-stream vectored interrupts.
//! * [`bus`] — asynchronous data-bus peripherals (external memory, timers,
//!   sensors, UART) with widely differing access times.
//! * [`baseline`] — the paper's comparator: a conventional single-stream
//!   pipelined processor sharing the same ISA.
//! * [`stoch`] — the stochastic evaluation model of Section 4 (Poisson
//!   workloads, modeled sequencer, `PD`/`Ps`/`delta` metrics and the
//!   experiment sweeps behind Tables 4.1–4.3).
//! * [`rts`] — the real-time systems layer: tasks, deadlines, throughput
//!   partition allocation, interrupt-latency measurement and the
//!   isolation soak harness.
//! * [`faults`] — deterministic, seeded fault injection on the external
//!   bus: latency inflation, stuck peripherals, bit flips, dropped and
//!   spurious interrupts, address blackouts.
//! * [`cc`] — a small structured language compiled to stack-window
//!   assembly.
//! * [`firmware`] — tested assembly routines (division, square root,
//!   32-bit arithmetic, block copy) for linking into programs.
//!
//! # Quickstart
//!
//! ```
//! use disc::core::{Machine, MachineConfig};
//! use disc::isa::Program;
//!
//! let program = Program::assemble(
//!     r#"
//!     .stream 0, main
//! main:
//!     ldi  r0, 5      ; counter
//!     ldi  r1, 0      ; accumulator
//! loop:
//!     add  r1, r1, r0
//!     subi r0, r0, 1
//!     jnz  loop
//!     sta  r1, 0x10   ; result -> internal memory
//!     halt
//! "#,
//! )?;
//!
//! let mut machine = Machine::new(MachineConfig::disc1(), &program);
//! machine.run(10_000)?;
//! assert_eq!(machine.internal_memory().read(0x10), 15);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use disc_baseline as baseline;
pub use disc_bus as bus;
pub use disc_cc as cc;
pub use disc_core as core;
pub use disc_faults as faults;
pub use disc_firmware as firmware;
pub use disc_isa as isa;
pub use disc_obs as obs;
pub use disc_rts as rts;
pub use disc_stoch as stoch;
