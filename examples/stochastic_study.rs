//! Using the Section-4 stochastic model as a design tool: size the number
//! of instruction streams for a custom workload before writing a line of
//! firmware.
//!
//! ```text
//! cargo run --release --example stochastic_study
//! ```

use disc::stoch::{simulate_seeds, LoadSpec, RunConfig, Workload};

fn main() {
    // A hypothetical workload: bursty telemetry with heavy I/O.
    let telemetry = LoadSpec {
        name: "telemetry".into(),
        mean_on: Some(80.0),
        mean_off: 120.0,
        mean_req: Some(8.0),
        alpha: 0.4,
        tmem: 3,
        mean_io: 35.0,
        aljmp: 0.15,
    };

    println!("workload: {telemetry:#?}\n");
    println!("{:>8} {:>8} {:>8} {:>10}", "streams", "PD", "Ps", "delta %");
    let mut best = (1, f64::MIN);
    for k in 1..=8 {
        let cfg = RunConfig::new(Workload::partitioned(&telemetry, k)).with_cycles(100_000);
        let s = simulate_seeds(&cfg, 5);
        println!(
            "{k:>8} {:>8.3} {:>8.3} {:>10.1}",
            s.pd_mean, s.ps_mean, s.delta_mean
        );
        if s.delta_mean > best.1 {
            best = (k, s.delta_mean);
        }
    }
    println!(
        "\nbest stream count for this workload: {} (delta {:+.1}%)",
        best.0, best.1
    );
    println!(
        "the paper's open question — \"the optimum number of instruction\n\
         streams for a given application\" — answered by simulation."
    );
}
