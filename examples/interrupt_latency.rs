//! Interrupt latency: dedicated-stream delivery on DISC versus the
//! conventional context switch, idle and under full background load.
//!
//! ```text
//! cargo run --example interrupt_latency
//! ```

use disc::rts::latency_experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("interrupt latency in cycles (raise -> first handler fetch)\n");
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>12}",
        "background load", "DISC mean", "DISC max", "base mean", "base max"
    );
    for busy in 0..=3 {
        let r = latency_experiment(busy, 40, 300)?;
        let (dm, dx) = r.disc_summary();
        let (bm, bx) = r.baseline_summary();
        println!(
            "{:<28} {:>10.1} {:>10} {:>12.1} {:>12}",
            format!("{busy} busy stream(s)"),
            dm,
            dx,
            bm,
            bx
        );
    }
    println!(
        "\nDISC keeps every context resident, so the handler starts within a\n\
         few cycles regardless of load; the baseline pays the register save\n\
         (and restore on return) every time."
    );
    Ok(())
}
