//! The observability layer end to end: run a multi-stream workload three
//! ways — streaming every cycle to a JSONL trace, sampling counters every
//! N cycles, and profiling per-stream cycle attribution — then write a
//! schema-versioned run report under `results/`.
//!
//! ```text
//! cargo run --release --example obs_demo
//! ```

use disc::core::{Machine, MachineConfig};
use disc::isa::Program;
use disc::obs::{Json, JsonlSink, RunReport, SamplingSink};
use std::fs::File;
use std::io::BufWriter;

fn build_machine() -> Machine {
    // Three personalities: a compute loop, a jump-heavy loop and an
    // external-I/O loop — enough to light up every attribution bucket
    // that matters.
    let program = Program::assemble(
        r#"
        .stream 0, compute
        .stream 1, jumpy
        .stream 2, io
    compute:
        addi r0, r0, 1
        addi r1, r1, 1
        addi r2, r2, 1
        jmp compute
    jumpy:
        addi r0, r0, 1
        jmp jumpy
    io:
        lui r0, 0x80
    ioloop:
        ld r1, [r0]
        addi r1, r1, 1
        jmp ioloop
    "#,
    )
    .expect("demo program assembles");
    Machine::new(MachineConfig::disc1().with_streams(3), &program)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all("results")?;

    // 1. Stream every cycle to a JSONL trace file.
    let mut m = build_machine();
    let file = BufWriter::new(File::create("results/obs_demo.trace.jsonl")?);
    m.set_trace_sink(Box::new(JsonlSink::new(file)));
    m.run(2_000)?;
    let sink = m
        .take_trace_sink()
        .expect("sink comes back")
        .into_any()
        .downcast::<JsonlSink<BufWriter<File>>>()
        .expect("jsonl sink");
    let (_, io_error) = sink.into_inner();
    if let Some(e) = io_error {
        eprintln!("warning: trace stream truncated: {e}");
    }
    println!(
        "JSONL trace: results/obs_demo.trace.jsonl ({} cycles streamed)",
        m.cycle()
    );

    // 2. Counters-only sampling on a fresh run: no per-cycle record is
    // ever assembled, just a stats snapshot every 250 cycles.
    let mut m = build_machine();
    m.set_trace_sink(Box::new(SamplingSink::new(250)));
    m.run(2_000)?;
    let sampler = m
        .take_trace_sink()
        .expect("sink comes back")
        .into_any()
        .downcast::<SamplingSink>()
        .expect("sampling sink");
    println!("\ncounter samples (window = 250 cycles):");
    println!("  end cycle   retired  bubbles  ext-acc  windowed-PD");
    for s in sampler.samples() {
        println!(
            "  {:>9}   {:>7}  {:>7}  {:>7}  {:>11.3}",
            s.cycle, s.retired, s.bubbles, s.external_accesses, s.utilization
        );
    }

    // 3. Cycle attribution: where did every cycle of every stream go?
    let stats = m.stats();
    println!("\ncycle attribution over {} cycles:", stats.cycles);
    print!("{}", stats.attribution.table());

    // 4. Structured run report, fingerprinted and schema-versioned.
    let report = RunReport::from_machine("obs_demo", &m)
        .section("samples", sampler.to_json())
        .section(
            "demo",
            Json::obj([("streams", Json::U64(3)), ("horizon", Json::U64(2_000))]),
        );
    let path = report.write_under("results", "obs_demo")?;
    println!("\nrun report written to {}", path.display());
    Ok(())
}
