//! An automotive engine-controller scenario — the application domain the
//! paper targets (*"The design is targeted to the typical control
//! requirements of automotive electronics"*).
//!
//! Three hard-real-time tasks run beside a background diagnostics loop:
//!
//! * `spark`  — per-revolution ignition timing, tight deadline;
//! * `fuel`   — injection pulse computation with one sensor read;
//! * `lambda` — slow exhaust-sensor sampling with heavy I/O.
//!
//! The same task set runs on DISC1 (one dedicated interrupt-server stream
//! per task, utilization-proportional throughput partition) and on the
//! conventional single-stream baseline (priority-nested interrupts with
//! context-switch costs). Compare the response times and misses.
//!
//! ```text
//! cargo run --example engine_controller
//! ```

use disc::rts::{harness, partition, Task, TaskSet};

fn print_outcome(label: &str, out: &harness::SimOutcome) {
    println!("{label}");
    println!(
        "  {:<8} {:>6} {:>6} {:>8} {:>10} {:>10}",
        "task", "acts", "done", "misses", "mean resp", "max resp"
    );
    for t in &out.tasks {
        println!(
            "  {:<8} {:>6} {:>6} {:>8} {:>10.1} {:>10}",
            t.name, t.activations, t.completions, t.misses, t.mean_response, t.max_response
        );
    }
    println!(
        "  utilization {:.3}, worst irq latency {:?}, background progress {}\n",
        out.utilization, out.max_irq_latency, out.background_retired
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = TaskSet::new(vec![
        Task::new("spark", 900, 600).with_body(30),
        Task::new("fuel", 1500, 900).with_body(60).with_io(1, 25),
        Task::new("lambda", 4000, 3500).with_body(90).with_io(3, 60),
    ]);
    println!("task-set utilization estimate: {:.2}\n", set.utilization());

    let horizon = 120_000;
    let schedule = partition::schedule_for(&set);
    println!("throughput partition (16 slots): {schedule:?}\n");

    let disc = harness::run_on_disc_with_schedule(&set, horizon, Some(schedule))?;
    print_outcome("DISC1 (dedicated streams, partitioned throughput):", &disc);

    let baseline = harness::run_on_baseline(&set, horizon)?;
    print_outcome("Baseline (single stream, context-switched):", &baseline);

    println!(
        "total misses: DISC = {}, baseline = {}",
        disc.total_misses(),
        baseline.total_misses()
    );
    Ok(())
}
