//! Quickstart: assemble a two-stream program, run it on the cycle-accurate
//! DISC1 machine and inspect the results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use disc::core::{Machine, MachineConfig};
use disc::isa::{Program, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stream 0 sums 1..=100; stream 1 independently computes factorial-ish
    // products. They share the pipeline cycle by cycle.
    let program = Program::assemble(
        r#"
        .stream 0, summer
        .stream 1, multiplier
    summer:
        ldi r0, 100         ; n
        ldi r1, 0           ; acc
    sloop:
        add r1, r1, r0
        subi r0, r0, 1
        jnz sloop
        sta r1, 0x10        ; 5050
        halt
    multiplier:
        ldi r0, 7
        ldi r1, 1
    mloop:
        mul r1, r1, r0
        subi r0, r0, 1
        jnz mloop
        sta r1, 0x11        ; 5040
        stop
    "#,
    )?;

    let mut machine = Machine::new(MachineConfig::disc1(), &program);
    let exit = machine.run(100_000)?;

    println!("exit: {exit}");
    println!(
        "sum 1..=100      = {}",
        machine.internal_memory().read(0x10)
    );
    println!(
        "7!               = {}",
        machine.internal_memory().read(0x11)
    );
    println!("cycles           = {}", machine.cycle());
    println!(
        "instructions     = {} (utilization {:.3})",
        machine.stats().retired_total(),
        machine.stats().utilization()
    );
    println!(
        "jump flushes     = {} (two interleaved streams cover most slots)",
        machine.stats().flushed_jump
    );
    println!("stream 0 r1      = {}", machine.reg(0, Reg::R1));

    assert_eq!(machine.internal_memory().read(0x10), 5050);
    assert_eq!(machine.internal_memory().read(0x11), 5040);
    Ok(())
}
