//! The paper's "load 3" as real firmware: a DSP stream runs a 4-tap FIR
//! filter entirely out of internal memory (never touching the slow bus)
//! while a control stream polls a sensor and an actuator stream emits the
//! filtered output — three concurrent personalities on one DISC1.
//!
//! ```text
//! cargo run --release --example dsp_filter
//! ```

use disc::bus::{Actuator, PeripheralBus, SensorPort, Shared};
use disc::core::{Machine, MachineConfig};
use disc::isa::Program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Internal memory map:
    //   0x00        ring head (written by control, read by dsp)
    //   0x01        filtered-sample counter (dsp -> emitter)
    //   0x02        latest filtered value
    //   0x10..0x14  sample ring (4 entries)
    //   0x20..0x24  FIR coefficients (1, 2, 2, 1) / 8 via shift
    let program = Program::assemble(
        r#"
        .equ HEAD,   0x00
        .equ COUNT,  0x01
        .equ OUT,    0x02
        .equ RING,   0x10
        .equ COEF,   0x20

        .stream 0, control
        .stream 1, dsp
        .stream 2, emit

    control:
        ldi r4, 0
        lui r4, 0x91        ; sensor DATA register
    sample:
        ld  r0, [r4]        ; slow conversion (only this stream waits)
        lda r1, HEAD
        andi r2, r1, 3
        addi r2, r2, RING
        st  r0, [r2]        ; ring[head & 3] = sample
        addi r1, r1, 1
        sta r1, HEAD
        jmp sample

    dsp:
        ; init coefficients 1,2,2,1
        ldi r0, 1
        sta r0, COEF
        ldi r0, 2
        sta r0, 0x21
        sta r0, 0x22
        ldi r0, 1
        sta r0, 0x23
        ldi r5, 0           ; last head processed
    filter:
        lda r1, HEAD
        cmp r1, r5
        jz  filter          ; no new sample yet
        mov r5, r1
        ; y = sum(ring[i] * coef[i]) >> 3
        ldi r2, 0           ; acc
        ldi r3, 0           ; i
    tap:
        andi r0, r3, 3
        addi r0, r0, RING
        ld  r6, [r0]
        addi r0, r3, COEF
        ld  r7, [r0]
        mul r6, r6, r7
        add r2, r2, r6
        addi r3, r3, 1
        cmpi r3, 4
        jnz tap
        ldi r0, 3
        shr r2, r2, r0      ; normalize by 8... (>>3)
        sta r2, OUT
        lda r0, COUNT
        addi r0, r0, 1
        sta r0, COUNT
        jmp filter

    emit:
        ldi r4, 0
        lui r4, 0xa0        ; actuator
        ldi r5, 0           ; last emitted count
    watch:
        lda r0, COUNT
        cmp r0, r5
        jz  watch
        mov r5, r0
        lda r1, OUT
        st  r1, [r4]        ; drive the actuator
        jmp watch
    "#,
    )?;

    let sensor = Shared::new(SensorPort::triangle(60, 25, 40));
    let actuator = Shared::new(Actuator::new(8));
    let mut bus = PeripheralBus::new();
    bus.map(0x9100, SensorPort::REGS, Box::new(sensor.handle()))?;
    bus.map(0xa000, 1, Box::new(actuator.handle()))?;

    let mut m = Machine::with_bus(
        MachineConfig::disc1().with_streams(3),
        &program,
        Box::new(bus),
    );
    m.set_idle_exit(false);
    m.run(60_000)?;

    let commands = actuator.borrow().history().len();
    let filtered = m.internal_memory().read(0x01);
    println!("sensor samples produced : {}", sensor.borrow().samples());
    println!("FIR outputs computed    : {filtered}");
    println!("actuator commands       : {commands}");
    println!(
        "per-stream instructions : control {}, dsp {}, emit {}",
        m.stats().retired[0],
        m.stats().retired[1],
        m.stats().retired[2]
    );
    println!("machine utilization     : {:.3}", m.stats().utilization());
    let last = actuator.borrow().last().map(|c| c.value);
    println!("last actuator value     : {last:?} (triangle wave, smoothed)");
    assert!(filtered > 100, "filter must keep up with the sensor");
    assert!(commands > 100, "actuator must receive outputs");
    Ok(())
}
