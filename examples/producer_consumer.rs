//! Inter-stream communication the DISC way (§3.6 of the paper): a
//! producer stream and a consumer stream share a ring buffer in internal
//! memory, guarded by a `tset` semaphore, with an interrupt join at the
//! end — while a background stream soaks up every spare pipeline slot.
//!
//! ```text
//! cargo run --example producer_consumer
//! ```

use disc::core::{Machine, MachineConfig};
use disc::isa::Program;

const ITEMS: u16 = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Program::assemble(&format!(
        r#"
        .equ LOCK,  0x00    ; tset spinlock
        .equ HEAD,  0x01    ; producer index
        .equ TAIL,  0x02    ; consumer index
        .equ SUM,   0x03    ; consumer checksum
        .equ BUF,   0x10    ; 16-entry ring buffer
        .equ ITEMS, {ITEMS}

        .stream 0, background
        .stream 1, producer
        .stream 2, consumer
        .vector 1, 4, done   ; consumer signals the producer when finished

    background:
        addi r0, r0, 1
        jmp background

    producer:
        ldi r5, 0            ; produced count
    produce:
        cmpi r5, ITEMS
        jz wait_done
        ldi r3, LOCK
    p_lock:
        tset r0, [r3]
        cmpi r0, 0
        jnz p_lock
        lda r1, HEAD         ; critical section: push r5 into the ring
        andi r2, r1, 15
        addi r2, r2, BUF
        mov r4, r5
        st  r4, [r2]
        addi r1, r1, 1
        sta r1, HEAD
        ldi r0, 0
        sta r0, LOCK         ; release
        addi r5, r5, 1
        jmp produce
    wait_done:
        stop                 ; sleeps until the consumer's interrupt
    done:
        ldi r0, 1
        sta r0, 0x04         ; handshake observed
        reti

    consumer:
        ldi r5, 0            ; consumed count
    consume:
        cmpi r5, ITEMS
        jz finished
        ldi r3, LOCK
    c_lock:
        tset r0, [r3]
        cmpi r0, 0
        jnz c_lock
        lda r1, TAIL
        lda r2, HEAD
        cmp r1, r2           ; ring empty?
        jz c_release
        andi r2, r1, 15
        addi r2, r2, BUF
        ld  r4, [r2]         ; pop
        lda r0, SUM
        add r0, r0, r4
        sta r0, SUM
        addi r1, r1, 1
        sta r1, TAIL
        addi r5, r5, 1
    c_release:
        ldi r0, 0
        sta r0, LOCK
        jmp consume
    finished:
        signal 1, 4          ; interrupt join: wake the producer
        stop
    "#
    ))?;

    let mut m = Machine::new(MachineConfig::disc1().with_streams(3), &program);
    m.set_idle_exit(false);
    m.run(400_000)?;

    let sum = m.internal_memory().read(0x03);
    let expected: u16 = (0..ITEMS).sum();
    println!("items produced/consumed : {ITEMS}");
    println!("checksum                = {sum} (expected {expected})");
    println!(
        "handshake flag          = {}",
        m.internal_memory().read(0x04)
    );
    println!(
        "background instructions = {} (spare slots reclaimed)",
        m.stats().retired[0]
    );
    println!("cycles                  = {}", m.cycle());
    assert_eq!(sum, expected);
    assert_eq!(m.internal_memory().read(0x04), 1);
    Ok(())
}
