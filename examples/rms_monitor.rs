//! Capstone scenario: a vibration monitor computing the true RMS of a
//! sensor signal with the firmware math library — division, 32-bit
//! accumulation and integer square root all in DISC1 assembly — while a
//! watchdog supervises liveness and a background stream keeps serving.
//!
//! RMS = sqrt( sum(x²) / n ) over a 16-sample window.
//!
//! ```text
//! cargo run --release --example rms_monitor
//! ```

use disc::bus::{PeripheralBus, SensorPort, Shared, Watchdog};
use disc::core::{Machine, MachineConfig};
use disc::firmware::with_library;
use disc::isa::Program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let user = r#"
        .equ SENSOR, 0x9100
        .equ WDOG,   0x9200
        .equ SUM_HI, 0x20
        .equ SUM_LO, 0x21
        .equ RMS,    0x22
        .equ ROUNDS, 0x23

        .stream 0, background
        .stream 1, monitor

    background:
        inc g0
        jmp background

    monitor:
        ; accumulate 16 squared samples into a 32-bit sum
        clr r4              ; sum hi
        clr r5              ; sum lo
        ldi r6, 16          ; samples to go
    sample:
        clr r0
        lui r0, 0x91        ; sensor DATA
        ld  r7, [r0]        ; read the (slow) sensor
        mov r0, r7
        mov r1, r7
        call mul32          ; r0:r1 = x^2
        mov r2, r0          ; stage b-hi
        mov r3, r1          ; stage b-lo
        mov r0, r4
        mov r1, r5
        ; add32 args: r0=a-hi r1=a-lo r2=b-hi r3=b-lo
        call add32
        mov r4, r0
        mov r5, r1
        ; kick the watchdog every sample
        clr r0
        lui r0, 0x92
        st  r6, [r0]
        dec r6
        jnz sample

        sta r4, SUM_HI
        sta r5, SUM_LO
        ; mean = sum / 16: 32-bit >> 4 (sum of 16 squares of 8-bit-ish
        ; samples fits comfortably)
        ldi r2, 4
        shr r5, r5, r2      ; lo >>= 4
        ldi r3, 12
        shl r6, r4, r3      ; bits moving down from hi
        or  r5, r5, r6
        mov r0, r5
        call sqrt16         ; r0 = rms
        sta r0, RMS
        lda r1, ROUNDS
        inc r1
        sta r1, ROUNDS
        jmp monitor
    "#;
    let src = with_library(user);
    let program = Program::assemble(&src)?;

    // A noisy-ish deterministic vibration signal, amplitude ~40.
    let sensor = Shared::new(SensorPort::new(40, 18, |seq| {
        let t = seq as u32;
        (20 + ((t * 13) % 41)) as u16
    }));
    let dog = Shared::new(Watchdog::new(5_000, 1, 7));
    let mut bus = PeripheralBus::new();
    bus.map(0x9100, SensorPort::REGS, Box::new(sensor.handle()))?;
    bus.map(0x9200, Watchdog::REGS, Box::new(dog.handle()))?;

    let mut m = Machine::with_bus(
        MachineConfig::disc1().with_streams(2),
        &program,
        Box::new(bus),
    );
    m.set_idle_exit(false);
    m.run(120_000)?;

    let rounds = m.internal_memory().read(0x23);
    let rms = m.internal_memory().read(0x22);
    let sum =
        ((m.internal_memory().read(0x20) as u32) << 16) | m.internal_memory().read(0x21) as u32;
    println!("RMS windows computed : {rounds}");
    println!("last sum of squares  : {sum}");
    println!("last RMS             : {rms}");
    println!("watchdog bites       : {}", dog.borrow().bites());
    println!("watchdog kicks       : {}", dog.borrow().kicks());
    println!(
        "background instrs    : {} (PD {:.3})",
        m.stats().retired[0],
        m.stats().utilization()
    );
    // Signal amplitude 20..=60 -> RMS must land inside.
    assert!(rounds > 5, "monitor must complete windows");
    assert!((20..=60).contains(&rms), "RMS {rms} out of signal range");
    assert_eq!(dog.borrow().bites(), 0, "healthy loop never bites");
    Ok(())
}
