//! Compile a high-level script to DISC1 machine code and run it — the
//! "compiler questions" of the paper's future work, answered at small
//! scale. Two scripts compile into two concurrent instruction streams:
//! a Fibonacci generator and a checksum over its output.
//!
//! ```text
//! cargo run --release --example compiled_script
//! ```

use disc::cc::compile_streams;
use disc::core::{Machine, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stream 0: write fib(0..16) into mem[0x80..], then publish a done
    // flag the other stream polls.
    let fib = r#"
        var a = 0;
        var b = 1;
        var i = 0;
        while (i < 16) {
            mem[0x80 + i] = a;
            var t = 0;
            t = a + b;
            a = b;
            b = t;
            i = i + 1;
        }
        mem[0x70] = 1;          // done flag
    "#;
    // Stream 1: wait for the flag, then fold the table into a checksum.
    let checksum = r#"
        while (mem[0x70] == 0) {
            mem[0x71] = mem[0x71] + 1;   // count the polls
        }
        var sum = 0;
        var j = 0;
        while (j < 16) {
            sum = sum ^ (mem[0x80 + j] + j);
            j = j + 1;
        }
        mem[0x72] = sum;
    "#;

    let compiled = compile_streams(&[fib, checksum])?;
    println!(
        "compiled {} words, variables: {:?}",
        compiled.program.len(),
        compiled
            .variables()
            .iter()
            .map(|(n, a)| format!("{n}@{a:#x}"))
            .collect::<Vec<_>>()
    );

    let mut m = Machine::new(MachineConfig::disc1().with_streams(2), &compiled.program);
    // Multi-stream compiles end each stream with `stop`; the machine goes
    // idle when both scripts finish.
    let exit = m.run(400_000)?;
    println!("exit                : {exit}");

    print!("fib table: ");
    for i in 0..16 {
        print!("{} ", m.internal_memory().read(0x80 + i));
    }
    println!();
    println!("polls while waiting : {}", m.internal_memory().read(0x71));
    println!(
        "checksum            = {:#06x}",
        m.internal_memory().read(0x72)
    );
    println!("cycles              = {}", m.cycle());

    // Cross-check the checksum in Rust.
    let mut fib_ref = [0u16; 16];
    let (mut a, mut b) = (0u16, 1u16);
    for slot in fib_ref.iter_mut() {
        *slot = a;
        let t = a.wrapping_add(b);
        a = b;
        b = t;
    }
    let expect = fib_ref
        .iter()
        .enumerate()
        .fold(0u16, |acc, (j, &v)| acc ^ v.wrapping_add(j as u16));
    assert_eq!(m.internal_memory().read(0x72), expect);
    println!("verified against the Rust reference.");
    Ok(())
}
