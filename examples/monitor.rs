//! A tiny machine monitor (debugger) for DISC1: load an assembly file,
//! single-step, inspect registers/memory, disassemble, raise interrupts.
//! Reads commands from stdin, so it works both interactively and scripted:
//!
//! ```text
//! cargo run --example monitor path/to/program.asm
//! echo "c 100
//! r 0
//! m 0x10 4
//! q" | cargo run --example monitor
//! ```
//!
//! Commands: `s [n]` step · `c [n]` run · `r [stream]` registers ·
//! `m <addr> [n]` memory · `d <addr> [n]` disassemble · `i <stream> <bit>`
//! raise interrupt · `t` stats · `q` quit.

use std::io::{self, BufRead, Write};

use disc::core::{Machine, MachineConfig, Status};
use disc::isa::{disasm, Program, Reg};

const DEMO: &str = r#"
    .stream 0, main
    .stream 1, worker
main:
    li  r2, 0x00ff
    ldi r0, 8
    ldi r1, 0
loop:
    add r1, r1, r0
    subi r0, r0, 1
    jnz loop
    and r1, r1, r2
    sta r1, 0x10
    halt
worker:
    inc g0
    jmp worker
"#;

fn parse_num(t: &str) -> Option<u64> {
    if let Some(h) = t.strip_prefix("0x") {
        u64::from_str_radix(h, 16).ok()
    } else {
        t.parse().ok()
    }
}

fn show_regs(m: &Machine, stream: usize) {
    let s = m.stream(stream);
    print!(
        "stream {stream}: pc={:#06x} ir={:#04x} mr={:#04x} awp={} ",
        s.pc(),
        s.ir(),
        s.mr(),
        s.window().awp()
    );
    println!(
        "flags[z={} n={} c={} v={}] wait={:?}",
        s.flags().z as u8,
        s.flags().n as u8,
        s.flags().c as u8,
        s.flags().v as u8,
        s.wait()
    );
    for r in Reg::ALL {
        print!("{r}={:#06x} ", m.reg(stream, r));
        if r == Reg::R7 {
            println!();
        }
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (source, name) = match std::env::args().nth(1) {
        Some(path) => (std::fs::read_to_string(&path)?, path),
        None => (DEMO.to_string(), "<built-in demo>".to_string()),
    };
    let program = Program::assemble(&source)?;
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    m.set_idle_exit(false);
    println!("DISC1 monitor — loaded {name} ({} words)", program.len());
    println!(
        "commands: s [n] | c [n] | r [stream] | m <addr> [n] | d <addr> [n] | i <s> <bit> | t | q"
    );

    let stdin = io::stdin();
    loop {
        print!("disc> ");
        io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let Some(&cmd) = parts.first() else { continue };
        match cmd {
            "q" | "quit" => break,
            "s" | "step" => {
                let n = parts.get(1).and_then(|t| parse_num(t)).unwrap_or(1);
                for _ in 0..n {
                    match m.step()? {
                        Status::Running => {}
                        other => {
                            println!("stopped: {other:?}");
                            break;
                        }
                    }
                }
                println!("cycle {}", m.cycle());
            }
            "c" | "continue" => {
                let n = parts.get(1).and_then(|t| parse_num(t)).unwrap_or(10_000);
                let exit = m.run(n)?;
                println!("{exit} at cycle {}", m.cycle());
            }
            "r" | "regs" => {
                let s = parts.get(1).and_then(|t| parse_num(t)).unwrap_or(0) as usize;
                if s < m.stream_count() {
                    show_regs(&m, s);
                } else {
                    println!("no stream {s}");
                }
            }
            "m" | "mem" => {
                let Some(addr) = parts.get(1).and_then(|t| parse_num(t)) else {
                    println!("usage: m <addr> [n]");
                    continue;
                };
                let n = parts.get(2).and_then(|t| parse_num(t)).unwrap_or(8);
                for i in 0..n {
                    let a = (addr + i) as u16;
                    if (a as usize) < m.internal_memory().len() {
                        println!("  [{a:#06x}] = {:#06x}", m.internal_memory().read(a));
                    }
                }
            }
            "d" | "dis" => {
                let Some(addr) = parts.get(1).and_then(|t| parse_num(t)) else {
                    println!("usage: d <addr> [n]");
                    continue;
                };
                let n = parts.get(2).and_then(|t| parse_num(t)).unwrap_or(8);
                for i in 0..n {
                    let a = (addr + i) as u16;
                    println!("  {a:04x}: {}", disasm::format_word(program.word(a)));
                }
            }
            "i" | "irq" => {
                let (Some(s), Some(bit)) = (
                    parts.get(1).and_then(|t| parse_num(t)),
                    parts.get(2).and_then(|t| parse_num(t)),
                ) else {
                    println!("usage: i <stream> <bit>");
                    continue;
                };
                if (s as usize) < m.stream_count() && bit < 8 {
                    m.raise_interrupt(s as usize, bit as u8);
                    println!("raised bit {bit} on stream {s}");
                } else {
                    println!("out of range");
                }
            }
            "t" | "stats" => {
                let st = m.stats();
                println!(
                    "cycles {} retired {:?} PD {:.3} bubbles {} flushes j/io/bus/irq = {}/{}/{}/{}",
                    st.cycles,
                    st.retired,
                    st.utilization(),
                    st.bubbles,
                    st.flushed_jump,
                    st.flushed_io,
                    st.flushed_bus_busy,
                    st.flushed_irq,
                );
            }
            other => println!("unknown command `{other}`"),
        }
    }
    Ok(())
}
