#!/usr/bin/env bash
# SIGKILL-resume smoke for the checkpointed soak campaign.
#
# Runs an uninterrupted checkpointed campaign as the baseline, then
# starts an identical fresh campaign, kills it with SIGKILL mid-flight,
# resumes it from its journal, and requires the resumed run report to be
# identical to the baseline's apart from wall-clock throughput and the
# resume accounting itself. Exercises the whole crash path: torn journal
# tails, fingerprint checking, and shard replay.
set -eu

BIN=target/release/soak
OUT=results/soak-resume
ARGS="--runs 96 --horizon 300000"

rm -rf "$OUT"
mkdir -p "$OUT"

echo "soak-resume: uninterrupted baseline"
$BIN $ARGS --checkpoint "$OUT/baseline-ckpt" --report "$OUT/baseline.json" \
    >/dev/null 2>&1

echo "soak-resume: starting a fresh campaign to kill"
DISC_JOBS=1 $BIN $ARGS --checkpoint "$OUT/ckpt" >/dev/null 2>&1 &
PID=$!
sleep 1
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

DONE=$(wc -c <"$OUT/ckpt/soak.journal")
echo "soak-resume: killed pid $PID; journal is $DONE bytes; resuming"
$BIN $ARGS --checkpoint "$OUT/ckpt" --resume --report "$OUT/resumed.json" \
    2>&1 >/dev/null | grep checkpoint || true

# Wall-clock throughput and resume accounting legitimately differ; all
# campaign results, fault counters, and reference stats must not.
FILTER='sim_cycles_per_sec|shards_loaded|shards_executed|"journal"'
if diff <(grep -Ev "$FILTER" "$OUT/baseline.json") \
        <(grep -Ev "$FILTER" "$OUT/resumed.json"); then
    echo "soak-resume: OK — resumed report matches the uninterrupted baseline"
else
    echo "soak-resume: FAIL — resumed report diverges from the baseline" >&2
    exit 1
fi
