//! End-to-end behavioral tests of the cycle-accurate DISC1 machine:
//! arithmetic programs, hazard interlocks, stack-window calls, the
//! asynchronous bus interface, interrupts, stream control and semaphores.

use disc_core::{Exit, FlatBus, Machine, MachineConfig, SchedulePolicy, WaitState};
use disc_isa::{Program, Reg};

fn machine(src: &str) -> Machine {
    let program = Program::assemble(src).expect("test program assembles");
    Machine::new(MachineConfig::disc1(), &program)
}

fn run(m: &mut Machine, cycles: u64) -> Exit {
    m.run(cycles).expect("no decode fault")
}

#[test]
fn arithmetic_loop_computes_sum() {
    // Sum 1..=10 with a flag-dependent backward branch.
    let mut m = machine(
        r#"
        .stream 0, main
    main:
        ldi r0, 10
        ldi r1, 0
    loop:
        add r1, r1, r0
        subi r0, r0, 1
        jnz loop
        sta r1, 0x40
        halt
    "#,
    );
    assert_eq!(run(&mut m, 10_000), Exit::Halted);
    assert_eq!(m.internal_memory().read(0x40), 55);
}

#[test]
fn raw_hazard_interlock_prevents_stale_reads() {
    // Back-to-back dependent instructions in a single stream must still
    // produce the sequential result despite the pipeline.
    let mut m = machine(
        r#"
        .stream 0, main
    main:
        ldi r0, 7
        addi r1, r0, 1     ; reads r0 immediately
        addi r2, r1, 1     ; reads r1 immediately
        mul r3, r2, r2
        sta r3, 0x10
        halt
    "#,
    );
    run(&mut m, 1_000);
    assert_eq!(m.internal_memory().read(0x10), 81);
    // The interlock must have cost at least one stall.
    assert!(m.stats().hazard_stalls[0] > 0, "expected hazard stalls");
}

#[test]
fn single_stream_jump_flushes_pipe() {
    let mut m = machine(
        r#"
        .stream 0, main
    main:
        ldi r0, 4
    loop:
        subi r0, r0, 1
        jnz loop
        halt
    "#,
    );
    run(&mut m, 1_000);
    assert!(
        m.stats().flushed_jump > 0,
        "taken jumps must flush younger same-stream slots"
    );
}

#[test]
fn interleaved_streams_eliminate_jump_flushes() {
    // Figure 3.2: with >= pipe-depth streams running, a jump never finds a
    // same-stream instruction behind it.
    let src = r#"
        .stream 0, l0
        .stream 1, l1
        .stream 2, l2
        .stream 3, l3
    l0: jmp l0
    l1: jmp l1
    l2: jmp l2
    l3: jmp l3
    "#;
    let program = Program::assemble(src).unwrap();
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    assert_eq!(run(&mut m, 500), Exit::CycleLimit);
    assert_eq!(
        m.stats().flushed_jump,
        0,
        "4 interleaved streams on a 4-deep pipe leave nothing to flush"
    );
    // Near-perfect utilization: every cycle issues (after warm-up).
    assert!(m.stats().utilization() > 0.95);
}

#[test]
fn call_and_ret_use_stack_window() {
    // double(x) = x + x, called twice with locals preserved across calls.
    let mut m = machine(
        r#"
        .stream 0, main
    main:
        ldi r0, 21
        call double
        sta r0, 0x11        ; 42
        ldi r0, 5
        call double
        sta r0, 0x12        ; 10
        halt
    double:
        ; call allocated a fresh r0 = return address; caller's r0 is r1.
        add r1, r1, r1
        ret
    "#,
    );
    assert_eq!(run(&mut m, 10_000), Exit::Halted);
    assert_eq!(m.internal_memory().read(0x11), 42);
    assert_eq!(m.internal_memory().read(0x12), 10);
}

#[test]
fn nested_calls_with_locals() {
    // f(x) = g(2x) + 1 where g allocates an explicit local frame.
    // Convention: the caller passes the argument in its R0 (the callee
    // sees it as R1) and the callee writes the result back into that slot.
    let mut m = machine(
        r#"
        .stream 0, main
    main:
        ldi r0, 10
        call f
        sta r0, 0x20
        halt
    f:
        ; r0 = return address, r1 = caller's argument (10)
        add r1, r1, r1      ; x *= 2
        winc 1              ; r0 = scratch, r1 = ret, r2 = x
        mov r0, r2          ; pass x to g
        call g
        addi r0, r0, 1      ; g's result + 1
        mov r2, r0          ; result into f's argument slot
        wdec 1
        ret
    g:
        ; r0 = ret, r1 = argument
        addi r1, r1, 3      ; g(x) = x + 3, result into the arg slot
        ret
    "#,
    );
    assert_eq!(run(&mut m, 10_000), Exit::Halted);
    // g turns 20 into 23, f adds 1 -> 24.
    assert_eq!(m.internal_memory().read(0x20), 24);
}

#[test]
fn external_load_round_trips_through_abi() {
    let program = Program::assemble(
        r#"
        .stream 0, main
    main:
        lui r0, 0x80        ; r0 = 0x8000
        ld  r1, [r0]
        addi r1, r1, 1      ; must wait for the bus data
        sta r1, 0x30
        halt
    "#,
    )
    .unwrap();
    let mut bus = FlatBus::new(5);
    bus.poke(0x8000, 99);
    let mut m = Machine::with_bus(MachineConfig::disc1(), &program, Box::new(bus));
    assert_eq!(run(&mut m, 10_000), Exit::Halted);
    assert_eq!(m.internal_memory().read(0x30), 100);
    assert_eq!(m.stats().external_accesses, 1);
    assert!(m.stats().wait_txn_cycles[0] >= 4);
}

#[test]
fn external_store_lands_after_latency() {
    let program = Program::assemble(
        r#"
        .stream 0, main
    main:
        lui r0, 0x90
        ldi r1, 77
        st  r1, [r0]
        halt
    "#,
    )
    .unwrap();
    let mut m = Machine::with_bus(MachineConfig::disc1(), &program, Box::new(FlatBus::new(3)));
    assert_eq!(run(&mut m, 10_000), Exit::Halted);
    // Read back through a fresh machine sharing nothing — instead verify
    // via stats: exactly one external access, and the stream waited.
    assert_eq!(m.stats().external_accesses, 1);
    assert!(m.stats().wait_txn_cycles[0] > 0);
}

#[test]
fn bus_contention_serializes_and_cancels() {
    // Two streams hammer external memory; the second access must find the
    // bus busy at least once and be cancelled.
    let program = Program::assemble(
        r#"
        .stream 0, a
        .stream 1, b
    a:
        lui r0, 0x80
    la: ld r1, [r0]
        jmp la
    b:
        lui r0, 0x81
    lb: ld r1, [r0]
        jmp lb
    "#,
    )
    .unwrap();
    let mut m = Machine::with_bus(
        MachineConfig::disc1().with_streams(2),
        &program,
        Box::new(FlatBus::new(6)),
    );
    assert_eq!(run(&mut m, 2_000), Exit::CycleLimit);
    assert!(
        m.stats().flushed_bus_busy > 0,
        "contending access must be cancelled at least once"
    );
    assert!(m.stats().external_accesses > 10);
}

#[test]
fn other_streams_run_during_io_wait() {
    // Stream 0 blocks on slow I/O; stream 1's compute loop keeps retiring.
    let program = Program::assemble(
        r#"
        .stream 0, io
        .stream 1, compute
    io:
        lui r0, 0x80
    li: ld r1, [r0]
        jmp li
    compute:
        ldi r0, 0
    lc: addi r0, r0, 1
        jmp lc
    "#,
    )
    .unwrap();
    let mut m = Machine::with_bus(
        MachineConfig::disc1().with_streams(2),
        &program,
        Box::new(FlatBus::new(20)),
    );
    run(&mut m, 3_000);
    let retired = &m.stats().retired;
    assert!(
        retired[1] > retired[0] * 3,
        "compute stream should dominate: {retired:?}"
    );
    // Utilization should stay decent despite stream 0 being I/O bound.
    assert!(m.stats().utilization() > 0.5);
}

#[test]
fn signal_activates_idle_stream() {
    let mut m = machine(
        r#"
        .stream 0, main
        .stream 1, worker
    main:
        signal 1, 0         ; wake the worker
    spin:
        lda r0, 0x50
        cmpi r0, 123
        jnz spin
        halt
    worker:
        ldi r0, 123
        sta r0, 0x50
        stop
    "#,
    );
    // Worker has an entry (so a PC) — but `.stream` also sets bit 0, so
    // clear it first to model an initially dormant stream.
    m.stream(1).ir();
    // Deactivate stream 1 before running.
    m.set_reg(1, Reg::Ir, 0);
    assert_eq!(run(&mut m, 10_000), Exit::Halted);
    assert_eq!(m.internal_memory().read(0x50), 123);
}

#[test]
fn vectored_interrupt_runs_handler_and_resumes() {
    let mut m = machine(
        r#"
        .stream 0, main
        .vector 0, 3, isr
    main:
        ldi r0, 0
    loop:
        addi r0, r0, 1
        cmpi r0, 200
        jnz loop
        sta r0, 0x61
        halt
    isr:
        ldi r1, 55
        sta r1, 0x60
        reti
    "#,
    );
    for _ in 0..20 {
        m.step().unwrap();
    }
    m.raise_interrupt(0, 3);
    assert_eq!(run(&mut m, 100_000), Exit::Halted);
    assert_eq!(m.internal_memory().read(0x60), 55, "handler ran");
    assert_eq!(m.internal_memory().read(0x61), 200, "main loop resumed");
    assert_eq!(m.stats().vectors_taken[0], 1);
    let latency = m.stats().max_irq_latency().unwrap();
    assert!(
        latency <= 8,
        "vector latency should be a few cycles, got {latency}"
    );
}

#[test]
fn dedicated_stream_interrupt_has_low_latency_under_load() {
    // Streams 0..=2 run busy loops; stream 3 is a dormant interrupt server.
    let src = r#"
        .stream 0, w
        .stream 1, w
        .stream 2, w
        .stream 3, idle
        .vector 3, 5, isr
    w:  jmp w
    idle:
        stop
    isr:
        ldi r0, 1
        sta r0, 0x70
        reti
    "#;
    let program = Program::assemble(src).unwrap();
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    for _ in 0..50 {
        m.step().unwrap();
    }
    m.raise_interrupt(3, 5);
    for _ in 0..40 {
        m.step().unwrap();
    }
    assert_eq!(m.internal_memory().read(0x70), 1);
    let latency = m.stats().max_irq_latency().unwrap();
    assert!(
        latency <= 6,
        "dedicated-stream latency should be tiny, got {latency}"
    );
}

#[test]
fn interrupt_priorities_nest() {
    let mut m = machine(
        r#"
        .stream 0, main
        .vector 0, 2, low
        .vector 0, 6, high
    main:
        jmp main
    low:
        signal 0, 6         ; raise the high-priority interrupt
        nop
        nop
        nop
        nop
        lda r0, 0x80        ; by now `high` must have preempted us
        sta r0, 0x81
        reti
    high:
        ldi r1, 9
        sta r1, 0x80
        reti
    "#,
    );
    for _ in 0..10 {
        m.step().unwrap();
    }
    m.raise_interrupt(0, 2);
    for _ in 0..120 {
        m.step().unwrap();
    }
    assert_eq!(m.internal_memory().read(0x80), 9, "high handler ran");
    assert_eq!(
        m.internal_memory().read(0x81),
        9,
        "low handler saw high's result, so it was preempted"
    );
    assert_eq!(m.stats().vectors_taken[0], 2);
}

#[test]
fn fork_starts_stream_at_target() {
    let mut m = machine(
        r#"
        .stream 0, main
    main:
        fork 2, child
    wait:
        lda r0, 0x90
        cmpi r0, 7
        jnz wait
        halt
    child:
        ldi r0, 7
        sta r0, 0x90
        stop
    "#,
    );
    assert_eq!(run(&mut m, 10_000), Exit::Halted);
    assert_eq!(m.internal_memory().read(0x90), 7);
}

#[test]
fn stop_deactivates_until_interrupt() {
    let mut m = machine(
        r#"
        .stream 0, main
    main:
        ldi r0, 1
        sta r0, 0xa0
        stop
        ldi r0, 2           ; resumes here after re-activation
        sta r0, 0xa0
        stop
    "#,
    );
    assert_eq!(run(&mut m, 1_000), Exit::AllIdle);
    assert_eq!(m.internal_memory().read(0xa0), 1);
    assert!(!m.stream(0).active());
    m.raise_interrupt(0, 0);
    assert_eq!(run(&mut m, 1_000), Exit::AllIdle);
    assert_eq!(m.internal_memory().read(0xa0), 2);
}

#[test]
fn tset_semaphore_provides_mutual_exclusion() {
    // Two streams increment a shared counter 100 times each under a
    // tset spinlock. Without the lock the read-modify-write races.
    let src = r#"
        .equ LOCK, 0x00
        .equ COUNT, 0x01
        .stream 0, worker
        .stream 1, worker
    worker:
        ldi r2, 100
    again:
        ldi r3, LOCK
    acquire:
        tset r0, [r3]
        cmpi r0, 0
        jnz acquire         ; was set -> spin
        lda r1, COUNT       ; critical section
        addi r1, r1, 1
        sta r1, COUNT
        ldi r0, 0
        sta r0, LOCK        ; release
        subi r2, r2, 1
        jnz again
        stop
    "#;
    let program = Program::assemble(src).unwrap();
    let mut m = Machine::new(MachineConfig::disc1().with_streams(2), &program);
    assert_eq!(run(&mut m, 200_000), Exit::AllIdle);
    assert_eq!(m.internal_memory().read(0x01), 200);
}

#[test]
fn partitioned_schedule_shapes_throughput() {
    // 3:1 partition between two loops with long straight-line bodies so
    // jump flushes stay second-order.
    let body: String = (0..6).map(|i| format!("addi r{i}, r{i}, 1\n")).collect();
    let src = format!(".stream 0, a\n.stream 1, b\na: {body} jmp a\nb: {body} jmp b\n");
    let program = Program::assemble(&src).unwrap();
    let cfg = MachineConfig::disc1()
        .with_streams(2)
        .with_schedule(SchedulePolicy::partitioned(&[12, 4]));
    let mut m = Machine::new(cfg, &program);
    run(&mut m, 8_000);
    let r = &m.stats().retired;
    let ratio = r[0] as f64 / r[1] as f64;
    assert!(
        (2.2..=3.6).contains(&ratio),
        "expected ~3:1 split, got {ratio} ({r:?})"
    );
}

#[test]
fn sole_active_stream_takes_all_throughput() {
    // Figure 3.3: static share T/4, dynamic share T when others are idle.
    let src = r#"
        .stream 0, a
    a:  addi r0, r0, 1
        nop
        nop
        nop
        jmp a
    "#;
    let program = Program::assemble(src).unwrap();
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    run(&mut m, 2_000);
    // Despite owning only 4 of 16 slots, the single active stream should
    // get most cycles (some lost to jump flushes and hazards).
    assert!(
        m.stats().utilization() > 0.5,
        "dynamic reallocation failed: PD = {}",
        m.stats().utilization()
    );
    assert!(m.scheduler_grants()[0] > 1_000);
}

#[test]
fn global_registers_pass_parameters_between_streams() {
    let src = r#"
        .stream 0, producer
        .stream 1, consumer
    producer:
        ldi g0, 0
    lp: addi g0, g0, 1
        cmpi g0, 50
        jnz lp
        stop
    consumer:
    lc: cmpi g0, 50
        jnz lc
        ldi r0, 1
        sta r0, 0xb0
        halt
    "#;
    let program = Program::assemble(src).unwrap();
    let mut m = Machine::new(MachineConfig::disc1().with_streams(2), &program);
    assert_eq!(run(&mut m, 50_000), Exit::Halted);
    assert_eq!(m.internal_memory().read(0xb0), 1);
    assert_eq!(m.global(0), 50);
}

#[test]
fn breakpoint_reports_and_resumes() {
    let mut m = machine(
        r#"
        .stream 0, main
    main:
        ldi r0, 1
        brk
        ldi r0, 2
        halt
    "#,
    );
    match run(&mut m, 1_000) {
        Exit::Breakpoint { stream, pc } => {
            assert_eq!(stream, 0);
            assert_eq!(pc, 1);
        }
        other => panic!("expected breakpoint, got {other:?}"),
    }
    assert_eq!(run(&mut m, 1_000), Exit::Halted);
    assert_eq!(m.reg(0, Reg::R0), 2);
}

#[test]
fn decode_fault_is_reported() {
    let mut program = Program::assemble(".stream 0, m\nm: nop\n").unwrap();
    program.set_word(1, 63 << 18); // unassigned opcode
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    let err = m.run(100).unwrap_err();
    match err {
        disc_core::SimError::Decode { stream, pc, word } => {
            assert_eq!(stream, 0);
            assert_eq!(pc, 1);
            assert_eq!(word, 63 << 18);
        }
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn wait_states_expose_through_stream_view() {
    let program = Program::assemble(
        r#"
        .stream 0, m
    m:  lui r0, 0x80
        ld r1, [r0]
        halt
    "#,
    )
    .unwrap();
    let mut m = Machine::with_bus(MachineConfig::disc1(), &program, Box::new(FlatBus::new(50)));
    // Step until the load issues.
    for _ in 0..10 {
        m.step().unwrap();
    }
    assert_eq!(m.stream(0).wait(), WaitState::BusTransaction);
    assert_eq!(run(&mut m, 1_000), Exit::Halted);
    assert_eq!(m.stream(0).wait(), WaitState::None);
}

#[test]
fn deep_recursion_spills_and_recovers() {
    // f(n) = f(n-1) + 1, f(0) = 0 — 24 frames deep on a 16-register file,
    // exercising the hardware spill/fill engine.
    let src = r#"
        .stream 0, main
    main:
        ldi r0, 24
        call down
        sta r0, 0xc0
        halt
    down:
        ; r0 = return address, r1 = argument
        cmpi r1, 0
        jz base
        winc 1              ; r0 = scratch, r1 = ret, r2 = arg
        subi r0, r2, 1      ; pass arg - 1
        call down           ; result arrives in our r0
        addi r0, r0, 1
        mov r2, r0          ; result into our argument slot
        wdec 1
        ret
    base:
        ldi r1, 0           ; f(0) = 0 into the caller's slot
        ret
    "#;
    let program = Program::assemble(src).unwrap();
    let cfg = MachineConfig::disc1().with_window_depth(16);
    let mut m = Machine::new(cfg, &program);
    assert_eq!(run(&mut m, 100_000), Exit::Halted);
    assert_eq!(m.internal_memory().read(0xc0), 24);
    assert!(m.stream(0).window().spills() > 0, "descent must spill");
    assert!(m.stream(0).window().fills() > 0, "return path must fill");
    assert!(m.stats().spill_stall_cycles[0] > 0);
}

#[test]
fn trace_captures_pipeline_occupancy() {
    let src = r#"
        .stream 0, a
        .stream 1, b
    a: jmp a
    b: jmp b
    "#;
    let program = Program::assemble(src).unwrap();
    let mut m = Machine::new(MachineConfig::disc1().with_streams(2), &program);
    m.trace_start(16);
    run(&mut m, 16);
    let trace = m.trace_take().unwrap();
    assert_eq!(trace.records().len(), 16);
    let diagram = trace.pipeline_diagram(&["IF", "RD", "EX", "WR"]);
    assert!(diagram.contains("IF s0"));
    assert!(diagram.contains("IF s1"));
}
