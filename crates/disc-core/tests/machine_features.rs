//! Behavioral tests of the remaining machine features: interrupt masking,
//! stack-fault policy, runtime vectors, deep pipelines, weighted-deficit
//! scheduling, trace events, external semaphores and constant building.

use disc_core::{Exit, FlatBus, Machine, MachineConfig, SchedulePolicy, TraceEvent, WindowPolicy};
use disc_isa::{Program, Reg};

fn assemble(src: &str) -> Program {
    Program::assemble(src).expect("test program assembles")
}

#[test]
fn mask_register_defers_vector_until_unmasked() {
    let program = assemble(
        r#"
        .stream 0, main
        .vector 0, 3, isr
    main:
        ldi mr, 1           ; mask everything except background
        ldi r0, 0
    loop:
        addi r0, r0, 1
        cmpi r0, 60
        jnz loop
        ldi mr, 255         ; unmask -> pending interrupt fires now
    spin:
        jmp spin
    isr:
        sta r0, 0x20        ; captures the loop counter at delivery time
        reti
    "#,
    );
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    for _ in 0..12 {
        m.step().unwrap();
    }
    m.raise_interrupt(0, 3);
    m.run(2_000).unwrap();
    assert_eq!(
        m.internal_memory().read(0x20),
        60,
        "handler must run only after the unmask, seeing the final counter"
    );
    assert_eq!(m.stats().vectors_taken[0], 1);
}

#[test]
fn stack_fault_policy_raises_bit_6() {
    let program = assemble(
        r#"
        .stream 0, main
        .vector 0, 6, fault
    main:
        winc 8              ; overflow a 9-deep file immediately
        winc 8
    spin:
        jmp spin
    fault:
        ldi r1, 1
        sta r1, 0x30
        reti
    "#,
    );
    let cfg = MachineConfig::disc1()
        .with_window_depth(9)
        .with_window_policy(WindowPolicy::Fault);
    let mut m = Machine::new(cfg, &program);
    m.run(500).unwrap();
    assert_eq!(
        m.internal_memory().read(0x30),
        1,
        "stack fault handler must run"
    );
}

#[test]
fn runtime_vector_installation() {
    let program = assemble(
        r#"
        .stream 0, main
    main:
        jmp main
    handler:
        ldi r0, 42
        sta r0, 0x40
        reti
    "#,
    );
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    let handler = program.symbol("handler").unwrap();
    m.set_vector(0, 5, handler);
    m.run(20).unwrap();
    m.raise_interrupt(0, 5);
    m.run(200).unwrap();
    assert_eq!(m.internal_memory().read(0x40), 42);
}

#[test]
fn deep_pipeline_preserves_program_semantics() {
    let src = r#"
        .stream 0, main
    main:
        ldi r0, 12
        ldi r1, 1
    loop:
        mul r1, r1, r0      ; overflowing factorial, wrapping
        subi r0, r0, 1
        jnz loop
        sta r1, 0x50
        halt
    "#;
    let mut results = Vec::new();
    for depth in [3usize, 4, 6, 8] {
        let program = assemble(src);
        let cfg = MachineConfig::disc1()
            .with_streams(1)
            .with_pipeline_depth(depth);
        let mut m = Machine::new(cfg, &program);
        assert_eq!(m.run(50_000).unwrap(), Exit::Halted, "depth {depth}");
        results.push((depth, m.internal_memory().read(0x50), m.cycle()));
    }
    // Same architectural result at every depth.
    let value = results[0].1;
    assert!(results.iter().all(|&(_, v, _)| v == value));
    // Deeper pipes take longer for a single hazardy stream.
    assert!(
        results.last().unwrap().2 > results.first().unwrap().2,
        "depth 8 should cost more cycles than depth 3: {results:?}"
    );
}

#[test]
fn weighted_deficit_policy_drives_machine() {
    let src = r#"
        .stream 0, a
        .stream 1, b
    a: addi r0, r0, 1
       addi r1, r1, 1
       addi r2, r2, 1
       jmp a
    b: addi r0, r0, 1
       addi r1, r1, 1
       addi r2, r2, 1
       jmp b
    "#;
    let program = assemble(src);
    let cfg = MachineConfig::disc1()
        .with_streams(2)
        .with_schedule(SchedulePolicy::WeightedDeficit(vec![3, 1]));
    let mut m = Machine::new(cfg, &program);
    m.run(8_000).unwrap();
    let r = &m.stats().retired;
    let ratio = r[0] as f64 / r[1] as f64;
    assert!(
        (2.0..=4.0).contains(&ratio),
        "expected ~3:1 under weighted deficit, got {ratio} ({r:?})"
    );
}

#[test]
fn trace_records_bus_and_vector_events() {
    let program = assemble(
        r#"
        .stream 0, main
        .vector 0, 4, isr
    main:
        lui r0, 0x80
        ld  r1, [r0]
    spin:
        jmp spin
    isr:
        reti
    "#,
    );
    let mut m = Machine::with_bus(MachineConfig::disc1(), &program, Box::new(FlatBus::new(6)));
    m.trace_start(256);
    m.run(30).unwrap();
    m.raise_interrupt(0, 4);
    m.run(30).unwrap();
    let trace = m.trace_take().unwrap();
    let events: Vec<&TraceEvent> = trace
        .records()
        .iter()
        .flat_map(|r| r.events.iter())
        .collect();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::BusStart { addr: 0x8000, .. })),
        "bus start traced: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::BusComplete { .. })),
        "bus completion traced"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::Vector { bit: 4, .. })),
        "vector traced"
    );
}

#[test]
fn external_tset_serializes_through_abi() {
    // Two streams contend on a lock in *external* memory; the ABI's
    // single-transaction rule makes the read-modify-write atomic.
    let src = r#"
        .stream 0, worker
        .stream 1, worker
    worker:
        ldi r2, 40
        ldi r3, 0
        lui r3, 0x80        ; external lock address
    again:
        tset r0, [r3]
        cmpi r0, 0
        jnz again           ; spin until we owned it
        lda r1, 0x60        ; critical section on internal counter
        addi r1, r1, 1
        sta r1, 0x60
        ldi r0, 0
        st  r0, [r3]        ; release external lock
        subi r2, r2, 1
        jnz again2
        stop
    again2:
        jmp again
    "#;
    let program = assemble(src);
    let mut m = Machine::with_bus(
        MachineConfig::disc1().with_streams(2),
        &program,
        Box::new(FlatBus::new(3)),
    );
    assert_eq!(m.run(300_000).unwrap(), Exit::AllIdle);
    assert_eq!(m.internal_memory().read(0x60), 80, "no increments lost");
}

#[test]
fn stop_preserves_pending_higher_interrupts() {
    let program = assemble(
        r#"
        .stream 0, main
        .vector 0, 2, isr
    main:
        signal 0, 2         ; latch an interrupt for ourselves
        stop                ; clears only the background level
        halt                ; resumed here only after the isr ran? no:
                            ; stop clears bit0 -> isr (bit2) still pending
    isr:
        ldi r0, 5
        sta r0, 0x70
        reti
    "#,
    );
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    m.run(1_000).unwrap();
    assert_eq!(
        m.internal_memory().read(0x70),
        5,
        "the latched interrupt must still deliver after stop"
    );
}

#[test]
fn full_16bit_constants_from_ldi_lui() {
    let program = assemble(
        r#"
        .stream 0, main
    main:
        ldi r0, 0x34
        lui r0, 0x12        ; r0 = 0x1234
        ldi r1, -1          ; r1 = 0xffff
        lui r1, 0xab        ; r1 = 0xabff
        sta r0, 0x10
        sta r1, 0x11
        halt
    "#,
    );
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    m.run(1_000).unwrap();
    assert_eq!(m.internal_memory().read(0x10), 0x1234);
    assert_eq!(m.internal_memory().read(0x11), 0xabff);
}

#[test]
fn store_with_window_adjust_pops_frame() {
    let program = assemble(
        r#"
        .stream 0, main
    main:
        ldi r0, 7, +w       ; push 7 (lands in r1 after the move)
        ldi r0, 9           ; fresh top
        sta r1, 0x20, -w    ; store the pushed value, pop the frame
        sta r0, 0x21        ; r0 is now the pre-push slot again? no:
                            ; after -w, old r1 (value 7) became r0
        halt
    "#,
    );
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    m.run(1_000).unwrap();
    assert_eq!(m.internal_memory().read(0x20), 7);
    assert_eq!(m.internal_memory().read(0x21), 7);
}

#[test]
fn scheduler_grants_expose_partition_accounting() {
    let src = r#"
        .stream 0, a
        .stream 1, b
    a: jmp a
    b: jmp b
    "#;
    let program = assemble(src);
    let cfg = MachineConfig::disc1()
        .with_streams(2)
        .with_schedule(SchedulePolicy::partitioned(&[10, 6]));
    let mut m = Machine::new(cfg, &program);
    m.run(1_600).unwrap();
    let g = m.scheduler_grants();
    let total: u64 = g.iter().sum();
    assert!(total > 1_000, "most cycles grant a slot");
    let share0 = g[0] as f64 / total as f64;
    assert!(
        (0.5..=0.75).contains(&share0),
        "stream 0 should hold ~10/16 of grants, got {share0}"
    );
}

#[test]
fn fork_to_active_stream_only_sets_background_bit() {
    let program = assemble(
        r#"
        .stream 0, main
        .stream 1, busy
    main:
        fork 1, 0x200       ; stream 1 already active: must NOT retarget it
        halt
    busy:
        addi r0, r0, 1
        jmp busy
    "#,
    );
    let mut m = Machine::new(MachineConfig::disc1().with_streams(2), &program);
    m.run(200).unwrap();
    assert_eq!(m.stats().forks_ignored, 1);
    assert_ne!(m.stream(1).pc(), 0x200, "active stream keeps its PC");
}

#[test]
fn reg_inspection_reflects_specials() {
    let program = assemble(
        r#"
        .stream 0, main
    main:
        ldi sp, 100
        ldi mr, 0x7f
        cmpi sp, 100        ; sets Z
        halt
    "#,
    );
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    m.run(100).unwrap();
    assert_eq!(m.reg(0, Reg::Sp), 100);
    assert_eq!(m.reg(0, Reg::Mr), 0x7f);
    assert_eq!(m.reg(0, Reg::Sr) & 1, 1, "Z flag visible through SR");
    assert_eq!(m.reg(0, Reg::Ir), 1, "background bit");
}
