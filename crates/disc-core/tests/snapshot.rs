//! Snapshot/restore/fork integration tests: the `disc-snap/v1` machine
//! blob must capture *everything* — a fork taken mid-run and the original
//! must stay cycle-for-cycle identical to the end of the program — and
//! restore must refuse blobs from an incompatible configuration or a
//! different program.

use disc_core::{
    DispatchMode, Exit, Machine, MachineConfig, SimError, SnapError, StepMode, TraceSink,
};
use disc_isa::Program;

fn busy_program() -> Program {
    Program::assemble(
        r#"
        .stream 0, main
        .stream 1, side
        .vector 0, 3, isr
main:
        ldi r0, 0
        ldi r1, 25
loop:
        addi r0, r0, 1
        sta r0, 0x10
        lda r2, 0x900
        winc 1
        wdec 1
        sub r3, r1, r0
        jnz loop
        halt
side:
        ldi r4, 7
spin:
        addi r4, r4, 3
        sta r4, 0xa00
        jmp spin
isr:
        ldi r5, 0xff
        reti
"#,
    )
    .expect("assemble")
}

/// Drives `n` cycles, raising an interrupt partway so service frames and
/// IRQ latency stats are live at the snapshot point.
fn warm_up(m: &mut Machine, n: u64) {
    m.run(n / 2).expect("warm-up run");
    m.raise_interrupt(0, 3);
    m.run(n - n / 2).expect("warm-up run");
}

fn machine_digest(m: &Machine) -> (u64, u64, u64, Vec<u16>, u16, u16) {
    let mut regs = Vec::new();
    for s in 0..m.stream_count() {
        for r in [disc_isa::Reg::R0, disc_isa::Reg::R4, disc_isa::Reg::Sp] {
            regs.push(m.reg(s, r));
        }
        regs.push(m.stream(s).pc());
    }
    (
        m.cycle(),
        m.stats().retired.iter().sum::<u64>(),
        m.stats().bubbles,
        regs,
        m.internal_memory().read(0x10),
        m.global(0),
    )
}

#[test]
fn fork_mid_run_stays_cycle_identical() {
    let program = busy_program();
    let mut original = Machine::new(MachineConfig::disc1(), &program);
    warm_up(&mut original, 40);

    let mut fork = original.fork().expect("fork");
    assert_eq!(machine_digest(&original), machine_digest(&fork));

    let a = original.run(400).expect("original tail");
    let b = fork.run(400).expect("fork tail");
    assert_eq!(a, b);
    assert_eq!(machine_digest(&original), machine_digest(&fork));
    assert_eq!(original.stats(), fork.stats());
    assert_eq!(original.skip_stats(), fork.skip_stats());
    assert_eq!(original.scheduler_grants(), fork.scheduler_grants());
}

#[test]
fn restore_roundtrips_identity() {
    let program = busy_program();
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    warm_up(&mut m, 60);
    let snap = m.snapshot();
    let mut fresh = Machine::new(MachineConfig::disc1(), &program);
    fresh.restore(&snap).expect("restore");
    // A snapshot of the restored machine must be byte-identical: nothing
    // may be lost or re-derived differently on the second trip.
    assert_eq!(snap, fresh.snapshot());
}

#[test]
fn fork_across_step_and_dispatch_modes() {
    let program = busy_program();
    let mut base = Machine::new(MachineConfig::disc1(), &program);
    warm_up(&mut base, 40);
    let base_exit = base.run(500).expect("base tail");
    let reference = machine_digest(&base);

    let mut warm = Machine::new(MachineConfig::disc1(), &program);
    warm_up(&mut warm, 40);
    for (step, dispatch) in [
        (StepMode::CycleByCycle, DispatchMode::Legacy),
        (StepMode::EventSkip, DispatchMode::Superblock),
        (StepMode::EventSkip, DispatchMode::Legacy),
    ] {
        let mut config = MachineConfig::disc1();
        config.step_mode = step;
        config.dispatch_mode = dispatch;
        let latency = config.default_ext_latency;
        let bus = Box::new(disc_core::FlatBus::new(latency));
        let mut fork = warm.fork_with(config, bus).expect("cross-mode fork");
        let exit = fork.run(500).expect("fork tail");
        assert_eq!(exit, base_exit, "{step:?}/{dispatch:?}");
        assert_eq!(machine_digest(&fork), reference, "{step:?}/{dispatch:?}");
    }
}

#[test]
fn restore_rejects_wrong_config_and_program() {
    let program = busy_program();
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    m.run(10).expect("run");
    let snap = m.snapshot();

    let mut config = MachineConfig::disc1();
    config.default_ext_latency += 1;
    let mut other = Machine::new(config, &program);
    assert!(matches!(
        other.restore(&snap),
        Err(SnapError::FingerprintMismatch { .. })
    ));

    let mut program2 = program.clone();
    program2.set_word(0, program.word(0) ^ 1);
    let mut other = Machine::new(MachineConfig::disc1(), &program2);
    assert!(matches!(
        other.restore(&snap),
        Err(SnapError::ProgramMismatch { .. })
    ));

    let mut ok = Machine::new(MachineConfig::disc1(), &program);
    ok.restore(&snap).expect("matching machine restores");
}

#[test]
fn restore_rejects_truncated_and_trailing() {
    let program = busy_program();
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    m.run(10).expect("run");
    let snap = m.snapshot();

    let mut target = Machine::new(MachineConfig::disc1(), &program);
    assert!(target.restore(&snap[..snap.len() - 1]).is_err());
    let mut long = snap.clone();
    long.push(0);
    assert!(target.restore(&long).is_err());
    // And the machine is still usable with a good blob afterwards.
    target.restore(&snap).expect("good blob restores");
}

/// PR 5 regression guard: a per-cycle `TraceSink` attached across a
/// restore must see exactly the post-restore cycles — no stale events
/// staged before the snapshot, and `wants_records`/`next_observe`
/// re-latched so event-skip cannot skip over observed cycles.
#[test]
fn trace_sink_relatches_after_restore() {
    #[derive(Default)]
    struct Recorder {
        cycles: Vec<u64>,
        events: usize,
    }
    impl TraceSink for Recorder {
        fn wants_records(&self) -> bool {
            true
        }
        fn record_cycle(&mut self, record: disc_core::CycleRecord) {
            self.cycles.push(record.cycle);
            self.events += record.events.len();
        }
        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    let program = busy_program();

    // Uninterrupted reference: one sink over the whole run.
    let mut config = MachineConfig::disc1();
    config.step_mode = StepMode::EventSkip;
    let mut base = Machine::new(config.clone(), &program);
    base.set_trace_sink(Box::new(Recorder::default()));
    warm_up(&mut base, 40);
    base.run(300).expect("base tail");
    let base_rec = base
        .take_trace_sink()
        .unwrap()
        .into_any()
        .downcast::<Recorder>()
        .unwrap();

    // Snapshot mid-run, restore into a fresh machine, attach a fresh sink
    // there: its records must equal the reference's post-snapshot suffix.
    let mut m = Machine::new(config.clone(), &program);
    m.set_trace_sink(Box::new(Recorder::default()));
    warm_up(&mut m, 40);
    let snap = m.snapshot();
    let cut = m.cycle();

    let mut resumed = Machine::new(config, &program);
    resumed.set_trace_sink(Box::new(Recorder::default()));
    resumed.restore(&snap).expect("restore");
    resumed.run(300).expect("resumed tail");
    let tail_rec = resumed
        .take_trace_sink()
        .unwrap()
        .into_any()
        .downcast::<Recorder>()
        .unwrap();

    let suffix: Vec<u64> = base_rec
        .cycles
        .iter()
        .copied()
        .filter(|&c| c >= cut)
        .collect();
    assert_eq!(tail_rec.cycles, suffix);
    assert!(tail_rec.cycles.windows(2).all(|w| w[1] == w[0] + 1));
}

#[test]
fn pending_error_survives_snapshot() {
    // An undecodable word mid-stream: run until the decode fault fires,
    // then check that a machine snapshotted just before reports the same
    // error after restore.
    let program = Program::assemble(
        r#"
        .stream 0, main
main:
        ldi r0, 1
        addi r0, r0, 2
        halt
"#,
    )
    .expect("assemble");
    let mut bad = program.clone();
    bad.set_word(1, 0xff_ffff); // undecodable
    let mut m = Machine::new(MachineConfig::disc1(), &bad);
    let err = m.run(50).expect_err("decode fault");
    assert!(matches!(err, SimError::Decode { .. }));

    let mut good = Machine::new(MachineConfig::disc1(), &program);
    good.run(2).expect("short run");
    let snap = good.snapshot();
    let mut restored = Machine::new(MachineConfig::disc1(), &program);
    restored.restore(&snap).expect("restore");
    assert_eq!(restored.run(100).expect("tail"), Exit::Halted);
}

/// Format-stability guard: a fixed machine driven to a fixed point must
/// snapshot to exactly the bytes committed in `tests/data/golden.snap`.
/// A failure here means the `disc-snap/v1` byte format changed — decide
/// whether that is intentional, bump [`disc_core::SNAP_FORMAT`] thinking
/// about blobs in the wild, and regenerate the golden file with:
///
/// ```text
/// DISC_REGEN_GOLDEN=1 cargo test -p disc-core --test snapshot golden
/// ```
#[test]
fn golden_snapshot_blob_is_stable() {
    let program = busy_program();
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    warm_up(&mut m, 50);
    let blob = m.snapshot();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden.snap");
    if std::env::var_os("DISC_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &blob).expect("write golden blob");
    }
    let golden = std::fs::read(path)
        .expect("read tests/data/golden.snap (regenerate with DISC_REGEN_GOLDEN=1)");
    assert_eq!(
        blob, golden,
        "snapshot bytes drifted from the committed golden blob"
    );

    // The committed blob must still restore, and re-snapshot to itself.
    let mut fresh = Machine::new(MachineConfig::disc1(), &program);
    fresh.restore(&golden).expect("golden blob restores");
    assert_eq!(fresh.cycle(), m.cycle());
    assert_eq!(fresh.snapshot(), golden);
}
