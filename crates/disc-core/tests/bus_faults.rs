//! Behavioral tests of the bus-fault model: unmapped-access policy,
//! transaction timeouts, fault interrupts, stats and trace visibility,
//! and the legacy compatibility mode.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use disc_core::{
    BusFaultKind, BusFaultPolicy, DataBus, Exit, IrqRequest, Machine, MachineConfig, SimError,
    TraceEvent, WaitState,
};
use disc_isa::Program;

fn assemble(src: &str) -> Program {
    Program::assemble(src).expect("test program assembles")
}

/// External bus with two mapped windows and everything else unmapped:
/// `0x800..0x880` is a device whose latency the test controls (set it to
/// `u32::MAX` to model a peripheral that never completes), and
/// `0x900..0x980` is well-behaved RAM with a 2-cycle latency.
#[derive(Debug, Default)]
struct TestBus {
    device_latency: u32,
    mem: HashMap<u16, u16>,
    reads: u64,
    writes: u64,
}

impl TestBus {
    fn region(addr: u16) -> Option<&'static str> {
        match addr {
            0x800..=0x87f => Some("device"),
            0x900..=0x97f => Some("ram"),
            _ => None,
        }
    }
}

impl DataBus for TestBus {
    fn latency(&self, addr: u16, _write: bool) -> Option<u32> {
        match Self::region(addr) {
            Some("device") => Some(self.device_latency),
            Some(_) => Some(2),
            None => None,
        }
    }

    fn read(&mut self, addr: u16) -> u16 {
        self.reads += 1;
        match Self::region(addr) {
            Some(_) => self.mem.get(&addr).copied().unwrap_or(0),
            None => 0xffff, // open bus
        }
    }

    fn write(&mut self, addr: u16, value: u16) {
        self.writes += 1;
        if Self::region(addr).is_some() {
            self.mem.insert(addr, value);
        }
    }
}

/// Keeps a handle on the bus after the machine takes ownership.
#[derive(Clone)]
struct SharedBus(Rc<RefCell<TestBus>>);

impl DataBus for SharedBus {
    fn latency(&self, addr: u16, write: bool) -> Option<u32> {
        self.0.borrow().latency(addr, write)
    }
    fn read(&mut self, addr: u16) -> u16 {
        self.0.borrow_mut().read(addr)
    }
    fn write(&mut self, addr: u16, value: u16) {
        self.0.borrow_mut().write(addr, value)
    }
    fn tick(&mut self, irqs: &mut Vec<IrqRequest>) {
        self.0.borrow_mut().tick(irqs)
    }
}

fn shared_bus(device_latency: u32) -> (SharedBus, Rc<RefCell<TestBus>>) {
    let inner = Rc::new(RefCell::new(TestBus {
        device_latency,
        ..TestBus::default()
    }));
    (SharedBus(inner.clone()), inner)
}

#[test]
fn legacy_unmapped_access_completes_silently_but_is_counted() {
    let program = assemble(
        r#"
        .stream 0, main
    main:
        lda r1, 0x700       ; unmapped external address
        sta r1, 0x20        ; capture what the read delivered
        sta r1, 0x700       ; unmapped store, silently dropped
        halt
    "#,
    );
    let (bus, handle) = shared_bus(3);
    let mut m = Machine::with_bus(MachineConfig::disc1(), &program, Box::new(bus));
    assert_eq!(m.run(200).unwrap(), Exit::Halted);
    // Historical behavior: zero-latency completion, open-bus data.
    assert_eq!(m.internal_memory().read(0x20), 0xffff);
    assert_eq!(m.stats().unmapped_accesses, 2, "both accesses counted");
    assert_eq!(m.stats().bus_faults_total(), 0, "no fault delivered");
    assert_eq!(handle.borrow().reads, 1);
    assert_eq!(handle.borrow().writes, 1);
}

#[test]
fn fault_unmapped_read_aborts_and_raises_bus_error() {
    let program = assemble(
        r#"
        .stream 0, main
        .vector 0, 5, buserr
    main:
        ldi r1, 7
        lda r1, 0x700       ; unmapped: aborts, r1 keeps its value
        sta r1, 0x20
        halt
    buserr:
        ldi r2, 1
        sta r2, 0x21
        reti
    "#,
    );
    let (bus, handle) = shared_bus(3);
    let cfg = MachineConfig::disc1().with_bus_fault(BusFaultPolicy::Fault);
    let mut m = Machine::with_bus(cfg, &program, Box::new(bus));
    m.trace_start(256);
    assert_eq!(m.run(500).unwrap(), Exit::Halted);
    assert_eq!(
        m.internal_memory().read(0x20),
        7,
        "faulted load leaves the destination unchanged"
    );
    assert_eq!(m.internal_memory().read(0x21), 1, "bus-error handler ran");
    assert_eq!(m.stats().unmapped_accesses, 1);
    assert_eq!(m.stats().bus_faults[0], 1);
    assert_eq!(
        handle.borrow().reads,
        0,
        "aborted access never touches the bus"
    );
    let trace = m.trace_take().unwrap();
    let fault_events: Vec<_> = trace
        .records()
        .iter()
        .flat_map(|r| &r.events)
        .filter(|e| {
            matches!(
                e,
                TraceEvent::BusFault {
                    stream: 0,
                    addr: 0x700,
                    kind: BusFaultKind::Unmapped,
                }
            )
        })
        .collect();
    assert_eq!(fault_events.len(), 1, "fault visible in the trace");
}

#[test]
fn fault_unmapped_store_is_dropped() {
    let program = assemble(
        r#"
        .stream 0, main
        .vector 0, 5, buserr
    main:
        ldi r1, 42
        sta r1, 0x700       ; unmapped store
        halt
    buserr:
        reti
    "#,
    );
    let (bus, handle) = shared_bus(3);
    let cfg = MachineConfig::disc1().with_bus_fault(BusFaultPolicy::Fault);
    let mut m = Machine::with_bus(cfg, &program, Box::new(bus));
    assert_eq!(m.run(500).unwrap(), Exit::Halted);
    assert_eq!(handle.borrow().writes, 0, "store never reaches the bus");
    assert_eq!(m.stats().bus_faults[0], 1);
}

#[test]
fn stuck_peripheral_without_timeout_wedges_its_stream() {
    let program = assemble(
        r#"
        .stream 0, main
    main:
        lda r1, 0x800       ; device never completes
        sta r1, 0x20
        halt
    "#,
    );
    let (bus, _) = shared_bus(u32::MAX);
    // Legacy (or Fault with abi_timeout 0): no recovery path exists.
    let mut m = Machine::with_bus(MachineConfig::disc1(), &program, Box::new(bus));
    assert_eq!(m.run(2_000).unwrap(), Exit::CycleLimit);
    assert_eq!(m.stream(0).wait(), WaitState::BusTransaction);
    assert_eq!(m.internal_memory().read(0x20), 0, "store never executed");
}

#[test]
fn abi_timeout_aborts_stuck_transaction_and_wakes_the_stream() {
    let program = assemble(
        r#"
        .stream 0, main
        .vector 0, 5, buserr
    main:
        ldi r1, 7
        lda r1, 0x800       ; device never completes; timeout aborts
        sta r1, 0x20
        halt
    buserr:
        ldi r2, 1
        sta r2, 0x21
        reti
    "#,
    );
    let (bus, _) = shared_bus(u32::MAX);
    let cfg = MachineConfig::disc1()
        .with_bus_fault(BusFaultPolicy::Fault)
        .with_abi_timeout(16);
    let mut m = Machine::with_bus(cfg, &program, Box::new(bus));
    m.trace_start(256);
    assert_eq!(m.run(500).unwrap(), Exit::Halted);
    assert_eq!(m.internal_memory().read(0x20), 7, "destination unchanged");
    assert_eq!(m.internal_memory().read(0x21), 1, "bus-error handler ran");
    assert_eq!(m.stats().abi_timeouts, 1);
    assert_eq!(m.stats().bus_faults[0], 1);
    let trace = m.trace_take().unwrap();
    assert!(
        trace.records().iter().flat_map(|r| &r.events).any(|e| {
            matches!(
                e,
                TraceEvent::BusFault {
                    kind: BusFaultKind::Timeout,
                    ..
                }
            )
        }),
        "timeout abort visible in the trace"
    );
}

#[test]
fn timeout_bounds_cross_stream_bus_interference() {
    // Stream 0 hammers the stuck device; stream 1 does real work against
    // well-behaved RAM. The single-transaction ABI couples them — but the
    // timeout bounds each coupling episode, so stream 1 still finishes.
    let program = assemble(
        r#"
        .stream 0, bad
        .stream 1, good
        .vector 0, 5, recover
    bad:
        lda r1, 0x800       ; stuck forever
        jmp bad
    recover:
        reti
    good:
        ldi r3, 0
        ldi r4, 8
    loop:
        lda r5, 0x900       ; 2-cycle RAM
        addi r3, r3, 1
        subi r4, r4, 1
        jnz loop
        sta r3, 0x22
        halt
    "#,
    );
    let (bus, _) = shared_bus(u32::MAX);
    let cfg = MachineConfig::disc1()
        .with_streams(2)
        .with_bus_fault(BusFaultPolicy::Fault)
        .with_abi_timeout(8);
    let mut m = Machine::with_bus(cfg, &program, Box::new(bus));
    assert_eq!(m.run(2_000).unwrap(), Exit::Halted);
    assert_eq!(
        m.internal_memory().read(0x22),
        8,
        "victim of bus contention still completed all its reads"
    );
    assert!(m.stats().abi_timeouts >= 1);
    assert_eq!(
        m.stats().bus_faults[1],
        0,
        "faults land only on the offending stream"
    );
}

#[test]
fn masked_bus_error_interrupt_is_a_sim_error() {
    let program = assemble(
        r#"
        .stream 0, main
    main:
        ldi mr, 1           ; mask everything except background
        lda r1, 0x700       ; unmapped -> fault cannot be delivered
        halt
    "#,
    );
    let (bus, _) = shared_bus(3);
    let cfg = MachineConfig::disc1().with_bus_fault(BusFaultPolicy::Fault);
    let mut m = Machine::with_bus(cfg, &program, Box::new(bus));
    let err = m.run(500).unwrap_err();
    assert_eq!(
        err,
        SimError::UnhandledBusFault {
            stream: 0,
            addr: 0x700
        }
    );
}

#[test]
fn configurable_bus_error_bit_routes_the_fault() {
    let program = assemble(
        r#"
        .stream 0, main
        .vector 0, 3, buserr
    main:
        lda r1, 0x700
        halt
    buserr:
        ldi r2, 1
        sta r2, 0x21
        reti
    "#,
    );
    let (bus, _) = shared_bus(3);
    let cfg = MachineConfig::disc1()
        .with_bus_fault(BusFaultPolicy::Fault)
        .with_bus_error_bit(3);
    let mut m = Machine::with_bus(cfg, &program, Box::new(bus));
    assert_eq!(m.run(500).unwrap(), Exit::Halted);
    assert_eq!(m.internal_memory().read(0x21), 1, "handler on bit 3 ran");
}
