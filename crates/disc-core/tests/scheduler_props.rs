//! Property tests for the DISC1 hardware scheduler: sequence-table
//! shares are honored to 1/16 granularity, and dynamic reallocation
//! never wastes a slot while any stream is ready.

use disc_core::{SchedulePolicy, Scheduler, SEQUENCE_SLOTS};
use proptest::prelude::*;

/// A random 16-slot sequence table drawn over 8 streams; tests reduce
/// the entries mod the stream count they draw separately.
fn arb_raw_table() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..8, SEQUENCE_SLOTS)
}

fn share(table: &[u8], s: usize) -> u64 {
    table.iter().filter(|&&x| x as usize == s).count() as u64
}

proptest! {
    /// With every stream ready, grants over whole frames equal the
    /// static 1/16 shares exactly, and mid-frame each stream is within
    /// one slot of its proportional entitlement.
    #[test]
    fn granted_shares_match_partition(
        streams in 2usize..=8,
        raw_table in arb_raw_table(),
        frames in 1u64..6,
    ) {
        let table: Vec<u8> = raw_table.iter().map(|&x| x % streams as u8).collect();
        let mut table = table;
        for (s, slot) in table.iter_mut().enumerate().take(streams) {
            *slot = s as u8;
        }
        let mut sched = Scheduler::new(SchedulePolicy::Sequence(table.clone()), streams);
        let ready = vec![true; streams];
        for cycle in 0..frames * SEQUENCE_SLOTS as u64 {
            let pick = sched.pick(&ready);
            prop_assert!(pick.is_some(), "ready streams must always be granted");
            // Mid-frame bound: a stream never exceeds its entitlement for
            // the frames elapsed so far by more than one slot.
            let done_frames = (cycle + 1) / SEQUENCE_SLOTS as u64;
            for s in 0..streams {
                let granted = sched.granted()[s];
                let entitled = share(&table, s) * (done_frames + 1);
                prop_assert!(
                    granted <= entitled,
                    "stream {s} granted {granted} > entitlement {entitled} \
                     after cycle {cycle}"
                );
            }
        }
        // Whole frames: shares are exact.
        for s in 0..streams {
            prop_assert_eq!(
                sched.granted()[s],
                share(&table, s) * frames,
                "stream {} share over {} frames (table {:?})",
                s, frames, &table
            );
        }
        prop_assert_eq!(sched.reallocated(), 0, "no reallocation when all ready");
    }

    /// A stalled owner's slot always goes to some ready stream *with a
    /// slot in the table* — never to a stalled stream, never wasted as a
    /// bubble. (A stream absent from the table has a static share of
    /// zero and is starved by design, so it does not count as a
    /// reallocation candidate.)
    #[test]
    fn stalled_slots_reallocate_to_ready_streams(
        streams in 2usize..=8,
        raw_table in arb_raw_table(),
        ready_bits in 1u8..=0xff,
        cycles in 1usize..64,
    ) {
        let table: Vec<u8> = raw_table.iter().map(|&x| x % streams as u8).collect();
        let ready: Vec<bool> = (0..streams)
            .map(|s| ready_bits & (1 << (s % 8)) != 0)
            .collect();
        let any_tabled_ready = table.iter().any(|&t| ready[t as usize]);
        let mut sched = Scheduler::new(SchedulePolicy::Sequence(table.clone()), streams);
        for cycle in 0..cycles {
            let pick = sched.pick(&ready);
            match pick {
                Some(s) => {
                    prop_assert!(
                        ready[s],
                        "cycle {cycle}: granted stalled stream {s} (ready {ready:?})"
                    );
                    prop_assert!(
                        table.contains(&(s as u8)),
                        "cycle {cycle}: granted stream {s} outside the table {table:?}"
                    );
                }
                None => prop_assert!(
                    !any_tabled_ready,
                    "cycle {cycle}: bubble despite ready tabled streams \
                     (ready {ready:?}, table {table:?})"
                ),
            }
        }
        if !any_tabled_ready {
            prop_assert!(sched.granted().iter().all(|&g| g == 0));
            return Ok(());
        }
        // Every slot whose owner was stalled must have been reallocated.
        let expected_realloc: u64 = (0..cycles)
            .filter(|&c| !ready[table[c % table.len()] as usize])
            .count() as u64;
        prop_assert_eq!(sched.reallocated(), expected_realloc);
    }

    /// When no stream is ready the scheduler reports a bubble and grants
    /// nothing.
    #[test]
    fn all_stalled_gives_bubbles(
        streams in 2usize..=8,
        cycles in 1usize..32,
    ) {
        let mut sched = Scheduler::new(SchedulePolicy::round_robin(streams), streams);
        let ready = vec![false; streams];
        for _ in 0..cycles {
            prop_assert_eq!(sched.pick(&ready), None);
        }
        prop_assert!(sched.granted().iter().all(|&g| g == 0));
        prop_assert_eq!(sched.reallocated(), 0);
    }

    /// A sole ready stream receives the machine's entire throughput no
    /// matter how small its static share is (paper Figure 3.3).
    #[test]
    fn sole_ready_stream_gets_full_throughput(
        streams in 2usize..=8,
        raw_table in arb_raw_table(),
        lucky in 0usize..8,
    ) {
        let table: Vec<u8> = raw_table.iter().map(|&x| x % streams as u8).collect();
        let mut table = table;
        for (s, slot) in table.iter_mut().enumerate().take(streams) {
            *slot = s as u8;
        }
        let lucky = lucky % streams;
        let ready: Vec<bool> = (0..streams).map(|s| s == lucky).collect();
        let mut sched = Scheduler::new(SchedulePolicy::Sequence(table), streams);
        for _ in 0..64 {
            prop_assert_eq!(sched.pick(&ready), Some(lucky));
        }
        prop_assert_eq!(sched.granted()[lucky], 64);
    }
}
