//! Property-based tests of the core substrates: the stack-window register
//! file against a reference model, the ALU against wide-integer
//! arithmetic, and the hardware scheduler's conservation/proportionality
//! invariants.

use disc_core::alu::{alu, eval_cond};
use disc_core::{Flags, SchedulePolicy, Scheduler, StackWindow, WindowPolicy};
use disc_isa::{AluOp, Cond};
use proptest::prelude::*;

// ---- stack window vs. an unbounded reference stack ----------------------

#[derive(Debug, Clone)]
enum WindowOp {
    Read(u8),
    Write(u8, u16),
    Adjust(i32),
}

fn arb_window_op() -> impl Strategy<Value = WindowOp> {
    prop_oneof![
        (0u8..8).prop_map(WindowOp::Read),
        (0u8..8, any::<u16>()).prop_map(|(n, v)| WindowOp::Write(n, v)),
        (-6i32..=6).prop_map(WindowOp::Adjust),
    ]
}

/// Reference model: an unbounded vector with a cursor; no spill concept.
struct RefWindow {
    stack: Vec<u16>,
    awp: usize,
}

impl RefWindow {
    fn new() -> Self {
        RefWindow {
            stack: vec![0; 8],
            awp: 7,
        }
    }

    fn read(&self, n: u8) -> u16 {
        self.awp
            .checked_sub(n as usize)
            .map(|s| self.stack[s])
            .unwrap_or(0)
    }

    fn write(&mut self, n: u8, v: u16) {
        if let Some(s) = self.awp.checked_sub(n as usize) {
            self.stack[s] = v;
        }
    }

    fn adjust(&mut self, d: i32) {
        self.awp = if d >= 0 {
            self.awp + d as usize
        } else {
            self.awp.saturating_sub((-d) as usize)
        };
        if self.awp >= self.stack.len() {
            self.stack.resize(self.awp + 1, 0);
        }
    }
}

proptest! {
    /// The spilling window file is observationally identical to an
    /// unbounded register stack — hardware spill/fill must never lose or
    /// corrupt a value, at any physical depth.
    #[test]
    fn stack_window_matches_unbounded_reference(
        ops in prop::collection::vec(arb_window_op(), 1..200),
        depth in 9usize..64,
    ) {
        let mut real = StackWindow::new(depth, WindowPolicy::AutoSpill);
        let mut reference = RefWindow::new();
        for op in &ops {
            match *op {
                WindowOp::Read(n) => {
                    prop_assert_eq!(real.read(n), reference.read(n), "read r{} after {:?}", n, op);
                }
                WindowOp::Write(n, v) => {
                    real.write(n, v);
                    reference.write(n, v);
                }
                WindowOp::Adjust(d) => {
                    real.adjust(d);
                    reference.adjust(d);
                }
            }
            prop_assert_eq!(real.awp(), reference.awp);
        }
        // Final full-window comparison.
        for n in 0..8 {
            prop_assert_eq!(real.read(n), reference.read(n), "final r{}", n);
        }
    }

    /// Spill cost is bounded: an adjustment of |d| can never stall longer
    /// than |d| + window size cycles.
    #[test]
    fn spill_cost_is_bounded(
        deltas in prop::collection::vec(-8i32..=8, 1..100),
        depth in 9usize..32,
    ) {
        let mut w = StackWindow::new(depth, WindowPolicy::AutoSpill);
        for &d in &deltas {
            let out = w.adjust(d);
            prop_assert!(
                out.stall_cycles as usize <= d.unsigned_abs() as usize + 8,
                "adjust({d}) stalled {} cycles", out.stall_cycles
            );
        }
    }
}

// ---- ALU vs. wide-integer reference --------------------------------------

proptest! {
    /// Add/Sub results and flags match 32-bit reference arithmetic.
    #[test]
    fn add_sub_match_reference(a in any::<u16>(), b in any::<u16>()) {
        let (r, f) = alu(AluOp::Add, a, b, Flags::default());
        let wide = a as u32 + b as u32;
        prop_assert_eq!(r, wide as u16);
        prop_assert_eq!(f.c, wide > 0xffff);
        prop_assert_eq!(f.z, wide as u16 == 0);
        prop_assert_eq!(f.n, wide as u16 & 0x8000 != 0);
        let expected_v = (a as i16 as i32 + b as i16 as i32) != (r as i16 as i32);
        prop_assert_eq!(f.v, expected_v, "add overflow flag");

        let (r, f) = alu(AluOp::Sub, a, b, Flags::default());
        prop_assert_eq!(r, a.wrapping_sub(b));
        prop_assert_eq!(f.c, a >= b, "carry = no borrow");
        let expected_v = (a as i16 as i32 - b as i16 as i32) != (r as i16 as i32);
        prop_assert_eq!(f.v, expected_v, "sub overflow flag");
    }

    /// The multiplier halves recompose into the exact 32-bit product.
    #[test]
    fn mul_halves_recompose(a in any::<u16>(), b in any::<u16>()) {
        let (lo, _) = alu(AluOp::Mul, a, b, Flags::default());
        let (hi, _) = alu(AluOp::Mulh, a, b, Flags::default());
        prop_assert_eq!(((hi as u32) << 16) | lo as u32, a as u32 * b as u32);
    }

    /// Adc/Sbc chain into exact 32-bit arithmetic: a 32-bit add built from
    /// two 16-bit halves equals the reference.
    #[test]
    fn carry_chains_build_32bit_add(a in any::<u32>(), b in any::<u32>()) {
        let (lo, f1) = alu(AluOp::Add, a as u16, b as u16, Flags::default());
        let (hi, _) = alu(AluOp::Adc, (a >> 16) as u16, (b >> 16) as u16, f1);
        let got = ((hi as u32) << 16) | lo as u32;
        prop_assert_eq!(got, a.wrapping_add(b));
    }

    /// Shifts match reference semantics for all amounts 0..16.
    #[test]
    fn shifts_match_reference(a in any::<u16>(), sh in 0u16..16) {
        let (r, _) = alu(AluOp::Shl, a, sh, Flags::default());
        prop_assert_eq!(r, if sh == 0 { a } else { a << (sh & 15) });
        let (r, _) = alu(AluOp::Shr, a, sh, Flags::default());
        prop_assert_eq!(r, a >> (sh & 15));
        let (r, _) = alu(AluOp::Asr, a, sh, Flags::default());
        prop_assert_eq!(r as i16, (a as i16) >> (sh & 15));
    }

    /// Condition evaluation is consistent: each condition and its negation
    /// partition the flag space.
    #[test]
    fn conditions_partition(fw in 0u16..16) {
        let f = Flags::from_word(fw);
        prop_assert!(eval_cond(Cond::Always, f));
        prop_assert_ne!(eval_cond(Cond::Z, f), eval_cond(Cond::Nz, f));
        prop_assert_ne!(eval_cond(Cond::C, f), eval_cond(Cond::Nc, f));
        prop_assert_ne!(eval_cond(Cond::N, f), eval_cond(Cond::Nn, f));
    }
}

// ---- scheduler invariants -------------------------------------------------

proptest! {
    /// With all streams ready, a partitioned sequence grants exactly its
    /// static shares over any whole number of rounds.
    #[test]
    fn partition_shares_are_exact_when_all_ready(
        raw in prop::collection::vec(1u32..8, 2..5),
        rounds in 1usize..20,
    ) {
        // Normalize to 16 slots.
        let total: u32 = raw.iter().sum();
        let mut shares: Vec<u32> = raw.iter().map(|&r| r * 16 / total).collect();
        let mut sum: u32 = shares.iter().sum();
        let mut i = 0;
        let len = shares.len();
        while sum < 16 {
            shares[i % len] += 1;
            sum += 1;
            i += 1;
        }
        prop_assume!(shares.iter().all(|&s| s > 0));
        let n = shares.len();
        let mut sched = Scheduler::new(SchedulePolicy::partitioned(&shares), n);
        let ready = vec![true; n];
        for _ in 0..rounds * 16 {
            prop_assert!(sched.pick(&ready).is_some());
        }
        for (s, &share) in shares.iter().enumerate() {
            prop_assert_eq!(
                sched.granted()[s],
                share as u64 * rounds as u64,
                "stream {} share", s
            );
        }
    }

    /// Work conservation: as long as any stream is ready, a slot is never
    /// wasted, under arbitrary readiness patterns.
    #[test]
    fn scheduler_is_work_conserving(
        pattern in prop::collection::vec(prop::collection::vec(any::<bool>(), 4), 1..100)
    ) {
        let mut sched = Scheduler::new(SchedulePolicy::round_robin(4), 4);
        for ready in &pattern {
            let pick = sched.pick(ready);
            if ready.iter().any(|&r| r) {
                prop_assert!(pick.is_some(), "slot wasted with ready streams");
                prop_assert!(ready[pick.unwrap()], "picked a non-ready stream");
            } else {
                prop_assert!(pick.is_none());
            }
        }
    }

    /// Weighted-deficit never starves a ready stream.
    #[test]
    fn weighted_deficit_has_no_starvation(weights in prop::collection::vec(1u32..10, 2..5)) {
        let n = weights.len();
        let mut sched = Scheduler::new(SchedulePolicy::WeightedDeficit(weights), n);
        let ready = vec![true; n];
        for _ in 0..(n as u64 * 200) {
            sched.pick(&ready);
        }
        for s in 0..n {
            prop_assert!(sched.granted()[s] > 0, "stream {} starved", s);
        }
    }
}
