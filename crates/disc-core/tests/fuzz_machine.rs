//! Robustness fuzzing: the machine must survive *any* valid program —
//! arbitrary jumps, stream control, window churn, memory traffic — without
//! panicking, and its statistics must satisfy global accounting
//! invariants.

use disc_core::{Machine, MachineConfig, SchedulePolicy, Status};
use disc_isa::{AluImmOp, AluOp, AwpMode, Cond, Instruction, ProgramBuilder, Reg};
use proptest::prelude::*;

const PROGRAM_LEN: u16 = 64;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0usize..Cond::ALL.len()).prop_map(|i| Cond::ALL[i])
}

/// Any instruction, with jump/call/fork targets confined to the program so
/// streams keep executing code rather than a sea of nops.
fn arb_any_instr() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        (
            (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i]),
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rd, rs, rt)| Instruction::Alu {
                op,
                awp: AwpMode::None,
                rd,
                rs,
                rt
            }),
        (
            (0usize..AluImmOp::ALL.len()).prop_map(|i| AluImmOp::ALL[i]),
            arb_reg(),
            arb_reg(),
            any::<u8>()
        )
            .prop_map(|(op, rd, rs, imm)| Instruction::AluImm {
                op,
                awp: AwpMode::None,
                rd,
                rs,
                imm
            }),
        (arb_reg(), -2048i16..=2047).prop_map(|(rd, imm)| Instruction::Ldi {
            awp: AwpMode::None,
            rd,
            imm
        }),
        (arb_reg(), arb_reg(), any::<i8>()).prop_map(|(rd, base, offset)| Instruction::Ld {
            awp: AwpMode::None,
            rd,
            base,
            offset
        }),
        (arb_reg(), arb_reg(), any::<i8>()).prop_map(|(src, base, offset)| Instruction::St {
            awp: AwpMode::None,
            src,
            base,
            offset
        }),
        (arb_reg(), arb_reg(), any::<i8>()).prop_map(|(rd, base, offset)| Instruction::Tset {
            rd,
            base,
            offset
        }),
        (arb_cond(), 0u16..PROGRAM_LEN)
            .prop_map(|(cond, target)| Instruction::Jmp { cond, target }),
        (0u16..PROGRAM_LEN).prop_map(|target| Instruction::Call { target }),
        (0u8..4).prop_map(|pop| Instruction::Ret { pop }),
        Just(Instruction::Reti),
        (1u8..6).prop_map(|n| Instruction::Winc { n }),
        (1u8..6).prop_map(|n| Instruction::Wdec { n }),
        (0u8..4, 0u16..PROGRAM_LEN)
            .prop_map(|(stream, target)| Instruction::Fork { stream, target }),
        (0u8..4, 0u8..8).prop_map(|(stream, bit)| Instruction::Signal { stream, bit }),
        (0u8..8).prop_map(|bit| Instruction::Clri { bit }),
        Just(Instruction::Stop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary 4-stream chaos: no panics, no decode faults, and the
    /// scheduler/ retire/flush accounting stays consistent.
    #[test]
    fn machine_survives_arbitrary_programs(
        body in prop::collection::vec(arb_any_instr(), 16..PROGRAM_LEN as usize),
        irqs in prop::collection::vec((0usize..4, 0u8..8, 1u64..1500), 0..6),
    ) {
        let mut b = ProgramBuilder::new();
        for (s, at) in [(0u16, 0u16), (1, 16), (2, 32), (3, 48)] {
            b.org(at % body.len().max(1) as u16);
            b.entry(s as usize);
        }
        b.org(0);
        b.emit_all(body.iter().copied());
        let program = b.build();
        let mut m = Machine::new(MachineConfig::disc1(), &program);
        m.set_idle_exit(false);
        let mut irqs = irqs;
        irqs.sort_by_key(|&(_, _, at)| at);
        let mut next = 0;
        for cycle in 0..1_500u64 {
            while next < irqs.len() && irqs[next].2 == cycle {
                m.raise_interrupt(irqs[next].0, irqs[next].1);
                next += 1;
            }
            match m.step().expect("valid programs never decode-fault") {
                Status::Halted => break,
                Status::Breakpoint { .. } | Status::Running => {}
            }
        }
        let st = m.stats();
        let granted: u64 = m.scheduler_grants().iter().sum();
        let accounted = st.retired_total() + st.flushed_total();
        // Every granted slot either retired, was flushed, or is still in
        // the 4-deep pipe.
        prop_assert!(
            accounted <= granted && granted <= accounted + 4,
            "slot accounting broke: granted {granted}, accounted {accounted}"
        );
        prop_assert!(st.cycles <= 1_500);
        prop_assert_eq!(st.cycles, m.cycle());
    }

    /// The same chaos under a skewed partition and an 8-deep pipe.
    #[test]
    fn deep_pipe_partitioned_chaos(
        body in prop::collection::vec(arb_any_instr(), 16..PROGRAM_LEN as usize),
    ) {
        let mut b = ProgramBuilder::new();
        b.entry(0);
        b.org(8);
        b.entry(1);
        b.org(0);
        b.emit_all(body.iter().copied());
        let program = b.build();
        let cfg = MachineConfig::disc1()
            .with_streams(2)
            .with_pipeline_depth(8)
            .with_schedule(SchedulePolicy::partitioned(&[13, 3]));
        let mut m = Machine::new(cfg, &program);
        m.set_idle_exit(false);
        for _ in 0..1_000 {
            if m.step().expect("no decode faults") == Status::Halted {
                break;
            }
        }
        let st = m.stats();
        let granted: u64 = m.scheduler_grants().iter().sum();
        let accounted = st.retired_total() + st.flushed_total();
        prop_assert!(
            accounted <= granted && granted <= accounted + 8,
            "slot accounting broke: granted {granted}, accounted {accounted}"
        );
    }
}
