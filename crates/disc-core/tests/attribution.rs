//! The cycle-attribution accounting invariant: every elapsed machine
//! cycle lands in exactly one per-stream bucket, so for every stream the
//! seven buckets sum to the elapsed cycle count — across compute, hazard,
//! bus-contention, ABI-wait, spill and partitioned-scheduler workloads.

use disc_core::{CycleAttribution, Exit, FlatBus, Machine, MachineConfig, SchedulePolicy, Trace};
use disc_isa::Program;

fn assert_balanced(m: &Machine) {
    let stats = m.stats();
    if let Err(violations) = stats.attribution.check(stats.cycles) {
        panic!("attribution imbalance: {}", violations.join("; "));
    }
}

/// Issue count can never exceed what entered the pipe and never falls
/// below what retired.
fn assert_issue_bounds(m: &Machine) {
    let stats = m.stats();
    for s in 0..stats.attribution.streams() {
        assert!(
            stats.attribution.issue[s] >= stats.retired[s],
            "stream {s}: issued {} < retired {}",
            stats.attribution.issue[s],
            stats.retired[s]
        );
    }
}

#[test]
fn compute_loop_attribution_balances() {
    let program = Program::assemble(
        r#"
        .stream 0, main
    main:
        ldi r0, 50
        ldi r1, 0
    loop:
        add r1, r1, r0
        subi r0, r0, 1
        jnz loop
        halt
    "#,
    )
    .unwrap();
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    assert_eq!(m.run(100_000).unwrap(), Exit::Halted);
    assert_balanced(&m);
    assert_issue_bounds(&m);
    let a = &m.stats().attribution;
    assert!(a.issue[0] > 0);
    // The dependent loop must show hazard stalls in the attribution too.
    assert!(a.hazard_stall[0] > 0, "dependent loop should stall");
}

#[test]
fn abi_wait_attribution_balances() {
    let program = Program::assemble(
        r#"
        .stream 0, main
    main:
        lui r0, 0x80
        ld  r1, [r0]
        addi r1, r1, 1
        halt
    "#,
    )
    .unwrap();
    let mut bus = FlatBus::new(9);
    bus.poke(0x8000, 5);
    let mut m = Machine::with_bus(MachineConfig::disc1(), &program, Box::new(bus));
    assert_eq!(m.run(10_000).unwrap(), Exit::Halted);
    assert_balanced(&m);
    let a = &m.stats().attribution;
    assert!(
        a.bus_txn_wait[0] >= 8,
        "latency-9 load should wait, got {}",
        a.bus_txn_wait[0]
    );
}

#[test]
fn bus_contention_attribution_balances() {
    // Two streams hammer external memory: one of them must spend cycles
    // waiting for the single-transaction bus to free.
    let program = Program::assemble(
        r#"
        .stream 0, a
        .stream 1, b
    a:
        lui r0, 0x80
    la: ld r1, [r0]
        jmp la
    b:
        lui r0, 0x81
    lb: ld r1, [r0]
        jmp lb
    "#,
    )
    .unwrap();
    let mut m = Machine::with_bus(
        MachineConfig::disc1().with_streams(2),
        &program,
        Box::new(FlatBus::new(6)),
    );
    assert_eq!(m.run(2_000).unwrap(), Exit::CycleLimit);
    assert_balanced(&m);
    assert_issue_bounds(&m);
    let a = &m.stats().attribution;
    assert!(a.bus_txn_wait[0] + a.bus_txn_wait[1] > 0);
    assert!(
        a.bus_free_wait[0] + a.bus_free_wait[1] > 0,
        "contending streams should wait on a busy bus"
    );
}

#[test]
fn spill_workload_attribution_balances() {
    // Deep recursion on a shallow register file forces window spill/fill
    // stalls (same workload as `deep_recursion_spills_and_recovers`).
    let program = Program::assemble(
        r#"
        .stream 0, main
    main:
        ldi r0, 24
        call down
        sta r0, 0xc0
        halt
    down:
        cmpi r1, 0
        jz base
        winc 1
        subi r0, r2, 1
        call down
        addi r0, r0, 1
        mov r2, r0
        wdec 1
        ret
    base:
        ldi r1, 0
        ret
    "#,
    )
    .unwrap();
    let cfg = MachineConfig::disc1().with_window_depth(16);
    let mut m = Machine::new(cfg, &program);
    assert_eq!(m.run(100_000).unwrap(), Exit::Halted);
    assert_balanced(&m);
    assert!(
        m.stats().attribution.spill_stall[0] > 0,
        "deep recursion must surface spill stalls in the attribution"
    );
}

#[test]
fn partitioned_schedule_attributes_not_scheduled() {
    // Stream 1 is runnable every cycle but owns only 1 of 16 sequence
    // slots — most of its cycles must land in `not-scheduled`.
    let program = Program::assemble(
        r#"
        .stream 0, a
        .stream 1, b
    a: jmp a
    b: jmp b
    "#,
    )
    .unwrap();
    let seq = vec![0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0];
    let cfg = MachineConfig::disc1()
        .with_streams(2)
        .with_schedule(SchedulePolicy::Sequence(seq));
    let mut m = Machine::new(cfg, &program);
    assert_eq!(m.run(1_600).unwrap(), Exit::CycleLimit);
    assert_balanced(&m);
    let a = &m.stats().attribution;
    assert!(
        a.not_scheduled[1] > a.issue[1],
        "a 1/16-slot stream should mostly be not-scheduled: {:?} vs {:?}",
        a.not_scheduled[1],
        a.issue[1]
    );
}

#[test]
fn idle_streams_attribute_idle() {
    // Config has 4 streams but only stream 0 runs a program; the other
    // three must be classified idle for the whole run.
    let program = Program::assemble(
        r#"
        .stream 0, main
    main:
        ldi r0, 3
    loop:
        subi r0, r0, 1
        jnz loop
        halt
    "#,
    )
    .unwrap();
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    assert_eq!(m.run(10_000).unwrap(), Exit::Halted);
    assert_balanced(&m);
    let stats = m.stats();
    for s in 1..stats.attribution.streams() {
        assert_eq!(
            stats.attribution.idle[s], stats.cycles,
            "unprogrammed stream {s} must be idle every cycle"
        );
    }
}

#[test]
fn attribution_stops_with_the_machine() {
    // Stepping past halt must not grow any bucket (step returns Halted
    // without advancing the cycle counter).
    let program = Program::assemble(
        r#"
        .stream 0, main
    main:
        halt
    "#,
    )
    .unwrap();
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    assert_eq!(m.run(100).unwrap(), Exit::Halted);
    let frozen: CycleAttribution = m.stats().attribution.clone();
    let cycles = m.stats().cycles;
    for _ in 0..10 {
        m.step().unwrap();
    }
    assert_eq!(m.stats().attribution, frozen);
    assert_eq!(m.stats().cycles, cycles);
    assert_balanced(&m);
}

#[test]
fn tracing_does_not_change_attribution() {
    // Observability must be passive: the same program with and without a
    // trace sink produces identical attribution and stats.
    let src = r#"
        .stream 0, a
        .stream 1, b
    a:
        ldi r0, 20
    la: subi r0, r0, 1
        jnz la
        halt
    b: jmp b
    "#;
    let program = Program::assemble(src).unwrap();
    let cfg = MachineConfig::disc1().with_streams(2);
    let mut plain = Machine::new(cfg.clone(), &program);
    plain.run(500).unwrap();
    let mut traced = Machine::new(cfg, &program);
    traced.set_trace_sink(Box::new(Trace::new(64)));
    traced.run(500).unwrap();
    let observed = traced.trace_take().expect("ring trace comes back");
    assert!(!observed.records().is_empty());
    assert_eq!(plain.stats(), traced.stats());
}
