//! Equivalence of the predecoded instruction store against legacy
//! per-cycle decoding.
//!
//! The machine decodes the whole program once at load time and fetches
//! from the predecoded store; `set_legacy_decode(true)` switches a
//! machine back to decoding each word from program memory on every
//! fetch, exactly as the seed implementation did. Both paths must be
//! cycle-for-cycle identical: same trace records, same statistics, same
//! decode-fault reporting.

use disc_core::{Exit, Machine, MachineConfig, SimError};
use disc_isa::Program;

/// A workload touching every hot-path feature at once: same-stream RAW
/// hazards, taken/untaken jumps, stack-window calls, external bus
/// traffic, internal memory, and a vectored interrupt handler.
const MIXED_SRC: &str = r#"
    .stream 0, alu
    .stream 1, io
    .stream 2, calls
    .vector 3, 5, isr
alu:
    ldi r0, 25
    ldi r1, 0
aloop:
    add r1, r1, r0      ; RAW on r1 every iteration
    subi r0, r0, 1
    jnz aloop
    sta r1, 0x40
    jmp alu
io:
    lui r0, 0x80        ; external address space
ioloop:
    ld r1, [r0]
    addi r1, r1, 1      ; depends on the bus data
    st r1, [r0]
    jmp ioloop
calls:
    ldi r2, 6
cloop:
    call bump
    subi r2, r2, 1
    jnz cloop
    jmp calls
bump:
    winc 1              ; r0 = scratch, r1 = ret, r2 = caller r2
    addi r0, r0, 3
    wdec 1
    ret
isr:
    lda r0, 0x41
    addi r0, r0, 1
    sta r0, 0x41
    reti
"#;

fn mixed_pair() -> (Machine, Machine) {
    let program = Program::assemble(MIXED_SRC).expect("mixed program assembles");
    let fast = Machine::new(MachineConfig::disc1(), &program);
    let mut legacy = Machine::new(MachineConfig::disc1(), &program);
    legacy.set_legacy_decode(true);
    (fast, legacy)
}

#[test]
fn predecode_and_legacy_produce_identical_traces_and_stats() {
    let (mut fast, mut legacy) = mixed_pair();
    const CYCLES: u64 = 2_000;
    for m in [&mut fast, &mut legacy] {
        m.set_idle_exit(false);
        m.trace_start(CYCLES as usize);
    }
    for c in 0..CYCLES {
        // Periodic interrupts so vector entry, handler flushes and
        // latency accounting are exercised on both machines.
        if c % 97 == 0 {
            fast.raise_interrupt(3, 5);
            legacy.raise_interrupt(3, 5);
        }
        fast.step().expect("predecoded step");
        legacy.step().expect("legacy step");
    }
    let t_fast = fast.trace_take().expect("fast trace");
    let t_legacy = legacy.trace_take().expect("legacy trace");
    assert_eq!(t_fast.records().len(), CYCLES as usize);
    for (a, b) in t_fast.records().iter().zip(t_legacy.records()) {
        assert_eq!(a, b, "trace diverged at cycle {}", a.cycle);
    }
    assert_eq!(fast.stats(), legacy.stats());
    assert!(fast.stats().vectors_taken[3] > 0, "interrupts were taken");
    assert!(fast.stats().external_accesses > 0, "bus was exercised");
    assert_eq!(
        fast.scheduler_reallocations(),
        legacy.scheduler_reallocations()
    );
}

#[test]
fn predecode_and_legacy_agree_on_final_memory() {
    let (mut fast, mut legacy) = mixed_pair();
    assert_eq!(fast.run(50_000).expect("fast run"), Exit::CycleLimit);
    assert_eq!(legacy.run(50_000).expect("legacy run"), Exit::CycleLimit);
    for addr in [0x40u16, 0x41] {
        assert_eq!(
            fast.internal_memory().read(addr),
            legacy.internal_memory().read(addr),
            "memory diverged at {addr:#x}"
        );
    }
}

/// Predecoding must not make load-time errors out of decode faults: an
/// undecodable word only faults when a stream actually fetches it, and
/// the error carries the stream, pc and raw word.
#[test]
fn decode_fault_stays_lazy_and_reports_word() {
    let mut program = Program::assemble(
        ".stream 0, m\n.stream 1, n\nm: nop\n    nop\n    jmp m\nn: nop\n    nop\n    jmp n\n",
    )
    .unwrap();
    // Patch stream 1's second word (n is after m's 3 instructions).
    let bad_addr = 4u16;
    let bad_word = 63 << 18; // unassigned opcode
    program.set_word(bad_addr, bad_word);
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    let err = m.run(1_000).unwrap_err();
    match err {
        SimError::Decode { stream, pc, word } => {
            assert_eq!(stream, 1);
            assert_eq!(pc, bad_addr);
            assert_eq!(word, bad_word);
        }
        other => panic!("unexpected error {other}"),
    }
}

/// A bad word that no stream ever reaches must not fault at all — the
/// predecoded store keeps the seed's lazy semantics.
#[test]
fn unreached_bad_word_never_faults() {
    let mut program =
        Program::assemble(".stream 0, m\nm: ldi r0, 7\n    sta r0, 0x40\n    halt\n").unwrap();
    program.set_word(200, 63 << 18);
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    assert_eq!(m.run(1_000).expect("no fault"), Exit::Halted);
    assert_eq!(m.internal_memory().read(0x40), 7);
}

/// Legacy decoding reports the identical fault.
#[test]
fn legacy_decode_fault_matches() {
    let mut program = Program::assemble(".stream 0, m\nm: nop\n").unwrap();
    program.set_word(1, 63 << 18);
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    m.set_legacy_decode(true);
    match m.run(100).unwrap_err() {
        SimError::Decode { stream, pc, word } => {
            assert_eq!((stream, pc, word), (0, 1, 63 << 18));
        }
        other => panic!("unexpected error {other}"),
    }
}
