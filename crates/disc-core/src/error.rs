//! Simulator error and exit types.

use std::fmt;

/// Reason a call to [`Machine::run`](crate::Machine::run) returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// A `halt` instruction stopped the machine.
    Halted,
    /// A `brk` instruction was executed by `stream` at program address `pc`.
    /// The machine can be resumed with further `step`/`run` calls.
    Breakpoint {
        /// Stream that executed the breakpoint.
        stream: usize,
        /// Address of the `brk` instruction.
        pc: u16,
    },
    /// The cycle budget was exhausted before the machine halted.
    CycleLimit,
    /// Every stream is idle (no IR bit set anywhere) and no bus transaction
    /// is outstanding, so no further architectural activity is possible
    /// without an external interrupt.
    AllIdle,
}

impl fmt::Display for Exit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exit::Halted => write!(f, "halted"),
            Exit::Breakpoint { stream, pc } => {
                write!(f, "breakpoint in stream {stream} at {pc:#06x}")
            }
            Exit::CycleLimit => write!(f, "cycle limit reached"),
            Exit::AllIdle => write!(f, "all streams idle"),
        }
    }
}

/// Fatal simulation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Program memory held an undecodable word.
    Decode {
        /// Stream that fetched the word.
        stream: usize,
        /// Address of the word.
        pc: u16,
        /// The offending 24-bit word.
        word: u32,
    },
    /// A stream's window stack overflowed under
    /// [`WindowPolicy::Fault`](crate::WindowPolicy::Fault) with the
    /// stack-fault interrupt masked, so the fault cannot be delivered.
    UnhandledStackFault {
        /// Stream whose window overflowed.
        stream: usize,
    },
    /// A bus fault (unmapped access or transaction timeout under
    /// [`BusFaultPolicy::Fault`](crate::BusFaultPolicy::Fault)) hit a
    /// stream whose [`MachineConfig::bus_error_bit`](crate::MachineConfig)
    /// is masked in its MR, so the fault cannot be delivered. Silently
    /// swallowing it would reintroduce exactly the failure mode the policy
    /// exists to surface, so the simulation fails loudly instead.
    UnhandledBusFault {
        /// Stream whose access faulted.
        stream: usize,
        /// External address of the faulting access.
        addr: u16,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Decode { stream, pc, word } => write!(
                f,
                "stream {stream} fetched invalid word {word:#08x} at {pc:#06x}"
            ),
            SimError::UnhandledStackFault { stream } => {
                write!(f, "stream {stream} raised an unhandled stack fault")
            }
            SimError::UnhandledBusFault { stream, addr } => {
                write!(
                    f,
                    "stream {stream} bus fault at {addr:#06x} with the bus-error interrupt masked"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Exit::Halted.to_string(), "halted");
        assert!(Exit::Breakpoint { stream: 2, pc: 16 }
            .to_string()
            .contains("stream 2"));
        let e = SimError::Decode {
            stream: 1,
            pc: 3,
            word: 0xabcdef,
        };
        assert!(e.to_string().contains("0xabcdef"));
        let b = SimError::UnhandledBusFault {
            stream: 2,
            addr: 0x8004,
        };
        assert!(b.to_string().contains("0x8004"));
        assert!(b.to_string().contains("masked"));
    }
}
