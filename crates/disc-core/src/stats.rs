//! Execution statistics collected by the machine.

/// Counters describing one simulation run.
///
/// The headline metric is [`utilization`](MachineStats::utilization) — the
/// paper's `PD`, *"processor utilization on DISC"*: completed instructions
/// divided by elapsed cycles.
#[derive(Debug, Clone, Default)]
pub struct MachineStats {
    /// Elapsed machine cycles.
    pub cycles: u64,
    /// Instructions retired, per stream.
    pub retired: Vec<u64>,
    /// Cycles in which no stream could issue (pipeline bubble).
    pub bubbles: u64,
    /// Instructions flushed because a same-stream jump resolved.
    pub flushed_jump: u64,
    /// Instructions flushed because a same-stream external access started.
    pub flushed_io: u64,
    /// Instructions flushed because an external access found the bus busy
    /// and was cancelled.
    pub flushed_bus_busy: u64,
    /// Instructions flushed because a vectored interrupt preempted the
    /// stream.
    pub flushed_irq: u64,
    /// Cycles streams spent waiting for their own bus transaction.
    pub wait_txn_cycles: Vec<u64>,
    /// Cycles streams spent waiting for the bus to free.
    pub wait_bus_free_cycles: Vec<u64>,
    /// Cycles streams spent stalled on window spill/fill traffic.
    pub spill_stall_cycles: Vec<u64>,
    /// Cycles streams were stalled by a same-stream data hazard while
    /// scheduled (slot reallocated or bubbled).
    pub hazard_stalls: Vec<u64>,
    /// Vectored interrupts taken, per stream.
    pub vectors_taken: Vec<u64>,
    /// Interrupt latencies in cycles (raise → first handler fetch).
    pub irq_latencies: Vec<u64>,
    /// Jump-type instructions executed (taken or not).
    pub flow_instructions: u64,
    /// External bus transactions issued.
    pub external_accesses: u64,
    /// `fork` instructions that targeted an already-active stream and only
    /// set its background bit.
    pub forks_ignored: u64,
}

impl MachineStats {
    /// Creates zeroed statistics for `streams` streams.
    pub fn new(streams: usize) -> Self {
        MachineStats {
            retired: vec![0; streams],
            wait_txn_cycles: vec![0; streams],
            wait_bus_free_cycles: vec![0; streams],
            spill_stall_cycles: vec![0; streams],
            hazard_stalls: vec![0; streams],
            vectors_taken: vec![0; streams],
            ..Default::default()
        }
    }

    /// Total instructions retired across streams.
    pub fn retired_total(&self) -> u64 {
        self.retired.iter().sum()
    }

    /// Processor utilization `PD` = retired instructions / cycles.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_total() as f64 / self.cycles as f64
        }
    }

    /// Total instructions flushed for any reason.
    pub fn flushed_total(&self) -> u64 {
        self.flushed_jump + self.flushed_io + self.flushed_bus_busy + self.flushed_irq
    }

    /// Mean measured interrupt latency in cycles, if any interrupt was
    /// taken.
    pub fn mean_irq_latency(&self) -> Option<f64> {
        if self.irq_latencies.is_empty() {
            None
        } else {
            Some(self.irq_latencies.iter().sum::<u64>() as f64 / self.irq_latencies.len() as f64)
        }
    }

    /// Worst-case measured interrupt latency in cycles.
    pub fn max_irq_latency(&self) -> Option<u64> {
        self.irq_latencies.iter().copied().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_handles_zero_cycles() {
        let s = MachineStats::new(4);
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn utilization_ratio() {
        let mut s = MachineStats::new(2);
        s.cycles = 100;
        s.retired[0] = 40;
        s.retired[1] = 20;
        assert!((s.utilization() - 0.6).abs() < 1e-12);
        assert_eq!(s.retired_total(), 60);
    }

    #[test]
    fn latency_summary() {
        let mut s = MachineStats::new(1);
        assert_eq!(s.mean_irq_latency(), None);
        s.irq_latencies = vec![2, 4, 9];
        assert_eq!(s.mean_irq_latency(), Some(5.0));
        assert_eq!(s.max_irq_latency(), Some(9));
    }
}
