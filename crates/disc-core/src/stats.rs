//! Execution statistics collected by the machine.

use disc_snap::{SnapError, SnapReader, SnapWriter};

/// Maximum number of individual latency samples retained for percentile
/// reporting. Runs with more recorded interrupts keep a uniform reservoir
/// of this size; the count / sum / max aggregates stay exact regardless.
pub const IRQ_LATENCY_RESERVOIR: usize = 512;

/// Bounded aggregate of measured interrupt latencies.
///
/// The machine used to push every latency into an unbounded `Vec`, which
/// grows without limit on interrupt-heavy workloads. This keeps exact
/// count/sum/max plus a deterministic uniform reservoir of up to
/// [`IRQ_LATENCY_RESERVOIR`] samples for percentile estimates. For runs
/// that record at most that many latencies (all current experiments), the
/// samples are the complete sequence and percentiles are exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IrqLatencyStats {
    count: u64,
    sum: u64,
    max: Option<u64>,
    samples: Vec<u64>,
}

/// SplitMix64 mix — deterministic hash used for reservoir replacement.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl IrqLatencyStats {
    /// Records one measured latency.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += latency;
        self.max = Some(self.max.map_or(latency, |m| m.max(latency)));
        if self.samples.len() < IRQ_LATENCY_RESERVOIR {
            self.samples.push(latency);
        } else {
            // Algorithm R with a deterministic pseudo-random index so two
            // identical runs keep identical reservoirs.
            let j = (splitmix64(self.count) % self.count) as usize;
            if j < self.samples.len() {
                self.samples[j] = latency;
            }
        }
    }

    /// Number of latencies recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no latency has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency across all recorded interrupts.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Worst-case latency across all recorded interrupts.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Retained samples, in recording order (complete when
    /// `count <= IRQ_LATENCY_RESERVOIR`).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Nearest-rank percentile over the retained samples. `p` in 0..=100.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }

    /// Serializes the aggregate plus the reservoir contents
    /// (`disc-snap/v1` component). The reservoir replacement index is a
    /// pure function of `count`, so restoring these four fields resumes
    /// the deterministic sampling stream exactly.
    pub(crate) fn save_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_opt_u64(self.max);
        w.put_usize(self.samples.len());
        for &s in &self.samples {
            w.put_u64(s);
        }
    }

    /// Restores state written by [`save_into`](Self::save_into).
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.count = r.get_u64()?;
        self.sum = r.get_u64()?;
        self.max = r.get_opt_u64()?;
        let n = r.get_usize()?;
        if n > IRQ_LATENCY_RESERVOIR {
            return Err(SnapError::Corrupt(format!(
                "latency reservoir of {n} samples exceeds the {IRQ_LATENCY_RESERVOIR} cap"
            )));
        }
        self.samples.clear();
        for _ in 0..n {
            self.samples.push(r.get_u64()?);
        }
        Ok(())
    }
}

/// Names of the cycle-attribution buckets, in the order returned by
/// [`CycleAttribution::buckets`].
pub const ATTRIBUTION_BUCKETS: [&str; 7] = [
    "issue",
    "hazard-stall",
    "bus-txn-wait",
    "bus-free-wait",
    "spill-stall",
    "idle",
    "not-scheduled",
];

/// Per-stream attribution of every elapsed machine cycle.
///
/// Each cycle, every stream is classified into exactly one bucket, so for
/// every stream the buckets sum to the elapsed cycle count — the
/// accounting invariant the paper's measurement claims (PD shares,
/// partition isolation, interference analysis) rest on. Classification
/// priority, first match wins:
///
/// 1. **issue** — the stream's instruction entered the pipeline;
/// 2. **bus-txn-wait** — waiting on its own outstanding bus transaction;
/// 3. **bus-free-wait** — waiting for the single-transaction bus to free;
/// 4. **spill-stall** — stalled by stack-window spill/fill traffic;
/// 5. **hazard-stall** — probed by the scheduler but held back by a
///    same-stream data hazard;
/// 6. **idle** — inactive (no unmasked IR bit set);
/// 7. **not-scheduled** — active and issuable, but the slot went to
///    another stream.
///
/// Because issue takes priority, `spill_stall`/`hazard_stall` here count
/// cycles the stream was stalled *and did not issue*; the flat
/// [`MachineStats`] counters keep their historical definitions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleAttribution {
    /// Cycles the stream issued an instruction.
    pub issue: Vec<u64>,
    /// Cycles lost to a same-stream data hazard at the issue probe.
    pub hazard_stall: Vec<u64>,
    /// Cycles waiting on the stream's own bus transaction.
    pub bus_txn_wait: Vec<u64>,
    /// Cycles waiting for the bus to free after a cancelled access.
    pub bus_free_wait: Vec<u64>,
    /// Cycles stalled by window spill/fill traffic.
    pub spill_stall: Vec<u64>,
    /// Cycles the stream was inactive.
    pub idle: Vec<u64>,
    /// Cycles the stream was runnable but another stream got the slot.
    pub not_scheduled: Vec<u64>,
}

impl CycleAttribution {
    /// Creates zeroed attribution for `streams` streams.
    pub fn new(streams: usize) -> Self {
        CycleAttribution {
            issue: vec![0; streams],
            hazard_stall: vec![0; streams],
            bus_txn_wait: vec![0; streams],
            bus_free_wait: vec![0; streams],
            spill_stall: vec![0; streams],
            idle: vec![0; streams],
            not_scheduled: vec![0; streams],
        }
    }

    /// Number of streams tracked.
    pub fn streams(&self) -> usize {
        self.issue.len()
    }

    /// The seven bucket values of stream `s`, ordered as
    /// [`ATTRIBUTION_BUCKETS`].
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn buckets(&self, s: usize) -> [u64; 7] {
        [
            self.issue[s],
            self.hazard_stall[s],
            self.bus_txn_wait[s],
            self.bus_free_wait[s],
            self.spill_stall[s],
            self.idle[s],
            self.not_scheduled[s],
        ]
    }

    /// Total cycles attributed to stream `s` (must equal the elapsed cycle
    /// count of the run).
    pub fn total(&self, s: usize) -> u64 {
        self.buckets(s).iter().sum()
    }

    /// Checks the accounting invariant: every stream's buckets sum to
    /// `cycles`. Returns one message per violating stream.
    pub fn check(&self, cycles: u64) -> Result<(), Vec<String>> {
        let bad: Vec<String> = (0..self.streams())
            .filter(|&s| self.total(s) != cycles)
            .map(|s| {
                format!(
                    "stream {s}: buckets sum to {} but {cycles} cycles elapsed",
                    self.total(s)
                )
            })
            .collect();
        if bad.is_empty() {
            Ok(())
        } else {
            Err(bad)
        }
    }

    /// Serializes all seven buckets (`disc-snap/v1` component).
    pub(crate) fn save_into(&self, w: &mut SnapWriter) {
        for bucket in [
            &self.issue,
            &self.hazard_stall,
            &self.bus_txn_wait,
            &self.bus_free_wait,
            &self.spill_stall,
            &self.idle,
            &self.not_scheduled,
        ] {
            save_u64_vec(w, bucket);
        }
    }

    /// Restores state written by [`save_into`](Self::save_into) onto an
    /// attribution of the same stream count.
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for bucket in [
            &mut self.issue,
            &mut self.hazard_stall,
            &mut self.bus_txn_wait,
            &mut self.bus_free_wait,
            &mut self.spill_stall,
            &mut self.idle,
            &mut self.not_scheduled,
        ] {
            restore_u64_vec(r, bucket)?;
        }
        Ok(())
    }

    /// Renders the per-stream breakdown as a fixed-width table, one row
    /// per stream, one column per bucket, each cell the share of elapsed
    /// cycles in percent.
    pub fn table(&self) -> String {
        let mut out = String::from("stream ");
        for b in ATTRIBUTION_BUCKETS {
            out.push_str(&format!("{b:>14}"));
        }
        out.push_str(&format!("{:>12}\n", "cycles"));
        for s in 0..self.streams() {
            let total = self.total(s).max(1);
            out.push_str(&format!("s{s:<6}"));
            for v in self.buckets(s) {
                out.push_str(&format!("{:>13.1}%", v as f64 / total as f64 * 100.0));
            }
            out.push_str(&format!("{:>12}\n", self.total(s)));
        }
        out
    }
}

/// Counters describing how much time [`StepMode::EventSkip`]
/// (crate::StepMode) fast-forwarded.
///
/// Kept separate from [`MachineStats`] on purpose: the architectural
/// statistics must compare equal between step modes, while skip counters
/// are zero in cycle-by-cycle mode by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkipStats {
    /// Number of fast-forward jumps performed.
    pub skips: u64,
    /// Total cycles covered by those jumps (each also counted in
    /// [`MachineStats::cycles`] as bubbles).
    pub cycles_skipped: u64,
}

impl SkipStats {
    /// Mean skip length in cycles, if any skip happened.
    pub fn mean_skip(&self) -> Option<f64> {
        if self.skips == 0 {
            None
        } else {
            Some(self.cycles_skipped as f64 / self.skips as f64)
        }
    }
}

/// Counters describing how much work the superblock dispatcher
/// ([`DispatchMode::Superblock`](crate::DispatchMode)) ran through its
/// cached fast path.
///
/// Kept separate from [`MachineStats`] on purpose, like [`SkipStats`]: the
/// architectural statistics must compare equal between dispatch modes,
/// while these counters are zero under the legacy dispatcher by
/// construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperblockStats {
    /// Superblock runs entered (a run covers at least one cycle).
    pub bursts: u64,
    /// Machine cycles covered by superblock runs (each also counted in
    /// [`MachineStats::cycles`], exactly as if stepped singly).
    pub burst_cycles: u64,
    /// Instructions issued from inside superblock runs.
    pub burst_issues: u64,
    /// Eligibility probes that failed — the machine held a hazard (bus
    /// transaction, spill, deliverable interrupt, unsafe in-flight op,
    /// attached trace sink) so the cycle fell back to the slow path.
    pub entry_rejects: u64,
}

impl SuperblockStats {
    /// Share of `total_cycles` covered by superblock runs (the superblock
    /// *hit rate*), in `0.0..=1.0`.
    pub fn hit_rate(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.burst_cycles as f64 / total_cycles as f64
        }
    }

    /// Mean superblock run length in cycles, if any run happened.
    pub fn mean_burst(&self) -> Option<f64> {
        if self.bursts == 0 {
            None
        } else {
            Some(self.burst_cycles as f64 / self.bursts as f64)
        }
    }
}

/// Counters describing one simulation run.
///
/// The headline metric is [`utilization`](MachineStats::utilization) — the
/// paper's `PD`, *"processor utilization on DISC"*: completed instructions
/// divided by elapsed cycles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Elapsed machine cycles.
    pub cycles: u64,
    /// Instructions retired, per stream.
    pub retired: Vec<u64>,
    /// Cycles in which no stream could issue (pipeline bubble).
    pub bubbles: u64,
    /// Instructions flushed because a same-stream jump resolved.
    pub flushed_jump: u64,
    /// Instructions flushed because a same-stream external access started.
    pub flushed_io: u64,
    /// Instructions flushed because an external access found the bus busy
    /// and was cancelled.
    pub flushed_bus_busy: u64,
    /// Instructions flushed because a vectored interrupt preempted the
    /// stream.
    pub flushed_irq: u64,
    /// Cycles streams spent waiting for their own bus transaction.
    pub wait_txn_cycles: Vec<u64>,
    /// Cycles streams spent waiting for the bus to free.
    pub wait_bus_free_cycles: Vec<u64>,
    /// Cycles streams spent stalled on window spill/fill traffic.
    pub spill_stall_cycles: Vec<u64>,
    /// Cycles a stream was probed for issue but held back by a
    /// same-stream data hazard (its slot was reallocated or bubbled).
    /// Streams the scheduler never considered that cycle are not counted.
    pub hazard_stalls: Vec<u64>,
    /// Vectored interrupts taken, per stream.
    pub vectors_taken: Vec<u64>,
    /// Interrupt latencies in cycles (raise → first handler fetch),
    /// aggregated with a bounded sample reservoir.
    pub irq_latency: IrqLatencyStats,
    /// Scheduler slot reallocations performed (a blocked stream's slot
    /// handed to another ready stream).
    pub reallocations: u64,
    /// Jump-type instructions executed (taken or not).
    pub flow_instructions: u64,
    /// External bus transactions issued.
    pub external_accesses: u64,
    /// `fork` instructions that targeted an already-active stream and only
    /// set its background bit.
    pub forks_ignored: u64,
    /// External accesses to addresses no peripheral decodes. Counted under
    /// both bus-fault policies; only
    /// [`BusFaultPolicy::Fault`](crate::BusFaultPolicy::Fault) also aborts
    /// the access and raises a bus-error interrupt.
    pub unmapped_accesses: u64,
    /// Outstanding bus transactions aborted because they exceeded
    /// [`MachineConfig::abi_timeout`](crate::MachineConfig::abi_timeout).
    pub abi_timeouts: u64,
    /// Bus-error interrupts delivered, per stream (unmapped aborts plus
    /// transaction timeouts).
    pub bus_faults: Vec<u64>,
    /// Per-stream attribution of every elapsed cycle into exactly one
    /// bucket (issue / stall / wait / idle / not-scheduled).
    pub attribution: CycleAttribution,
}

impl MachineStats {
    /// Creates zeroed statistics for `streams` streams.
    pub fn new(streams: usize) -> Self {
        MachineStats {
            retired: vec![0; streams],
            wait_txn_cycles: vec![0; streams],
            wait_bus_free_cycles: vec![0; streams],
            spill_stall_cycles: vec![0; streams],
            hazard_stalls: vec![0; streams],
            vectors_taken: vec![0; streams],
            bus_faults: vec![0; streams],
            attribution: CycleAttribution::new(streams),
            ..Default::default()
        }
    }

    /// Total bus-error interrupts delivered across streams.
    pub fn bus_faults_total(&self) -> u64 {
        self.bus_faults.iter().sum()
    }

    /// Total instructions retired across streams.
    pub fn retired_total(&self) -> u64 {
        self.retired.iter().sum()
    }

    /// Processor utilization `PD` = retired instructions / cycles.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_total() as f64 / self.cycles as f64
        }
    }

    /// Total instructions flushed for any reason.
    pub fn flushed_total(&self) -> u64 {
        self.flushed_jump + self.flushed_io + self.flushed_bus_busy + self.flushed_irq
    }

    /// Mean measured interrupt latency in cycles, if any interrupt was
    /// taken.
    pub fn mean_irq_latency(&self) -> Option<f64> {
        self.irq_latency.mean()
    }

    /// Worst-case measured interrupt latency in cycles.
    pub fn max_irq_latency(&self) -> Option<u64> {
        self.irq_latency.max()
    }

    /// Serializes every counter, the latency aggregate and the cycle
    /// attribution (`disc-snap/v1` component).
    pub(crate) fn save_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.cycles);
        save_u64_vec(w, &self.retired);
        w.put_u64(self.bubbles);
        w.put_u64(self.flushed_jump);
        w.put_u64(self.flushed_io);
        w.put_u64(self.flushed_bus_busy);
        w.put_u64(self.flushed_irq);
        save_u64_vec(w, &self.wait_txn_cycles);
        save_u64_vec(w, &self.wait_bus_free_cycles);
        save_u64_vec(w, &self.spill_stall_cycles);
        save_u64_vec(w, &self.hazard_stalls);
        save_u64_vec(w, &self.vectors_taken);
        self.irq_latency.save_into(w);
        w.put_u64(self.reallocations);
        w.put_u64(self.flow_instructions);
        w.put_u64(self.external_accesses);
        w.put_u64(self.forks_ignored);
        w.put_u64(self.unmapped_accesses);
        w.put_u64(self.abi_timeouts);
        save_u64_vec(w, &self.bus_faults);
        self.attribution.save_into(w);
    }

    /// Restores state written by [`save_into`](Self::save_into) onto
    /// statistics of the same stream count.
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cycles = r.get_u64()?;
        restore_u64_vec(r, &mut self.retired)?;
        self.bubbles = r.get_u64()?;
        self.flushed_jump = r.get_u64()?;
        self.flushed_io = r.get_u64()?;
        self.flushed_bus_busy = r.get_u64()?;
        self.flushed_irq = r.get_u64()?;
        restore_u64_vec(r, &mut self.wait_txn_cycles)?;
        restore_u64_vec(r, &mut self.wait_bus_free_cycles)?;
        restore_u64_vec(r, &mut self.spill_stall_cycles)?;
        restore_u64_vec(r, &mut self.hazard_stalls)?;
        restore_u64_vec(r, &mut self.vectors_taken)?;
        self.irq_latency.restore_from(r)?;
        self.reallocations = r.get_u64()?;
        self.flow_instructions = r.get_u64()?;
        self.external_accesses = r.get_u64()?;
        self.forks_ignored = r.get_u64()?;
        self.unmapped_accesses = r.get_u64()?;
        self.abi_timeouts = r.get_u64()?;
        restore_u64_vec(r, &mut self.bus_faults)?;
        self.attribution.restore_from(r)
    }
}

/// Writes a length-prefixed `u64` vector.
fn save_u64_vec(w: &mut SnapWriter, v: &[u64]) {
    w.put_usize(v.len());
    for &x in v {
        w.put_u64(x);
    }
}

/// Reads a `u64` vector whose length must match the destination's —
/// per-stream tables never change size after construction.
fn restore_u64_vec(r: &mut SnapReader<'_>, dst: &mut [u64]) -> Result<(), SnapError> {
    let n = r.get_usize()?;
    if n != dst.len() {
        return Err(SnapError::Corrupt(format!(
            "per-stream table length mismatch: machine {}, snapshot {n}",
            dst.len()
        )));
    }
    for x in dst.iter_mut() {
        *x = r.get_u64()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_handles_zero_cycles() {
        let s = MachineStats::new(4);
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn utilization_ratio() {
        let mut s = MachineStats::new(2);
        s.cycles = 100;
        s.retired[0] = 40;
        s.retired[1] = 20;
        assert!((s.utilization() - 0.6).abs() < 1e-12);
        assert_eq!(s.retired_total(), 60);
    }

    #[test]
    fn latency_summary() {
        let mut s = MachineStats::new(1);
        assert_eq!(s.mean_irq_latency(), None);
        for l in [2, 4, 9] {
            s.irq_latency.record(l);
        }
        assert_eq!(s.mean_irq_latency(), Some(5.0));
        assert_eq!(s.max_irq_latency(), Some(9));
        assert_eq!(s.irq_latency.samples(), &[2, 4, 9]);
        assert_eq!(s.irq_latency.percentile(50.0), Some(4));
        assert_eq!(s.irq_latency.percentile(100.0), Some(9));
    }

    #[test]
    fn latency_reservoir_is_bounded_and_keeps_exact_aggregates() {
        let mut agg = IrqLatencyStats::default();
        for l in 0..10_000u64 {
            agg.record(l);
        }
        assert_eq!(agg.count(), 10_000);
        assert_eq!(agg.max(), Some(9_999));
        assert_eq!(agg.mean(), Some(4_999.5));
        assert_eq!(agg.samples().len(), IRQ_LATENCY_RESERVOIR);
        // Deterministic: a second identical run keeps the same reservoir.
        let mut again = IrqLatencyStats::default();
        for l in 0..10_000u64 {
            again.record(l);
        }
        assert_eq!(agg.samples(), again.samples());
    }

    #[test]
    fn attribution_totals_and_check() {
        let mut a = CycleAttribution::new(2);
        a.issue[0] = 6;
        a.hazard_stall[0] = 2;
        a.idle[0] = 2;
        a.issue[1] = 3;
        a.not_scheduled[1] = 7;
        assert_eq!(a.streams(), 2);
        assert_eq!(a.total(0), 10);
        assert_eq!(a.total(1), 10);
        assert_eq!(a.buckets(1), [3, 0, 0, 0, 0, 0, 7]);
        assert!(a.check(10).is_ok());
        let err = a.check(11).unwrap_err();
        assert_eq!(err.len(), 2);
        assert!(err[0].contains("stream 0"));
    }

    #[test]
    fn attribution_table_renders_all_streams_and_buckets() {
        let mut a = CycleAttribution::new(3);
        for s in 0..3 {
            a.issue[s] = 25;
            a.idle[s] = 75;
        }
        let table = a.table();
        assert_eq!(table.lines().count(), 4);
        for b in ATTRIBUTION_BUCKETS {
            assert!(table.contains(b), "missing column {b}");
        }
        assert!(table.contains("s0"));
        assert!(table.contains("s2"));
        assert!(table.contains("25.0%"));
        assert!(table.contains("75.0%"));
        assert!(table.contains("100"));
    }

    #[test]
    fn superblock_stats_ratios() {
        let mut s = SuperblockStats::default();
        assert_eq!(s.hit_rate(100), 0.0);
        assert_eq!(s.mean_burst(), None);
        s.bursts = 4;
        s.burst_cycles = 80;
        s.burst_issues = 60;
        assert!((s.hit_rate(100) - 0.8).abs() < 1e-12);
        assert_eq!(s.hit_rate(0), 0.0);
        assert_eq!(s.mean_burst(), Some(20.0));
    }

    #[test]
    fn machine_stats_carries_attribution() {
        let s = MachineStats::new(3);
        assert_eq!(s.attribution.streams(), 3);
        assert!(s.attribution.check(0).is_ok());
    }
}
