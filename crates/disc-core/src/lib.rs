//! Cycle-accurate simulator of **DISC1**, the experimental implementation
//! of the Dynamic Instruction Stream Computer (Nemirovsky, Brewer & Wood,
//! MICRO 1991).
//!
//! DISC maintains several simultaneously resident instruction streams and
//! lets a hardware scheduler pick, every cycle, which stream's next
//! instruction enters the pipeline. Because consecutive pipeline slots
//! usually belong to different streams, data and control hazards vanish,
//! slow I/O suspends only the requesting stream, interrupts *create*
//! streams instead of preempting them, and throughput can be partitioned
//! among hard-real-time tasks in 1/16 increments — with idle share
//! *dynamically reallocated* to whoever is ready.
//!
//! The crate models the complete DISC1 organization:
//!
//! * 4-stage pipeline (configurable 3–8) with the paper's flush semantics —
//!   jumps resolve in EX and flush younger same-stream slots; an external
//!   access flushes and parks only its own stream ([`Machine`]);
//! * the hardware [`Scheduler`] with sequence-table partitioning and
//!   dynamic slot reallocation;
//! * per-stream contexts ([`Stream`]) with the [`StackWindow`] register
//!   file (§3.5), per-stream IR/MR interrupt registers and vectored
//!   delivery (§3.6.3);
//! * the single-transaction asynchronous bus interface ([`Abi`], §3.6.1)
//!   over a pluggable [`DataBus`];
//! * shared internal memory with atomic `tset` semaphores
//!   ([`InternalMemory`], §3.6.2);
//! * statistics ([`MachineStats`]) and cycle tracing ([`Trace`]) for the
//!   paper's figures.
//!
//! # Example: two streams share the pipeline
//!
//! ```
//! use disc_core::{Machine, MachineConfig};
//! use disc_isa::Program;
//!
//! let program = Program::assemble(
//!     r#"
//!     .stream 0, one
//!     .stream 1, two
//! one:
//!     ldi r0, 1
//!     sta r0, 0x20
//!     halt
//! two:
//!     ldi r0, 2
//!     sta r0, 0x21
//! spin:
//!     jmp spin
//! "#,
//! )?;
//! let mut m = Machine::new(MachineConfig::disc1(), &program);
//! m.run(100)?;
//! assert_eq!(m.internal_memory().read(0x20), 1);
//! assert_eq!(m.internal_memory().read(0x21), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod abi;
pub mod alu;
mod config;
mod databus;
mod error;
mod intmem;
mod machine;
mod regfile;
mod scheduler;
mod stats;
mod stream;
mod trace;

pub use abi::{Abi, AbiBusy, BusOp, RegTarget, Transaction};
pub use config::{BusFaultPolicy, DispatchMode, MachineConfig, StepMode, WindowPolicy};
pub use databus::{DataBus, FlatBus, IrqRequest};
pub use error::{Exit, SimError};
pub use intmem::InternalMemory;
pub use machine::{Machine, Status};
pub use regfile::{AdjustOutcome, StackWindow};
pub use scheduler::{SchedulePolicy, Scheduler, SEQUENCE_SLOTS};
pub use stats::{
    CycleAttribution, IrqLatencyStats, MachineStats, SkipStats, SuperblockStats,
    ATTRIBUTION_BUCKETS,
};
pub use stream::{Flags, ServiceFrame, Stream, WaitState};
pub use trace::{BusFaultKind, CycleRecord, StageSnapshot, Trace, TraceEvent, TraceSink};

// Snapshot support (`disc-snap/v1`): [`Machine::snapshot`],
// [`Machine::restore`] and [`Machine::fork`] speak these types.
pub use disc_snap::{SnapError, SnapReader, SnapWriter, FORMAT as SNAP_FORMAT};
