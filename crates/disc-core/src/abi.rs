//! The Asynchronous Bus Interface (§3.6.1 of the paper).
//!
//! *"On a load instruction, the effective address of the external request
//! is calculated. It is then loaded into the Asynchronous Bus Interface
//! (ABI), with the address of the destination register. The IS requesting
//! the read cycle is sent into a wait state and the ABI initiates the read
//! cycle. … Once the read is completed the ABI stores the data into the
//! destination register and re-activates all waiting ISs. This is done
//! without affecting the running instruction streams."*
//!
//! The ABI supports one outstanding transaction; a stream that finds the
//! bus busy has its access cancelled and retries once the bus frees.

/// Where a completed read delivers its data.
///
/// Window destinations are captured as *logical stack slots* at issue time
/// so the data lands in the right register even if the stream's window has
/// moved while the access was in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegTarget {
    /// A logical slot in the issuing stream's window stack.
    Window(usize),
    /// A shared global register.
    Global(u8),
    /// The stream's stack pointer.
    Sp,
    /// The stream's status register.
    Sr,
    /// The stream's interrupt request register.
    Ir,
    /// The stream's interrupt mask register.
    Mr,
}

/// The kind of bus operation in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusOp {
    /// Read `addr`, deliver to the captured destination.
    Read {
        /// Destination register of the issuing stream.
        dest: RegTarget,
    },
    /// Write `value` to `addr`.
    Write {
        /// Value to store.
        value: u16,
    },
    /// Atomic read-modify-write: deliver the old value to `dest`, store
    /// `0xffff`.
    TestAndSet {
        /// Destination register receiving the previous value.
        dest: RegTarget,
    },
}

/// An outstanding external bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// Stream that issued the access and is waiting for it.
    pub stream: usize,
    /// External data address.
    pub addr: u16,
    /// Operation being performed.
    pub op: BusOp,
    /// Cycles remaining until completion.
    pub remaining: u32,
}

/// Asynchronous bus interface state.
#[derive(Debug, Clone, Default)]
pub struct Abi {
    current: Option<Transaction>,
    busy_cycles: u64,
    transactions: u64,
    rejections: u64,
}

impl Abi {
    /// Creates an idle ABI.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` while a transaction is outstanding.
    pub fn busy(&self) -> bool {
        self.current.is_some()
    }

    /// The outstanding transaction, if any.
    pub fn current(&self) -> Option<&Transaction> {
        self.current.as_ref()
    }

    /// Starts a transaction.
    ///
    /// # Panics
    ///
    /// Panics if the bus is already busy; callers check
    /// [`busy`](Self::busy) and cancel the access instead (counting it via
    /// [`reject`](Self::reject)).
    pub fn start(&mut self, txn: Transaction) {
        assert!(self.current.is_none(), "ABI already busy");
        self.transactions += 1;
        self.current = Some(txn);
    }

    /// Records an access attempt that found the bus busy.
    pub fn reject(&mut self) {
        self.rejections += 1;
    }

    /// Advances one cycle. Returns the transaction when it completes this
    /// cycle (latency exhausted); the caller performs the actual transfer.
    pub fn tick(&mut self) -> Option<Transaction> {
        let txn = self.current.as_mut()?;
        self.busy_cycles += 1;
        if txn.remaining > 1 {
            txn.remaining -= 1;
            None
        } else {
            self.current.take()
        }
    }

    /// Total cycles the bus spent busy.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Total transactions started.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total accesses cancelled because the bus was busy.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_txn(latency: u32) -> Transaction {
        Transaction {
            stream: 0,
            addr: 0x8000,
            op: BusOp::Read {
                dest: RegTarget::Window(5),
            },
            remaining: latency,
        }
    }

    #[test]
    fn completes_after_latency() {
        let mut abi = Abi::new();
        abi.start(read_txn(3));
        assert!(abi.busy());
        assert_eq!(abi.tick(), None);
        assert_eq!(abi.tick(), None);
        let done = abi.tick().expect("third tick completes");
        assert_eq!(done.addr, 0x8000);
        assert!(!abi.busy());
        assert_eq!(abi.busy_cycles(), 3);
        assert_eq!(abi.transactions(), 1);
    }

    #[test]
    fn one_cycle_transaction_completes_immediately() {
        let mut abi = Abi::new();
        abi.start(read_txn(1));
        assert!(abi.tick().is_some());
    }

    #[test]
    fn idle_tick_is_free() {
        let mut abi = Abi::new();
        assert_eq!(abi.tick(), None);
        assert_eq!(abi.busy_cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_start_panics() {
        let mut abi = Abi::new();
        abi.start(read_txn(2));
        abi.start(read_txn(2));
    }

    #[test]
    fn rejections_counted() {
        let mut abi = Abi::new();
        abi.reject();
        abi.reject();
        assert_eq!(abi.rejections(), 2);
    }
}
