//! The Asynchronous Bus Interface (§3.6.1 of the paper).
//!
//! *"On a load instruction, the effective address of the external request
//! is calculated. It is then loaded into the Asynchronous Bus Interface
//! (ABI), with the address of the destination register. The IS requesting
//! the read cycle is sent into a wait state and the ABI initiates the read
//! cycle. … Once the read is completed the ABI stores the data into the
//! destination register and re-activates all waiting ISs. This is done
//! without affecting the running instruction streams."*
//!
//! The ABI supports one outstanding transaction; a stream that finds the
//! bus busy has its access cancelled and retries once the bus frees.

use disc_snap::{SnapError, SnapReader, SnapWriter};

/// Where a completed read delivers its data.
///
/// Window destinations are captured as *logical stack slots* at issue time
/// so the data lands in the right register even if the stream's window has
/// moved while the access was in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegTarget {
    /// A logical slot in the issuing stream's window stack.
    Window(usize),
    /// A shared global register.
    Global(u8),
    /// The stream's stack pointer.
    Sp,
    /// The stream's status register.
    Sr,
    /// The stream's interrupt request register.
    Ir,
    /// The stream's interrupt mask register.
    Mr,
}

/// The kind of bus operation in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusOp {
    /// Read `addr`, deliver to the captured destination.
    Read {
        /// Destination register of the issuing stream.
        dest: RegTarget,
    },
    /// Write `value` to `addr`.
    Write {
        /// Value to store.
        value: u16,
    },
    /// Atomic read-modify-write: deliver the old value to `dest`, store
    /// `0xffff`.
    TestAndSet {
        /// Destination register receiving the previous value.
        dest: RegTarget,
    },
}

/// An outstanding external bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// Stream that issued the access and is waiting for it.
    pub stream: usize,
    /// External data address.
    pub addr: u16,
    /// Operation being performed.
    pub op: BusOp,
    /// Cycles remaining until completion.
    pub remaining: u32,
}

/// Error returned by [`Abi::start`] when a transaction is already
/// outstanding.
///
/// The machine checks [`Abi::busy`] before issuing, so a rejected start is
/// a scheduler bug — but it must not abort the whole simulation, so the
/// condition is typed instead of panicking. The rejected transaction is
/// handed back so the caller can cancel the access cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbiBusy {
    /// The transaction that could not start.
    pub rejected: Transaction,
}

impl std::fmt::Display for AbiBusy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ABI already busy: stream {} access to {:#06x} rejected",
            self.rejected.stream, self.rejected.addr
        )
    }
}

impl std::error::Error for AbiBusy {}

/// Asynchronous bus interface state.
#[derive(Debug, Clone, Default)]
pub struct Abi {
    current: Option<Transaction>,
    /// Cycles the current transaction has been outstanding.
    elapsed: u64,
    busy_cycles: u64,
    transactions: u64,
    rejections: u64,
    aborts: u64,
}

impl Abi {
    /// Creates an idle ABI.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` while a transaction is outstanding.
    pub fn busy(&self) -> bool {
        self.current.is_some()
    }

    /// The outstanding transaction, if any.
    pub fn current(&self) -> Option<&Transaction> {
        self.current.as_ref()
    }

    /// Starts a transaction.
    ///
    /// # Errors
    ///
    /// Returns [`AbiBusy`] (carrying `txn` back) when a transaction is
    /// already outstanding. Callers normally check [`busy`](Self::busy)
    /// first and cancel the access instead (counting it via
    /// [`reject`](Self::reject)); the typed error keeps a scheduler bug
    /// from aborting the whole simulation.
    pub fn start(&mut self, txn: Transaction) -> Result<(), AbiBusy> {
        if self.current.is_some() {
            return Err(AbiBusy { rejected: txn });
        }
        self.transactions += 1;
        self.elapsed = 0;
        self.current = Some(txn);
        Ok(())
    }

    /// Records an access attempt that found the bus busy.
    pub fn reject(&mut self) {
        self.rejections += 1;
    }

    /// Advances one cycle. Returns the transaction when it completes this
    /// cycle (latency exhausted); the caller performs the actual transfer.
    pub fn tick(&mut self) -> Option<Transaction> {
        let txn = self.current.as_mut()?;
        self.busy_cycles += 1;
        self.elapsed += 1;
        if txn.remaining > 1 {
            txn.remaining -= 1;
            None
        } else {
            self.current.take()
        }
    }

    /// Cycles the current transaction has been outstanding (0 when idle).
    pub fn elapsed(&self) -> u64 {
        self.elapsed
    }

    /// Advances `cycles` cycles in one step, exactly equivalent to that
    /// many [`tick`](Self::tick) calls *given* the caller's guarantee that
    /// the outstanding transaction does not complete within the stretch
    /// (`cycles < remaining`). A no-op when idle or `cycles` is 0.
    ///
    /// Used by [`StepMode::EventSkip`](crate::StepMode) to fast-forward
    /// quiescent stretches without per-cycle bookkeeping.
    pub fn advance(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        let Some(txn) = self.current.as_mut() else {
            return;
        };
        debug_assert!(
            cycles < u64::from(txn.remaining),
            "advance({cycles}) would complete a transaction with {} cycles left",
            txn.remaining
        );
        txn.remaining -= cycles as u32;
        self.elapsed += cycles;
        self.busy_cycles += cycles;
    }

    /// Aborts the outstanding transaction, freeing the bus. Returns the
    /// aborted transaction so the caller can identify the stream to fault;
    /// `None` when the bus was idle.
    pub fn abort(&mut self) -> Option<Transaction> {
        let txn = self.current.take();
        if txn.is_some() {
            self.aborts += 1;
            self.elapsed = 0;
        }
        txn
    }

    /// Total cycles the bus spent busy.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Total transactions started.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total accesses cancelled because the bus was busy.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Total transactions aborted (bus-fault timeouts).
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Serializes the interface state, including any in-flight
    /// transaction (`disc-snap/v1` component).
    pub(crate) fn save_into(&self, w: &mut SnapWriter) {
        match &self.current {
            None => w.put_u8(0),
            Some(txn) => {
                w.put_u8(1);
                w.put_usize(txn.stream);
                w.put_u16(txn.addr);
                match txn.op {
                    BusOp::Read { dest } => {
                        w.put_u8(1);
                        save_target(w, dest);
                    }
                    BusOp::Write { value } => {
                        w.put_u8(2);
                        w.put_u16(value);
                    }
                    BusOp::TestAndSet { dest } => {
                        w.put_u8(3);
                        save_target(w, dest);
                    }
                }
                w.put_u32(txn.remaining);
            }
        }
        w.put_u64(self.elapsed);
        w.put_u64(self.busy_cycles);
        w.put_u64(self.transactions);
        w.put_u64(self.rejections);
        w.put_u64(self.aborts);
    }

    /// Restores state written by [`save_into`](Self::save_into).
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.current = match r.get_u8()? {
            0 => None,
            1 => {
                let stream = r.get_usize()?;
                let addr = r.get_u16()?;
                let op = match r.get_u8()? {
                    1 => BusOp::Read {
                        dest: restore_target(r)?,
                    },
                    2 => BusOp::Write {
                        value: r.get_u16()?,
                    },
                    3 => BusOp::TestAndSet {
                        dest: restore_target(r)?,
                    },
                    t => return Err(SnapError::Corrupt(format!("bad bus op tag {t}"))),
                };
                let remaining = r.get_u32()?;
                if remaining == 0 {
                    return Err(SnapError::Corrupt(
                        "in-flight transaction with zero remaining cycles".into(),
                    ));
                }
                Some(Transaction {
                    stream,
                    addr,
                    op,
                    remaining,
                })
            }
            t => return Err(SnapError::Corrupt(format!("bad transaction tag {t}"))),
        };
        self.elapsed = r.get_u64()?;
        self.busy_cycles = r.get_u64()?;
        self.transactions = r.get_u64()?;
        self.rejections = r.get_u64()?;
        self.aborts = r.get_u64()?;
        Ok(())
    }
}

fn save_target(w: &mut SnapWriter, t: RegTarget) {
    match t {
        RegTarget::Window(slot) => {
            w.put_u8(1);
            w.put_usize(slot);
        }
        RegTarget::Global(i) => {
            w.put_u8(2);
            w.put_u8(i);
        }
        RegTarget::Sp => w.put_u8(3),
        RegTarget::Sr => w.put_u8(4),
        RegTarget::Ir => w.put_u8(5),
        RegTarget::Mr => w.put_u8(6),
    }
}

fn restore_target(r: &mut SnapReader<'_>) -> Result<RegTarget, SnapError> {
    Ok(match r.get_u8()? {
        1 => RegTarget::Window(r.get_usize()?),
        2 => RegTarget::Global(r.get_u8()?),
        3 => RegTarget::Sp,
        4 => RegTarget::Sr,
        5 => RegTarget::Ir,
        6 => RegTarget::Mr,
        t => return Err(SnapError::Corrupt(format!("bad register target tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_txn(latency: u32) -> Transaction {
        Transaction {
            stream: 0,
            addr: 0x8000,
            op: BusOp::Read {
                dest: RegTarget::Window(5),
            },
            remaining: latency,
        }
    }

    #[test]
    fn completes_after_latency() {
        let mut abi = Abi::new();
        abi.start(read_txn(3)).unwrap();
        assert!(abi.busy());
        assert_eq!(abi.tick(), None);
        assert_eq!(abi.tick(), None);
        assert_eq!(abi.elapsed(), 2);
        let done = abi.tick().expect("third tick completes");
        assert_eq!(done.addr, 0x8000);
        assert!(!abi.busy());
        assert_eq!(abi.busy_cycles(), 3);
        assert_eq!(abi.transactions(), 1);
    }

    #[test]
    fn one_cycle_transaction_completes_immediately() {
        let mut abi = Abi::new();
        abi.start(read_txn(1)).unwrap();
        assert!(abi.tick().is_some());
    }

    #[test]
    fn idle_tick_is_free() {
        let mut abi = Abi::new();
        assert_eq!(abi.tick(), None);
        assert_eq!(abi.busy_cycles(), 0);
        assert_eq!(abi.elapsed(), 0);
    }

    #[test]
    fn double_start_is_a_typed_rejection() {
        let mut abi = Abi::new();
        abi.start(read_txn(2)).unwrap();
        let err = abi.start(read_txn(2)).unwrap_err();
        assert_eq!(err.rejected.addr, 0x8000);
        assert!(err.to_string().contains("already busy"));
        // The original transaction is untouched.
        assert!(abi.busy());
        assert_eq!(abi.transactions(), 1);
    }

    #[test]
    fn abort_frees_the_bus_and_counts() {
        let mut abi = Abi::new();
        assert_eq!(abi.abort(), None, "idle abort is a no-op");
        assert_eq!(abi.aborts(), 0);
        abi.start(read_txn(100)).unwrap();
        abi.tick();
        let txn = abi.abort().expect("outstanding transaction returned");
        assert_eq!(txn.stream, 0);
        assert!(!abi.busy());
        assert_eq!(abi.aborts(), 1);
        assert_eq!(abi.elapsed(), 0);
        // The bus is usable again immediately.
        abi.start(read_txn(1)).unwrap();
        assert!(abi.tick().is_some());
    }

    #[test]
    fn rejections_counted() {
        let mut abi = Abi::new();
        abi.reject();
        abi.reject();
        assert_eq!(abi.rejections(), 2);
    }
}
