//! The cycle-accurate DISC1 machine.
//!
//! Each cycle the machine:
//!
//! 1. ticks the external bus (peripherals may raise interrupts) and the
//!    asynchronous bus interface (a completing transaction delivers data
//!    and re-activates waiting streams);
//! 2. advances the pipeline, retiring the instruction in the write stage;
//! 3. executes the instruction that just reached the EX stage
//!    (next-to-last), resolving jumps (which flush younger same-stream
//!    slots), issuing external accesses, adjusting stack windows and
//!    performing stream control;
//! 4. lets the hardware scheduler pick a ready stream and fetches its next
//!    instruction — taking a pending vectored interrupt first when the
//!    stream has no unexecuted instructions in flight.
//!
//! A stream is **ready** when it is active (some unmasked IR bit set), not
//! waiting on the bus, not stalled by window spill traffic, and its next
//! instruction has no data hazard against the stream's own in-flight
//! instructions. Slots freed by not-ready streams are dynamically
//! reallocated by the scheduler — the defining DISC property.

use disc_isa::{AluOp, AwpMode, Cond, Instruction, Program, Reg};
use disc_snap::{splitmix64, SnapError, SnapReader, SnapWriter};

use crate::abi::{Abi, BusOp, RegTarget, Transaction};
use crate::alu::{alu, eval_cond, imm_op};
use crate::config::{BusFaultPolicy, DispatchMode, MachineConfig, StepMode};
use crate::databus::{DataBus, FlatBus, IrqRequest};
use crate::error::{Exit, SimError};
use crate::intmem::InternalMemory;
use crate::scheduler::Scheduler;
use crate::stats::{MachineStats, SkipStats, SuperblockStats};
use crate::stream::{Flags, PendingWrite, ServiceFrame, Stream, WaitState};
use crate::trace::{BusFaultKind, CycleRecord, StageSnapshot, Trace, TraceEvent, TraceSink};

/// Result of a single [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The machine is still running.
    Running,
    /// A `halt` instruction executed this cycle.
    Halted,
    /// A `brk` instruction executed this cycle; stepping may continue.
    Breakpoint {
        /// Stream that executed the breakpoint.
        stream: usize,
        /// Address of the `brk` instruction.
        pc: u16,
    },
}

/// Pseudo-register bit used in hazard masks to represent the flags.
const FLAG_BIT: u32 = 1 << 16;
/// Mask selecting the window registers `R0..R7`.
const WINDOW_MASK: u32 = 0xff;
/// Scoreboard tag for entries owned by an outstanding bus transaction.
const BUS_SEQ: u64 = u64::MAX;

/// Fixed pipe-ring capacity: [`MachineConfig::validate`] caps
/// `pipeline_depth` at 8, so the backing array never needs to grow and
/// stage indexing avoids a heap indirection.
const MAX_PIPE: usize = 8;

/// A superblock attempt that covered fewer cycles than this is considered
/// a miss: the machine is in a burst-hostile state (bus traffic, waits,
/// unsafe in-flight ops) and re-probing eligibility every cycle would cost
/// more than it saves.
const BURST_RETRY_FLOOR: u64 = 64;

/// Number of slow-path steps to run after a superblock miss before probing
/// eligibility again.
const BURST_BACKOFF: u64 = 64;

/// Why a pipeline flush happened; resolved to the trace-facing string only
/// when an event record is actually emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushCause {
    Jump,
    Io,
    Irq,
    BusBusy,
}

impl FlushCause {
    fn as_str(self) -> &'static str {
        match self {
            FlushCause::Jump => "jump",
            FlushCause::Io => "io",
            FlushCause::Irq => "irq",
            FlushCause::BusBusy => "bus-busy",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    stream: usize,
    pc: u16,
    instr: Instruction,
    seq: u64,
    moves_window: bool,
    /// Handler index into [`HANDLERS`], predecoded at fetch.
    kind: u8,
}

fn reg_bit(r: Reg) -> u32 {
    1 << r.index()
}

/// Bitmask of registers (and flags) read by `instr`.
fn source_mask(instr: &Instruction) -> u32 {
    let mut m = 0;
    for r in instr.sources() {
        m |= reg_bit(r);
        if r == Reg::Sr {
            m |= FLAG_BIT;
        }
    }
    match instr {
        Instruction::Jmp { cond, .. } if *cond != Cond::Always => m |= FLAG_BIT,
        Instruction::Ret { .. } => m |= reg_bit(Reg::R0),
        Instruction::Alu {
            op: AluOp::Adc | AluOp::Sbc,
            ..
        } => m |= FLAG_BIT,
        _ => {}
    }
    m
}

/// Bitmask of registers (and flags) written by `instr`.
fn dest_mask(instr: &Instruction) -> u32 {
    let mut m = 0;
    if let Some(r) = instr.destination() {
        m |= reg_bit(r);
        if r == Reg::Sr {
            m |= FLAG_BIT;
        }
    }
    match instr {
        Instruction::Alu { .. } | Instruction::AluImm { .. } => m |= FLAG_BIT,
        Instruction::Call { .. } => m |= reg_bit(Reg::R0),
        _ => {}
    }
    m
}

/// `true` when the next instruction of a stream (predecoded as `e`) has a
/// hazard against the stream's own in-flight instructions.
fn stream_hazard_entry(st: &Stream, e: &OpEntry) -> bool {
    if st.window_moves > 0 && e.touches_window {
        return true;
    }
    // RAW only: writes retire in program order through the single EX
    // stage, so WAW/WAR need no interlock.
    st.pending_conflict(e.src_mask)
}

/// `true` when the instruction reads/writes window registers or moves the
/// window, so it conflicts with any in-flight window motion.
fn touches_window(instr: &Instruction) -> bool {
    instr.awp_mode() != AwpMode::None
        || (source_mask(instr) | dest_mask(instr)) & WINDOW_MASK != 0
        || matches!(
            instr,
            Instruction::Call { .. }
                | Instruction::Ret { .. }
                | Instruction::Reti
                | Instruction::Winc { .. }
                | Instruction::Wdec { .. }
        )
}

/// `true` when the instruction moves the AWP (and therefore renames the
/// visible window registers while in flight).
fn moves_window(instr: &Instruction) -> bool {
    instr.awp_mode() != AwpMode::None
        || matches!(
            instr,
            Instruction::Call { .. }
                | Instruction::Ret { .. }
                | Instruction::Winc { .. }
                | Instruction::Wdec { .. }
        )
}

// Handler indices of the threaded dispatch table, one per instruction
// form plus a pseudo-kind for words that do not decode.
const K_NOP: u8 = 0;
const K_ALU: u8 = 1;
const K_ALU_IMM: u8 = 2;
const K_LDI: u8 = 3;
const K_LUI: u8 = 4;
const K_LD: u8 = 5;
const K_LDA: u8 = 6;
const K_ST: u8 = 7;
const K_STA: u8 = 8;
const K_TSET: u8 = 9;
const K_JMP: u8 = 10;
const K_CALL: u8 = 11;
const K_RET: u8 = 12;
const K_RETI: u8 = 13;
const K_WINC: u8 = 14;
const K_WDEC: u8 = 15;
const K_FORK: u8 = 16;
const K_SIGNAL: u8 = 17;
const K_CLRI: u8 = 18;
const K_STOP: u8 = 19;
const K_HALT: u8 = 20;
const K_BRK: u8 = 21;
/// Pseudo-kind of an undecodable program word; never enters the pipe
/// (fetching it raises [`SimError::Decode`] instead).
const K_FAULT: u8 = 22;
const KIND_COUNT: usize = 23;

/// Handler index of `instr` into [`HANDLERS`].
fn kind_of(instr: &Instruction) -> u8 {
    match instr {
        Instruction::Nop => K_NOP,
        Instruction::Alu { .. } => K_ALU,
        Instruction::AluImm { .. } => K_ALU_IMM,
        Instruction::Ldi { .. } => K_LDI,
        Instruction::Lui { .. } => K_LUI,
        Instruction::Ld { .. } => K_LD,
        Instruction::Lda { .. } => K_LDA,
        Instruction::St { .. } => K_ST,
        Instruction::Sta { .. } => K_STA,
        Instruction::Tset { .. } => K_TSET,
        Instruction::Jmp { .. } => K_JMP,
        Instruction::Call { .. } => K_CALL,
        Instruction::Ret { .. } => K_RET,
        Instruction::Reti => K_RETI,
        Instruction::Winc { .. } => K_WINC,
        Instruction::Wdec { .. } => K_WDEC,
        Instruction::Fork { .. } => K_FORK,
        Instruction::Signal { .. } => K_SIGNAL,
        Instruction::Clri { .. } => K_CLRI,
        Instruction::Stop => K_STOP,
        Instruction::Halt => K_HALT,
        Instruction::Brk => K_BRK,
    }
}

/// `true` when executing the instruction cannot disturb any state the
/// superblock entry conditions froze: it touches only registers, flags
/// and (for `jmp`) the stream PC — never `ir`/`mr`, the window position,
/// memory, the bus, other streams or machine control. `jmp` qualifies
/// because its taken-path PC update and flush are replayed exactly inside
/// a run; everything else ends the run at its fetch, before any of its
/// execute-stage effects.
fn burst_safe(instr: &Instruction) -> bool {
    match *instr {
        Instruction::Nop | Instruction::Jmp { .. } => true,
        Instruction::Alu { op, awp, rd, .. } => {
            awp == AwpMode::None && !(op.writes_rd() && matches!(rd, Reg::Ir | Reg::Mr))
        }
        Instruction::AluImm { op, awp, rd, .. } => {
            awp == AwpMode::None && !(op.writes_rd() && matches!(rd, Reg::Ir | Reg::Mr))
        }
        Instruction::Ldi { awp, rd, .. } => {
            awp == AwpMode::None && !matches!(rd, Reg::Ir | Reg::Mr)
        }
        Instruction::Lui { rd, .. } => !matches!(rd, Reg::Ir | Reg::Mr),
        _ => false,
    }
}

/// One predecoded program word: the instruction, its handler index and
/// every per-instruction property the fetch and execute paths need, so
/// the per-cycle hot path is pure table lookups.
#[derive(Debug, Clone, Copy)]
struct OpEntry {
    instr: Instruction,
    /// Handler index into [`HANDLERS`]; [`K_FAULT`] for words that do not
    /// decode.
    kind: u8,
    /// Registers (and flags) read — the hazard probe mask.
    src_mask: u32,
    /// Registers (and flags) written — the scoreboard mask.
    dst_mask: u32,
    /// Moves the AWP while in flight.
    moves_window: bool,
    /// Reads/writes window registers or moves the window.
    touches_window: bool,
    /// Eligible for superblock runs (see [`burst_safe`]).
    simple: bool,
}

/// Predecoded entry for addresses past the program image: word 0 decodes
/// as `nop`, matching `Program::word`.
const NOP_ENTRY: OpEntry = OpEntry {
    instr: Instruction::Nop,
    kind: K_NOP,
    src_mask: 0,
    dst_mask: 0,
    moves_window: false,
    touches_window: false,
    simple: true,
};

impl OpEntry {
    fn from_instr(instr: Instruction) -> OpEntry {
        OpEntry {
            kind: kind_of(&instr),
            src_mask: source_mask(&instr),
            dst_mask: dest_mask(&instr),
            moves_window: moves_window(&instr),
            touches_window: touches_window(&instr),
            simple: burst_safe(&instr),
            instr,
        }
    }
}

/// Builds the predecoded entry for one program word. Undecodable words
/// get a [`K_FAULT`] entry so the fault can still be reported lazily at
/// the cycle a stream actually fetches the word.
fn predecode(word: u32) -> OpEntry {
    match disc_isa::encode::decode(word) {
        Ok(instr) => OpEntry::from_instr(instr),
        Err(_) => OpEntry {
            instr: Instruction::Nop,
            kind: K_FAULT,
            src_mask: 0,
            dst_mask: 0,
            moves_window: false,
            touches_window: false,
            simple: false,
        },
    }
}

/// An EX-stage handler in the threaded-code dispatch table.
type OpHandler = fn(&mut Machine, Slot, usize) -> Status;

/// Threaded-code dispatch table, indexed by the [`K_NOP`]..=[`K_FAULT`]
/// kind predecoded into each [`OpEntry`]/[`Slot`]. Order must match the
/// `K_*` constants.
static HANDLERS: [OpHandler; KIND_COUNT] = [
    Machine::op_nop,
    Machine::op_alu,
    Machine::op_alu_imm,
    Machine::op_ldi,
    Machine::op_lui,
    Machine::op_ld,
    Machine::op_lda,
    Machine::op_st,
    Machine::op_sta,
    Machine::op_tset,
    Machine::op_jmp,
    Machine::op_call,
    Machine::op_ret,
    Machine::op_reti,
    Machine::op_winc,
    Machine::op_wdec,
    Machine::op_fork,
    Machine::op_signal,
    Machine::op_clri,
    Machine::op_stop,
    Machine::op_halt,
    Machine::op_brk,
    Machine::op_fault,
];

/// The DISC1 machine.
///
/// See the [crate documentation](crate) for an end-to-end example.
pub struct Machine {
    config: MachineConfig,
    program: Program,
    /// Every program word predecoded once at construction: instruction,
    /// handler index, hazard masks and superblock eligibility. Code is
    /// immutable (Harvard organization), so the store never invalidates.
    ops: Vec<OpEntry>,
    streams: Vec<Stream>,
    globals: [u16; disc_isa::GLOBAL_REGS],
    /// Pipeline ring buffer: logical stage `i` lives at physical index
    /// `(pipe_head + i) % depth`, so advancing the pipe is a head rotation
    /// instead of a per-cycle shift of every slot.
    pipe: [Option<Slot>; MAX_PIPE],
    pipe_head: usize,
    /// Occupied pipeline slots, maintained incrementally so the idle check
    /// in `run` does not rescan the pipe every cycle.
    live_slots: usize,
    scheduler: Scheduler,
    intmem: InternalMemory,
    abi: Abi,
    bus: Box<dyn DataBus>,
    stats: MachineStats,
    /// Fast-forward accounting, nonzero only under
    /// [`StepMode::EventSkip`].
    skip_stats: SkipStats,
    /// Superblock fast-path accounting, nonzero only under
    /// [`DispatchMode::Superblock`].
    sb_stats: SuperblockStats,
    /// Slow steps left before the next superblock eligibility probe.
    /// Persistent machine state (not a `run`-local) so splitting a run
    /// across several `run` calls cannot change when probes happen.
    sb_backoff: u64,
    /// The last superblock burst was cut by the caller's cycle budget,
    /// not by the machine: the next probe continues the same burst (one
    /// burst in the accounting, no entry probe counted).
    sb_carry: bool,
    /// Cycles covered so far by the carried burst.
    sb_carry_len: u64,
    /// The last event skip was cut by the caller's cycle budget: the next
    /// skip extends it (one skip in the accounting).
    skip_carry: bool,
    cycle: u64,
    halted: bool,
    next_seq: u64,
    idle_exit: bool,
    legacy_decode: bool,
    trace: Option<Box<dyn TraceSink>>,
    irq_buf: Vec<IrqRequest>,
    events: Vec<TraceEvent>,
    /// Per-cycle scratch: stream spent this cycle in a spill stall
    /// (feeds the attribution classifier without re-deriving state).
    attr_spill: Vec<bool>,
    /// Per-cycle scratch: stream was probed for issue but lost to a
    /// same-stream data hazard.
    attr_hazard: Vec<bool>,
    /// Per-cycle readiness memo for the lazy fetch probe.
    fetch_probe: Vec<Probe>,
    /// Predecoded entry for streams probed `Ready`; a [`K_FAULT`] entry on
    /// a stream whose next word does not decode (the fault is reported if
    /// picked).
    fetch_entry: Vec<OpEntry>,
    /// Fatal error latched inside the execute path (where `step`'s
    /// `Result` is out of reach) and surfaced at the end of the cycle.
    pending_error: Option<SimError>,
}

/// Per-stream fetch-readiness memo, reset every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Probe {
    Unknown,
    Ready,
    NotReady,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cycle", &self.cycle)
            .field("halted", &self.halted)
            .field("streams", &self.streams.len())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a machine running `program` with flat external memory of
    /// latency [`MachineConfig::default_ext_latency`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`MachineConfig::validate`]).
    pub fn new(config: MachineConfig, program: &Program) -> Self {
        let latency = config.default_ext_latency;
        Self::with_bus(config, program, Box::new(FlatBus::new(latency)))
    }

    /// Creates a machine with an explicit external bus implementation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_bus(config: MachineConfig, program: &Program, bus: Box<dyn DataBus>) -> Self {
        config.validate();
        let mut streams = Vec::with_capacity(config.streams);
        for s in 0..config.streams {
            let mut st = Stream::new(config.window_depth, config.window_policy);
            for bit in 1..disc_isa::IRQ_LEVELS as u8 {
                st.vectors[bit as usize] = program.vector(s, bit);
            }
            if let Some(entry) = program.entry(s) {
                st.pc = entry;
                st.raise(0, 0);
            }
            streams.push(st);
        }
        let scheduler = Scheduler::new(config.schedule.clone(), config.streams);
        // Predecode the whole image up front so the per-cycle fetch path
        // is a table lookup. Addresses past the image read as word 0
        // (`nop`), matching `Program::word`.
        let ops = (0..program.len())
            .map(|addr| predecode(program.word(addr as u16)))
            .collect();
        Machine {
            streams,
            globals: [0; disc_isa::GLOBAL_REGS],
            pipe: [None; MAX_PIPE],
            pipe_head: 0,
            live_slots: 0,
            scheduler,
            intmem: InternalMemory::new(config.internal_words),
            abi: Abi::new(),
            bus,
            stats: MachineStats::new(config.streams),
            skip_stats: SkipStats::default(),
            sb_stats: SuperblockStats::default(),
            sb_backoff: 0,
            sb_carry: false,
            sb_carry_len: 0,
            skip_carry: false,
            cycle: 0,
            halted: false,
            next_seq: 0,
            idle_exit: true,
            legacy_decode: false,
            trace: None,
            irq_buf: Vec::new(),
            events: Vec::new(),
            attr_spill: vec![false; config.streams],
            attr_hazard: vec![false; config.streams],
            fetch_probe: vec![Probe::Unknown; config.streams],
            fetch_entry: vec![NOP_ENTRY; config.streams],
            pending_error: None,
            ops,
            program: program.clone(),
            config,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// `true` once a `halt` instruction has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Execution statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Fast-forward accounting of [`StepMode::EventSkip`]. All zero in
    /// the default cycle-by-cycle mode.
    pub fn skip_stats(&self) -> &SkipStats {
        &self.skip_stats
    }

    /// Superblock fast-path accounting of [`DispatchMode::Superblock`].
    /// All zero under [`DispatchMode::Legacy`].
    pub fn superblock_stats(&self) -> &SuperblockStats {
        &self.sb_stats
    }

    /// Slot-grant accounting of the hardware scheduler.
    pub fn scheduler_grants(&self) -> &[u64] {
        self.scheduler.granted()
    }

    /// Slots the hardware scheduler dynamically reallocated away from
    /// their owning stream — the paper's defining mechanism. Also folded
    /// into [`MachineStats::reallocations`] every cycle.
    pub fn scheduler_reallocations(&self) -> u64 {
        self.scheduler.reallocated()
    }

    /// Forces the original per-cycle decode path instead of the
    /// predecoded store. Cycle-for-cycle behavior must be identical; this
    /// switch exists so the differential test suite can prove it.
    #[doc(hidden)]
    pub fn set_legacy_decode(&mut self, enabled: bool) {
        self.legacy_decode = enabled;
    }

    /// The internal 2 KB memory.
    pub fn internal_memory(&self) -> &InternalMemory {
        &self.intmem
    }

    /// Mutable access to internal memory (test setup, I/O injection).
    pub fn internal_memory_mut(&mut self) -> &mut InternalMemory {
        &mut self.intmem
    }

    /// Mutable access to the external data bus (test setup and
    /// post-mortem inspection, e.g. the differential fuzz harness reading
    /// back external memory). Accesses through this handle bypass the
    /// asynchronous bus interface entirely: no latency, no transaction,
    /// no stats.
    pub fn bus_mut(&mut self) -> &mut dyn DataBus {
        &mut *self.bus
    }

    /// Immutable view of stream `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn stream(&self, s: usize) -> &Stream {
        &self.streams[s]
    }

    /// Number of configured streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Reads architectural register `r` of stream `s` (inspection path; no
    /// side effects).
    pub fn reg(&self, s: usize, r: Reg) -> u16 {
        let st = &self.streams[s];
        match r {
            r if r.is_window() => st
                .window
                .try_slot_of(r.index())
                .map(|slot| st.window.read_slot(slot))
                .unwrap_or(0),
            Reg::G0 | Reg::G1 | Reg::G2 | Reg::G3 => self.globals[(r.index() - 8) as usize],
            Reg::Sp => st.sp,
            Reg::Sr => st.flags.to_word(),
            Reg::Ir => st.ir as u16,
            Reg::Mr => st.mr as u16,
            _ => unreachable!(),
        }
    }

    /// Writes architectural register `r` of stream `s` (test setup path).
    pub fn set_reg(&mut self, s: usize, r: Reg, value: u16) {
        let cycle = self.cycle;
        let st = &mut self.streams[s];
        match r {
            r if r.is_window() => {
                if let Some(slot) = st.window.try_slot_of(r.index()) {
                    st.window.write_slot(slot, value);
                }
            }
            Reg::G0 | Reg::G1 | Reg::G2 | Reg::G3 => {
                self.globals[(r.index() - 8) as usize] = value;
            }
            Reg::Sp => st.sp = value,
            Reg::Sr => st.flags = Flags::from_word(value),
            Reg::Ir => {
                let new = value as u8;
                for bit in 0..8 {
                    if new & (1 << bit) != 0 && st.ir & (1 << bit) == 0 {
                        st.irq_raised_at[bit as usize] = Some(cycle);
                    }
                }
                st.ir = new;
            }
            Reg::Mr => st.mr = value as u8,
            _ => unreachable!(),
        }
    }

    /// Shared global register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    pub fn global(&self, i: usize) -> u16 {
        self.globals[i]
    }

    /// Sets shared global register `i`.
    pub fn set_global(&mut self, i: usize, value: u16) {
        self.globals[i] = value;
    }

    /// Raises IR bit `bit` of stream `s` (external interrupt line).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `bit` is out of range.
    pub fn raise_interrupt(&mut self, s: usize, bit: u8) {
        let cycle = self.cycle;
        self.streams[s].raise(bit, cycle);
    }

    /// Sets the interrupt vector of (`s`, `bit`) at run time.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is 0 (background never vectors) or out of range.
    pub fn set_vector(&mut self, s: usize, bit: u8, target: u16) {
        assert!((1..8).contains(&bit), "vector bit must be 1..=7");
        self.streams[s].vectors[bit as usize] = Some(target);
    }

    /// Controls whether [`Machine::run`] returns [`Exit::AllIdle`] when no
    /// stream is active and nothing is in flight. Disable when bus
    /// peripherals raise interrupts at future times.
    pub fn set_idle_exit(&mut self, enabled: bool) {
        self.idle_exit = enabled;
    }

    /// Starts collecting a cycle trace of at most `capacity` cycles into
    /// the built-in bounded ring buffer. Capacity 0 keeps nothing (the
    /// machine still runs, the buffer just stays empty).
    pub fn trace_start(&mut self, capacity: usize) {
        self.trace = Some(Box::new(Trace::new(capacity)));
    }

    /// Stops tracing and returns the collected trace.
    ///
    /// Returns `Some` only when the active sink is the bounded [`Trace`]
    /// installed by [`Machine::trace_start`]; any other sink is finished
    /// and dropped — recover custom sinks with
    /// [`Machine::take_trace_sink`] instead.
    pub fn trace_take(&mut self) -> Option<Trace> {
        self.take_trace_sink()
            .and_then(|sink| sink.into_any().downcast::<Trace>().ok())
            .map(|t| *t)
    }

    /// Installs an arbitrary [`TraceSink`] observing every subsequent
    /// cycle, replacing any previous sink without finishing it.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Removes the active sink, calling [`TraceSink::finish`] on it so
    /// buffered output is flushed before the sink is handed back.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut sink = self.trace.take()?;
        sink.finish();
        Some(sink)
    }

    /// `true` when every stream is inactive and nothing is in flight.
    ///
    /// Checked after every cycle by [`Machine::run`], so the hot case (a
    /// busy machine) must be cheap: the pipe occupancy is an incrementally
    /// maintained counter, and the per-stream scan only runs on the rare
    /// cycles where the pipe is empty and the bus is quiet.
    pub fn all_idle(&self) -> bool {
        self.live_slots == 0 && !self.abi.busy() && self.streams.iter().all(|s| !s.active())
    }

    /// Runs until halt, breakpoint, idleness or the cycle budget expires.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Decode`] when a stream fetches an undecodable
    /// program word, or [`SimError::UnhandledBusFault`] when a bus fault
    /// under [`BusFaultPolicy::Fault`] cannot be delivered because the
    /// stream masks the bus-error interrupt.
    pub fn run(&mut self, max_cycles: u64) -> Result<Exit, SimError> {
        // A finished machine must make `run` a strict no-op: a halted or
        // idle machine stays that way until an external input arrives, so
        // report it without burning a cycle — and without letting the
        // superblock/event-skip paths touch their pacing state. Otherwise
        // an extra `run` call after the machine finished (which is exactly
        // what resuming from a snapshot does) would leave different
        // diagnostic counters than the run that never made the call.
        if self.halted {
            return Ok(Exit::Halted);
        }
        if self.idle_exit && self.all_idle() {
            return Ok(Exit::AllIdle);
        }
        if self.config.step_mode == StepMode::EventSkip {
            return self.run_event_skip(max_cycles);
        }
        if self.config.dispatch_mode == DispatchMode::Superblock {
            return self.run_superblock(max_cycles);
        }
        for _ in 0..max_cycles {
            match self.step()? {
                Status::Running => {}
                Status::Halted => return Ok(Exit::Halted),
                Status::Breakpoint { stream, pc } => return Ok(Exit::Breakpoint { stream, pc }),
            }
            if self.idle_exit && self.all_idle() {
                return Ok(Exit::AllIdle);
            }
        }
        Ok(Exit::CycleLimit)
    }

    /// [`run`](Self::run) under [`DispatchMode::Superblock`]: identical to
    /// the per-cycle loop except that, whenever the machine is in a
    /// hazard-frozen state, stretches of cycles execute through the
    /// superblock fast path in one call instead of one `step` each.
    /// `Halted`, `Breakpoint` and the `AllIdle` exit can only arise from
    /// slow steps — superblock runs reject machine-control instructions
    /// and (with idle-exit armed) all-idle stretches at entry.
    fn run_superblock(&mut self, max_cycles: u64) -> Result<Exit, SimError> {
        let mut remaining = max_cycles;
        while remaining > 0 {
            if self.sb_backoff == 0 {
                let n = self.burst(remaining)?;
                remaining -= n;
                if remaining == 0 {
                    return Ok(Exit::CycleLimit);
                }
            } else {
                self.sb_backoff -= 1;
            }
            match self.step()? {
                Status::Running => {}
                Status::Halted => return Ok(Exit::Halted),
                Status::Breakpoint { stream, pc } => return Ok(Exit::Breakpoint { stream, pc }),
            }
            remaining -= 1;
            if self.idle_exit && self.all_idle() {
                return Ok(Exit::AllIdle);
            }
        }
        Ok(Exit::CycleLimit)
    }

    /// [`run`](Self::run) under [`StepMode::EventSkip`]: identical to the
    /// cycle-by-cycle loop except that, whenever the machine is provably
    /// quiescent (nothing can issue, execute or change state), time jumps
    /// straight to the next wake event with one bulk counter update
    /// instead of stepping through the stall cycles one by one. Under
    /// [`DispatchMode::Superblock`] the non-quiescent stretches
    /// additionally go through the superblock fast path; quiescence is
    /// checked first so skips are never split into bursts.
    ///
    /// All checks happen at the top of the loop, before the step, and all
    /// pacing state (probe backoff, budget-truncated skips and bursts)
    /// lives on the machine, so chunking a run into several `run` calls
    /// reaches the same state — counters included — as one big call.
    fn run_event_skip(&mut self, max_cycles: u64) -> Result<Exit, SimError> {
        let superblock = self.config.dispatch_mode == DispatchMode::Superblock;
        let mut remaining = max_cycles;
        while remaining > 0 {
            if self.quiescent() {
                let n = self.next_wake(remaining) - self.cycle;
                if n > 0 {
                    self.apply_skip(n, n == remaining);
                    remaining -= n;
                    continue;
                }
            }
            self.skip_carry = false;
            if superblock {
                if self.sb_backoff == 0 {
                    let n = self.burst(remaining)?;
                    if n > 0 {
                        remaining -= n;
                        continue;
                    }
                } else {
                    self.sb_backoff -= 1;
                }
            }
            match self.step()? {
                Status::Running => {}
                Status::Halted => return Ok(Exit::Halted),
                Status::Breakpoint { stream, pc } => return Ok(Exit::Breakpoint { stream, pc }),
            }
            remaining -= 1;
            if self.idle_exit && self.all_idle() {
                return Ok(Exit::AllIdle);
            }
        }
        Ok(Exit::CycleLimit)
    }

    /// Probes and runs one superblock burst of at most `budget` cycles,
    /// carrying budget-truncated bursts across `run` calls: a burst cut
    /// by the cycle budget is resumed by the next probe (no entry-reject
    /// counted, no second burst counted), and the retry backoff is
    /// decided on the *total* burst length once the machine — not the
    /// budget — ends it.
    fn burst(&mut self, budget: u64) -> Result<u64, SimError> {
        let resuming = self.sb_carry;
        self.sb_carry = false;
        let n = self.superblock_burst(budget, resuming)?;
        if n == budget {
            // Cut by the caller's budget, not by the machine.
            self.sb_carry = true;
            self.sb_carry_len += n;
        } else {
            let total = self.sb_carry_len + n;
            self.sb_carry_len = 0;
            if total < BURST_RETRY_FLOOR {
                // The machine is near a hazard (bus op, window motion,
                // interrupt …): stop paying the eligibility probe every
                // cycle until the slow path has moved past it.
                self.sb_backoff = BURST_BACKOFF;
            }
        }
        Ok(n)
    }

    /// `true` when the next step provably changes no architectural state
    /// beyond counter ticks: the pipeline is empty, no stream can issue
    /// (inactive, bus-waiting or spill-stalled), and no stream would take
    /// a vectored interrupt. Peripheral/ABI/sink activity is bounded
    /// separately by [`next_wake`](Self::next_wake).
    fn quiescent(&self) -> bool {
        if self.live_slots != 0 {
            return false;
        }
        self.streams.iter().all(|st| {
            if st.wait != WaitState::None {
                return true;
            }
            // A deliverable vector preempts even a spill-stalled stream
            // (vector delivery does not check `spill_stall`).
            if st
                .pending_interrupt()
                .is_some_and(|bit| st.vectors[bit as usize].is_some())
            {
                return false;
            }
            !st.active() || st.spill_stall > 0
        })
    }

    /// First absolute cycle whose step must run normally, bounded by the
    /// remaining cycle `budget`: the minimum over the outstanding ABI
    /// transaction's completion (or fault-policy timeout), the bus's next
    /// peripheral event, the spill-stall expiry of any stream that would
    /// become issuable, and the attached sink's next observation.
    fn next_wake(&self, budget: u64) -> u64 {
        let now = self.cycle;
        let mut wake = now.saturating_add(budget);
        if let Some(txn) = self.abi.current() {
            // `tick` completes the transaction when `remaining` reaches 1,
            // i.e. during the step starting `remaining - 1` cycles from
            // now; the timeout abort fires on the step that pushes
            // `elapsed` past the configured limit.
            wake = wake.min(now + u64::from(txn.remaining) - 1);
            if self.config.bus_fault == BusFaultPolicy::Fault && self.config.abi_timeout > 0 {
                wake = wake.min(
                    now + self
                        .config
                        .abi_timeout
                        .saturating_sub(self.abi.elapsed() + 1),
                );
            }
        }
        if let Some(t) = self.bus.next_event(now) {
            wake = wake.min(t.max(now));
        }
        for st in &self.streams {
            // The spill countdown and the fetch happen in the same step,
            // so a stream with `spill_stall == k` can issue during the
            // step starting `k - 1` cycles from now.
            if st.active() && st.wait == WaitState::None && st.spill_stall > 0 {
                wake = wake.min(now + u64::from(st.spill_stall) - 1);
            }
        }
        if let Some(sink) = &self.trace {
            if let Some(t) = sink.next_observe(now) {
                wake = wake.min(t.max(now));
            }
        }
        wake
    }

    /// Bulk-applies `n` quiescent cycles: exactly the counter updates `n`
    /// individual steps would have made, without touching architectural
    /// state (which [`quiescent`](Self::quiescent) proved frozen).
    /// `truncated` marks a skip cut short by the caller's cycle budget
    /// rather than by a wake event; the continuation applied by the next
    /// `run` call then extends this skip instead of counting a new one.
    fn apply_skip(&mut self, n: u64, truncated: bool) {
        debug_assert!(n > 0);
        for (s, st) in self.streams.iter_mut().enumerate() {
            let dec = n.min(u64::from(st.spill_stall));
            let attr = &mut self.stats.attribution;
            match st.wait {
                WaitState::BusTransaction => {
                    self.stats.wait_txn_cycles[s] += n;
                    attr.bus_txn_wait[s] += n;
                }
                WaitState::BusFree => {
                    self.stats.wait_bus_free_cycles[s] += n;
                    attr.bus_free_wait[s] += n;
                }
                WaitState::None => {
                    // Active spill-stalled streams bound the wake cycle,
                    // so here `n - dec > 0` only for inactive streams,
                    // which fall to idle once their spill expires.
                    attr.spill_stall[s] += dec;
                    attr.idle[s] += n - dec;
                }
            }
            // The flat spill counter ticks for every stream regardless of
            // wait state, exactly as the per-step countdown does.
            st.spill_stall -= dec as u32;
            self.stats.spill_stall_cycles[s] += dec;
        }
        self.stats.bubbles += n;
        self.stats.cycles += n;
        self.cycle += n;
        self.scheduler.advance_idle(n);
        self.abi.advance(n);
        self.bus.advance(n);
        if !self.skip_carry {
            self.skip_stats.skips += 1;
        }
        self.skip_carry = truncated;
        self.skip_stats.cycles_skipped += n;
        debug_assert!(
            (0..self.streams.len()).all(|s| self.stats.attribution.total(s) == self.stats.cycles),
            "cycle attribution diverged from elapsed cycles during a skip"
        );
    }

    /// Physical index of logical pipeline stage `stage` in the ring.
    /// Only the first `pipeline_depth` cells of the fixed backing array
    /// are ever used; the head wraps within them.
    #[inline]
    fn stage_idx(&self, stage: usize) -> usize {
        let i = self.pipe_head + stage;
        let len = self.config.pipeline_depth;
        if i >= len {
            i - len
        } else {
            i
        }
    }

    /// Attempts a superblock run of at most `budget` cycles; returns the
    /// cycles covered (0 when the machine is not in a burst-eligible
    /// state).
    ///
    /// A run replays the per-cycle [`step`](Self::step) semantics with
    /// every provably frozen term stripped out. Entry requires the machine
    /// to be *hazard-frozen*: no attached trace sink, no outstanding bus
    /// transaction, no wait state, no spill stall, no in-flight window
    /// motion, no deliverable vectored interrupt, and only burst-safe
    /// instructions in the pipe. Under those conditions a cycle can only
    /// change stream registers/flags/PCs, the pipe, the scoreboard and
    /// counters. Each cycle retires, executes and then replays the
    /// scheduler's pick; an instruction that could melt the freeze
    /// (memory, window motion, stream control, `ir`/`mr` writes) is still
    /// *fetched* exactly as `step` would — fetching is pure bookkeeping —
    /// and ends the run before its execute stage can run, so the slow path
    /// owns all its effects. The run length is bounded by
    /// [`DataBus::next_event`], the same wake contract
    /// [`StepMode::EventSkip`] relies on, so no peripheral tick,
    /// fault-plan window edge or interrupt lands inside a run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Decode`] when the scheduler grants a stream
    /// whose next word does not decode — mutating exactly the state the
    /// equivalent failing `step` would have (retire/execute happened, the
    /// cycle counter did not advance).
    fn superblock_burst(&mut self, budget: u64, resuming: bool) -> Result<u64, SimError> {
        // -- entry eligibility --------------------------------------------
        if self.halted
            || self.legacy_decode
            || self.trace.is_some()
            || self.abi.busy()
            || self.scheduler.sequence().is_none()
        {
            if !resuming {
                self.sb_stats.entry_rejects += 1;
            }
            return Ok(0);
        }
        let mut active_mask: u32 = 0;
        for (s, st) in self.streams.iter().enumerate() {
            if st.wait != WaitState::None || st.spill_stall > 0 || st.window_moves > 0 {
                if !resuming {
                    self.sb_stats.entry_rejects += 1;
                }
                return Ok(0);
            }
            if st
                .pending_interrupt()
                .is_some_and(|bit| st.vectors[bit as usize].is_some())
            {
                if !resuming {
                    self.sb_stats.entry_rejects += 1;
                }
                return Ok(0);
            }
            if st.active() {
                active_mask |= 1 << s;
            }
        }
        // The slow loop owns the AllIdle exit: a run entered here would
        // cover cycles `run` must never execute.
        if active_mask == 0 && self.idle_exit {
            if !resuming {
                self.sb_stats.entry_rejects += 1;
            }
            return Ok(0);
        }
        if self
            .pipe
            .iter()
            .flatten()
            .any(|slot| !burst_safe(&slot.instr))
        {
            if !resuming {
                self.sb_stats.entry_rejects += 1;
            }
            return Ok(0);
        }
        let mut limit = budget;
        if let Some(t) = self.bus.next_event(self.cycle) {
            limit = limit.min(t.saturating_sub(self.cycle));
        }
        if limit == 0 {
            if !resuming {
                self.sb_stats.entry_rejects += 1;
            }
            return Ok(0);
        }

        let nstreams = self.streams.len();
        // All streams parked awaiting a future bus event with nothing in
        // flight: the whole bounded stretch is bubbles, accounted in bulk.
        // (Reachable only with idle-exit disabled.)
        if active_mask == 0 && self.live_slots == 0 {
            for s in 0..nstreams {
                self.stats.attribution.idle[s] += limit;
            }
            self.stats.bubbles += limit;
            self.stats.cycles += limit;
            self.cycle += limit;
            self.scheduler.advance_idle(limit);
            self.abi.advance(limit);
            self.bus.advance(limit);
            if !resuming {
                self.sb_stats.bursts += 1;
            }
            self.sb_stats.burst_cycles += limit;
            return Ok(limit);
        }

        // -- per-cycle fast loop ------------------------------------------
        let depth = self.config.pipeline_depth;
        let ex = depth - 2;
        // Snapshot the sequence table into a fixed-size local: the table
        // never exceeds `SEQUENCE_SLOTS` entries, and the `& 15` on every
        // access (a no-op, since the scan keeps its index below `seq_len`)
        // lets the probe loop index without a bounds check.
        let mut seq_buf = [0u8; crate::scheduler::SEQUENCE_SLOTS];
        let seq_src = self.scheduler.sequence().expect("checked at entry");
        let seq_len = seq_src.len();
        debug_assert!(seq_len <= seq_buf.len());
        seq_buf[..seq_len].copy_from_slice(seq_src);
        let mut slot_idx = self.scheduler.slot_index();

        let mut issued = [0u64; disc_isa::MAX_STREAMS];
        let mut hazard = [0u64; disc_isa::MAX_STREAMS];
        let mut granted = [0u64; disc_isa::MAX_STREAMS];
        let mut retired = [0u64; disc_isa::MAX_STREAMS];
        let mut realloc: u64 = 0;
        let mut bubbles: u64 = 0;
        let mut executed: u64 = 0;
        let mut decode_fault = false;
        let mut fault_stream = 0usize;
        let mut fault_pc = 0u16;

        while executed < limit {
            // Pipeline advance: retire the write stage, rotate the ring.
            // Open-coded [`retire`](Self::retire): no sink is attached in
            // a burst, and the retired counters accumulate locally.
            let widx = self.stage_idx(depth - 1);
            if let Some(slot) = self.pipe[widx].take() {
                self.live_slots -= 1;
                retired[slot.stream] += 1;
                let st = &mut self.streams[slot.stream];
                st.drop_pending(slot.seq);
                if slot.moves_window {
                    st.window_moves = st.window_moves.saturating_sub(1);
                }
            }
            self.pipe_head = widx;

            // Execute the slot that just reached EX (burst-safe by
            // construction, so the status is always `Running`). Hot kinds
            // dispatch directly so the calls inline; the table handles the
            // rest. After the rotate `widx` is stage 0, so stage `ex` sits
            // `ex` cells beyond it.
            let eidx = {
                let i = widx + ex;
                if i >= depth {
                    i - depth
                } else {
                    i
                }
            };
            if let Some(slot) = self.pipe[eidx] {
                let status = match slot.kind {
                    K_NOP => Status::Running,
                    K_ALU => self.op_alu(slot, ex),
                    K_ALU_IMM => self.op_alu_imm(slot, ex),
                    K_LDI => self.op_ldi(slot, ex),
                    K_JMP => self.op_jmp(slot, ex),
                    _ => self.execute(slot, ex),
                };
                debug_assert!(matches!(status, Status::Running));
            }

            // Replay the scheduler pick. Probing commits nothing; hazard
            // counts apply only once the cycle's outcome is known. A
            // stream revisited by the scan (duplicate sequence slots) was
            // already probed not-ready this cycle — a ready stream is
            // picked immediately — so only a not-ready memo is needed.
            let mut notready_memo: u32 = 0;
            let mut hazard_memo: u32 = 0;
            let mut pick: Option<(usize, bool)> = None;
            let mut pick_entry = NOP_ENTRY;
            let mut pick_pc: u16 = 0;
            let mut idx = slot_idx;
            for scan in 0..=seq_len {
                let is_realloc = scan != 0;
                if is_realloc {
                    idx += 1;
                    if idx == seq_len {
                        idx = 0;
                    }
                }
                let cand = seq_buf[idx & (crate::scheduler::SEQUENCE_SLOTS - 1)] as usize;
                let bit = 1u32 << cand;
                if notready_memo & bit != 0 {
                    continue;
                }
                if active_mask & bit == 0 {
                    notready_memo |= bit;
                    continue;
                }
                let st = &self.streams[cand];
                let e = *self.ops.get(st.pc as usize).unwrap_or(&NOP_ENTRY);
                // Fault entries probe ready without a hazard check,
                // exactly like the slow path; the fault surfaces when the
                // stream is actually picked.
                if e.kind != K_FAULT && st.pending_conflict(e.src_mask) {
                    hazard_memo |= bit;
                    notready_memo |= bit;
                    continue;
                }
                pick = Some((cand, is_realloc));
                pick_pc = st.pc;
                pick_entry = e;
                break;
            }

            // Commit the cycle.
            slot_idx += 1;
            if slot_idx == seq_len {
                slot_idx = 0;
            }
            let mut end_burst = false;
            match pick {
                None => bubbles += 1,
                Some((g, is_realloc)) => {
                    granted[g] += 1;
                    if is_realloc {
                        realloc += 1;
                    }
                    if pick_entry.kind == K_FAULT {
                        // The equivalent slow step errors out of `fetch`
                        // before attribution and the cycle increment; the
                        // probe's hazard counts and the scheduler grant
                        // stand. Finalize the complete cycles below, then
                        // surface the fault.
                        decode_fault = true;
                        fault_stream = g;
                        fault_pc = pick_pc;
                    } else {
                        issued[g] += 1;
                        let e = pick_entry;
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        let st = &mut self.streams[g];
                        st.pc = pick_pc.wrapping_add(1);
                        if e.dst_mask != 0 {
                            st.pending.push(PendingWrite {
                                seq,
                                mask: e.dst_mask,
                            });
                            st.pending_mask |= e.dst_mask;
                        }
                        if e.moves_window {
                            st.window_moves += 1;
                        }
                        // Stage 0 is the ring head, which the rotate above
                        // left at `widx`.
                        debug_assert!(self.pipe[widx].is_none(), "fetch into occupied pipe slot");
                        self.pipe[widx] = Some(Slot {
                            stream: g,
                            pc: pick_pc,
                            instr: e.instr,
                            seq,
                            moves_window: e.moves_window,
                            kind: e.kind,
                        });
                        self.live_slots += 1;
                        // A non-burst-safe grant (memory, window motion,
                        // stream control …) was fetched exactly as `step`
                        // would — pure bookkeeping — but must execute on
                        // the slow path: end the run after this cycle.
                        end_burst = !e.simple;
                    }
                }
            }
            // Probe-time hazard bookkeeping. The slow path bumps the flat
            // counter even on the cycle that errors out of fetch, but
            // attribution never sees an errored cycle.
            let mut hz = hazard_memo;
            while hz != 0 {
                let s = hz.trailing_zeros() as usize;
                hz &= hz - 1;
                self.stats.hazard_stalls[s] += 1;
                if !decode_fault {
                    hazard[s] += 1;
                }
            }
            if decode_fault {
                break;
            }
            executed += 1;
            if end_burst {
                break;
            }
        }

        // -- bulk finalize -------------------------------------------------
        for s in 0..nstreams {
            self.stats.retired[s] += retired[s];
            let a = &mut self.stats.attribution;
            if active_mask & (1 << s) == 0 {
                a.idle[s] += executed;
            } else {
                a.issue[s] += issued[s];
                a.hazard_stall[s] += hazard[s];
                a.not_scheduled[s] += executed - issued[s] - hazard[s];
            }
        }
        self.stats.bubbles += bubbles;
        self.stats.cycles += executed;
        self.cycle += executed;
        self.scheduler
            .apply_burst(slot_idx, &granted[..nstreams], realloc);
        self.stats.reallocations = self.scheduler.reallocated();
        self.abi.advance(executed);
        if executed > 0 {
            if !resuming {
                self.sb_stats.bursts += 1;
            }
            self.sb_stats.burst_cycles += executed;
            self.sb_stats.burst_issues += issued[..nstreams].iter().sum::<u64>();
        }
        debug_assert_eq!(
            self.live_slots,
            self.pipe.iter().filter(|s| s.is_some()).count(),
            "live slot counter diverged from pipe occupancy in a superblock run"
        );
        debug_assert!(
            decode_fault
                || (0..nstreams).all(|s| self.stats.attribution.total(s) == self.stats.cycles),
            "cycle attribution diverged from elapsed cycles in a superblock run"
        );
        if decode_fault {
            // The errored cycle skipped its bus tick above; mirror it here
            // (still strictly inside the event-free stretch). The grant
            // and slot advance of the partial cycle happened in
            // `apply_burst`; like the slow path, the `reallocations`
            // snapshot and attribution are not updated for it.
            self.bus.advance(executed + 1);
            return Err(SimError::Decode {
                stream: fault_stream,
                pc: fault_pc,
                word: self.program.word(fault_pc),
            });
        }
        self.bus.advance(executed);
        Ok(executed)
    }

    /// Advances the machine by one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Decode`] when a stream fetches an undecodable
    /// program word, or [`SimError::UnhandledBusFault`] when a bus fault
    /// cannot be delivered (see [`Machine::run`]).
    pub fn step(&mut self) -> Result<Status, SimError> {
        if self.halted {
            return Ok(Status::Halted);
        }
        self.events.clear();
        self.attr_spill.fill(false);
        self.attr_hazard.fill(false);
        let ex = self.config.pipeline_depth - 2;

        // 1. Peripheral time and interrupt lines.
        self.irq_buf.clear();
        self.bus.tick(&mut self.irq_buf);
        let cycle = self.cycle;
        for i in 0..self.irq_buf.len() {
            let irq = self.irq_buf[i];
            if irq.stream < self.streams.len() && irq.bit < 8 {
                self.streams[irq.stream].raise(irq.bit, cycle);
            }
        }

        // 2. Asynchronous bus interface. Under the fault policy a
        // transaction outstanding longer than `abi_timeout` is aborted —
        // the bus frees, every waiter wakes and the issuing stream takes a
        // bus-error interrupt — so a peripheral that never completes can
        // stall at most its own stream for at most `abi_timeout` cycles.
        if let Some(txn) = self.abi.tick() {
            self.complete_transaction(txn);
        } else if self.config.bus_fault == BusFaultPolicy::Fault
            && self.config.abi_timeout > 0
            && self.abi.elapsed() >= self.config.abi_timeout
        {
            if let Some(txn) = self.abi.abort() {
                self.abort_transaction(txn);
            }
        }

        // 3. Pipeline advance: retire the write stage, rotate the ring
        // head (stage `i` lives at physical `(head + i) % depth`, so a
        // single head move replaces the per-stage shift).
        let depth = self.config.pipeline_depth;
        let widx = self.stage_idx(depth - 1);
        if let Some(slot) = self.pipe[widx].take() {
            self.retire(slot);
        }
        self.pipe_head = widx;

        // 4. Execute the slot that just reached EX.
        let mut status = Status::Running;
        if let Some(slot) = self.pipe[self.stage_idx(ex)] {
            status = self.execute(slot, ex);
        }

        // 5. Spill stall countdown.
        for s in 0..self.streams.len() {
            if self.streams[s].spill_stall > 0 {
                self.streams[s].spill_stall -= 1;
                self.stats.spill_stall_cycles[s] += 1;
                self.attr_spill[s] = true;
            }
        }

        // 6. Vector delivery and fetch.
        if !self.halted {
            self.deliver_vectors(ex);
            self.fetch()?;
        }

        // 7. Per-stream wait accounting and cycle attribution. Every
        // stream lands in exactly one attribution bucket per cycle;
        // issue takes priority, so a stream whose stall expired and then
        // issued the same cycle counts as issue here even though the
        // flat stall counter above still ticked.
        let issued = self.pipe[self.stage_idx(0)]
            .as_ref()
            .map(|slot| slot.stream);
        for (s, st) in self.streams.iter().enumerate() {
            match st.wait {
                WaitState::BusTransaction => self.stats.wait_txn_cycles[s] += 1,
                WaitState::BusFree => self.stats.wait_bus_free_cycles[s] += 1,
                WaitState::None => {}
            }
            let attr = &mut self.stats.attribution;
            if issued == Some(s) {
                attr.issue[s] += 1;
            } else if st.wait == WaitState::BusTransaction {
                attr.bus_txn_wait[s] += 1;
            } else if st.wait == WaitState::BusFree {
                attr.bus_free_wait[s] += 1;
            } else if self.attr_spill[s] {
                attr.spill_stall[s] += 1;
            } else if self.attr_hazard[s] {
                attr.hazard_stall[s] += 1;
            } else if !st.active() {
                attr.idle[s] += 1;
            } else {
                attr.not_scheduled[s] += 1;
            }
        }

        self.cycle += 1;
        self.stats.cycles += 1;
        self.stats.reallocations = self.scheduler.reallocated();
        debug_assert_eq!(
            self.live_slots,
            self.pipe.iter().filter(|s| s.is_some()).count(),
            "live slot counter diverged from pipe occupancy"
        );
        debug_assert!(
            (0..self.streams.len()).all(|s| self.stats.attribution.total(s) == self.stats.cycles),
            "cycle attribution diverged from elapsed cycles"
        );

        // 8. Trace sink. Counters-only sinks skip the record assembly
        // entirely via `wants_records`.
        if let Some(mut sink) = self.trace.take() {
            if sink.wants_records() {
                let record = CycleRecord {
                    cycle: self.cycle - 1,
                    stages: (0..self.config.pipeline_depth)
                        .map(|i| {
                            self.pipe[self.stage_idx(i)]
                                .as_ref()
                                .map(|s| StageSnapshot {
                                    stream: s.stream,
                                    pc: s.pc,
                                    instr: s.instr,
                                })
                        })
                        .collect(),
                    fetched: self.pipe[self.stage_idx(0)].as_ref().map(|s| s.stream),
                    events: std::mem::take(&mut self.events),
                };
                sink.record_cycle(record);
            }
            sink.observe_stats(self.cycle - 1, &self.stats);
            self.trace = Some(sink);
        }
        if let Some(err) = self.pending_error.take() {
            return Err(err);
        }
        Ok(status)
    }

    // ---- internals ------------------------------------------------------

    /// Retires a slot just taken out of the pipe.
    fn retire(&mut self, slot: Slot) {
        self.live_slots -= 1;
        self.stats.retired[slot.stream] += 1;
        if self.trace.is_some() {
            self.events.push(TraceEvent::Retire {
                stream: slot.stream,
                pc: slot.pc,
            });
        }
        let st = &mut self.streams[slot.stream];
        st.drop_pending(slot.seq);
        if slot.moves_window {
            st.window_moves = st.window_moves.saturating_sub(1);
        }
    }

    /// Removes `slot` from the scoreboard without retiring it.
    fn unwind_slot(&mut self, slot: &Slot) {
        let st = &mut self.streams[slot.stream];
        st.drop_pending(slot.seq);
        if slot.moves_window {
            st.window_moves = st.window_moves.saturating_sub(1);
        }
    }

    /// Flushes unexecuted (younger) slots of `stream` in stages `0..ex`,
    /// plus the EX slot itself when `include_self`.
    #[inline]
    fn flush(&mut self, ex: usize, stream: usize, include_self: bool, cause: FlushCause) {
        let mut count = 0;
        let top = if include_self { ex + 1 } else { ex };
        for i in 0..top {
            let idx = self.stage_idx(i);
            if self.pipe[idx].as_ref().is_some_and(|s| s.stream == stream) {
                let slot = self.pipe[idx].take().expect("checked above");
                self.live_slots -= 1;
                self.unwind_slot(&slot);
                count += 1;
            }
        }
        if count > 0 {
            match cause {
                FlushCause::Jump => self.stats.flushed_jump += count as u64,
                FlushCause::Io => self.stats.flushed_io += count as u64,
                FlushCause::Irq => self.stats.flushed_irq += count as u64,
                FlushCause::BusBusy => self.stats.flushed_bus_busy += count as u64,
            }
            // Gated like `retire`: events are only consumed by a sink, and
            // an in-burst jump flush must not grow the buffer (no step —
            // and thus no `events.clear()` — runs inside a superblock).
            if self.trace.is_some() {
                self.events.push(TraceEvent::Flush {
                    stream,
                    count,
                    cause: cause.as_str(),
                });
            }
        }
    }

    fn complete_transaction(&mut self, txn: Transaction) {
        match txn.op {
            BusOp::Read { dest } => {
                let value = self.bus.read(txn.addr);
                self.write_target(txn.stream, dest, value);
            }
            BusOp::Write { value } => self.bus.write(txn.addr, value),
            BusOp::TestAndSet { dest } => {
                let old = self.bus.read(txn.addr);
                self.bus.write(txn.addr, 0xffff);
                self.write_target(txn.stream, dest, old);
            }
        }
        // Release the issuing stream's bus-tagged scoreboard entries and
        // wake everyone waiting on the bus.
        self.streams[txn.stream]
            .pending
            .retain(|p| p.seq != BUS_SEQ);
        self.streams[txn.stream].resync_pending_mask();
        for st in &mut self.streams {
            if matches!(st.wait, WaitState::BusTransaction | WaitState::BusFree) {
                // Only the owner was in BusTransaction; BusFree waiters
                // retry their cancelled access now that the bus is free.
                st.wait = WaitState::None;
            }
        }
        self.events
            .push(TraceEvent::BusComplete { stream: txn.stream });
    }

    /// Aborts a timed-out transaction: the transfer never happens, the
    /// issuing stream's bus-tagged scoreboard entries are released (a
    /// faulted load leaves its destination unchanged), every stream
    /// waiting on the bus wakes, and the issuer takes a bus-error
    /// interrupt.
    fn abort_transaction(&mut self, txn: Transaction) {
        self.stats.abi_timeouts += 1;
        self.streams[txn.stream]
            .pending
            .retain(|p| p.seq != BUS_SEQ);
        self.streams[txn.stream].resync_pending_mask();
        for st in &mut self.streams {
            if matches!(st.wait, WaitState::BusTransaction | WaitState::BusFree) {
                st.wait = WaitState::None;
            }
        }
        self.raise_bus_fault(txn.stream, txn.addr, BusFaultKind::Timeout);
    }

    /// Delivers a bus-error interrupt to stream `s` on the configured IR
    /// bit, recording the event in the stats and the trace. A stream that
    /// masks the bit cannot be told its access failed; that latches
    /// [`SimError::UnhandledBusFault`], surfaced at the end of the cycle.
    fn raise_bus_fault(&mut self, s: usize, addr: u16, kind: BusFaultKind) {
        let bit = self.config.bus_error_bit;
        let cycle = self.cycle;
        self.stats.bus_faults[s] += 1;
        if self.streams[s].mr() & (1 << bit) == 0 && self.pending_error.is_none() {
            self.pending_error = Some(SimError::UnhandledBusFault { stream: s, addr });
        }
        self.streams[s].raise(bit, cycle);
        self.events.push(TraceEvent::BusFault {
            stream: s,
            addr,
            kind,
        });
    }

    /// Resolves the latency of an external access under the configured
    /// fault policy. `None` means the access was aborted (fault delivered)
    /// and must not touch the bus.
    fn fault_checked_latency(&mut self, s: usize, addr: u16, write: bool) -> Option<u32> {
        match self.bus.latency(addr, write) {
            Some(latency) => Some(latency),
            None => {
                self.stats.unmapped_accesses += 1;
                match self.config.bus_fault {
                    // Historical behavior: treat the unmapped access as
                    // zero-latency and hand it to the bus anyway (an
                    // address-decoded bus reads open-bus 0xffff and drops
                    // the write).
                    BusFaultPolicy::Legacy => Some(0),
                    BusFaultPolicy::Fault => {
                        self.raise_bus_fault(s, addr, BusFaultKind::Unmapped);
                        None
                    }
                }
            }
        }
    }

    fn write_target(&mut self, s: usize, target: RegTarget, value: u16) {
        match target {
            RegTarget::Window(slot) => self.streams[s].window.write_slot(slot, value),
            RegTarget::Global(i) => self.globals[i as usize] = value,
            RegTarget::Sp => self.streams[s].sp = value,
            RegTarget::Sr => self.streams[s].flags = Flags::from_word(value),
            RegTarget::Ir => {
                let cycle = self.cycle;
                let st = &mut self.streams[s];
                let new = value as u8;
                for bit in 0..8 {
                    if new & (1 << bit) != 0 && st.ir & (1 << bit) == 0 {
                        st.irq_raised_at[bit as usize] = Some(cycle);
                    }
                }
                st.ir = new;
            }
            RegTarget::Mr => self.streams[s].mr = value as u8,
        }
    }

    fn resolve_target(&self, s: usize, r: Reg) -> RegTarget {
        match r {
            // An underflowed window destination resolves to an
            // out-of-range slot, which `write_slot` discards — matching
            // the checked write path.
            r if r.is_window() => RegTarget::Window(
                self.streams[s]
                    .window
                    .try_slot_of(r.index())
                    .unwrap_or(usize::MAX),
            ),
            Reg::G0 | Reg::G1 | Reg::G2 | Reg::G3 => RegTarget::Global(r.index() - 8),
            Reg::Sp => RegTarget::Sp,
            Reg::Sr => RegTarget::Sr,
            Reg::Ir => RegTarget::Ir,
            Reg::Mr => RegTarget::Mr,
            _ => unreachable!(),
        }
    }

    #[inline(always)]
    fn read_reg(&mut self, s: usize, r: Reg) -> u16 {
        match r {
            r if r.is_window() => self.streams[s].window.read(r.index()),
            Reg::G0 | Reg::G1 | Reg::G2 | Reg::G3 => self.globals[(r.index() - 8) as usize],
            Reg::Sp => self.streams[s].sp,
            Reg::Sr => self.streams[s].flags.to_word(),
            Reg::Ir => self.streams[s].ir as u16,
            Reg::Mr => self.streams[s].mr as u16,
            _ => unreachable!(),
        }
    }

    #[inline(always)]
    fn write_reg(&mut self, s: usize, r: Reg, value: u16) {
        // Window writes go through the checked path so underflow is
        // counted and dropped consistently.
        if r.is_window() {
            self.streams[s].window.write(r.index(), value);
        } else {
            let target = self.resolve_target(s, r);
            self.write_target(s, target, value);
        }
    }

    #[inline]
    fn apply_awp(&mut self, s: usize, delta: i32) {
        if delta == 0 {
            return;
        }
        let outcome = self.streams[s].window.adjust(delta);
        if outcome.stall_cycles > 0 {
            self.streams[s].spill_stall += outcome.stall_cycles;
            self.events.push(TraceEvent::Spill {
                stream: s,
                cycles: outcome.stall_cycles,
            });
        }
        if outcome.fault {
            let cycle = self.cycle;
            self.streams[s].raise(6, cycle);
        }
    }

    fn awp_delta(mode: AwpMode) -> i32 {
        match mode {
            AwpMode::None => 0,
            AwpMode::Inc => 1,
            AwpMode::Dec => -1,
        }
    }

    /// Executes `slot` (which just entered the EX stage) through the
    /// threaded-code dispatch table: `slot.kind` was predecoded at fetch,
    /// so dispatch is one indexed indirect call instead of a `match` over
    /// the full instruction tree.
    #[inline]
    fn execute(&mut self, slot: Slot, ex: usize) -> Status {
        HANDLERS[slot.kind as usize](self, slot, ex)
    }

    #[inline(always)]
    fn op_nop(&mut self, _slot: Slot, _ex: usize) -> Status {
        Status::Running
    }

    #[inline(always)]
    fn op_alu(&mut self, slot: Slot, _ex: usize) -> Status {
        let Instruction::Alu {
            op,
            awp,
            rd,
            rs,
            rt,
        } = slot.instr
        else {
            unreachable!("kind/instr mismatch");
        };
        let s = slot.stream;
        // Same single-borrow fast path as `op_alu_imm`.
        if matches!(awp, AwpMode::None) && rs.is_window() && rt.is_window() && rd.is_window() {
            let st = &mut self.streams[s];
            let a = st.window.read(rs.index());
            let b = st.window.read(rt.index());
            let (result, flags) = alu(op, a, b, st.flags);
            if op.writes_rd() {
                st.window.write(rd.index(), result);
            }
            st.flags = flags;
            return Status::Running;
        }
        let a = self.read_reg(s, rs);
        let b = self.read_reg(s, rt);
        let flags_in = self.streams[s].flags;
        let (result, flags) = alu(op, a, b, flags_in);
        if op.writes_rd() {
            self.write_reg(s, rd, result);
        }
        if rd != Reg::Sr || !op.writes_rd() {
            self.streams[s].flags = flags;
        }
        self.apply_awp(s, Self::awp_delta(awp));
        Status::Running
    }

    #[inline(always)]
    fn op_alu_imm(&mut self, slot: Slot, _ex: usize) -> Status {
        let Instruction::AluImm {
            op,
            awp,
            rd,
            rs,
            imm,
        } = slot.instr
        else {
            unreachable!("kind/instr mismatch");
        };
        let s = slot.stream;
        // Window-to-window with no AWP motion is the overwhelmingly common
        // shape; resolving the stream once keeps the whole op on a single
        // borrow instead of four separate `streams[s]` walks.
        if matches!(awp, AwpMode::None) && rs.is_window() && rd.is_window() {
            let st = &mut self.streams[s];
            let a = st.window.read(rs.index());
            let (result, flags) = alu(imm_op(op), a, imm as u16, st.flags);
            if op.writes_rd() {
                st.window.write(rd.index(), result);
            }
            st.flags = flags;
            return Status::Running;
        }
        let a = self.read_reg(s, rs);
        let flags_in = self.streams[s].flags;
        let (result, flags) = alu(imm_op(op), a, imm as u16, flags_in);
        if op.writes_rd() {
            self.write_reg(s, rd, result);
        }
        if rd != Reg::Sr || !op.writes_rd() {
            self.streams[s].flags = flags;
        }
        self.apply_awp(s, Self::awp_delta(awp));
        Status::Running
    }

    #[inline(always)]
    fn op_ldi(&mut self, slot: Slot, _ex: usize) -> Status {
        let Instruction::Ldi { awp, rd, imm } = slot.instr else {
            unreachable!("kind/instr mismatch");
        };
        let s = slot.stream;
        self.write_reg(s, rd, imm as u16);
        self.apply_awp(s, Self::awp_delta(awp));
        Status::Running
    }

    #[inline(always)]
    fn op_lui(&mut self, slot: Slot, _ex: usize) -> Status {
        let Instruction::Lui { rd, imm } = slot.instr else {
            unreachable!("kind/instr mismatch");
        };
        let s = slot.stream;
        let low = self.read_reg(s, rd) & 0x00ff;
        self.write_reg(s, rd, ((imm as u16) << 8) | low);
        Status::Running
    }

    fn op_ld(&mut self, slot: Slot, ex: usize) -> Status {
        let Instruction::Ld {
            awp,
            rd,
            base,
            offset,
        } = slot.instr
        else {
            unreachable!("kind/instr mismatch");
        };
        let s = slot.stream;
        let addr = self.read_reg(s, base).wrapping_add(offset as i16 as u16);
        self.data_read(slot, ex, addr, rd, Self::awp_delta(awp), false);
        Status::Running
    }

    fn op_lda(&mut self, slot: Slot, ex: usize) -> Status {
        let Instruction::Lda { awp, rd, addr } = slot.instr else {
            unreachable!("kind/instr mismatch");
        };
        self.data_read(slot, ex, addr, rd, Self::awp_delta(awp), false);
        Status::Running
    }

    fn op_st(&mut self, slot: Slot, ex: usize) -> Status {
        let Instruction::St {
            awp,
            src,
            base,
            offset,
        } = slot.instr
        else {
            unreachable!("kind/instr mismatch");
        };
        let s = slot.stream;
        let addr = self.read_reg(s, base).wrapping_add(offset as i16 as u16);
        let value = self.read_reg(s, src);
        self.data_write(slot, ex, addr, value, Self::awp_delta(awp));
        Status::Running
    }

    fn op_sta(&mut self, slot: Slot, ex: usize) -> Status {
        let Instruction::Sta { awp, src, addr } = slot.instr else {
            unreachable!("kind/instr mismatch");
        };
        let s = slot.stream;
        let value = self.read_reg(s, src);
        self.data_write(slot, ex, addr, value, Self::awp_delta(awp));
        Status::Running
    }

    fn op_tset(&mut self, slot: Slot, ex: usize) -> Status {
        let Instruction::Tset { rd, base, offset } = slot.instr else {
            unreachable!("kind/instr mismatch");
        };
        let s = slot.stream;
        let addr = self.read_reg(s, base).wrapping_add(offset as i16 as u16);
        self.data_read(slot, ex, addr, rd, 0, true);
        Status::Running
    }

    #[inline(always)]
    fn op_jmp(&mut self, slot: Slot, ex: usize) -> Status {
        let Instruction::Jmp { cond, target } = slot.instr else {
            unreachable!("kind/instr mismatch");
        };
        let s = slot.stream;
        self.stats.flow_instructions += 1;
        if eval_cond(cond, self.streams[s].flags) {
            self.streams[s].pc = target;
            self.flush(ex, s, false, FlushCause::Jump);
        }
        Status::Running
    }

    fn op_call(&mut self, slot: Slot, ex: usize) -> Status {
        let Instruction::Call { target } = slot.instr else {
            unreachable!("kind/instr mismatch");
        };
        let s = slot.stream;
        self.stats.flow_instructions += 1;
        self.apply_awp(s, 1);
        let ret = slot.pc.wrapping_add(1);
        self.streams[s].window.write(0, ret);
        self.streams[s].pc = target;
        self.flush(ex, s, false, FlushCause::Jump);
        Status::Running
    }

    fn op_ret(&mut self, slot: Slot, ex: usize) -> Status {
        let Instruction::Ret { pop } = slot.instr else {
            unreachable!("kind/instr mismatch");
        };
        let s = slot.stream;
        self.stats.flow_instructions += 1;
        self.apply_awp(s, -(pop as i32));
        let ret = self.streams[s].window.read(0);
        self.apply_awp(s, -1);
        self.streams[s].pc = ret;
        self.flush(ex, s, false, FlushCause::Jump);
        Status::Running
    }

    fn op_reti(&mut self, slot: Slot, ex: usize) -> Status {
        let s = slot.stream;
        self.stats.flow_instructions += 1;
        if let Some(frame) = self.streams[s].service.pop() {
            self.streams[s].clear_irq(frame.bit);
            self.streams[s].pc = frame.resume_pc;
            self.streams[s].flags = frame.flags;
            self.flush(ex, s, false, FlushCause::Jump);
        }
        Status::Running
    }

    fn op_winc(&mut self, slot: Slot, _ex: usize) -> Status {
        let Instruction::Winc { n } = slot.instr else {
            unreachable!("kind/instr mismatch");
        };
        self.apply_awp(slot.stream, n as i32);
        Status::Running
    }

    fn op_wdec(&mut self, slot: Slot, _ex: usize) -> Status {
        let Instruction::Wdec { n } = slot.instr else {
            unreachable!("kind/instr mismatch");
        };
        self.apply_awp(slot.stream, -(n as i32));
        Status::Running
    }

    fn op_fork(&mut self, slot: Slot, _ex: usize) -> Status {
        let Instruction::Fork { stream, target } = slot.instr else {
            unreachable!("kind/instr mismatch");
        };
        self.stats.flow_instructions += 1;
        let t = stream as usize;
        if t < self.streams.len() {
            let cycle = self.cycle;
            if !self.streams[t].active() {
                self.streams[t].pc = target;
            } else {
                self.stats.forks_ignored += 1;
            }
            self.streams[t].raise(0, cycle);
        }
        Status::Running
    }

    fn op_signal(&mut self, slot: Slot, _ex: usize) -> Status {
        let Instruction::Signal { stream, bit } = slot.instr else {
            unreachable!("kind/instr mismatch");
        };
        let t = stream as usize;
        if t < self.streams.len() {
            let cycle = self.cycle;
            self.streams[t].raise(bit, cycle);
        }
        Status::Running
    }

    fn op_clri(&mut self, slot: Slot, _ex: usize) -> Status {
        let Instruction::Clri { bit } = slot.instr else {
            unreachable!("kind/instr mismatch");
        };
        self.streams[slot.stream].clear_irq(bit);
        Status::Running
    }

    fn op_stop(&mut self, slot: Slot, ex: usize) -> Status {
        let s = slot.stream;
        // Deactivate the current priority level; pending higher or
        // lower requests stay latched.
        let level = self.streams[s].service_level();
        self.streams[s].clear_irq(level);
        self.streams[s].pc = slot.pc.wrapping_add(1);
        self.flush(ex, s, false, FlushCause::Jump);
        Status::Running
    }

    fn op_halt(&mut self, _slot: Slot, ex: usize) -> Status {
        self.halted = true;
        // Older in-flight instructions have executed; count them as
        // retired before stopping.
        for i in ex + 1..self.config.pipeline_depth {
            let idx = self.stage_idx(i);
            if let Some(older) = self.pipe[idx].take() {
                self.retire(older);
            }
        }
        Status::Halted
    }

    fn op_brk(&mut self, slot: Slot, _ex: usize) -> Status {
        Status::Breakpoint {
            stream: slot.stream,
            pc: slot.pc,
        }
    }

    fn op_fault(&mut self, _slot: Slot, _ex: usize) -> Status {
        unreachable!("fault entries are rejected at fetch and never enter the pipe");
    }

    /// Load/`tset` path shared by `ld`, `lda` and `tset`.
    fn data_read(&mut self, slot: Slot, ex: usize, addr: u16, rd: Reg, awp: i32, tset: bool) {
        let s = slot.stream;
        if self.intmem.contains(addr) {
            let value = if tset {
                self.intmem.test_and_set(addr)
            } else {
                self.intmem.read_counted(addr)
            };
            self.write_reg(s, rd, value);
            self.apply_awp(s, awp);
            return;
        }
        if self.abi.busy() {
            self.cancel_access(slot, ex);
            return;
        }
        let Some(latency) = self.fault_checked_latency(s, addr, false) else {
            // Aborted unmapped access: the destination register keeps its
            // old value; the window adjustment still applies so frame
            // bookkeeping stays balanced.
            self.apply_awp(s, awp);
            return;
        };
        if latency == 0 {
            let value = if tset {
                let old = self.bus.read(addr);
                self.bus.write(addr, 0xffff);
                old
            } else {
                self.bus.read(addr)
            };
            self.write_reg(s, rd, value);
            self.apply_awp(s, awp);
            return;
        }
        let dest = self.resolve_target(s, rd);
        let op = if tset {
            BusOp::TestAndSet { dest }
        } else {
            BusOp::Read { dest }
        };
        self.start_access(slot, ex, addr, op, latency, awp);
    }

    /// Store path shared by `st` and `sta`.
    fn data_write(&mut self, slot: Slot, ex: usize, addr: u16, value: u16, awp: i32) {
        let s = slot.stream;
        if self.intmem.contains(addr) {
            self.intmem.write(addr, value);
            self.apply_awp(s, awp);
            return;
        }
        if self.abi.busy() {
            self.cancel_access(slot, ex);
            return;
        }
        let Some(latency) = self.fault_checked_latency(s, addr, true) else {
            // Aborted unmapped access: the store is dropped.
            self.apply_awp(s, awp);
            return;
        };
        if latency == 0 {
            self.bus.write(addr, value);
            self.apply_awp(s, awp);
            return;
        }
        self.start_access(slot, ex, addr, BusOp::Write { value }, latency, awp);
    }

    /// Cancels an external access that found the bus busy: the instruction
    /// and its younger same-stream slots are flushed, the PC rolls back to
    /// the access, and the stream waits for the bus to free (§4.1: *"If the
    /// bus was busy at the time access is requested, the instruction is
    /// flushed and a new external access is requested once the IS is out of
    /// the wait state"*).
    fn cancel_access(&mut self, slot: Slot, ex: usize) {
        let s = slot.stream;
        self.abi.reject();
        self.flush(ex, s, true, FlushCause::BusBusy);
        self.streams[s].pc = slot.pc;
        self.streams[s].wait = WaitState::BusFree;
    }

    /// Starts an external transaction: younger same-stream slots are
    /// flushed and the stream enters a wait state so other streams keep
    /// the pipeline full (§4.1).
    fn start_access(
        &mut self,
        slot: Slot,
        ex: usize,
        addr: u16,
        op: BusOp,
        latency: u32,
        awp: i32,
    ) {
        let s = slot.stream;
        let started = self.abi.start(Transaction {
            stream: s,
            addr,
            op,
            remaining: latency,
        });
        if started.is_err() {
            // Unreachable through the EX path (`data_read`/`data_write`
            // check `busy()` first), but a typed rejection degrades to a
            // cancelled access instead of aborting the whole simulation.
            self.cancel_access(slot, ex);
            return;
        }
        self.stats.external_accesses += 1;
        // Re-tag this instruction's scoreboard entry so the destination
        // stays busy until the bus delivers the data.
        for p in &mut self.streams[s].pending {
            if p.seq == slot.seq {
                p.seq = BUS_SEQ;
            }
        }
        self.flush(ex, s, false, FlushCause::Io);
        // Flushed younger instructions re-fetch after the wait.
        self.streams[s].pc = slot.pc.wrapping_add(1);
        self.streams[s].wait = WaitState::BusTransaction;
        self.apply_awp(s, awp);
        self.events.push(TraceEvent::BusStart {
            stream: s,
            addr,
            latency,
        });
    }

    /// Delivers pending vectored interrupts to streams with no unexecuted
    /// instructions in flight.
    fn deliver_vectors(&mut self, ex: usize) {
        for s in 0..self.streams.len() {
            let Some(bit) = self.streams[s].pending_interrupt() else {
                continue;
            };
            let Some(target) = self.streams[s].vectors[bit as usize] else {
                // No vector installed: the bit keeps the stream active but
                // execution continues sequentially (background-style).
                continue;
            };
            if self.streams[s].wait != WaitState::None {
                continue;
            }
            // Preempt: unexecuted in-flight instructions are flushed and
            // re-run after `reti`; resume at the oldest of them (the one
            // closest to EX), or at the current PC when none are in
            // flight.
            let oldest_pc = (0..ex)
                .filter_map(|i| self.pipe[self.stage_idx(i)].as_ref())
                .filter(|sl| sl.stream == s)
                .map(|sl| sl.pc)
                .next_back();
            let resume = match oldest_pc {
                Some(pc) => {
                    self.flush(ex, s, false, FlushCause::Irq);
                    pc
                }
                None => self.streams[s].pc,
            };
            let flags = self.streams[s].flags;
            self.streams[s].service.push(ServiceFrame {
                bit,
                resume_pc: resume,
                flags,
            });
            self.streams[s].pc = target;
            self.stats.vectors_taken[s] += 1;
            if let Some(raised) = self.streams[s].irq_raised_at[bit as usize] {
                self.stats
                    .irq_latency
                    .record(self.cycle.saturating_sub(raised));
            }
            self.events.push(TraceEvent::Vector {
                stream: s,
                bit,
                target,
            });
        }
    }

    // (issue-hazard test lives in the free `stream_hazard_entry` so the
    // lazy fetch probe can call it without borrowing the whole machine.)

    fn fetch(&mut self) -> Result<(), SimError> {
        let n = self.streams.len();
        self.fetch_probe[..n].fill(Probe::Unknown);
        // The scheduler queries readiness on demand: on most cycles the
        // slot owner is ready and no other stream is ever decoded or
        // hazard-checked. Results are memoized per cycle because the
        // reallocation scan may revisit a stream.
        let Self {
            scheduler,
            streams,
            stats,
            ops,
            program,
            legacy_decode,
            fetch_probe,
            fetch_entry,
            attr_hazard,
            ..
        } = self;
        let legacy = *legacy_decode;
        let picked = scheduler.pick_with(|s| match fetch_probe[s] {
            Probe::Ready => true,
            Probe::NotReady => false,
            Probe::Unknown => {
                let st = &streams[s];
                let ready = if !st.active() || st.wait != WaitState::None || st.spill_stall > 0 {
                    false
                } else {
                    // Predecoded table on the hot path; live decode when
                    // the legacy differential switch is on. Addresses past
                    // the image are word 0 (`nop`), as predecoded.
                    let entry = if legacy {
                        predecode(program.word(st.pc))
                    } else {
                        ops.get(st.pc as usize).copied().unwrap_or(NOP_ENTRY)
                    };
                    if entry.kind == K_FAULT {
                        // Report ready so the fetch below raises the fault
                        // on the cycle the stream is actually picked.
                        fetch_entry[s] = entry;
                        true
                    } else if stream_hazard_entry(st, &entry) {
                        stats.hazard_stalls[s] += 1;
                        attr_hazard[s] = true;
                        false
                    } else {
                        fetch_entry[s] = entry;
                        true
                    }
                };
                fetch_probe[s] = if ready { Probe::Ready } else { Probe::NotReady };
                ready
            }
        });
        let Some(s) = picked else {
            self.stats.bubbles += 1;
            return Ok(());
        };
        let pc = self.streams[s].pc;
        let e = self.fetch_entry[s];
        if e.kind == K_FAULT {
            return Err(SimError::Decode {
                stream: s,
                pc,
                word: self.program.word(pc),
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let st = &mut self.streams[s];
        st.pc = pc.wrapping_add(1);
        if e.dst_mask != 0 {
            st.pending.push(PendingWrite {
                seq,
                mask: e.dst_mask,
            });
            st.pending_mask |= e.dst_mask;
        }
        if e.moves_window {
            st.window_moves += 1;
        }
        let idx0 = self.stage_idx(0);
        debug_assert!(self.pipe[idx0].is_none(), "fetch into occupied pipe slot");
        self.pipe[idx0] = Some(Slot {
            stream: s,
            pc,
            instr: e.instr,
            seq,
            moves_window: e.moves_window,
            kind: e.kind,
        });
        self.live_slots += 1;
        Ok(())
    }

    // ---- snapshot / restore ---------------------------------------------

    /// Serializes the complete machine state as a `disc-snap/v1` blob:
    /// every stream context (registers, flags, service stack, vectors,
    /// in-flight writes, stack window + AWP), the pipeline, internal
    /// memory, scheduler and ABI state, all statistics, and the external
    /// bus via [`DataBus::save_state`].
    ///
    /// The blob begins with a fingerprint of the machine configuration and
    /// a hash of the program image; [`restore`](Self::restore) refuses
    /// blobs taken under an incompatible configuration or a different
    /// program. The fingerprint deliberately excludes
    /// [`StepMode`]/[`DispatchMode`] — those knobs are timing-invisible,
    /// so a snapshot taken under one mode restores under any other (the
    /// basis of fork-per-mode differential fuzzing).
    ///
    /// Snapshots capture state *between* cycles; call this only at a cycle
    /// boundary (never from inside a [`TraceSink`] callback).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        disc_snap::write_header(
            &mut w,
            self.config.fingerprint(),
            program_hash(&self.program),
        );
        w.put_u64(self.cycle);
        w.put_bool(self.halted);
        w.put_u64(self.next_seq);
        w.put_bool(self.idle_exit);
        w.put_bool(self.legacy_decode);
        w.put_usize(self.globals.len());
        for &g in &self.globals {
            w.put_u16(g);
        }
        w.put_usize(self.streams.len());
        for st in &self.streams {
            st.save_into(&mut w);
        }
        self.intmem.save_into(&mut w);
        self.scheduler.save_into(&mut w);
        self.abi.save_into(&mut w);
        // Pipeline slots in logical stage order; the instruction and its
        // predecoded properties re-derive from (pc) at restore, so only
        // the identity of each in-flight fetch is stored.
        let depth = self.config.pipeline_depth;
        w.put_usize(depth);
        for i in 0..depth {
            match &self.pipe[self.stage_idx(i)] {
                Some(slot) => {
                    w.put_u8(1);
                    w.put_usize(slot.stream);
                    w.put_u16(slot.pc);
                    w.put_u64(slot.seq);
                }
                None => w.put_u8(0),
            }
        }
        self.stats.save_into(&mut w);
        w.put_u64(self.skip_stats.skips);
        w.put_u64(self.skip_stats.cycles_skipped);
        w.put_u64(self.sb_stats.bursts);
        w.put_u64(self.sb_stats.burst_cycles);
        w.put_u64(self.sb_stats.burst_issues);
        w.put_u64(self.sb_stats.entry_rejects);
        // Run-loop pacing state: without it, a restored machine would
        // probe for bursts/skips on a different schedule than the one
        // that produced the snapshot, perturbing the diagnostic counters.
        w.put_u64(self.sb_backoff);
        w.put_bool(self.sb_carry);
        w.put_u64(self.sb_carry_len);
        w.put_bool(self.skip_carry);
        match &self.pending_error {
            None => w.put_u8(0),
            Some(SimError::Decode { stream, pc, word }) => {
                w.put_u8(1);
                w.put_usize(*stream);
                w.put_u16(*pc);
                w.put_u32(*word);
            }
            Some(SimError::UnhandledStackFault { stream }) => {
                w.put_u8(2);
                w.put_usize(*stream);
            }
            Some(SimError::UnhandledBusFault { stream, addr }) => {
                w.put_u8(3);
                w.put_usize(*stream);
                w.put_u16(*addr);
            }
        }
        w.put_bytes(&self.bus.save_state());
        w.into_bytes()
    }

    /// Restores state serialized by [`snapshot`](Self::snapshot) onto this
    /// machine.
    ///
    /// The machine must have been constructed with a configuration whose
    /// [`fingerprint`](MachineConfig::fingerprint) matches the snapshot's
    /// (step/dispatch mode may differ), the same program, and a bus of the
    /// same kind and construction — trait objects cannot be rebuilt from
    /// bytes, so restore *applies* serialized state to an
    /// identically-assembled machine rather than conjuring one.
    ///
    /// Per-cycle scratch (pending trace events, IRQ staging, attribution
    /// flags) is cleared, so an attached [`TraceSink`] resumes cleanly at
    /// the restored cycle with no stale events from before the snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] when the blob is malformed, was produced
    /// under an incompatible configuration or different program, or does
    /// not match this machine's bus.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        let header = disc_snap::read_header(&mut r)?;
        let fp = self.config.fingerprint();
        if header.config_fingerprint != fp {
            return Err(SnapError::FingerprintMismatch {
                expected: fp,
                found: header.config_fingerprint,
            });
        }
        let ph = program_hash(&self.program);
        if header.program_hash != ph {
            return Err(SnapError::ProgramMismatch {
                expected: ph,
                found: header.program_hash,
            });
        }
        self.cycle = r.get_u64()?;
        self.halted = r.get_bool()?;
        self.next_seq = r.get_u64()?;
        self.idle_exit = r.get_bool()?;
        self.legacy_decode = r.get_bool()?;
        let nglobals = r.get_usize()?;
        if nglobals != self.globals.len() {
            return Err(SnapError::Corrupt(format!(
                "global register count mismatch: machine {}, snapshot {nglobals}",
                self.globals.len()
            )));
        }
        for g in self.globals.iter_mut() {
            *g = r.get_u16()?;
        }
        let nstreams = r.get_usize()?;
        if nstreams != self.streams.len() {
            return Err(SnapError::Corrupt(format!(
                "stream count mismatch: machine {}, snapshot {nstreams}",
                self.streams.len()
            )));
        }
        for st in self.streams.iter_mut() {
            st.restore_from(&mut r)?;
        }
        self.intmem.restore_from(&mut r)?;
        self.scheduler.restore_from(&mut r)?;
        self.abi.restore_from(&mut r)?;
        let depth = r.get_usize()?;
        if depth != self.config.pipeline_depth {
            return Err(SnapError::Corrupt(format!(
                "pipeline depth mismatch: machine {}, snapshot {depth}",
                self.config.pipeline_depth
            )));
        }
        self.pipe = [None; MAX_PIPE];
        self.pipe_head = 0;
        self.live_slots = 0;
        for i in 0..depth {
            if r.get_u8()? == 0 {
                continue;
            }
            let stream = r.get_usize()?;
            if stream >= self.streams.len() {
                return Err(SnapError::Corrupt(format!(
                    "pipe slot stream {stream} out of range"
                )));
            }
            let pc = r.get_u16()?;
            let seq = r.get_u64()?;
            let entry = if self.legacy_decode {
                predecode(self.program.word(pc))
            } else {
                self.ops.get(pc as usize).copied().unwrap_or(NOP_ENTRY)
            };
            if entry.kind == K_FAULT {
                // Undecodable words fault at fetch and never enter the
                // pipe, so a snapshot can only claim one through
                // corruption.
                return Err(SnapError::Corrupt(format!(
                    "pipe slot holds undecodable word at pc {pc:#06x}"
                )));
            }
            self.pipe[i] = Some(Slot {
                stream,
                pc,
                instr: entry.instr,
                seq,
                moves_window: entry.moves_window,
                kind: entry.kind,
            });
            self.live_slots += 1;
        }
        self.stats.restore_from(&mut r)?;
        self.skip_stats.skips = r.get_u64()?;
        self.skip_stats.cycles_skipped = r.get_u64()?;
        self.sb_stats.bursts = r.get_u64()?;
        self.sb_stats.burst_cycles = r.get_u64()?;
        self.sb_stats.burst_issues = r.get_u64()?;
        self.sb_stats.entry_rejects = r.get_u64()?;
        self.sb_backoff = r.get_u64()?;
        self.sb_carry = r.get_bool()?;
        self.sb_carry_len = r.get_u64()?;
        self.skip_carry = r.get_bool()?;
        self.pending_error = match r.get_u8()? {
            0 => None,
            1 => Some(SimError::Decode {
                stream: r.get_usize()?,
                pc: r.get_u16()?,
                word: r.get_u32()?,
            }),
            2 => Some(SimError::UnhandledStackFault {
                stream: r.get_usize()?,
            }),
            3 => Some(SimError::UnhandledBusFault {
                stream: r.get_usize()?,
                addr: r.get_u16()?,
            }),
            t => return Err(SnapError::Corrupt(format!("bad pending-error tag {t}"))),
        };
        let bus_state = r.get_bytes()?;
        self.bus.restore_state(bus_state)?;
        r.finish()?;
        // Per-cycle scratch never crosses a snapshot: events staged before
        // the snapshot belong to the cycle that produced them, not to the
        // first cycle after restore.
        self.events.clear();
        self.irq_buf.clear();
        self.attr_spill.fill(false);
        self.attr_hazard.fill(false);
        self.fetch_probe.fill(Probe::Unknown);
        self.fetch_entry.fill(NOP_ENTRY);
        Ok(())
    }

    /// Clones this machine's state into a fresh machine built with
    /// `config` and `bus` — the general fork: `config` may differ in
    /// step/dispatch mode (anything else fails the fingerprint check in
    /// [`restore`](Self::restore)), and `bus` must be constructed
    /// identically to this machine's bus so its serialized state applies.
    ///
    /// The fork shares no state with the original and carries no trace
    /// sink.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] when `config` is timing-incompatible or `bus`
    /// is of a different kind/construction than this machine's.
    pub fn fork_with(
        &self,
        config: MachineConfig,
        bus: Box<dyn DataBus>,
    ) -> Result<Machine, SnapError> {
        let snap = self.snapshot();
        let mut fork = Machine::with_bus(config, &self.program, bus);
        fork.restore(&snap)?;
        Ok(fork)
    }

    /// Clones this machine into an independent copy with the same
    /// configuration.
    ///
    /// # Errors
    ///
    /// The fork's bus is a fresh [`FlatBus`], so this only succeeds when
    /// the original machine also runs on a `FlatBus` (the default of
    /// [`Machine::new`]); machines on custom buses fork through
    /// [`fork_with`](Self::fork_with) with an identically-built bus.
    pub fn fork(&self) -> Result<Machine, SnapError> {
        let config = self.config.clone();
        let latency = config.default_ext_latency;
        self.fork_with(config, Box::new(FlatBus::new(latency)))
    }
}

/// Order-sensitive hash of the full program image — words, entry points
/// and interrupt vectors — used to pin snapshots to the exact program they
/// were taken under.
fn program_hash(program: &Program) -> u64 {
    let mut h: u64 = 0x4449_5343; // "DISC"
    let mut fold = |x: u64| h = splitmix64(h ^ x);
    fold(program.len() as u64);
    for (addr, word) in program.iter() {
        fold(addr as u64);
        fold(word as u64);
    }
    for s in 0..disc_isa::MAX_STREAMS {
        match program.entry(s) {
            Some(pc) => fold(0x100 | pc as u64),
            None => fold(0),
        }
        for bit in 1..disc_isa::IRQ_LEVELS as u8 {
            match program.vector(s, bit) {
                Some(pc) => fold(0x200 | (bit as u64) << 16 | pc as u64),
                None => fold(1),
            }
        }
    }
    h
}
