//! The cycle-accurate DISC1 machine.
//!
//! Each cycle the machine:
//!
//! 1. ticks the external bus (peripherals may raise interrupts) and the
//!    asynchronous bus interface (a completing transaction delivers data
//!    and re-activates waiting streams);
//! 2. advances the pipeline, retiring the instruction in the write stage;
//! 3. executes the instruction that just reached the EX stage
//!    (next-to-last), resolving jumps (which flush younger same-stream
//!    slots), issuing external accesses, adjusting stack windows and
//!    performing stream control;
//! 4. lets the hardware scheduler pick a ready stream and fetches its next
//!    instruction — taking a pending vectored interrupt first when the
//!    stream has no unexecuted instructions in flight.
//!
//! A stream is **ready** when it is active (some unmasked IR bit set), not
//! waiting on the bus, not stalled by window spill traffic, and its next
//! instruction has no data hazard against the stream's own in-flight
//! instructions. Slots freed by not-ready streams are dynamically
//! reallocated by the scheduler — the defining DISC property.

use disc_isa::{AluOp, AwpMode, Cond, Instruction, Program, Reg};

use crate::abi::{Abi, BusOp, RegTarget, Transaction};
use crate::alu::{alu, eval_cond, imm_op};
use crate::config::{BusFaultPolicy, MachineConfig, StepMode};
use crate::databus::{DataBus, FlatBus, IrqRequest};
use crate::error::{Exit, SimError};
use crate::intmem::InternalMemory;
use crate::scheduler::Scheduler;
use crate::stats::{MachineStats, SkipStats};
use crate::stream::{Flags, PendingWrite, ServiceFrame, Stream, WaitState};
use crate::trace::{BusFaultKind, CycleRecord, StageSnapshot, Trace, TraceEvent, TraceSink};

/// Result of a single [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The machine is still running.
    Running,
    /// A `halt` instruction executed this cycle.
    Halted,
    /// A `brk` instruction executed this cycle; stepping may continue.
    Breakpoint {
        /// Stream that executed the breakpoint.
        stream: usize,
        /// Address of the `brk` instruction.
        pc: u16,
    },
}

/// Pseudo-register bit used in hazard masks to represent the flags.
const FLAG_BIT: u32 = 1 << 16;
/// Mask selecting the window registers `R0..R7`.
const WINDOW_MASK: u32 = 0xff;
/// Scoreboard tag for entries owned by an outstanding bus transaction.
const BUS_SEQ: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    stream: usize,
    pc: u16,
    instr: Instruction,
    seq: u64,
    moves_window: bool,
}

fn reg_bit(r: Reg) -> u32 {
    1 << r.index()
}

/// Bitmask of registers (and flags) read by `instr`.
fn source_mask(instr: &Instruction) -> u32 {
    let mut m = 0;
    for r in instr.sources() {
        m |= reg_bit(r);
        if r == Reg::Sr {
            m |= FLAG_BIT;
        }
    }
    match instr {
        Instruction::Jmp { cond, .. } if *cond != Cond::Always => m |= FLAG_BIT,
        Instruction::Ret { .. } => m |= reg_bit(Reg::R0),
        Instruction::Alu {
            op: AluOp::Adc | AluOp::Sbc,
            ..
        } => m |= FLAG_BIT,
        _ => {}
    }
    m
}

/// Bitmask of registers (and flags) written by `instr`.
fn dest_mask(instr: &Instruction) -> u32 {
    let mut m = 0;
    if let Some(r) = instr.destination() {
        m |= reg_bit(r);
        if r == Reg::Sr {
            m |= FLAG_BIT;
        }
    }
    match instr {
        Instruction::Alu { .. } | Instruction::AluImm { .. } => m |= FLAG_BIT,
        Instruction::Call { .. } => m |= reg_bit(Reg::R0),
        _ => {}
    }
    m
}

/// `true` when the next instruction of a stream has a hazard against the
/// stream's own in-flight instructions.
fn stream_hazard(st: &Stream, instr: &Instruction) -> bool {
    if st.window_moves > 0 && touches_window(instr) {
        return true;
    }
    if st.pending.is_empty() {
        return false;
    }
    // RAW only: writes retire in program order through the single EX
    // stage, so WAW/WAR need no interlock.
    let needed = source_mask(instr);
    st.pending.iter().any(|p| p.mask & needed != 0)
}

/// `true` when the instruction reads/writes window registers or moves the
/// window, so it conflicts with any in-flight window motion.
fn touches_window(instr: &Instruction) -> bool {
    instr.awp_mode() != AwpMode::None
        || (source_mask(instr) | dest_mask(instr)) & WINDOW_MASK != 0
        || matches!(
            instr,
            Instruction::Call { .. }
                | Instruction::Ret { .. }
                | Instruction::Reti
                | Instruction::Winc { .. }
                | Instruction::Wdec { .. }
        )
}

/// `true` when the instruction moves the AWP (and therefore renames the
/// visible window registers while in flight).
fn moves_window(instr: &Instruction) -> bool {
    instr.awp_mode() != AwpMode::None
        || matches!(
            instr,
            Instruction::Call { .. }
                | Instruction::Ret { .. }
                | Instruction::Winc { .. }
                | Instruction::Wdec { .. }
        )
}

/// The DISC1 machine.
///
/// See the [crate documentation](crate) for an end-to-end example.
pub struct Machine {
    config: MachineConfig,
    program: Program,
    /// Every program word decoded once at construction; `Err` holds the
    /// undecodable word so the fault can still be reported lazily at the
    /// cycle the stream actually fetches it.
    code: Vec<Result<Instruction, u32>>,
    streams: Vec<Stream>,
    globals: [u16; disc_isa::GLOBAL_REGS],
    pipe: Vec<Option<Slot>>,
    /// Occupied pipeline slots, maintained incrementally so the idle check
    /// in `run` does not rescan the pipe every cycle.
    live_slots: usize,
    scheduler: Scheduler,
    intmem: InternalMemory,
    abi: Abi,
    bus: Box<dyn DataBus>,
    stats: MachineStats,
    /// Fast-forward accounting, nonzero only under
    /// [`StepMode::EventSkip`].
    skip_stats: SkipStats,
    cycle: u64,
    halted: bool,
    next_seq: u64,
    idle_exit: bool,
    legacy_decode: bool,
    trace: Option<Box<dyn TraceSink>>,
    irq_buf: Vec<IrqRequest>,
    events: Vec<TraceEvent>,
    /// Per-cycle scratch: stream spent this cycle in a spill stall
    /// (feeds the attribution classifier without re-deriving state).
    attr_spill: Vec<bool>,
    /// Per-cycle scratch: stream was probed for issue but lost to a
    /// same-stream data hazard.
    attr_hazard: Vec<bool>,
    /// Per-cycle readiness memo for the lazy fetch probe.
    fetch_probe: Vec<Probe>,
    /// Decoded instruction for streams probed `Ready`; `None` on a stream
    /// whose next word does not decode (the fault is reported if picked).
    fetch_decoded: Vec<Option<Instruction>>,
    /// Fatal error latched inside the execute path (where `step`'s
    /// `Result` is out of reach) and surfaced at the end of the cycle.
    pending_error: Option<SimError>,
}

/// Per-stream fetch-readiness memo, reset every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Probe {
    Unknown,
    Ready,
    NotReady,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cycle", &self.cycle)
            .field("halted", &self.halted)
            .field("streams", &self.streams.len())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a machine running `program` with flat external memory of
    /// latency [`MachineConfig::default_ext_latency`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`MachineConfig::validate`]).
    pub fn new(config: MachineConfig, program: &Program) -> Self {
        let latency = config.default_ext_latency;
        Self::with_bus(config, program, Box::new(FlatBus::new(latency)))
    }

    /// Creates a machine with an explicit external bus implementation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_bus(config: MachineConfig, program: &Program, bus: Box<dyn DataBus>) -> Self {
        config.validate();
        let mut streams = Vec::with_capacity(config.streams);
        for s in 0..config.streams {
            let mut st = Stream::new(config.window_depth, config.window_policy);
            for bit in 1..disc_isa::IRQ_LEVELS as u8 {
                st.vectors[bit as usize] = program.vector(s, bit);
            }
            if let Some(entry) = program.entry(s) {
                st.pc = entry;
                st.raise(0, 0);
            }
            streams.push(st);
        }
        let scheduler = Scheduler::new(config.schedule.clone(), config.streams);
        // Predecode the whole image up front so the per-cycle fetch path
        // is a table lookup. Addresses past the image read as word 0
        // (`nop`), matching `Program::word`.
        let code = (0..program.len())
            .map(|addr| disc_isa::encode::decode(program.word(addr as u16)).map_err(|e| e.word()))
            .collect();
        Machine {
            streams,
            globals: [0; disc_isa::GLOBAL_REGS],
            pipe: vec![None; config.pipeline_depth],
            live_slots: 0,
            scheduler,
            intmem: InternalMemory::new(config.internal_words),
            abi: Abi::new(),
            bus,
            stats: MachineStats::new(config.streams),
            skip_stats: SkipStats::default(),
            cycle: 0,
            halted: false,
            next_seq: 0,
            idle_exit: true,
            legacy_decode: false,
            trace: None,
            irq_buf: Vec::new(),
            events: Vec::new(),
            attr_spill: vec![false; config.streams],
            attr_hazard: vec![false; config.streams],
            fetch_probe: vec![Probe::Unknown; config.streams],
            fetch_decoded: vec![None; config.streams],
            pending_error: None,
            code,
            program: program.clone(),
            config,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// `true` once a `halt` instruction has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Execution statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Fast-forward accounting of [`StepMode::EventSkip`]. All zero in
    /// the default cycle-by-cycle mode.
    pub fn skip_stats(&self) -> &SkipStats {
        &self.skip_stats
    }

    /// Slot-grant accounting of the hardware scheduler.
    pub fn scheduler_grants(&self) -> &[u64] {
        self.scheduler.granted()
    }

    /// Slots the hardware scheduler dynamically reallocated away from
    /// their owning stream — the paper's defining mechanism. Also folded
    /// into [`MachineStats::reallocations`] every cycle.
    pub fn scheduler_reallocations(&self) -> u64 {
        self.scheduler.reallocated()
    }

    /// Forces the original per-cycle decode path instead of the
    /// predecoded store. Cycle-for-cycle behavior must be identical; this
    /// switch exists so the differential test suite can prove it.
    #[doc(hidden)]
    pub fn set_legacy_decode(&mut self, enabled: bool) {
        self.legacy_decode = enabled;
    }

    /// The internal 2 KB memory.
    pub fn internal_memory(&self) -> &InternalMemory {
        &self.intmem
    }

    /// Mutable access to internal memory (test setup, I/O injection).
    pub fn internal_memory_mut(&mut self) -> &mut InternalMemory {
        &mut self.intmem
    }

    /// Mutable access to the external data bus (test setup and
    /// post-mortem inspection, e.g. the differential fuzz harness reading
    /// back external memory). Accesses through this handle bypass the
    /// asynchronous bus interface entirely: no latency, no transaction,
    /// no stats.
    pub fn bus_mut(&mut self) -> &mut dyn DataBus {
        &mut *self.bus
    }

    /// Immutable view of stream `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn stream(&self, s: usize) -> &Stream {
        &self.streams[s]
    }

    /// Number of configured streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Reads architectural register `r` of stream `s` (inspection path; no
    /// side effects).
    pub fn reg(&self, s: usize, r: Reg) -> u16 {
        let st = &self.streams[s];
        match r {
            r if r.is_window() => st
                .window
                .try_slot_of(r.index())
                .map(|slot| st.window.read_slot(slot))
                .unwrap_or(0),
            Reg::G0 | Reg::G1 | Reg::G2 | Reg::G3 => self.globals[(r.index() - 8) as usize],
            Reg::Sp => st.sp,
            Reg::Sr => st.flags.to_word(),
            Reg::Ir => st.ir as u16,
            Reg::Mr => st.mr as u16,
            _ => unreachable!(),
        }
    }

    /// Writes architectural register `r` of stream `s` (test setup path).
    pub fn set_reg(&mut self, s: usize, r: Reg, value: u16) {
        let cycle = self.cycle;
        let st = &mut self.streams[s];
        match r {
            r if r.is_window() => {
                if let Some(slot) = st.window.try_slot_of(r.index()) {
                    st.window.write_slot(slot, value);
                }
            }
            Reg::G0 | Reg::G1 | Reg::G2 | Reg::G3 => {
                self.globals[(r.index() - 8) as usize] = value;
            }
            Reg::Sp => st.sp = value,
            Reg::Sr => st.flags = Flags::from_word(value),
            Reg::Ir => {
                let new = value as u8;
                for bit in 0..8 {
                    if new & (1 << bit) != 0 && st.ir & (1 << bit) == 0 {
                        st.irq_raised_at[bit as usize] = Some(cycle);
                    }
                }
                st.ir = new;
            }
            Reg::Mr => st.mr = value as u8,
            _ => unreachable!(),
        }
    }

    /// Shared global register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    pub fn global(&self, i: usize) -> u16 {
        self.globals[i]
    }

    /// Sets shared global register `i`.
    pub fn set_global(&mut self, i: usize, value: u16) {
        self.globals[i] = value;
    }

    /// Raises IR bit `bit` of stream `s` (external interrupt line).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `bit` is out of range.
    pub fn raise_interrupt(&mut self, s: usize, bit: u8) {
        let cycle = self.cycle;
        self.streams[s].raise(bit, cycle);
    }

    /// Sets the interrupt vector of (`s`, `bit`) at run time.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is 0 (background never vectors) or out of range.
    pub fn set_vector(&mut self, s: usize, bit: u8, target: u16) {
        assert!((1..8).contains(&bit), "vector bit must be 1..=7");
        self.streams[s].vectors[bit as usize] = Some(target);
    }

    /// Controls whether [`Machine::run`] returns [`Exit::AllIdle`] when no
    /// stream is active and nothing is in flight. Disable when bus
    /// peripherals raise interrupts at future times.
    pub fn set_idle_exit(&mut self, enabled: bool) {
        self.idle_exit = enabled;
    }

    /// Starts collecting a cycle trace of at most `capacity` cycles into
    /// the built-in bounded ring buffer. Capacity 0 keeps nothing (the
    /// machine still runs, the buffer just stays empty).
    pub fn trace_start(&mut self, capacity: usize) {
        self.trace = Some(Box::new(Trace::new(capacity)));
    }

    /// Stops tracing and returns the collected trace.
    ///
    /// Returns `Some` only when the active sink is the bounded [`Trace`]
    /// installed by [`Machine::trace_start`]; any other sink is finished
    /// and dropped — recover custom sinks with
    /// [`Machine::take_trace_sink`] instead.
    pub fn trace_take(&mut self) -> Option<Trace> {
        self.take_trace_sink()
            .and_then(|sink| sink.into_any().downcast::<Trace>().ok())
            .map(|t| *t)
    }

    /// Installs an arbitrary [`TraceSink`] observing every subsequent
    /// cycle, replacing any previous sink without finishing it.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Removes the active sink, calling [`TraceSink::finish`] on it so
    /// buffered output is flushed before the sink is handed back.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut sink = self.trace.take()?;
        sink.finish();
        Some(sink)
    }

    /// `true` when every stream is inactive and nothing is in flight.
    ///
    /// Checked after every cycle by [`Machine::run`], so the hot case (a
    /// busy machine) must be cheap: the pipe occupancy is an incrementally
    /// maintained counter, and the per-stream scan only runs on the rare
    /// cycles where the pipe is empty and the bus is quiet.
    pub fn all_idle(&self) -> bool {
        self.live_slots == 0 && !self.abi.busy() && self.streams.iter().all(|s| !s.active())
    }

    /// Runs until halt, breakpoint, idleness or the cycle budget expires.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Decode`] when a stream fetches an undecodable
    /// program word, or [`SimError::UnhandledBusFault`] when a bus fault
    /// under [`BusFaultPolicy::Fault`] cannot be delivered because the
    /// stream masks the bus-error interrupt.
    pub fn run(&mut self, max_cycles: u64) -> Result<Exit, SimError> {
        if self.config.step_mode == StepMode::EventSkip {
            return self.run_event_skip(max_cycles);
        }
        for _ in 0..max_cycles {
            match self.step()? {
                Status::Running => {}
                Status::Halted => return Ok(Exit::Halted),
                Status::Breakpoint { stream, pc } => return Ok(Exit::Breakpoint { stream, pc }),
            }
            if self.idle_exit && self.all_idle() {
                return Ok(Exit::AllIdle);
            }
        }
        Ok(Exit::CycleLimit)
    }

    /// [`run`](Self::run) under [`StepMode::EventSkip`]: identical to the
    /// cycle-by-cycle loop except that between steps, when the machine is
    /// provably quiescent (nothing can issue, execute or change state),
    /// time jumps straight to the next wake event with one bulk counter
    /// update instead of stepping through the stall cycles one by one.
    fn run_event_skip(&mut self, max_cycles: u64) -> Result<Exit, SimError> {
        let mut remaining = max_cycles;
        while remaining > 0 {
            match self.step()? {
                Status::Running => {}
                Status::Halted => return Ok(Exit::Halted),
                Status::Breakpoint { stream, pc } => return Ok(Exit::Breakpoint { stream, pc }),
            }
            remaining -= 1;
            if self.idle_exit && self.all_idle() {
                return Ok(Exit::AllIdle);
            }
            if remaining > 0 && self.quiescent() {
                let n = self.next_wake(remaining) - self.cycle;
                if n > 0 {
                    self.apply_skip(n);
                    remaining -= n;
                }
            }
        }
        Ok(Exit::CycleLimit)
    }

    /// `true` when the next step provably changes no architectural state
    /// beyond counter ticks: the pipeline is empty, no stream can issue
    /// (inactive, bus-waiting or spill-stalled), and no stream would take
    /// a vectored interrupt. Peripheral/ABI/sink activity is bounded
    /// separately by [`next_wake`](Self::next_wake).
    fn quiescent(&self) -> bool {
        if self.live_slots != 0 {
            return false;
        }
        self.streams.iter().all(|st| {
            if st.wait != WaitState::None {
                return true;
            }
            // A deliverable vector preempts even a spill-stalled stream
            // (vector delivery does not check `spill_stall`).
            if st
                .pending_interrupt()
                .is_some_and(|bit| st.vectors[bit as usize].is_some())
            {
                return false;
            }
            !st.active() || st.spill_stall > 0
        })
    }

    /// First absolute cycle whose step must run normally, bounded by the
    /// remaining cycle `budget`: the minimum over the outstanding ABI
    /// transaction's completion (or fault-policy timeout), the bus's next
    /// peripheral event, the spill-stall expiry of any stream that would
    /// become issuable, and the attached sink's next observation.
    fn next_wake(&self, budget: u64) -> u64 {
        let now = self.cycle;
        let mut wake = now.saturating_add(budget);
        if let Some(txn) = self.abi.current() {
            // `tick` completes the transaction when `remaining` reaches 1,
            // i.e. during the step starting `remaining - 1` cycles from
            // now; the timeout abort fires on the step that pushes
            // `elapsed` past the configured limit.
            wake = wake.min(now + u64::from(txn.remaining) - 1);
            if self.config.bus_fault == BusFaultPolicy::Fault && self.config.abi_timeout > 0 {
                wake = wake.min(
                    now + self
                        .config
                        .abi_timeout
                        .saturating_sub(self.abi.elapsed() + 1),
                );
            }
        }
        if let Some(t) = self.bus.next_event(now) {
            wake = wake.min(t.max(now));
        }
        for st in &self.streams {
            // The spill countdown and the fetch happen in the same step,
            // so a stream with `spill_stall == k` can issue during the
            // step starting `k - 1` cycles from now.
            if st.active() && st.wait == WaitState::None && st.spill_stall > 0 {
                wake = wake.min(now + u64::from(st.spill_stall) - 1);
            }
        }
        if let Some(sink) = &self.trace {
            if let Some(t) = sink.next_observe(now) {
                wake = wake.min(t.max(now));
            }
        }
        wake
    }

    /// Bulk-applies `n` quiescent cycles: exactly the counter updates `n`
    /// individual steps would have made, without touching architectural
    /// state (which [`quiescent`](Self::quiescent) proved frozen).
    fn apply_skip(&mut self, n: u64) {
        debug_assert!(n > 0);
        for (s, st) in self.streams.iter_mut().enumerate() {
            let dec = n.min(u64::from(st.spill_stall));
            let attr = &mut self.stats.attribution;
            match st.wait {
                WaitState::BusTransaction => {
                    self.stats.wait_txn_cycles[s] += n;
                    attr.bus_txn_wait[s] += n;
                }
                WaitState::BusFree => {
                    self.stats.wait_bus_free_cycles[s] += n;
                    attr.bus_free_wait[s] += n;
                }
                WaitState::None => {
                    // Active spill-stalled streams bound the wake cycle,
                    // so here `n - dec > 0` only for inactive streams,
                    // which fall to idle once their spill expires.
                    attr.spill_stall[s] += dec;
                    attr.idle[s] += n - dec;
                }
            }
            // The flat spill counter ticks for every stream regardless of
            // wait state, exactly as the per-step countdown does.
            st.spill_stall -= dec as u32;
            self.stats.spill_stall_cycles[s] += dec;
        }
        self.stats.bubbles += n;
        self.stats.cycles += n;
        self.cycle += n;
        self.scheduler.advance_idle(n);
        self.abi.advance(n);
        self.bus.advance(n);
        self.skip_stats.skips += 1;
        self.skip_stats.cycles_skipped += n;
        debug_assert!(
            (0..self.streams.len()).all(|s| self.stats.attribution.total(s) == self.stats.cycles),
            "cycle attribution diverged from elapsed cycles during a skip"
        );
    }

    /// Advances the machine by one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Decode`] when a stream fetches an undecodable
    /// program word, or [`SimError::UnhandledBusFault`] when a bus fault
    /// cannot be delivered (see [`Machine::run`]).
    pub fn step(&mut self) -> Result<Status, SimError> {
        if self.halted {
            return Ok(Status::Halted);
        }
        self.events.clear();
        self.attr_spill.fill(false);
        self.attr_hazard.fill(false);
        let ex = self.config.pipeline_depth - 2;

        // 1. Peripheral time and interrupt lines.
        self.irq_buf.clear();
        self.bus.tick(&mut self.irq_buf);
        let cycle = self.cycle;
        for i in 0..self.irq_buf.len() {
            let irq = self.irq_buf[i];
            if irq.stream < self.streams.len() && irq.bit < 8 {
                self.streams[irq.stream].raise(irq.bit, cycle);
            }
        }

        // 2. Asynchronous bus interface. Under the fault policy a
        // transaction outstanding longer than `abi_timeout` is aborted —
        // the bus frees, every waiter wakes and the issuing stream takes a
        // bus-error interrupt — so a peripheral that never completes can
        // stall at most its own stream for at most `abi_timeout` cycles.
        if let Some(txn) = self.abi.tick() {
            self.complete_transaction(txn);
        } else if self.config.bus_fault == BusFaultPolicy::Fault
            && self.config.abi_timeout > 0
            && self.abi.elapsed() >= self.config.abi_timeout
        {
            if let Some(txn) = self.abi.abort() {
                self.abort_transaction(txn);
            }
        }

        // 3. Pipeline advance: retire the write stage, shift the rest.
        let depth = self.config.pipeline_depth;
        if let Some(slot) = self.pipe[depth - 1].take() {
            self.retire(slot);
        }
        for i in (1..depth).rev() {
            self.pipe[i] = self.pipe[i - 1].take();
        }

        // 4. Execute the slot that just reached EX.
        let mut status = Status::Running;
        if let Some(slot) = self.pipe[ex] {
            status = self.execute(slot, ex);
        }

        // 5. Spill stall countdown.
        for s in 0..self.streams.len() {
            if self.streams[s].spill_stall > 0 {
                self.streams[s].spill_stall -= 1;
                self.stats.spill_stall_cycles[s] += 1;
                self.attr_spill[s] = true;
            }
        }

        // 6. Vector delivery and fetch.
        if !self.halted {
            self.deliver_vectors(ex);
            self.fetch()?;
        }

        // 7. Per-stream wait accounting and cycle attribution. Every
        // stream lands in exactly one attribution bucket per cycle;
        // issue takes priority, so a stream whose stall expired and then
        // issued the same cycle counts as issue here even though the
        // flat stall counter above still ticked.
        let issued = self.pipe[0].as_ref().map(|slot| slot.stream);
        for (s, st) in self.streams.iter().enumerate() {
            match st.wait {
                WaitState::BusTransaction => self.stats.wait_txn_cycles[s] += 1,
                WaitState::BusFree => self.stats.wait_bus_free_cycles[s] += 1,
                WaitState::None => {}
            }
            let attr = &mut self.stats.attribution;
            if issued == Some(s) {
                attr.issue[s] += 1;
            } else if st.wait == WaitState::BusTransaction {
                attr.bus_txn_wait[s] += 1;
            } else if st.wait == WaitState::BusFree {
                attr.bus_free_wait[s] += 1;
            } else if self.attr_spill[s] {
                attr.spill_stall[s] += 1;
            } else if self.attr_hazard[s] {
                attr.hazard_stall[s] += 1;
            } else if !st.active() {
                attr.idle[s] += 1;
            } else {
                attr.not_scheduled[s] += 1;
            }
        }

        self.cycle += 1;
        self.stats.cycles += 1;
        self.stats.reallocations = self.scheduler.reallocated();
        debug_assert_eq!(
            self.live_slots,
            self.pipe.iter().filter(|s| s.is_some()).count(),
            "live slot counter diverged from pipe occupancy"
        );
        debug_assert!(
            (0..self.streams.len()).all(|s| self.stats.attribution.total(s) == self.stats.cycles),
            "cycle attribution diverged from elapsed cycles"
        );

        // 8. Trace sink. Counters-only sinks skip the record assembly
        // entirely via `wants_records`.
        if let Some(mut sink) = self.trace.take() {
            if sink.wants_records() {
                let record = CycleRecord {
                    cycle: self.cycle - 1,
                    stages: self
                        .pipe
                        .iter()
                        .map(|slot| {
                            slot.as_ref().map(|s| StageSnapshot {
                                stream: s.stream,
                                pc: s.pc,
                                instr: s.instr,
                            })
                        })
                        .collect(),
                    fetched: self.pipe[0].as_ref().map(|s| s.stream),
                    events: std::mem::take(&mut self.events),
                };
                sink.record_cycle(record);
            }
            sink.observe_stats(self.cycle - 1, &self.stats);
            self.trace = Some(sink);
        }
        if let Some(err) = self.pending_error.take() {
            return Err(err);
        }
        Ok(status)
    }

    // ---- internals ------------------------------------------------------

    /// Retires a slot just taken out of the pipe.
    fn retire(&mut self, slot: Slot) {
        self.live_slots -= 1;
        self.stats.retired[slot.stream] += 1;
        if self.trace.is_some() {
            self.events.push(TraceEvent::Retire {
                stream: slot.stream,
                pc: slot.pc,
            });
        }
        let st = &mut self.streams[slot.stream];
        st.pending.retain(|p| p.seq != slot.seq);
        if slot.moves_window {
            st.window_moves = st.window_moves.saturating_sub(1);
        }
    }

    /// Removes `slot` from the scoreboard without retiring it.
    fn unwind_slot(&mut self, slot: &Slot) {
        let st = &mut self.streams[slot.stream];
        st.pending.retain(|p| p.seq != slot.seq);
        if slot.moves_window {
            st.window_moves = st.window_moves.saturating_sub(1);
        }
    }

    /// Flushes unexecuted (younger) slots of `stream` in stages `0..ex`,
    /// plus the EX slot itself when `include_self`.
    fn flush(&mut self, ex: usize, stream: usize, include_self: bool, cause: &'static str) {
        let mut count = 0;
        let top = if include_self { ex + 1 } else { ex };
        for i in 0..top {
            if self.pipe[i].as_ref().is_some_and(|s| s.stream == stream) {
                let slot = self.pipe[i].take().expect("checked above");
                self.live_slots -= 1;
                self.unwind_slot(&slot);
                count += 1;
            }
        }
        if count > 0 {
            match cause {
                "jump" => self.stats.flushed_jump += count as u64,
                "io" => self.stats.flushed_io += count as u64,
                "irq" => self.stats.flushed_irq += count as u64,
                _ => self.stats.flushed_bus_busy += count as u64,
            }
            self.events.push(TraceEvent::Flush {
                stream,
                count,
                cause,
            });
        }
    }

    fn complete_transaction(&mut self, txn: Transaction) {
        match txn.op {
            BusOp::Read { dest } => {
                let value = self.bus.read(txn.addr);
                self.write_target(txn.stream, dest, value);
            }
            BusOp::Write { value } => self.bus.write(txn.addr, value),
            BusOp::TestAndSet { dest } => {
                let old = self.bus.read(txn.addr);
                self.bus.write(txn.addr, 0xffff);
                self.write_target(txn.stream, dest, old);
            }
        }
        // Release the issuing stream's bus-tagged scoreboard entries and
        // wake everyone waiting on the bus.
        self.streams[txn.stream]
            .pending
            .retain(|p| p.seq != BUS_SEQ);
        for st in &mut self.streams {
            if matches!(st.wait, WaitState::BusTransaction | WaitState::BusFree) {
                // Only the owner was in BusTransaction; BusFree waiters
                // retry their cancelled access now that the bus is free.
                st.wait = WaitState::None;
            }
        }
        self.events
            .push(TraceEvent::BusComplete { stream: txn.stream });
    }

    /// Aborts a timed-out transaction: the transfer never happens, the
    /// issuing stream's bus-tagged scoreboard entries are released (a
    /// faulted load leaves its destination unchanged), every stream
    /// waiting on the bus wakes, and the issuer takes a bus-error
    /// interrupt.
    fn abort_transaction(&mut self, txn: Transaction) {
        self.stats.abi_timeouts += 1;
        self.streams[txn.stream]
            .pending
            .retain(|p| p.seq != BUS_SEQ);
        for st in &mut self.streams {
            if matches!(st.wait, WaitState::BusTransaction | WaitState::BusFree) {
                st.wait = WaitState::None;
            }
        }
        self.raise_bus_fault(txn.stream, txn.addr, BusFaultKind::Timeout);
    }

    /// Delivers a bus-error interrupt to stream `s` on the configured IR
    /// bit, recording the event in the stats and the trace. A stream that
    /// masks the bit cannot be told its access failed; that latches
    /// [`SimError::UnhandledBusFault`], surfaced at the end of the cycle.
    fn raise_bus_fault(&mut self, s: usize, addr: u16, kind: BusFaultKind) {
        let bit = self.config.bus_error_bit;
        let cycle = self.cycle;
        self.stats.bus_faults[s] += 1;
        if self.streams[s].mr() & (1 << bit) == 0 && self.pending_error.is_none() {
            self.pending_error = Some(SimError::UnhandledBusFault { stream: s, addr });
        }
        self.streams[s].raise(bit, cycle);
        self.events.push(TraceEvent::BusFault {
            stream: s,
            addr,
            kind,
        });
    }

    /// Resolves the latency of an external access under the configured
    /// fault policy. `None` means the access was aborted (fault delivered)
    /// and must not touch the bus.
    fn fault_checked_latency(&mut self, s: usize, addr: u16, write: bool) -> Option<u32> {
        match self.bus.latency(addr, write) {
            Some(latency) => Some(latency),
            None => {
                self.stats.unmapped_accesses += 1;
                match self.config.bus_fault {
                    // Historical behavior: treat the unmapped access as
                    // zero-latency and hand it to the bus anyway (an
                    // address-decoded bus reads open-bus 0xffff and drops
                    // the write).
                    BusFaultPolicy::Legacy => Some(0),
                    BusFaultPolicy::Fault => {
                        self.raise_bus_fault(s, addr, BusFaultKind::Unmapped);
                        None
                    }
                }
            }
        }
    }

    fn write_target(&mut self, s: usize, target: RegTarget, value: u16) {
        match target {
            RegTarget::Window(slot) => self.streams[s].window.write_slot(slot, value),
            RegTarget::Global(i) => self.globals[i as usize] = value,
            RegTarget::Sp => self.streams[s].sp = value,
            RegTarget::Sr => self.streams[s].flags = Flags::from_word(value),
            RegTarget::Ir => {
                let cycle = self.cycle;
                let st = &mut self.streams[s];
                let new = value as u8;
                for bit in 0..8 {
                    if new & (1 << bit) != 0 && st.ir & (1 << bit) == 0 {
                        st.irq_raised_at[bit as usize] = Some(cycle);
                    }
                }
                st.ir = new;
            }
            RegTarget::Mr => self.streams[s].mr = value as u8,
        }
    }

    fn resolve_target(&self, s: usize, r: Reg) -> RegTarget {
        match r {
            // An underflowed window destination resolves to an
            // out-of-range slot, which `write_slot` discards — matching
            // the checked write path.
            r if r.is_window() => RegTarget::Window(
                self.streams[s]
                    .window
                    .try_slot_of(r.index())
                    .unwrap_or(usize::MAX),
            ),
            Reg::G0 | Reg::G1 | Reg::G2 | Reg::G3 => RegTarget::Global(r.index() - 8),
            Reg::Sp => RegTarget::Sp,
            Reg::Sr => RegTarget::Sr,
            Reg::Ir => RegTarget::Ir,
            Reg::Mr => RegTarget::Mr,
            _ => unreachable!(),
        }
    }

    fn read_reg(&mut self, s: usize, r: Reg) -> u16 {
        match r {
            r if r.is_window() => self.streams[s].window.read(r.index()),
            Reg::G0 | Reg::G1 | Reg::G2 | Reg::G3 => self.globals[(r.index() - 8) as usize],
            Reg::Sp => self.streams[s].sp,
            Reg::Sr => self.streams[s].flags.to_word(),
            Reg::Ir => self.streams[s].ir as u16,
            Reg::Mr => self.streams[s].mr as u16,
            _ => unreachable!(),
        }
    }

    fn write_reg(&mut self, s: usize, r: Reg, value: u16) {
        // Window writes go through the checked path so underflow is
        // counted and dropped consistently.
        if r.is_window() {
            self.streams[s].window.write(r.index(), value);
        } else {
            let target = self.resolve_target(s, r);
            self.write_target(s, target, value);
        }
    }

    fn apply_awp(&mut self, s: usize, delta: i32) {
        if delta == 0 {
            return;
        }
        let outcome = self.streams[s].window.adjust(delta);
        if outcome.stall_cycles > 0 {
            self.streams[s].spill_stall += outcome.stall_cycles;
            self.events.push(TraceEvent::Spill {
                stream: s,
                cycles: outcome.stall_cycles,
            });
        }
        if outcome.fault {
            let cycle = self.cycle;
            self.streams[s].raise(6, cycle);
        }
    }

    fn awp_delta(mode: AwpMode) -> i32 {
        match mode {
            AwpMode::None => 0,
            AwpMode::Inc => 1,
            AwpMode::Dec => -1,
        }
    }

    /// Executes `slot` (which just entered the EX stage).
    fn execute(&mut self, slot: Slot, ex: usize) -> Status {
        let s = slot.stream;
        match slot.instr {
            Instruction::Nop => {}
            Instruction::Alu {
                op,
                awp,
                rd,
                rs,
                rt,
            } => {
                let a = self.read_reg(s, rs);
                let b = self.read_reg(s, rt);
                let flags_in = self.streams[s].flags;
                let (result, flags) = alu(op, a, b, flags_in);
                if op.writes_rd() {
                    self.write_reg(s, rd, result);
                }
                if rd != Reg::Sr || !op.writes_rd() {
                    self.streams[s].flags = flags;
                }
                self.apply_awp(s, Self::awp_delta(awp));
            }
            Instruction::AluImm {
                op,
                awp,
                rd,
                rs,
                imm,
            } => {
                let a = self.read_reg(s, rs);
                let flags_in = self.streams[s].flags;
                let (result, flags) = alu(imm_op(op), a, imm as u16, flags_in);
                if op.writes_rd() {
                    self.write_reg(s, rd, result);
                }
                if rd != Reg::Sr || !op.writes_rd() {
                    self.streams[s].flags = flags;
                }
                self.apply_awp(s, Self::awp_delta(awp));
            }
            Instruction::Ldi { awp, rd, imm } => {
                self.write_reg(s, rd, imm as u16);
                self.apply_awp(s, Self::awp_delta(awp));
            }
            Instruction::Lui { rd, imm } => {
                let low = self.read_reg(s, rd) & 0x00ff;
                self.write_reg(s, rd, ((imm as u16) << 8) | low);
            }
            Instruction::Ld {
                awp,
                rd,
                base,
                offset,
            } => {
                let addr = self.read_reg(s, base).wrapping_add(offset as i16 as u16);
                self.data_read(slot, ex, addr, rd, Self::awp_delta(awp), false);
            }
            Instruction::Lda { awp, rd, addr } => {
                self.data_read(slot, ex, addr, rd, Self::awp_delta(awp), false);
            }
            Instruction::St {
                awp,
                src,
                base,
                offset,
            } => {
                let addr = self.read_reg(s, base).wrapping_add(offset as i16 as u16);
                let value = self.read_reg(s, src);
                self.data_write(slot, ex, addr, value, Self::awp_delta(awp));
            }
            Instruction::Sta { awp, src, addr } => {
                let value = self.read_reg(s, src);
                self.data_write(slot, ex, addr, value, Self::awp_delta(awp));
            }
            Instruction::Tset { rd, base, offset } => {
                let addr = self.read_reg(s, base).wrapping_add(offset as i16 as u16);
                self.data_read(slot, ex, addr, rd, 0, true);
            }
            Instruction::Jmp { cond, target } => {
                self.stats.flow_instructions += 1;
                if eval_cond(cond, self.streams[s].flags) {
                    self.streams[s].pc = target;
                    self.flush(ex, s, false, "jump");
                }
            }
            Instruction::Call { target } => {
                self.stats.flow_instructions += 1;
                self.apply_awp(s, 1);
                let ret = slot.pc.wrapping_add(1);
                self.streams[s].window.write(0, ret);
                self.streams[s].pc = target;
                self.flush(ex, s, false, "jump");
            }
            Instruction::Ret { pop } => {
                self.stats.flow_instructions += 1;
                self.apply_awp(s, -(pop as i32));
                let ret = self.streams[s].window.read(0);
                self.apply_awp(s, -1);
                self.streams[s].pc = ret;
                self.flush(ex, s, false, "jump");
            }
            Instruction::Reti => {
                self.stats.flow_instructions += 1;
                if let Some(frame) = self.streams[s].service.pop() {
                    self.streams[s].clear_irq(frame.bit);
                    self.streams[s].pc = frame.resume_pc;
                    self.streams[s].flags = frame.flags;
                    self.flush(ex, s, false, "jump");
                }
            }
            Instruction::Winc { n } => self.apply_awp(s, n as i32),
            Instruction::Wdec { n } => self.apply_awp(s, -(n as i32)),
            Instruction::Fork { stream, target } => {
                self.stats.flow_instructions += 1;
                let t = stream as usize;
                if t < self.streams.len() {
                    let cycle = self.cycle;
                    if !self.streams[t].active() {
                        self.streams[t].pc = target;
                    } else {
                        self.stats.forks_ignored += 1;
                    }
                    self.streams[t].raise(0, cycle);
                }
            }
            Instruction::Signal { stream, bit } => {
                let t = stream as usize;
                if t < self.streams.len() {
                    let cycle = self.cycle;
                    self.streams[t].raise(bit, cycle);
                }
            }
            Instruction::Clri { bit } => self.streams[s].clear_irq(bit),
            Instruction::Stop => {
                // Deactivate the current priority level; pending higher or
                // lower requests stay latched.
                let level = self.streams[s].service_level();
                self.streams[s].clear_irq(level);
                self.streams[s].pc = slot.pc.wrapping_add(1);
                self.flush(ex, s, false, "jump");
            }
            Instruction::Halt => {
                self.halted = true;
                // Older in-flight instructions have executed; count them
                // as retired before stopping.
                for i in ex + 1..self.pipe.len() {
                    if let Some(older) = self.pipe[i].take() {
                        self.retire(older);
                    }
                }
                return Status::Halted;
            }
            Instruction::Brk => {
                return Status::Breakpoint {
                    stream: s,
                    pc: slot.pc,
                };
            }
        }
        Status::Running
    }

    /// Load/`tset` path shared by `ld`, `lda` and `tset`.
    fn data_read(&mut self, slot: Slot, ex: usize, addr: u16, rd: Reg, awp: i32, tset: bool) {
        let s = slot.stream;
        if self.intmem.contains(addr) {
            let value = if tset {
                self.intmem.test_and_set(addr)
            } else {
                self.intmem.read_counted(addr)
            };
            self.write_reg(s, rd, value);
            self.apply_awp(s, awp);
            return;
        }
        if self.abi.busy() {
            self.cancel_access(slot, ex);
            return;
        }
        let Some(latency) = self.fault_checked_latency(s, addr, false) else {
            // Aborted unmapped access: the destination register keeps its
            // old value; the window adjustment still applies so frame
            // bookkeeping stays balanced.
            self.apply_awp(s, awp);
            return;
        };
        if latency == 0 {
            let value = if tset {
                let old = self.bus.read(addr);
                self.bus.write(addr, 0xffff);
                old
            } else {
                self.bus.read(addr)
            };
            self.write_reg(s, rd, value);
            self.apply_awp(s, awp);
            return;
        }
        let dest = self.resolve_target(s, rd);
        let op = if tset {
            BusOp::TestAndSet { dest }
        } else {
            BusOp::Read { dest }
        };
        self.start_access(slot, ex, addr, op, latency, awp);
    }

    /// Store path shared by `st` and `sta`.
    fn data_write(&mut self, slot: Slot, ex: usize, addr: u16, value: u16, awp: i32) {
        let s = slot.stream;
        if self.intmem.contains(addr) {
            self.intmem.write(addr, value);
            self.apply_awp(s, awp);
            return;
        }
        if self.abi.busy() {
            self.cancel_access(slot, ex);
            return;
        }
        let Some(latency) = self.fault_checked_latency(s, addr, true) else {
            // Aborted unmapped access: the store is dropped.
            self.apply_awp(s, awp);
            return;
        };
        if latency == 0 {
            self.bus.write(addr, value);
            self.apply_awp(s, awp);
            return;
        }
        self.start_access(slot, ex, addr, BusOp::Write { value }, latency, awp);
    }

    /// Cancels an external access that found the bus busy: the instruction
    /// and its younger same-stream slots are flushed, the PC rolls back to
    /// the access, and the stream waits for the bus to free (§4.1: *"If the
    /// bus was busy at the time access is requested, the instruction is
    /// flushed and a new external access is requested once the IS is out of
    /// the wait state"*).
    fn cancel_access(&mut self, slot: Slot, ex: usize) {
        let s = slot.stream;
        self.abi.reject();
        self.flush(ex, s, true, "bus-busy");
        self.streams[s].pc = slot.pc;
        self.streams[s].wait = WaitState::BusFree;
    }

    /// Starts an external transaction: younger same-stream slots are
    /// flushed and the stream enters a wait state so other streams keep
    /// the pipeline full (§4.1).
    fn start_access(
        &mut self,
        slot: Slot,
        ex: usize,
        addr: u16,
        op: BusOp,
        latency: u32,
        awp: i32,
    ) {
        let s = slot.stream;
        let started = self.abi.start(Transaction {
            stream: s,
            addr,
            op,
            remaining: latency,
        });
        if started.is_err() {
            // Unreachable through the EX path (`data_read`/`data_write`
            // check `busy()` first), but a typed rejection degrades to a
            // cancelled access instead of aborting the whole simulation.
            self.cancel_access(slot, ex);
            return;
        }
        self.stats.external_accesses += 1;
        // Re-tag this instruction's scoreboard entry so the destination
        // stays busy until the bus delivers the data.
        for p in &mut self.streams[s].pending {
            if p.seq == slot.seq {
                p.seq = BUS_SEQ;
            }
        }
        self.flush(ex, s, false, "io");
        // Flushed younger instructions re-fetch after the wait.
        self.streams[s].pc = slot.pc.wrapping_add(1);
        self.streams[s].wait = WaitState::BusTransaction;
        self.apply_awp(s, awp);
        self.events.push(TraceEvent::BusStart {
            stream: s,
            addr,
            latency,
        });
    }

    /// Delivers pending vectored interrupts to streams with no unexecuted
    /// instructions in flight.
    fn deliver_vectors(&mut self, ex: usize) {
        for s in 0..self.streams.len() {
            let Some(bit) = self.streams[s].pending_interrupt() else {
                continue;
            };
            let Some(target) = self.streams[s].vectors[bit as usize] else {
                // No vector installed: the bit keeps the stream active but
                // execution continues sequentially (background-style).
                continue;
            };
            if self.streams[s].wait != WaitState::None {
                continue;
            }
            // Preempt: unexecuted in-flight instructions are flushed and
            // re-run after `reti`; resume at the oldest of them (the one
            // closest to EX), or at the current PC when none are in
            // flight.
            let oldest_pc = self.pipe[..ex]
                .iter()
                .filter_map(|slot| slot.as_ref())
                .filter(|sl| sl.stream == s)
                .map(|sl| sl.pc)
                .next_back();
            let resume = match oldest_pc {
                Some(pc) => {
                    self.flush(ex, s, false, "irq");
                    pc
                }
                None => self.streams[s].pc,
            };
            let flags = self.streams[s].flags;
            self.streams[s].service.push(ServiceFrame {
                bit,
                resume_pc: resume,
                flags,
            });
            self.streams[s].pc = target;
            self.stats.vectors_taken[s] += 1;
            if let Some(raised) = self.streams[s].irq_raised_at[bit as usize] {
                self.stats
                    .irq_latency
                    .record(self.cycle.saturating_sub(raised));
            }
            self.events.push(TraceEvent::Vector {
                stream: s,
                bit,
                target,
            });
        }
    }

    // (issue-hazard test lives in the free `stream_hazard` so the lazy
    // fetch probe can call it without borrowing the whole machine.)

    fn fetch(&mut self) -> Result<(), SimError> {
        let n = self.streams.len();
        self.fetch_probe[..n].fill(Probe::Unknown);
        // The scheduler queries readiness on demand: on most cycles the
        // slot owner is ready and no other stream is ever decoded or
        // hazard-checked. Results are memoized per cycle because the
        // reallocation scan may revisit a stream.
        let Self {
            scheduler,
            streams,
            stats,
            code,
            program,
            legacy_decode,
            fetch_probe,
            fetch_decoded,
            attr_hazard,
            ..
        } = self;
        let legacy = *legacy_decode;
        let picked = scheduler.pick_with(|s| match fetch_probe[s] {
            Probe::Ready => true,
            Probe::NotReady => false,
            Probe::Unknown => {
                let st = &streams[s];
                let ready = if !st.active() || st.wait != WaitState::None || st.spill_stall > 0 {
                    false
                } else {
                    // Predecoded table on the hot path; live decode when
                    // the legacy differential switch is on. Addresses past
                    // the image are word 0 (`nop`), as predecoded.
                    let decoded = if legacy {
                        disc_isa::encode::decode(program.word(st.pc)).map_err(|e| e.word())
                    } else {
                        code.get(st.pc as usize)
                            .copied()
                            .unwrap_or(Ok(Instruction::Nop))
                    };
                    match decoded {
                        // Report ready so the fetch below raises the fault
                        // on the cycle the stream is actually picked.
                        Err(_) => {
                            fetch_decoded[s] = None;
                            true
                        }
                        Ok(instr) => {
                            if stream_hazard(st, &instr) {
                                stats.hazard_stalls[s] += 1;
                                attr_hazard[s] = true;
                                false
                            } else {
                                fetch_decoded[s] = Some(instr);
                                true
                            }
                        }
                    }
                };
                fetch_probe[s] = if ready { Probe::Ready } else { Probe::NotReady };
                ready
            }
        });
        let Some(s) = picked else {
            self.stats.bubbles += 1;
            return Ok(());
        };
        let pc = self.streams[s].pc;
        let Some(instr) = self.fetch_decoded[s] else {
            return Err(SimError::Decode {
                stream: s,
                pc,
                word: self.program.word(pc),
            });
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let dmask = dest_mask(&instr);
        let mw = moves_window(&instr);
        let st = &mut self.streams[s];
        st.pc = pc.wrapping_add(1);
        if dmask != 0 {
            st.pending.push(PendingWrite { seq, mask: dmask });
        }
        if mw {
            st.window_moves += 1;
        }
        debug_assert!(self.pipe[0].is_none(), "fetch into occupied pipe slot");
        self.pipe[0] = Some(Slot {
            stream: s,
            pc,
            instr,
            seq,
            moves_window: mw,
        });
        self.live_slots += 1;
        Ok(())
    }
}
