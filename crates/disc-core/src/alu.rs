//! The 16-bit ALU and condition evaluation shared by the DISC1 machine
//! and the conventional single-stream baseline processor, so both execute
//! identical instruction semantics.

use disc_isa::{AluImmOp, AluOp, Cond};

use crate::stream::Flags;

/// Maps an immediate-form ALU operation onto its three-operand semantics.
#[inline(always)]
pub fn imm_op(op: AluImmOp) -> AluOp {
    match op {
        AluImmOp::Addi => AluOp::Add,
        AluImmOp::Subi => AluOp::Sub,
        AluImmOp::Andi => AluOp::And,
        AluImmOp::Ori => AluOp::Or,
        AluImmOp::Xori => AluOp::Xor,
        AluImmOp::Cmpi => AluOp::Cmp,
    }
}

/// Evaluates a jump condition against the flags.
#[inline(always)]
pub fn eval_cond(cond: Cond, f: Flags) -> bool {
    match cond {
        Cond::Always => true,
        Cond::Z => f.z,
        Cond::Nz => !f.z,
        Cond::C => f.c,
        Cond::Nc => !f.c,
        Cond::N => f.n,
        Cond::Nn => !f.n,
        Cond::V => f.v,
    }
}

/// The 16-bit ALU with the 16×16 hardware multiplier.
///
/// Returns the result and the updated flags; `cmp` results are discarded
/// by the caller.
#[inline(always)]
pub fn alu(op: AluOp, a: u16, b: u16, flags: Flags) -> (u16, Flags) {
    let mut f = flags;
    let set_zn = |f: &mut Flags, r: u16| {
        f.z = r == 0;
        f.n = r & 0x8000 != 0;
    };
    let result = match op {
        AluOp::Add | AluOp::Adc => {
            let carry_in = if op == AluOp::Adc && flags.c { 1u32 } else { 0 };
            let wide = a as u32 + b as u32 + carry_in;
            let r = wide as u16;
            f.c = wide > 0xffff;
            f.v = ((a ^ r) & (b ^ r) & 0x8000) != 0;
            set_zn(&mut f, r);
            r
        }
        AluOp::Sub | AluOp::Sbc | AluOp::Cmp => {
            let borrow_in = if op == AluOp::Sbc && !flags.c {
                1u32
            } else {
                0
            };
            let wide = (a as u32).wrapping_sub(b as u32).wrapping_sub(borrow_in);
            let r = wide as u16;
            f.c = (a as u32) >= (b as u32 + borrow_in);
            f.v = ((a ^ b) & (a ^ r) & 0x8000) != 0;
            set_zn(&mut f, r);
            r
        }
        AluOp::And => {
            let r = a & b;
            f.c = false;
            f.v = false;
            set_zn(&mut f, r);
            r
        }
        AluOp::Or => {
            let r = a | b;
            f.c = false;
            f.v = false;
            set_zn(&mut f, r);
            r
        }
        AluOp::Xor => {
            let r = a ^ b;
            f.c = false;
            f.v = false;
            set_zn(&mut f, r);
            r
        }
        AluOp::Mul => {
            let r = (a as u32 * b as u32) as u16;
            f.c = false;
            f.v = false;
            set_zn(&mut f, r);
            r
        }
        AluOp::Mulh => {
            let r = ((a as u32 * b as u32) >> 16) as u16;
            f.c = false;
            f.v = false;
            set_zn(&mut f, r);
            r
        }
        AluOp::Shl => {
            let sh = (b & 0xf) as u32;
            let wide = (a as u32) << sh;
            let r = wide as u16;
            f.c = sh > 0 && (wide & 0x1_0000) != 0;
            f.v = false;
            set_zn(&mut f, r);
            r
        }
        AluOp::Shr => {
            let sh = (b & 0xf) as u32;
            let r = if sh == 0 { a } else { a >> sh };
            f.c = sh > 0 && (a >> (sh - 1)) & 1 != 0;
            f.v = false;
            set_zn(&mut f, r);
            r
        }
        AluOp::Asr => {
            let sh = (b & 0xf) as u32;
            let r = ((a as i16) >> sh) as u16;
            f.c = sh > 0 && ((a as i16) >> (sh - 1)) & 1 != 0;
            f.v = false;
            set_zn(&mut f, r);
            r
        }
        AluOp::Mov => {
            set_zn(&mut f, a);
            a
        }
        AluOp::Not => {
            let r = !a;
            set_zn(&mut f, r);
            r
        }
    };
    (result, f)
}

#[cfg(test)]
mod alu_tests {
    use super::*;

    fn flags0() -> Flags {
        Flags::default()
    }

    #[test]
    fn add_sets_carry_and_overflow() {
        let (r, f) = alu(AluOp::Add, 0xffff, 1, flags0());
        assert_eq!(r, 0);
        assert!(f.z && f.c && !f.v);
        let (r, f) = alu(AluOp::Add, 0x7fff, 1, flags0());
        assert_eq!(r, 0x8000);
        assert!(f.n && f.v && !f.c);
    }

    #[test]
    fn adc_consumes_carry() {
        let mut f = flags0();
        f.c = true;
        let (r, _) = alu(AluOp::Adc, 1, 1, f);
        assert_eq!(r, 3);
        let (r, _) = alu(AluOp::Add, 1, 1, f);
        assert_eq!(r, 2, "plain add ignores carry");
    }

    #[test]
    fn sub_carry_means_no_borrow() {
        let (r, f) = alu(AluOp::Sub, 5, 3, flags0());
        assert_eq!(r, 2);
        assert!(f.c, "no borrow");
        let (r, f) = alu(AluOp::Sub, 3, 5, flags0());
        assert_eq!(r, 0xfffe);
        assert!(!f.c && f.n);
    }

    #[test]
    fn sbc_consumes_borrow() {
        let mut f = flags0();
        f.c = false; // borrow pending
        let (r, _) = alu(AluOp::Sbc, 10, 3, f);
        assert_eq!(r, 6);
        f.c = true;
        let (r, _) = alu(AluOp::Sbc, 10, 3, f);
        assert_eq!(r, 7);
    }

    #[test]
    fn mul_and_mulh_split_product() {
        let (lo, _) = alu(AluOp::Mul, 300, 300, flags0());
        let (hi, _) = alu(AluOp::Mulh, 300, 300, flags0());
        assert_eq!(((hi as u32) << 16) | lo as u32, 90_000);
    }

    #[test]
    fn shifts_set_carry_from_last_bit() {
        let (r, f) = alu(AluOp::Shl, 0x8001, 1, flags0());
        assert_eq!(r, 2);
        assert!(f.c);
        let (r, f) = alu(AluOp::Shr, 0x8001, 1, flags0());
        assert_eq!(r, 0x4000);
        assert!(f.c);
        let (r, _) = alu(AluOp::Asr, 0x8000, 3, flags0());
        assert_eq!(r, 0xf000);
    }

    #[test]
    fn logical_ops_clear_cv() {
        let mut f = flags0();
        f.c = true;
        f.v = true;
        let (_, f2) = alu(AluOp::And, 0xf0f0, 0x0ff0, f);
        assert!(!f2.c && !f2.v);
    }

    #[test]
    fn mov_preserves_carry() {
        let mut f = flags0();
        f.c = true;
        let (_, f2) = alu(AluOp::Mov, 7, 0, f);
        assert!(f2.c, "mov must not clobber carry");
        assert!(!f2.z);
    }

    #[test]
    fn shift_by_zero_keeps_carry_clear() {
        let (r, f) = alu(AluOp::Shl, 0xffff, 0, flags0());
        assert_eq!(r, 0xffff);
        assert!(!f.c);
    }

    #[test]
    fn cond_evaluation() {
        let mut f = flags0();
        f.z = true;
        assert!(eval_cond(Cond::Z, f));
        assert!(!eval_cond(Cond::Nz, f));
        assert!(eval_cond(Cond::Always, f));
        f.n = true;
        assert!(eval_cond(Cond::N, f));
        f.c = true;
        assert!(eval_cond(Cond::C, f));
        f.v = true;
        assert!(eval_cond(Cond::V, f));
    }
}
