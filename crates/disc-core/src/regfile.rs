//! The stack-window register file (§3.5 of the paper).
//!
//! Each stream owns a register stack addressed by the **active window
//! pointer** (AWP). The eight visible registers map as `R0 = window[AWP]`,
//! `R1 = window[AWP-1]`, …, `R7 = window[AWP-7]`. Incrementing the AWP
//! allocates a fresh `R0` (old `R0` becomes `R1`, and the deepest visible
//! register slides out of view); decrementing discards `R0`.
//!
//! The *physical* register file has finite depth. When the logical stack
//! outgrows it, the oldest resident registers are spilled to backing store
//! ([`WindowPolicy::AutoSpill`]) at a cost of one stall cycle per word, or a
//! stack-fault interrupt is raised ([`WindowPolicy::Fault`]).

use crate::config::WindowPolicy;
use disc_isa::WINDOW_REGS;
use disc_snap::{SnapError, SnapReader, SnapWriter};

/// Outcome of an AWP adjustment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdjustOutcome {
    /// Stall cycles incurred by hardware spill/fill traffic.
    pub stall_cycles: u32,
    /// `true` when the adjustment overflowed/underflowed the physical file
    /// under [`WindowPolicy::Fault`].
    pub fault: bool,
}

/// Per-stream stack-window register file.
///
/// # Example
///
/// ```
/// use disc_core::{StackWindow, WindowPolicy};
///
/// let mut w = StackWindow::new(16, WindowPolicy::AutoSpill);
/// w.write(0, 42);          // R0 = 42
/// w.adjust(1);             // allocate a fresh R0
/// assert_eq!(w.read(1), 42); // old R0 is now R1
/// w.adjust(-1);
/// assert_eq!(w.read(0), 42);
/// ```
#[derive(Debug, Clone)]
pub struct StackWindow {
    /// Logical register stack; index = logical slot. Slot contents persist
    /// across dec/inc (hardware registers are not cleared).
    stack: Vec<u16>,
    /// Logical index of the slot `R0` names. Starts at `WINDOW_REGS - 1` so
    /// the whole initial window is valid.
    awp: usize,
    /// Lowest logical slot currently resident in physical registers.
    resident_low: usize,
    /// Physical register file depth.
    depth: usize,
    policy: WindowPolicy,
    spills: u64,
    fills: u64,
    max_awp: usize,
    underflows: u64,
}

impl StackWindow {
    /// Creates a window file with `depth` physical registers.
    ///
    /// # Panics
    ///
    /// Panics if `depth <= WINDOW_REGS`.
    pub fn new(depth: usize, policy: WindowPolicy) -> Self {
        assert!(depth > WINDOW_REGS, "physical depth must exceed the window");
        StackWindow {
            stack: vec![0; depth],
            awp: WINDOW_REGS - 1,
            resident_low: 0,
            depth,
            policy,
            spills: 0,
            fills: 0,
            max_awp: WINDOW_REGS - 1,
            underflows: 0,
        }
    }

    /// Current active window pointer (logical slot index of `R0`).
    pub fn awp(&self) -> usize {
        self.awp
    }

    /// Reads window register `Rn`.
    ///
    /// Reads that reach below the bottom of the stack (a program bug)
    /// return 0 and are counted in [`underflows`](Self::underflows).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    #[inline(always)]
    pub fn read(&mut self, n: u8) -> u16 {
        assert!((n as usize) < WINDOW_REGS);
        match self.awp.checked_sub(n as usize) {
            Some(slot) => self.stack[slot],
            None => {
                self.underflows += 1;
                0
            }
        }
    }

    /// Writes window register `Rn`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    #[inline(always)]
    pub fn write(&mut self, n: u8, value: u16) {
        assert!((n as usize) < WINDOW_REGS);
        if let Some(slot) = self.awp.checked_sub(n as usize) {
            self.stack[slot] = value;
        } else {
            self.underflows += 1;
        }
    }

    /// Reads the logical slot `slot` directly (used by the asynchronous bus
    /// interface to deliver data to a window position captured at issue
    /// time, even if the window has moved since).
    pub fn read_slot(&self, slot: usize) -> u16 {
        self.stack.get(slot).copied().unwrap_or(0)
    }

    /// Writes the logical slot `slot` directly.
    pub fn write_slot(&mut self, slot: usize, value: u16) {
        if slot < self.stack.len() {
            self.stack[slot] = value;
        }
    }

    /// Logical slot currently named by `Rn`, for capture at issue time.
    ///
    /// Saturates at slot 0 when `Rn` reaches below the stack bottom; use
    /// [`try_slot_of`](Self::try_slot_of) when underflow must be detected.
    pub fn slot_of(&self, n: u8) -> usize {
        self.awp.saturating_sub(n as usize)
    }

    /// Logical slot currently named by `Rn`, or `None` when the register
    /// reaches below the stack bottom (underflow).
    pub fn try_slot_of(&self, n: u8) -> Option<usize> {
        self.awp.checked_sub(n as usize)
    }

    /// Moves the AWP by `delta` (positive allocates), performing any
    /// required spill/fill traffic.
    pub fn adjust(&mut self, delta: i32) -> AdjustOutcome {
        let mut out = AdjustOutcome::default();
        let new_awp = if delta >= 0 {
            self.awp.saturating_add(delta as usize)
        } else {
            let d = (-delta) as usize;
            if d > self.awp {
                self.underflows += 1;
                0
            } else {
                self.awp - d
            }
        };
        self.awp = new_awp;
        self.max_awp = self.max_awp.max(new_awp);
        if new_awp >= self.stack.len() {
            self.stack.resize(new_awp + 1, 0);
        }
        // Residency window: physical registers cover
        // [resident_low, resident_low + depth).
        if new_awp >= self.resident_low + self.depth {
            // Grew past the top: spill oldest registers.
            let needed = new_awp + 1 - self.depth - self.resident_low;
            match self.policy {
                WindowPolicy::AutoSpill => {
                    self.spills += needed as u64;
                    out.stall_cycles += needed as u32;
                    self.resident_low += needed;
                }
                WindowPolicy::Fault => {
                    out.fault = true;
                    self.resident_low += needed;
                }
            }
        } else {
            // The visible window must be resident for reads.
            let window_low = new_awp.saturating_sub(WINDOW_REGS - 1);
            if window_low < self.resident_low {
                let needed = self.resident_low - window_low;
                match self.policy {
                    WindowPolicy::AutoSpill => {
                        self.fills += needed as u64;
                        out.stall_cycles += needed as u32;
                    }
                    WindowPolicy::Fault => out.fault = true,
                }
                self.resident_low = window_low;
            }
        }
        out
    }

    /// Total words spilled to backing store so far.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Total words filled back from backing store so far.
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Deepest AWP value observed (peak logical stack depth).
    pub fn max_depth(&self) -> usize {
        self.max_awp + 1
    }

    /// Number of reads/writes/decrements that under-ran the stack bottom.
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Serializes the window file (`disc-snap/v1` component). The logical
    /// stack can have grown past the physical `depth`, so the whole
    /// backing vector is written; `depth` and `policy` come from the
    /// configuration and are written only for validation.
    pub(crate) fn save_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.depth);
        w.put_usize(self.stack.len());
        for &word in &self.stack {
            w.put_u16(word);
        }
        w.put_usize(self.awp);
        w.put_usize(self.resident_low);
        w.put_u64(self.spills);
        w.put_u64(self.fills);
        w.put_usize(self.max_awp);
        w.put_u64(self.underflows);
    }

    /// Restores state written by [`save_into`](Self::save_into) onto a
    /// window file built with the same depth (policy is construction
    /// state and is not overwritten).
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let depth = r.get_usize()?;
        if depth != self.depth {
            return Err(SnapError::Corrupt(format!(
                "window depth mismatch: machine {}, snapshot {depth}",
                self.depth
            )));
        }
        let len = r.get_usize()?;
        if len < self.depth {
            return Err(SnapError::Corrupt(format!(
                "window stack shorter than physical depth: {len} < {}",
                self.depth
            )));
        }
        self.stack.clear();
        self.stack.reserve(len);
        for _ in 0..len {
            self.stack.push(r.get_u16()?);
        }
        self.awp = r.get_usize()?;
        self.resident_low = r.get_usize()?;
        if self.awp >= self.stack.len() {
            return Err(SnapError::Corrupt(format!(
                "AWP {} outside restored stack of {len} slots",
                self.awp
            )));
        }
        self.spills = r.get_u64()?;
        self.fills = r.get_u64()?;
        self.max_awp = r.get_usize()?;
        self.underflows = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spillless() -> StackWindow {
        StackWindow::new(64, WindowPolicy::AutoSpill)
    }

    #[test]
    fn initial_window_reads_zero() {
        let mut w = spillless();
        for n in 0..8 {
            assert_eq!(w.read(n), 0);
        }
    }

    #[test]
    fn increment_renames_registers() {
        // Figure 3.5: after an increment the old R0 is addressed as R1.
        let mut w = spillless();
        for (n, v) in [(0u8, 10u16), (1, 11), (2, 12)] {
            w.write(n, v);
        }
        w.adjust(1);
        assert_eq!(w.read(1), 10);
        assert_eq!(w.read(2), 11);
        assert_eq!(w.read(3), 12);
        w.write(0, 99);
        w.adjust(-1);
        assert_eq!(w.read(0), 10);
        // The discarded slot's content persists and reappears on re-inc.
        w.adjust(1);
        assert_eq!(w.read(0), 99);
    }

    #[test]
    fn deep_growth_spills_and_fills() {
        let mut w = StackWindow::new(16, WindowPolicy::AutoSpill);
        let mut stalls = 0;
        for i in 0..32 {
            w.write(0, i);
            stalls += w.adjust(1).stall_cycles;
        }
        assert!(w.spills() > 0, "expected spill traffic");
        assert!(stalls > 0);
        // Walk back down: every value must be recoverable.
        for i in (0..32u16).rev() {
            let out = w.adjust(-1);
            assert!(!out.fault);
            assert_eq!(w.read(0), i, "value at depth {i} lost");
        }
        assert!(w.fills() > 0, "expected fill traffic");
    }

    #[test]
    fn fault_policy_reports_overflow() {
        let mut w = StackWindow::new(9, WindowPolicy::Fault);
        let mut faulted = false;
        for _ in 0..4 {
            faulted |= w.adjust(1).fault;
        }
        assert!(faulted, "growing 4 past a 9-deep file must fault");
    }

    #[test]
    fn underflow_saturates_and_counts() {
        let mut w = spillless();
        let before = w.underflows();
        w.adjust(-20);
        assert_eq!(w.awp(), 0);
        assert!(w.underflows() > before);
        // R1 is now below the stack bottom.
        assert_eq!(w.read(1), 0);
    }

    #[test]
    fn slot_capture_survives_window_motion() {
        let mut w = spillless();
        let slot = w.slot_of(0);
        w.adjust(3);
        w.write_slot(slot, 777);
        w.adjust(-3);
        assert_eq!(w.read(0), 777);
        assert_eq!(w.read_slot(slot), 777);
    }

    #[test]
    fn max_depth_tracks_peak() {
        let mut w = spillless();
        w.adjust(5);
        w.adjust(-3);
        assert_eq!(w.max_depth(), 8 + 5);
    }

    #[test]
    fn batch_adjust_matches_repeated_single() {
        let mut a = StackWindow::new(12, WindowPolicy::AutoSpill);
        let mut b = StackWindow::new(12, WindowPolicy::AutoSpill);
        let cost_a = a.adjust(10).stall_cycles;
        let cost_b: u32 = (0..10).map(|_| b.adjust(1).stall_cycles).sum();
        assert_eq!(a.awp(), b.awp());
        assert_eq!(cost_a, cost_b, "spill cost must be path-independent");
    }
}
