//! Internal (on-chip) data memory.
//!
//! DISC1 *"contains 2 Kbyte of internal memory in addition to the stack
//! window registers. The internal memory is shared between all ISs"*.
//! Accesses complete in a single cycle and never touch the asynchronous
//! bus. Because instruction execution is serialized through the EX stage,
//! read-modify-write instructions (`tset`) are atomic with respect to all
//! streams, which is what makes the memory usable for semaphores.

/// Word-addressed internal memory shared between all instruction streams.
#[derive(Debug, Clone)]
pub struct InternalMemory {
    words: Vec<u16>,
    reads: u64,
    writes: u64,
}

impl InternalMemory {
    /// Creates a zeroed memory of `words` 16-bit words.
    pub fn new(words: usize) -> Self {
        InternalMemory {
            words: vec![0; words],
            reads: 0,
            writes: 0,
        }
    }

    /// Size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// `true` when `addr` decodes to this memory (addresses below the
    /// internal size; all others go to the asynchronous bus).
    #[inline]
    pub fn contains(&self, addr: u16) -> bool {
        (addr as usize) < self.words.len()
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the memory; callers decode with
    /// [`contains`](Self::contains) first.
    pub fn read(&self, addr: u16) -> u16 {
        self.words[addr as usize]
    }

    /// Reads and counts the access (simulator internal path).
    pub(crate) fn read_counted(&mut self, addr: u16) -> u16 {
        self.reads += 1;
        self.words[addr as usize]
    }

    /// Writes the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the memory.
    pub fn write(&mut self, addr: u16, value: u16) {
        self.writes += 1;
        self.words[addr as usize] = value;
    }

    /// Atomic test-and-set: returns the previous value and writes
    /// `0xffff`.
    pub fn test_and_set(&mut self, addr: u16) -> u16 {
        self.reads += 1;
        self.writes += 1;
        let old = self.words[addr as usize];
        self.words[addr as usize] = 0xffff;
        old
    }

    /// Number of reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Serializes the memory contents and access counters
    /// (`disc-snap/v1` component).
    pub(crate) fn save_into(&self, w: &mut disc_snap::SnapWriter) {
        w.put_usize(self.words.len());
        for &word in &self.words {
            w.put_u16(word);
        }
        w.put_u64(self.reads);
        w.put_u64(self.writes);
    }

    /// Restores state written by [`save_into`](Self::save_into) onto a
    /// memory of the same size.
    pub(crate) fn restore_from(
        &mut self,
        r: &mut disc_snap::SnapReader<'_>,
    ) -> Result<(), disc_snap::SnapError> {
        let len = r.get_usize()?;
        if len != self.words.len() {
            return Err(disc_snap::SnapError::Corrupt(format!(
                "internal memory size mismatch: machine {}, snapshot {len}",
                self.words.len()
            )));
        }
        for word in self.words.iter_mut() {
            *word = r.get_u16()?;
        }
        self.reads = r.get_u64()?;
        self.writes = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = InternalMemory::new(64);
        m.write(10, 0xbeef);
        assert_eq!(m.read(10), 0xbeef);
        assert_eq!(m.read(11), 0);
        assert_eq!(m.writes(), 1);
    }

    #[test]
    fn address_decode() {
        let m = InternalMemory::new(1024);
        assert!(m.contains(0));
        assert!(m.contains(1023));
        assert!(!m.contains(1024));
        assert!(!m.contains(0xffff));
    }

    #[test]
    fn test_and_set_is_read_modify_write() {
        let mut m = InternalMemory::new(8);
        assert_eq!(m.test_and_set(3), 0);
        assert_eq!(m.read(3), 0xffff);
        assert_eq!(m.test_and_set(3), 0xffff);
    }

    #[test]
    #[should_panic]
    fn out_of_range_read_panics() {
        let m = InternalMemory::new(8);
        let _ = m.read(8);
    }
}
