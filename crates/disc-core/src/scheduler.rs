//! The DISC hardware scheduler.
//!
//! *"In DISC, the sequential order is replaced by a hardware scheduler
//! which selects from among the several possible streams a particular
//! instruction for execution on the next cycle."*
//!
//! DISC1 partitions throughput with a sequence table: *"The computational
//! power of the system can be allocated evenly between ISs, or assigned in
//! increments as low as 1/16 of the total."* When the slot owner is not
//! ready, the slot is **dynamically reallocated** to another ready stream,
//! which is the property that distinguishes *dynamic* interleaving from the
//! fixed barrel scheduling of HEP-style machines.

use disc_snap::{SnapError, SnapReader, SnapWriter};

/// Number of slots in a DISC1 partition sequence (1/16 granularity).
pub const SEQUENCE_SLOTS: usize = 16;

/// Scheduler policy selecting which ready stream issues each cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// DISC1's sequence table. Entry *i* names the stream owning slot
    /// `cycle mod len`. A slot whose owner is not ready is reallocated to
    /// the next ready stream in sequence order starting after the slot
    /// position (so spare throughput is redistributed roughly in proportion
    /// to the static shares).
    Sequence(Vec<u8>),
    /// Weighted deficit round-robin ablation: stream `s` receives
    /// `weights[s]` credits per cycle and the ready stream with the largest
    /// deficit issues. Not part of DISC1; used to study scheduler choices.
    WeightedDeficit(Vec<u32>),
}

impl SchedulePolicy {
    /// An even 16-slot round-robin over `streams` streams (the DISC1
    /// default partition).
    pub fn round_robin(streams: usize) -> Self {
        assert!(streams > 0, "round_robin needs at least one stream");
        let seq = (0..SEQUENCE_SLOTS).map(|i| (i % streams) as u8).collect();
        SchedulePolicy::Sequence(seq)
    }

    /// A sequence table allocating `shares[s]` of every 16 slots to stream
    /// `s`, interleaved as evenly as possible.
    ///
    /// # Panics
    ///
    /// Panics if the shares do not sum to [`SEQUENCE_SLOTS`].
    pub fn partitioned(shares: &[u32]) -> Self {
        let total: u32 = shares.iter().sum();
        assert_eq!(
            total as usize, SEQUENCE_SLOTS,
            "partition shares must sum to {SEQUENCE_SLOTS}"
        );
        // Largest-remainder interleave: walk slots, pick the stream whose
        // accumulated entitlement is furthest behind.
        let mut seq = Vec::with_capacity(SEQUENCE_SLOTS);
        let mut given = vec![0u32; shares.len()];
        for slot in 0..SEQUENCE_SLOTS as u32 {
            let mut best = None;
            let mut best_lag = i64::MIN;
            for (s, &share) in shares.iter().enumerate() {
                if share == 0 {
                    continue;
                }
                let entitled = (share as i64) * (slot as i64 + 1);
                let lag = entitled - (given[s] as i64) * SEQUENCE_SLOTS as i64;
                if lag > best_lag {
                    best_lag = lag;
                    best = Some(s);
                }
            }
            let s = best.expect("at least one nonzero share");
            given[s] += 1;
            seq.push(s as u8);
        }
        SchedulePolicy::Sequence(seq)
    }

    /// Checks that every referenced stream exists.
    ///
    /// # Panics
    ///
    /// Panics on an empty table or an out-of-range stream index.
    pub fn validate(&self, streams: usize) {
        match self {
            SchedulePolicy::Sequence(seq) => {
                assert!(!seq.is_empty(), "schedule sequence must not be empty");
                for &s in seq {
                    assert!(
                        (s as usize) < streams,
                        "schedule references stream {s} but only {streams} exist"
                    );
                }
            }
            SchedulePolicy::WeightedDeficit(w) => {
                assert_eq!(w.len(), streams, "one weight per stream required");
                assert!(w.iter().any(|&x| x > 0), "at least one weight must be > 0");
            }
        }
    }
}

/// Runtime state of the hardware scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: SchedulePolicy,
    slot: usize,
    deficit: Vec<i64>,
    /// Slots granted to each stream (for partition accounting).
    granted: Vec<u64>,
    /// Slots granted to a stream other than the slot owner.
    reallocated: u64,
}

impl Scheduler {
    /// Creates a scheduler for `streams` streams.
    pub fn new(policy: SchedulePolicy, streams: usize) -> Self {
        policy.validate(streams);
        Scheduler {
            policy,
            slot: 0,
            deficit: vec![0; streams],
            granted: vec![0; streams],
            reallocated: 0,
        }
    }

    /// Picks the stream to issue this cycle given per-stream readiness, or
    /// `None` when no stream is ready (pipeline bubble). Advances the
    /// internal slot pointer exactly once per call.
    pub fn pick(&mut self, ready: &[bool]) -> Option<usize> {
        self.pick_with(|s| ready.get(s).copied().unwrap_or(false))
    }

    /// Like [`pick`](Self::pick), but readiness is queried on demand.
    ///
    /// In the common case — the slot owner is ready — only the owner is
    /// ever probed, which lets the machine skip decoding and hazard-
    /// checking every other stream on most cycles. `is_ready` may be
    /// called more than once for the same stream during the reallocation
    /// scan; callers that probe lazily should memoize per cycle.
    pub fn pick_with(&mut self, mut is_ready: impl FnMut(usize) -> bool) -> Option<usize> {
        let choice = match &self.policy {
            SchedulePolicy::Sequence(seq) => {
                let len = seq.len();
                let base = self.slot;
                self.slot += 1;
                if self.slot == len {
                    self.slot = 0;
                }
                let owner = seq[base] as usize;
                if is_ready(owner) {
                    Some((owner, false))
                } else {
                    // Dynamic reallocation: scan the sequence from the next
                    // slot so spare cycles go to streams roughly per share.
                    let mut found = None;
                    let mut idx = base;
                    for _ in 0..len {
                        idx += 1;
                        if idx == len {
                            idx = 0;
                        }
                        let cand = seq[idx] as usize;
                        if is_ready(cand) {
                            found = Some((cand, true));
                            break;
                        }
                    }
                    found
                }
            }
            SchedulePolicy::WeightedDeficit(weights) => {
                for (s, &w) in weights.iter().enumerate() {
                    if is_ready(s) {
                        self.deficit[s] += w as i64;
                    }
                }
                let total: i64 = weights.iter().map(|&w| w as i64).sum();
                let best = (0..weights.len())
                    .filter(|&s| is_ready(s))
                    .max_by_key(|&s| (self.deficit[s], std::cmp::Reverse(s)));
                best.map(|s| {
                    self.deficit[s] -= total;
                    (s, false)
                })
            }
        };
        if let Some((s, realloc)) = choice {
            self.granted[s] += 1;
            if realloc {
                self.reallocated += 1;
            }
            Some(s)
        } else {
            None
        }
    }

    /// Advances the scheduler past `cycles` bubble cycles in one step,
    /// exactly equivalent to that many [`pick_with`](Self::pick_with) calls
    /// in which no stream is ready.
    ///
    /// For a sequence table a bubble still consumes the slot, so the slot
    /// pointer rotates; for weighted deficit a bubble cycle accrues no
    /// deficit and grants no slot, so nothing changes.
    pub fn advance_idle(&mut self, cycles: u64) {
        if let SchedulePolicy::Sequence(seq) = &self.policy {
            let len = seq.len() as u64;
            self.slot = ((self.slot as u64 + cycles % len) % len) as usize;
        }
    }

    /// The sequence table when the policy is [`SchedulePolicy::Sequence`],
    /// `None` otherwise. The superblock dispatcher replays slot picks from
    /// this view without the per-cycle closure machinery.
    pub(crate) fn sequence(&self) -> Option<&[u8]> {
        match &self.policy {
            SchedulePolicy::Sequence(seq) => Some(seq),
            SchedulePolicy::WeightedDeficit(_) => None,
        }
    }

    /// Current slot-pointer position (only meaningful under
    /// [`SchedulePolicy::Sequence`]).
    pub(crate) fn slot_index(&self) -> usize {
        self.slot
    }

    /// Bulk-applies the outcome of a superblock run: the slot pointer
    /// lands on `slot`, each stream's grant counter grows by its delta and
    /// the reallocation counter by `reallocated` — exactly equivalent to
    /// the sequence of [`pick_with`](Self::pick_with) calls the run
    /// replayed.
    pub(crate) fn apply_burst(&mut self, slot: usize, granted: &[u64], reallocated: u64) {
        self.slot = slot;
        for (g, d) in self.granted.iter_mut().zip(granted) {
            *g += d;
        }
        self.reallocated += reallocated;
    }

    /// Slots granted to each stream so far.
    pub fn granted(&self) -> &[u64] {
        &self.granted
    }

    /// Slots that were dynamically reallocated away from their owner.
    pub fn reallocated(&self) -> u64 {
        self.reallocated
    }

    /// Serializes the scheduler's runtime state (`disc-snap/v1`
    /// component). The policy itself is construction state derived from
    /// the configuration and is not written.
    pub(crate) fn save_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.slot);
        w.put_usize(self.deficit.len());
        for &d in &self.deficit {
            w.put_i64(d);
        }
        w.put_usize(self.granted.len());
        for &g in &self.granted {
            w.put_u64(g);
        }
        w.put_u64(self.reallocated);
    }

    /// Restores state written by [`save_into`](Self::save_into) onto a
    /// scheduler built from the same configuration.
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let slot = r.get_usize()?;
        if let SchedulePolicy::Sequence(seq) = &self.policy {
            if slot >= seq.len() {
                return Err(SnapError::Corrupt(format!(
                    "slot pointer {slot} outside {}-entry sequence",
                    seq.len()
                )));
            }
        }
        self.slot = slot;
        let n = r.get_usize()?;
        if n != self.deficit.len() {
            return Err(SnapError::Corrupt(format!(
                "deficit table length mismatch: machine {}, snapshot {n}",
                self.deficit.len()
            )));
        }
        for d in self.deficit.iter_mut() {
            *d = r.get_i64()?;
        }
        let n = r.get_usize()?;
        if n != self.granted.len() {
            return Err(SnapError::Corrupt(format!(
                "grant table length mismatch: machine {}, snapshot {n}",
                self.granted.len()
            )));
        }
        for g in self.granted.iter_mut() {
            *g = r.get_u64()?;
        }
        self.reallocated = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_slots(sched: &mut Scheduler, ready: &[bool], n: usize) -> Vec<Option<usize>> {
        (0..n).map(|_| sched.pick(ready)).collect()
    }

    #[test]
    fn round_robin_covers_all_streams() {
        let mut s = Scheduler::new(SchedulePolicy::round_robin(4), 4);
        let picks = run_slots(&mut s, &[true; 4], 16);
        for st in 0..4 {
            assert_eq!(
                picks.iter().filter(|p| **p == Some(st)).count(),
                4,
                "stream {st} should own 4 of 16 slots"
            );
        }
    }

    #[test]
    fn partitioned_respects_shares() {
        let policy = SchedulePolicy::partitioned(&[8, 3, 3, 2]);
        let mut s = Scheduler::new(policy, 4);
        let picks = run_slots(&mut s, &[true; 4], 16);
        let count = |st| picks.iter().filter(|p| **p == Some(st)).count();
        assert_eq!(count(0), 8);
        assert_eq!(count(1), 3);
        assert_eq!(count(2), 3);
        assert_eq!(count(3), 2);
    }

    #[test]
    fn partitioned_interleaves_rather_than_blocks() {
        // With an 8/8 split streams must alternate, not run 8-slot bursts.
        let policy = SchedulePolicy::partitioned(&[8, 8]);
        if let SchedulePolicy::Sequence(seq) = &policy {
            for w in seq.windows(2) {
                assert_ne!(w[0], w[1], "8/8 split should strictly alternate: {seq:?}");
            }
        } else {
            unreachable!();
        }
    }

    #[test]
    fn sole_active_stream_receives_full_throughput() {
        // Figure 3.3: a stream statically assigned T/2 gets T when alone.
        let mut s = Scheduler::new(SchedulePolicy::partitioned(&[8, 3, 3, 2]), 4);
        let ready = [false, true, false, false];
        let picks = run_slots(&mut s, &ready, 32);
        assert!(picks.iter().all(|p| *p == Some(1)));
        assert_eq!(s.reallocated(), 32 - 6); // 3 of every 16 slots were owned
    }

    #[test]
    fn spare_slots_redistribute_in_share_proportion() {
        // Stream 0 (share 8) inactive: its slots should flow to the others
        // roughly in 3:3:2 proportion.
        let mut s = Scheduler::new(SchedulePolicy::partitioned(&[8, 3, 3, 2]), 4);
        let ready = [false, true, true, true];
        let picks = run_slots(&mut s, &ready, 1600);
        let count = |st| picks.iter().filter(|p| **p == Some(st)).count();
        assert_eq!(count(0), 0);
        assert!(count(1) > count(3), "larger share should keep advantage");
        assert_eq!(count(1) + count(2) + count(3), 1600);
    }

    #[test]
    fn no_ready_stream_gives_bubble() {
        let mut s = Scheduler::new(SchedulePolicy::round_robin(2), 2);
        assert_eq!(s.pick(&[false, false]), None);
        assert_eq!(s.granted(), &[0, 0]);
    }

    #[test]
    fn weighted_deficit_tracks_weights() {
        let mut s = Scheduler::new(SchedulePolicy::WeightedDeficit(vec![3, 1]), 2);
        let picks = run_slots(&mut s, &[true, true], 400);
        let c0 = picks.iter().filter(|p| **p == Some(0)).count();
        let c1 = picks.iter().filter(|p| **p == Some(1)).count();
        assert_eq!(c0 + c1, 400);
        let ratio = c0 as f64 / c1 as f64;
        assert!((2.5..=3.5).contains(&ratio), "expected ~3:1, got {ratio}");
    }

    #[test]
    fn weighted_deficit_reallocates_idle_share() {
        let mut s = Scheduler::new(SchedulePolicy::WeightedDeficit(vec![3, 1]), 2);
        let picks = run_slots(&mut s, &[false, true], 100);
        assert!(picks.iter().all(|p| *p == Some(1)));
    }

    #[test]
    #[should_panic(expected = "must sum")]
    fn partitioned_rejects_bad_sum() {
        let _ = SchedulePolicy::partitioned(&[8, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "references stream")]
    fn sequence_rejects_unknown_stream() {
        Scheduler::new(SchedulePolicy::Sequence(vec![0, 5]), 2);
    }
}
