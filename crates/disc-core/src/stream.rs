//! Per-stream context: program counter, flags, window file, interrupt
//! state, wait state and the issue scoreboard.

use crate::config::WindowPolicy;
use crate::regfile::StackWindow;
use disc_snap::{SnapError, SnapReader, SnapWriter};

/// Arithmetic flags of a stream (`Z N C V`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Result was zero.
    pub z: bool,
    /// Result was negative (bit 15 set).
    pub n: bool,
    /// Carry / not-borrow out of bit 15.
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
}

impl Flags {
    /// Packs the flags into the low nibble of a status-register value
    /// (`V N C Z` in bits 3..=0? — layout: bit0 Z, bit1 N, bit2 C, bit3 V).
    pub fn to_word(self) -> u16 {
        (self.z as u16) | ((self.n as u16) << 1) | ((self.c as u16) << 2) | ((self.v as u16) << 3)
    }

    /// Unpacks a status-register value.
    pub fn from_word(w: u16) -> Self {
        Flags {
            z: w & 1 != 0,
            n: w & 2 != 0,
            c: w & 4 != 0,
            v: w & 8 != 0,
        }
    }
}

/// Why a stream is not currently fetching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitState {
    /// Not waiting; the stream fetches when active and hazard-free.
    None,
    /// Waiting for its own outstanding bus transaction to complete.
    BusTransaction,
    /// Its access found the bus busy; waiting for the bus to free before
    /// re-issuing the cancelled instruction.
    BusFree,
}

/// Interrupt frame pushed when a vectored interrupt is taken.
///
/// The hardware saves the program counter *and* the flags (PSW): the
/// handler is free to clobber the arithmetic flags, and the interrupted
/// code may be preempted between a flag-setting instruction and the
/// conditional jump that consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceFrame {
    /// IR bit being serviced (1..=7).
    pub bit: u8,
    /// Program counter to resume at on `reti`.
    pub resume_pc: u16,
    /// Flags to restore on `reti`.
    pub flags: Flags,
}

/// A pending register write used for same-stream hazard detection.
///
/// `mask` is a bitmask over the 16 architectural registers (bits 0..=15)
/// plus the flags (bit 16). The entry clears when the instruction retires
/// or, for external loads, when the bus delivers the data (such entries are
/// re-tagged with `seq == u64::MAX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingWrite {
    /// Issue sequence number.
    pub seq: u64,
    /// Destination mask (registers + flags).
    pub mask: u32,
}

/// Full context of one instruction stream.
#[derive(Debug, Clone)]
pub struct Stream {
    /// Program counter (next instruction to fetch).
    pub(crate) pc: u16,
    /// Arithmetic flags.
    pub(crate) flags: Flags,
    /// Stack-window register file.
    pub(crate) window: StackWindow,
    /// Software stack pointer.
    pub(crate) sp: u16,
    /// Interrupt request register.
    pub(crate) ir: u8,
    /// Interrupt mask register.
    pub(crate) mr: u8,
    /// In-service interrupt stack (innermost last).
    pub(crate) service: Vec<ServiceFrame>,
    /// Per-stream interrupt vectors (bit 1..=7; bit 0 never vectors).
    pub(crate) vectors: [Option<u16>; disc_isa::IRQ_LEVELS],
    /// Wait state.
    pub(crate) wait: WaitState,
    /// Outstanding register writes (issue scoreboard).
    pub(crate) pending: Vec<PendingWrite>,
    /// OR of every `pending` entry's mask, kept in sync by the push /
    /// remove sites so the per-cycle hazard probe is a single AND (a
    /// source mask intersects *some* entry iff it intersects the union).
    pub(crate) pending_mask: u32,
    /// Number of in-flight instructions that move the window
    /// (AWP-adjusting, call/ret/winc/wdec); while nonzero, window-register
    /// access by newly fetched instructions is a hazard.
    pub(crate) window_moves: u32,
    /// Remaining stall cycles charged by window spill/fill traffic.
    pub(crate) spill_stall: u32,
    /// Cycle at which the most recent activation interrupt was raised
    /// (used for latency accounting).
    pub(crate) irq_raised_at: [Option<u64>; disc_isa::IRQ_LEVELS],
}

impl Stream {
    /// Creates an inactive stream (IR = 0, MR = 0xff) with a zeroed
    /// context.
    pub fn new(window_depth: usize, policy: WindowPolicy) -> Self {
        Stream {
            pc: 0,
            flags: Flags::default(),
            window: StackWindow::new(window_depth, policy),
            sp: 0,
            ir: 0,
            mr: 0xff,
            service: Vec::new(),
            vectors: [None; disc_isa::IRQ_LEVELS],
            wait: WaitState::None,
            pending: Vec::new(),
            pending_mask: 0,
            window_moves: 0,
            spill_stall: 0,
            irq_raised_at: [None; disc_isa::IRQ_LEVELS],
        }
    }

    /// Program counter.
    pub fn pc(&self) -> u16 {
        self.pc
    }

    /// Arithmetic flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Interrupt request register.
    pub fn ir(&self) -> u8 {
        self.ir
    }

    /// Interrupt mask register.
    pub fn mr(&self) -> u8 {
        self.mr
    }

    /// The stream is *active* when any unmasked IR bit is set — *"When no
    /// bit of the IS is set, the instruction stream will not be scheduled
    /// (not active)."*
    pub fn active(&self) -> bool {
        self.ir & self.mr != 0
    }

    /// Current wait state.
    pub fn wait(&self) -> WaitState {
        self.wait
    }

    /// Window file view (AWP, spill statistics …).
    pub fn window(&self) -> &StackWindow {
        &self.window
    }

    /// Interrupt level currently being serviced (0 = background).
    pub fn service_level(&self) -> u8 {
        self.service.last().map(|f| f.bit).unwrap_or(0)
    }

    /// Depth of nested interrupt service.
    pub fn service_depth(&self) -> usize {
        self.service.len()
    }

    /// Highest-priority pending unmasked interrupt above the current
    /// service level, if any. Bit 0 (background) never preempts.
    pub fn pending_interrupt(&self) -> Option<u8> {
        let armed = self.ir & self.mr;
        if armed == 0 {
            return None;
        }
        let top = 7 - armed.leading_zeros() as u8; // highest set bit
        if top > self.service_level() && top > 0 {
            Some(top)
        } else {
            None
        }
    }

    /// Sets IR bit `bit` (external or software interrupt).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 8`.
    pub fn raise(&mut self, bit: u8, cycle: u64) {
        assert!(bit < 8);
        if self.ir & (1 << bit) == 0 {
            self.irq_raised_at[bit as usize] = Some(cycle);
        }
        self.ir |= 1 << bit;
    }

    /// `true` when any outstanding scoreboard entry's destination mask
    /// intersects `mask` — the RAW-hazard probe shared by the per-cycle
    /// fetch path and the superblock dispatcher.
    #[inline]
    pub(crate) fn pending_conflict(&self, mask: u32) -> bool {
        debug_assert_eq!(
            self.pending_mask,
            self.pending.iter().fold(0, |m, p| m | p.mask),
            "aggregate scoreboard mask out of sync"
        );
        self.pending_mask & mask != 0
    }

    /// Recomputes [`Self::pending_mask`] after entries were removed.
    #[inline]
    pub(crate) fn resync_pending_mask(&mut self) {
        self.pending_mask = self.pending.iter().fold(0, |m, p| m | p.mask);
    }

    /// Removes the scoreboard entry issued with `seq` (unique per slot)
    /// in one pass, rebuilding the aggregate mask from the survivors.
    /// Scoreboard order is irrelevant — only membership is ever queried —
    /// so the removal may reorder entries.
    #[inline]
    pub(crate) fn drop_pending(&mut self, seq: u64) {
        let mut agg = 0;
        let mut found = usize::MAX;
        for (i, p) in self.pending.iter().enumerate() {
            if p.seq == seq {
                found = i;
            } else {
                agg |= p.mask;
            }
        }
        if found != usize::MAX {
            self.pending.swap_remove(found);
        }
        self.pending_mask = agg;
    }

    /// Clears IR bit `bit` (only the owning stream does this).
    pub fn clear_irq(&mut self, bit: u8) {
        assert!(bit < 8);
        self.ir &= !(1 << bit);
        self.irq_raised_at[bit as usize] = None;
    }

    /// Serializes the full stream context (`disc-snap/v1` component).
    ///
    /// Interrupt vectors are included even though they start out derived
    /// from the program image: [`Machine::set_vector`](crate::Machine)
    /// can rewrite them at runtime.
    pub(crate) fn save_into(&self, w: &mut SnapWriter) {
        w.put_u16(self.pc);
        w.put_u16(self.flags.to_word());
        w.put_u16(self.sp);
        w.put_u8(self.ir);
        w.put_u8(self.mr);
        w.put_usize(self.service.len());
        for f in &self.service {
            w.put_u8(f.bit);
            w.put_u16(f.resume_pc);
            w.put_u16(f.flags.to_word());
        }
        for v in self.vectors {
            w.put_opt_u16(v);
        }
        w.put_u8(match self.wait {
            WaitState::None => 0,
            WaitState::BusTransaction => 1,
            WaitState::BusFree => 2,
        });
        w.put_usize(self.pending.len());
        for p in &self.pending {
            w.put_u64(p.seq);
            w.put_u32(p.mask);
        }
        w.put_u32(self.window_moves);
        w.put_u32(self.spill_stall);
        for t in self.irq_raised_at {
            w.put_opt_u64(t);
        }
        self.window.save_into(w);
    }

    /// Restores the context written by [`save_into`](Self::save_into)
    /// onto this stream (whose window file was built from the same
    /// configuration). The aggregate scoreboard mask is rebuilt from the
    /// restored entries rather than trusted from the blob.
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.pc = r.get_u16()?;
        self.flags = Flags::from_word(r.get_u16()?);
        self.sp = r.get_u16()?;
        self.ir = r.get_u8()?;
        self.mr = r.get_u8()?;
        let frames = r.get_usize()?;
        self.service.clear();
        for _ in 0..frames {
            let bit = r.get_u8()?;
            if bit >= 8 {
                return Err(SnapError::Corrupt(format!("service frame bit {bit}")));
            }
            let resume_pc = r.get_u16()?;
            let flags = Flags::from_word(r.get_u16()?);
            self.service.push(ServiceFrame {
                bit,
                resume_pc,
                flags,
            });
        }
        for v in self.vectors.iter_mut() {
            *v = r.get_opt_u16()?;
        }
        self.wait = match r.get_u8()? {
            0 => WaitState::None,
            1 => WaitState::BusTransaction,
            2 => WaitState::BusFree,
            t => return Err(SnapError::Corrupt(format!("bad wait state tag {t}"))),
        };
        let entries = r.get_usize()?;
        self.pending.clear();
        for _ in 0..entries {
            let seq = r.get_u64()?;
            let mask = r.get_u32()?;
            self.pending.push(PendingWrite { seq, mask });
        }
        self.resync_pending_mask();
        self.window_moves = r.get_u32()?;
        self.spill_stall = r.get_u32()?;
        for t in self.irq_raised_at.iter_mut() {
            *t = r.get_opt_u64()?;
        }
        self.window.restore_from(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> Stream {
        Stream::new(64, WindowPolicy::AutoSpill)
    }

    #[test]
    fn flags_pack_roundtrip() {
        for w in 0..16u16 {
            assert_eq!(Flags::from_word(w).to_word(), w);
        }
        // High bits ignored on unpack.
        assert_eq!(Flags::from_word(0xfff0).to_word(), 0);
    }

    #[test]
    fn fresh_stream_is_inactive() {
        let s = stream();
        assert!(!s.active());
        assert_eq!(s.service_level(), 0);
        assert_eq!(s.pending_interrupt(), None);
    }

    #[test]
    fn background_bit_activates_without_vectoring() {
        let mut s = stream();
        s.raise(0, 10);
        assert!(s.active());
        assert_eq!(s.pending_interrupt(), None, "bit 0 never vectors");
    }

    #[test]
    fn higher_bits_pend_above_service_level() {
        let mut s = stream();
        s.raise(0, 0);
        s.raise(3, 5);
        assert_eq!(s.pending_interrupt(), Some(3));
        s.service.push(ServiceFrame {
            bit: 3,
            resume_pc: 0,
            flags: Flags::default(),
        });
        assert_eq!(s.pending_interrupt(), None, "level 3 in service");
        s.raise(7, 9);
        assert_eq!(s.pending_interrupt(), Some(7), "7 preempts 3");
    }

    #[test]
    fn masked_bits_do_not_activate() {
        let mut s = stream();
        s.mr = 0x01;
        s.raise(5, 0);
        assert!(!s.active());
        assert_eq!(s.pending_interrupt(), None);
        s.raise(0, 0);
        assert!(s.active());
    }

    #[test]
    fn clear_irq_deactivates() {
        let mut s = stream();
        s.raise(0, 0);
        s.clear_irq(0);
        assert!(!s.active());
    }

    #[test]
    fn raise_records_first_cycle_only() {
        let mut s = stream();
        s.raise(2, 100);
        s.raise(2, 200);
        assert_eq!(s.irq_raised_at[2], Some(100));
        s.clear_irq(2);
        assert_eq!(s.irq_raised_at[2], None);
    }
}
