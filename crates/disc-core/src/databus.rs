//! The asynchronous external data bus.
//!
//! DISC1 uses *"a 16-bit asynchronous"* data bus because *"controllers have
//! a very large variety of I/O peripherals with large variety of access
//! times"*. The machine talks to the bus through the [`Abi`](crate::Abi);
//! concrete peripherals (external RAM, timers, sensors, …) implement
//! [`DataBus`]. The `disc-bus` crate provides a composable peripheral bus;
//! this module only defines the trait and a flat-memory implementation used
//! as the default backing store and in tests.

/// An interrupt request raised by a peripheral: set `bit` in the IR of
/// `stream`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrqRequest {
    /// Destination stream.
    pub stream: usize,
    /// IR bit to set (0..=7; 7 is the highest priority).
    pub bit: u8,
}

/// External data-bus address space (everything the internal memory does not
/// decode).
///
/// Implementations report a per-address access latency; the machine's
/// asynchronous bus interface holds the bus busy for that many cycles and
/// then performs the transfer. `tick` advances peripheral-internal time
/// once per machine cycle and may raise interrupts.
pub trait DataBus {
    /// Access latency in cycles for a read/write of `addr`, or `None` when
    /// the address is unmapped. A latency of 0 completes synchronously
    /// (the paper only flushes/waits when *"the access time is larger than
    /// zero"*).
    fn latency(&self, addr: u16, write: bool) -> Option<u32>;

    /// Performs the read of `addr` (called when the transaction completes).
    fn read(&mut self, addr: u16) -> u16;

    /// Performs the write of `addr` (called when the transaction
    /// completes).
    fn write(&mut self, addr: u16, value: u16);

    /// Advances one machine cycle; peripherals push interrupt requests into
    /// `irqs`.
    fn tick(&mut self, irqs: &mut Vec<IrqRequest>) {
        let _ = irqs;
    }

    /// Earliest absolute machine cycle `>= now` at which a [`tick`]
    /// (DataBus::tick) may produce an observable effect (an interrupt
    /// request, a state change visible through [`read`](DataBus::read), or
    /// a latency change), or `None` when no future tick can.
    ///
    /// The machine ticks the bus exactly once per cycle; the tick that
    /// happens during the machine step starting at cycle `now` counts as
    /// occurring *at* `now`. [`StepMode::EventSkip`](crate::StepMode) uses
    /// this hook to fast-forward quiescent stretches: the machine
    /// guarantees it never skips past the returned cycle, and compensates
    /// the omitted ticks with one [`advance`](DataBus::advance) call.
    ///
    /// The default (`None`) is only sound for buses whose `tick` is a
    /// no-op (such as [`FlatBus`]); any implementation overriding `tick`
    /// must override `next_event` and `advance` together.
    fn next_event(&self, now: u64) -> Option<u64> {
        let _ = now;
        None
    }

    /// Advances peripheral-internal time by `cycles` machine cycles in one
    /// step, exactly equivalent to `cycles` calls to [`tick`]
    /// (DataBus::tick) *given* the caller's guarantee that the skipped
    /// stretch ends strictly before [`next_event`](DataBus::next_event) —
    /// i.e. no tick in the stretch would have raised an interrupt or
    /// otherwise changed observable state.
    ///
    /// The default (no-op) pairs with the default `next_event`.
    fn advance(&mut self, cycles: u64) {
        let _ = cycles;
    }

    /// Serializes the bus's mutable state as an opaque `disc-snap/v1`
    /// component blob, embedded verbatim in machine snapshots.
    ///
    /// The default (empty blob) is only sound for stateless buses; any
    /// implementation with mutable state must override `save_state` and
    /// [`restore_state`](DataBus::restore_state) together. Conventionally
    /// a blob starts with a name tag (see
    /// [`SnapReader::expect_str`](disc_snap::SnapReader::expect_str)) so
    /// state can never be applied to the wrong bus kind.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state written by [`save_state`](DataBus::save_state) onto
    /// an identically-constructed bus.
    ///
    /// # Errors
    ///
    /// Returns [`disc_snap::SnapError`] when the blob is malformed or
    /// belongs to a different bus kind. The default accepts only the
    /// default `save_state`'s empty blob.
    fn restore_state(&mut self, state: &[u8]) -> Result<(), disc_snap::SnapError> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(disc_snap::SnapError::Corrupt(
                "bus state offered to a stateless bus".into(),
            ))
        }
    }
}

/// Flat external RAM with a uniform access latency (the paper's `tmem`).
///
/// Backs the full 16-bit address space sparsely; unwritten words read 0.
#[derive(Debug, Clone)]
pub struct FlatBus {
    words: std::collections::HashMap<u16, u16>,
    latency: u32,
}

impl FlatBus {
    /// Creates a flat external memory with the given access latency.
    pub fn new(latency: u32) -> Self {
        FlatBus {
            words: std::collections::HashMap::new(),
            latency,
        }
    }

    /// Reads a word directly (test/inspection path, no latency).
    pub fn peek(&self, addr: u16) -> u16 {
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Writes a word directly (test setup path, no latency).
    pub fn poke(&mut self, addr: u16, value: u16) {
        self.words.insert(addr, value);
    }
}

impl DataBus for FlatBus {
    fn latency(&self, _addr: u16, _write: bool) -> Option<u32> {
        Some(self.latency)
    }

    fn read(&mut self, addr: u16) -> u16 {
        self.peek(addr)
    }

    fn write(&mut self, addr: u16, value: u16) {
        self.poke(addr, value);
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = disc_snap::SnapWriter::new();
        w.put_str("flat-bus");
        w.put_u32(self.latency);
        // Address-sorted pairs so identical contents always serialize to
        // identical bytes regardless of hash-map iteration order.
        let mut pairs: Vec<(u16, u16)> = self.words.iter().map(|(&a, &v)| (a, v)).collect();
        pairs.sort_unstable();
        w.put_usize(pairs.len());
        for (addr, value) in pairs {
            w.put_u16(addr);
            w.put_u16(value);
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), disc_snap::SnapError> {
        let mut r = disc_snap::SnapReader::new(state);
        r.expect_str("flat-bus")?;
        let latency = r.get_u32()?;
        if latency != self.latency {
            return Err(disc_snap::SnapError::Corrupt(format!(
                "flat-bus latency mismatch: machine {}, snapshot {latency}",
                self.latency
            )));
        }
        let n = r.get_usize()?;
        self.words.clear();
        for _ in 0..n {
            let addr = r.get_u16()?;
            let value = r.get_u16()?;
            self.words.insert(addr, value);
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_bus_roundtrip() {
        let mut b = FlatBus::new(2);
        assert_eq!(b.latency(0x8000, false), Some(2));
        b.write(0x8000, 55);
        assert_eq!(b.read(0x8000), 55);
        assert_eq!(b.peek(0x8001), 0);
    }

    #[test]
    fn default_tick_raises_nothing() {
        let mut b = FlatBus::new(0);
        let mut irqs = Vec::new();
        b.tick(&mut irqs);
        assert!(irqs.is_empty());
    }
}
