//! Machine configuration.

use crate::scheduler::SchedulePolicy;

/// How the machine reacts to external-bus faults: accesses to addresses no
/// peripheral decodes, and (under [`BusFaultPolicy::Fault`]) transactions
/// that exceed [`MachineConfig::abi_timeout`].
///
/// The paper's whole pitch is hard real-time isolation: a stalled or
/// misbehaving peripheral must suspend *only* the requesting stream
/// (§3.6.1). [`BusFaultPolicy::Fault`] gives that property teeth — a bad
/// access aborts, frees the single-transaction bus, wakes the stream and
/// delivers a per-stream bus-error interrupt on
/// [`MachineConfig::bus_error_bit`] — instead of silently completing
/// (unmapped) or hanging the stream forever (stuck peripheral).
///
/// Fault events are always visible in
/// [`MachineStats`](crate::MachineStats) (`unmapped_accesses`,
/// `abi_timeouts`, `bus_faults`) and in the cycle trace
/// ([`TraceEvent::BusFault`](crate::TraceEvent::BusFault)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BusFaultPolicy {
    /// Historical behavior, preserved bit-for-bit for differential tests:
    /// an unmapped external access is treated as a zero-latency access and
    /// handed to the bus anyway (an address-decoded bus then reads open-bus
    /// `0xffff` and drops writes), and a transaction never times out — a
    /// peripheral that never completes wedges its stream. Unmapped
    /// accesses are still *counted* in
    /// [`MachineStats::unmapped_accesses`](crate::MachineStats::unmapped_accesses).
    #[default]
    Legacy,
    /// Robust semantics: an unmapped access aborts without touching the
    /// bus, and a transaction outstanding longer than
    /// [`MachineConfig::abi_timeout`] cycles is aborted, freeing the bus
    /// and waking every waiting stream. Both deliver a bus-error interrupt
    /// on the faulting stream's [`MachineConfig::bus_error_bit`]. A
    /// faulted load leaves its destination register unchanged (the
    /// scoreboard entry is released); a faulted store is dropped; the
    /// instruction's window adjustment still applies so frame bookkeeping
    /// stays balanced.
    Fault,
}

/// How [`Machine::run`](crate::Machine::run) advances simulated time.
///
/// The default steps every cycle through the full pipeline model.
/// [`StepMode::EventSkip`] fast-forwards through *quiescent* stretches —
/// cycles where no stream can issue because everything is suspended on a
/// bus transaction, stalled by spill traffic, or dormant awaiting an
/// interrupt — by computing the next architecturally observable event
/// (ABI completion/timeout, peripheral countdowns via
/// [`DataBus::next_event`](crate::DataBus::next_event), sampling-sink
/// boundaries) and bulk-updating every counter exactly as if the cycles
/// had been stepped singly. Final architectural state, statistics and
/// cycle attribution are identical in both modes; only wall-clock time
/// differs. A trace sink that needs every cycle (the default for
/// [`TraceSink`](crate::TraceSink)) pins skipping off while attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StepMode {
    /// Execute every cycle through the pipeline model (default).
    #[default]
    CycleByCycle,
    /// Fast-forward through quiescent cycles to the next wake event.
    EventSkip,
}

/// How [`Machine::run`](crate::Machine::run) dispatches the execute hot
/// path.
///
/// The default threaded/superblock dispatcher predecodes every program
/// word into a handler index plus hazard masks, executes through a
/// function-pointer table, and — whenever the machine is in a
/// *hazard-frozen* state (no outstanding bus transaction, no spill/fill
/// stall, no in-flight window motion, no deliverable vectored interrupt,
/// no attached trace sink) — runs cached straight-line superblocks of
/// predecoded ops in a tight loop with bulk cycle/stat/attribution
/// updates. The run length is bounded by the same
/// [`DataBus::next_event`](crate::DataBus::next_event) wake machinery
/// that powers [`StepMode::EventSkip`], so no peripheral tick, fault-plan
/// window edge or interrupt is ever jumped over; a block ends at any
/// branch/fork/signal/bus op or wake-source boundary. Architectural
/// state, statistics, cycle attribution, traces and reports are
/// byte-identical between the two modes — the differential fuzzer and the
/// superblock equivalence suite pin this.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// Threaded-code dispatch plus superblock caching (default).
    #[default]
    Superblock,
    /// The historical per-cycle dispatcher, kept as the differential
    /// baseline; never enters a superblock run.
    Legacy,
}

/// Policy applied when a stream's window stack outgrows the physical
/// register file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WindowPolicy {
    /// Hardware spills the oldest resident window registers to backing
    /// store (and fills them back on demand), stalling the stream one cycle
    /// per transferred word. This models the paper's variable-sized
    /// multi-window organization with a background spill engine.
    #[default]
    AutoSpill,
    /// Overflow raises the stream's stack-fault interrupt (IR bit 6) and
    /// the window wraps; software is responsible for spilling.
    Fault,
}

/// Configuration of a [`Machine`](crate::Machine).
///
/// Use [`MachineConfig::disc1`] for the configuration of the paper's
/// experimental implementation, or start from [`MachineConfig::default`]
/// and override fields through the builder-style setters.
///
/// # Example
///
/// ```
/// use disc_core::{MachineConfig, SchedulePolicy};
///
/// let cfg = MachineConfig::disc1()
///     .with_streams(2)
///     .with_schedule(SchedulePolicy::round_robin(2));
/// assert_eq!(cfg.streams, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of resident instruction streams (1..=8). DISC1 supports 4.
    pub streams: usize,
    /// Pipeline depth in stages (3..=8). DISC1 uses 4: IF, RD, EX, WR.
    /// Jumps and external accesses resolve in the next-to-last stage.
    pub pipeline_depth: usize,
    /// Scheduler policy. DISC1 uses a 16-slot sequence table giving
    /// 1/16-granularity throughput partitioning.
    pub schedule: SchedulePolicy,
    /// Internal (on-chip, single-cycle) data memory size in 16-bit words.
    /// DISC1 has 2 KB = 1024 words. Data addresses below this value decode
    /// to internal memory; all others go through the asynchronous bus
    /// interface.
    pub internal_words: usize,
    /// Physical depth of each stream's stack-window register file.
    pub window_depth: usize,
    /// Overflow handling for the stack-window file.
    pub window_policy: WindowPolicy,
    /// Access latency in cycles of the built-in flat external memory used
    /// when no explicit bus is supplied (the paper's `tmem`).
    pub default_ext_latency: u32,
    /// Reaction to unmapped accesses and bus-transaction timeouts.
    pub bus_fault: BusFaultPolicy,
    /// Cycles an external transaction may stay outstanding before it is
    /// aborted under [`BusFaultPolicy::Fault`]; `0` disables the timeout.
    /// Ignored under [`BusFaultPolicy::Legacy`].
    pub abi_timeout: u64,
    /// IR bit (1..=7) that receives the per-stream bus-error interrupt
    /// under [`BusFaultPolicy::Fault`]. Defaults to 5, below the
    /// stack-fault bit (6) and the conventional watchdog/NMI bit (7).
    pub bus_error_bit: u8,
    /// How [`Machine::run`](crate::Machine::run) advances time. The
    /// default cycle-by-cycle mode is byte-identical to historical
    /// behavior; [`StepMode::EventSkip`] is an opt-in performance mode.
    pub step_mode: StepMode,
    /// How the execute hot path dispatches instructions. The default
    /// [`DispatchMode::Superblock`] threaded dispatcher is byte-identical
    /// to [`DispatchMode::Legacy`] in every architectural observable and
    /// several times faster on straight-line code.
    pub dispatch_mode: DispatchMode,
}

impl MachineConfig {
    /// The DISC1 configuration from the paper: 4 streams, 4-stage
    /// pipeline, even 16-slot round-robin schedule, 2 KB internal memory,
    /// 64-deep window stacks with hardware spill.
    pub fn disc1() -> Self {
        MachineConfig {
            streams: 4,
            pipeline_depth: 4,
            schedule: SchedulePolicy::round_robin(4),
            internal_words: 1024,
            window_depth: 64,
            window_policy: WindowPolicy::AutoSpill,
            default_ext_latency: 2,
            bus_fault: BusFaultPolicy::Legacy,
            abi_timeout: 0,
            bus_error_bit: 5,
            step_mode: StepMode::CycleByCycle,
            dispatch_mode: DispatchMode::Superblock,
        }
    }

    /// Sets the number of streams and rebuilds a matching round-robin
    /// schedule (call [`with_schedule`](Self::with_schedule) afterwards to
    /// override).
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        // `validate` rejects zero streams; keep the builder panic-free.
        self.schedule = SchedulePolicy::round_robin(streams.max(1));
        self
    }

    /// Sets the pipeline depth.
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Sets the scheduler policy.
    pub fn with_schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the window register file depth.
    pub fn with_window_depth(mut self, depth: usize) -> Self {
        self.window_depth = depth;
        self
    }

    /// Sets the window overflow policy.
    pub fn with_window_policy(mut self, policy: WindowPolicy) -> Self {
        self.window_policy = policy;
        self
    }

    /// Sets the latency of the default flat external memory.
    pub fn with_default_ext_latency(mut self, latency: u32) -> Self {
        self.default_ext_latency = latency;
        self
    }

    /// Sets the bus-fault policy.
    pub fn with_bus_fault(mut self, policy: BusFaultPolicy) -> Self {
        self.bus_fault = policy;
        self
    }

    /// Sets the transaction timeout in cycles (`0` disables it) applied
    /// under [`BusFaultPolicy::Fault`].
    pub fn with_abi_timeout(mut self, cycles: u64) -> Self {
        self.abi_timeout = cycles;
        self
    }

    /// Sets the IR bit delivering bus-error interrupts.
    pub fn with_bus_error_bit(mut self, bit: u8) -> Self {
        self.bus_error_bit = bit;
        self
    }

    /// Sets the stepping mode used by [`Machine::run`](crate::Machine::run).
    pub fn with_step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = mode;
        self
    }

    /// Sets the execute-path dispatch mode.
    pub fn with_dispatch_mode(mut self, mode: DispatchMode) -> Self {
        self.dispatch_mode = mode;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when a field is out of its supported range; called by
    /// [`Machine::new`](crate::Machine::new).
    pub fn validate(&self) {
        assert!(
            (1..=disc_isa::MAX_STREAMS).contains(&self.streams),
            "streams must be 1..=8, got {}",
            self.streams
        );
        assert!(
            (3..=8).contains(&self.pipeline_depth),
            "pipeline depth must be 3..=8, got {}",
            self.pipeline_depth
        );
        assert!(
            self.internal_words >= 16 && self.internal_words <= 0x8000,
            "internal memory must be 16..=32768 words"
        );
        assert!(
            self.window_depth > disc_isa::WINDOW_REGS,
            "window depth must exceed the visible window size"
        );
        assert!(
            (1..8).contains(&self.bus_error_bit),
            "bus error bit must be 1..=7 (bit 0 never vectors), got {}",
            self.bus_error_bit
        );
        self.schedule.validate(self.streams);
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::disc1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disc1_matches_paper() {
        let c = MachineConfig::disc1();
        assert_eq!(c.streams, disc_isa::DISC1_STREAMS);
        assert_eq!(c.pipeline_depth, 4);
        assert_eq!(c.internal_words, 1024); // 2 KB of 16-bit words
        c.validate();
    }

    #[test]
    fn builder_setters() {
        let c = MachineConfig::disc1()
            .with_streams(2)
            .with_pipeline_depth(5)
            .with_window_depth(16)
            .with_window_policy(WindowPolicy::Fault)
            .with_default_ext_latency(7);
        assert_eq!(c.streams, 2);
        assert_eq!(c.pipeline_depth, 5);
        assert_eq!(c.window_depth, 16);
        assert_eq!(c.window_policy, WindowPolicy::Fault);
        assert_eq!(c.default_ext_latency, 7);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "streams must be")]
    fn zero_streams_rejected() {
        MachineConfig::disc1().with_streams(0).validate();
    }

    #[test]
    #[should_panic(expected = "pipeline depth")]
    fn shallow_pipeline_rejected() {
        MachineConfig::disc1().with_pipeline_depth(2).validate();
    }

    #[test]
    fn disc1_defaults_to_legacy_faults() {
        let c = MachineConfig::disc1();
        assert_eq!(c.bus_fault, BusFaultPolicy::Legacy);
        assert_eq!(c.abi_timeout, 0);
        assert_eq!(c.bus_error_bit, 5);
    }

    #[test]
    fn fault_builder_setters() {
        let c = MachineConfig::disc1()
            .with_bus_fault(BusFaultPolicy::Fault)
            .with_abi_timeout(64)
            .with_bus_error_bit(4);
        assert_eq!(c.bus_fault, BusFaultPolicy::Fault);
        assert_eq!(c.abi_timeout, 64);
        assert_eq!(c.bus_error_bit, 4);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "bus error bit")]
    fn background_bus_error_bit_rejected() {
        MachineConfig::disc1().with_bus_error_bit(0).validate();
    }
}
