//! Machine configuration.

use crate::scheduler::SchedulePolicy;

/// How the machine reacts to external-bus faults: accesses to addresses no
/// peripheral decodes, and (under [`BusFaultPolicy::Fault`]) transactions
/// that exceed [`MachineConfig::abi_timeout`].
///
/// The paper's whole pitch is hard real-time isolation: a stalled or
/// misbehaving peripheral must suspend *only* the requesting stream
/// (§3.6.1). [`BusFaultPolicy::Fault`] gives that property teeth — a bad
/// access aborts, frees the single-transaction bus, wakes the stream and
/// delivers a per-stream bus-error interrupt on
/// [`MachineConfig::bus_error_bit`] — instead of silently completing
/// (unmapped) or hanging the stream forever (stuck peripheral).
///
/// Fault events are always visible in
/// [`MachineStats`](crate::MachineStats) (`unmapped_accesses`,
/// `abi_timeouts`, `bus_faults`) and in the cycle trace
/// ([`TraceEvent::BusFault`](crate::TraceEvent::BusFault)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BusFaultPolicy {
    /// Historical behavior, preserved bit-for-bit for differential tests:
    /// an unmapped external access is treated as a zero-latency access and
    /// handed to the bus anyway (an address-decoded bus then reads open-bus
    /// `0xffff` and drops writes), and a transaction never times out — a
    /// peripheral that never completes wedges its stream. Unmapped
    /// accesses are still *counted* in
    /// [`MachineStats::unmapped_accesses`](crate::MachineStats::unmapped_accesses).
    #[default]
    Legacy,
    /// Robust semantics: an unmapped access aborts without touching the
    /// bus, and a transaction outstanding longer than
    /// [`MachineConfig::abi_timeout`] cycles is aborted, freeing the bus
    /// and waking every waiting stream. Both deliver a bus-error interrupt
    /// on the faulting stream's [`MachineConfig::bus_error_bit`]. A
    /// faulted load leaves its destination register unchanged (the
    /// scoreboard entry is released); a faulted store is dropped; the
    /// instruction's window adjustment still applies so frame bookkeeping
    /// stays balanced.
    Fault,
}

/// How [`Machine::run`](crate::Machine::run) advances simulated time.
///
/// The default steps every cycle through the full pipeline model.
/// [`StepMode::EventSkip`] fast-forwards through *quiescent* stretches —
/// cycles where no stream can issue because everything is suspended on a
/// bus transaction, stalled by spill traffic, or dormant awaiting an
/// interrupt — by computing the next architecturally observable event
/// (ABI completion/timeout, peripheral countdowns via
/// [`DataBus::next_event`](crate::DataBus::next_event), sampling-sink
/// boundaries) and bulk-updating every counter exactly as if the cycles
/// had been stepped singly. Final architectural state, statistics and
/// cycle attribution are identical in both modes; only wall-clock time
/// differs. A trace sink that needs every cycle (the default for
/// [`TraceSink`](crate::TraceSink)) pins skipping off while attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StepMode {
    /// Execute every cycle through the pipeline model (default).
    #[default]
    CycleByCycle,
    /// Fast-forward through quiescent cycles to the next wake event.
    EventSkip,
}

/// How [`Machine::run`](crate::Machine::run) dispatches the execute hot
/// path.
///
/// The default threaded/superblock dispatcher predecodes every program
/// word into a handler index plus hazard masks, executes through a
/// function-pointer table, and — whenever the machine is in a
/// *hazard-frozen* state (no outstanding bus transaction, no spill/fill
/// stall, no in-flight window motion, no deliverable vectored interrupt,
/// no attached trace sink) — runs cached straight-line superblocks of
/// predecoded ops in a tight loop with bulk cycle/stat/attribution
/// updates. The run length is bounded by the same
/// [`DataBus::next_event`](crate::DataBus::next_event) wake machinery
/// that powers [`StepMode::EventSkip`], so no peripheral tick, fault-plan
/// window edge or interrupt is ever jumped over; a block ends at any
/// branch/fork/signal/bus op or wake-source boundary. Architectural
/// state, statistics, cycle attribution, traces and reports are
/// byte-identical between the two modes — the differential fuzzer and the
/// superblock equivalence suite pin this.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// Threaded-code dispatch plus superblock caching (default).
    #[default]
    Superblock,
    /// The historical per-cycle dispatcher, kept as the differential
    /// baseline; never enters a superblock run.
    Legacy,
}

/// Policy applied when a stream's window stack outgrows the physical
/// register file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WindowPolicy {
    /// Hardware spills the oldest resident window registers to backing
    /// store (and fills them back on demand), stalling the stream one cycle
    /// per transferred word. This models the paper's variable-sized
    /// multi-window organization with a background spill engine.
    #[default]
    AutoSpill,
    /// Overflow raises the stream's stack-fault interrupt (IR bit 6) and
    /// the window wraps; software is responsible for spilling.
    Fault,
}

/// Configuration of a [`Machine`](crate::Machine).
///
/// Use [`MachineConfig::disc1`] for the configuration of the paper's
/// experimental implementation, or start from [`MachineConfig::default`]
/// and override fields through the builder-style setters.
///
/// # Example
///
/// ```
/// use disc_core::{MachineConfig, SchedulePolicy};
///
/// let cfg = MachineConfig::disc1()
///     .with_streams(2)
///     .with_schedule(SchedulePolicy::round_robin(2));
/// assert_eq!(cfg.streams, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of resident instruction streams (1..=8). DISC1 supports 4.
    pub streams: usize,
    /// Pipeline depth in stages (3..=8). DISC1 uses 4: IF, RD, EX, WR.
    /// Jumps and external accesses resolve in the next-to-last stage.
    pub pipeline_depth: usize,
    /// Scheduler policy. DISC1 uses a 16-slot sequence table giving
    /// 1/16-granularity throughput partitioning.
    pub schedule: SchedulePolicy,
    /// Internal (on-chip, single-cycle) data memory size in 16-bit words.
    /// DISC1 has 2 KB = 1024 words. Data addresses below this value decode
    /// to internal memory; all others go through the asynchronous bus
    /// interface.
    pub internal_words: usize,
    /// Physical depth of each stream's stack-window register file.
    pub window_depth: usize,
    /// Overflow handling for the stack-window file.
    pub window_policy: WindowPolicy,
    /// Access latency in cycles of the built-in flat external memory used
    /// when no explicit bus is supplied (the paper's `tmem`).
    pub default_ext_latency: u32,
    /// Reaction to unmapped accesses and bus-transaction timeouts.
    pub bus_fault: BusFaultPolicy,
    /// Cycles an external transaction may stay outstanding before it is
    /// aborted under [`BusFaultPolicy::Fault`]; `0` disables the timeout.
    /// Ignored under [`BusFaultPolicy::Legacy`].
    pub abi_timeout: u64,
    /// IR bit (1..=7) that receives the per-stream bus-error interrupt
    /// under [`BusFaultPolicy::Fault`]. Defaults to 5, below the
    /// stack-fault bit (6) and the conventional watchdog/NMI bit (7).
    pub bus_error_bit: u8,
    /// How [`Machine::run`](crate::Machine::run) advances time. The
    /// default cycle-by-cycle mode is byte-identical to historical
    /// behavior; [`StepMode::EventSkip`] is an opt-in performance mode.
    pub step_mode: StepMode,
    /// How the execute hot path dispatches instructions. The default
    /// [`DispatchMode::Superblock`] threaded dispatcher is byte-identical
    /// to [`DispatchMode::Legacy`] in every architectural observable and
    /// several times faster on straight-line code.
    pub dispatch_mode: DispatchMode,
}

impl MachineConfig {
    /// The DISC1 configuration from the paper: 4 streams, 4-stage
    /// pipeline, even 16-slot round-robin schedule, 2 KB internal memory,
    /// 64-deep window stacks with hardware spill.
    pub fn disc1() -> Self {
        MachineConfig {
            streams: 4,
            pipeline_depth: 4,
            schedule: SchedulePolicy::round_robin(4),
            internal_words: 1024,
            window_depth: 64,
            window_policy: WindowPolicy::AutoSpill,
            default_ext_latency: 2,
            bus_fault: BusFaultPolicy::Legacy,
            abi_timeout: 0,
            bus_error_bit: 5,
            step_mode: StepMode::CycleByCycle,
            dispatch_mode: DispatchMode::Superblock,
        }
    }

    /// Sets the number of streams and rebuilds a matching round-robin
    /// schedule (call [`with_schedule`](Self::with_schedule) afterwards to
    /// override).
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        // `validate` rejects zero streams; keep the builder panic-free.
        self.schedule = SchedulePolicy::round_robin(streams.max(1));
        self
    }

    /// Sets the pipeline depth.
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Sets the scheduler policy.
    pub fn with_schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the window register file depth.
    pub fn with_window_depth(mut self, depth: usize) -> Self {
        self.window_depth = depth;
        self
    }

    /// Sets the window overflow policy.
    pub fn with_window_policy(mut self, policy: WindowPolicy) -> Self {
        self.window_policy = policy;
        self
    }

    /// Sets the latency of the default flat external memory.
    pub fn with_default_ext_latency(mut self, latency: u32) -> Self {
        self.default_ext_latency = latency;
        self
    }

    /// Sets the bus-fault policy.
    pub fn with_bus_fault(mut self, policy: BusFaultPolicy) -> Self {
        self.bus_fault = policy;
        self
    }

    /// Sets the transaction timeout in cycles (`0` disables it) applied
    /// under [`BusFaultPolicy::Fault`].
    pub fn with_abi_timeout(mut self, cycles: u64) -> Self {
        self.abi_timeout = cycles;
        self
    }

    /// Sets the IR bit delivering bus-error interrupts.
    pub fn with_bus_error_bit(mut self, bit: u8) -> Self {
        self.bus_error_bit = bit;
        self
    }

    /// Sets the stepping mode used by [`Machine::run`](crate::Machine::run).
    pub fn with_step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = mode;
        self
    }

    /// Sets the execute-path dispatch mode.
    pub fn with_dispatch_mode(mut self, mode: DispatchMode) -> Self {
        self.dispatch_mode = mode;
        self
    }

    /// Deterministic 64-bit fingerprint of this configuration. Every
    /// field (including the full schedule contents) folds into the hash,
    /// so two configs fingerprint equal iff they simulate identically.
    /// [`step_mode`](Self::step_mode) and
    /// [`dispatch_mode`](Self::dispatch_mode) are deliberately
    /// *excluded*: they change how fast the simulator walks the cycle
    /// count, never the architectural outcome — which is what lets one
    /// warm snapshot fork across every step/dispatch knob combination.
    ///
    /// This is the fingerprint embedded in `disc-snap/v1` headers; the
    /// `disc-obs` report fingerprint renders the same value as hex.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0x44495343; // "DISC"
        let mut fold = |v: u64| h = disc_snap::splitmix64(h ^ v);
        fold(self.streams as u64);
        fold(self.pipeline_depth as u64);
        match &self.schedule {
            SchedulePolicy::Sequence(slots) => {
                fold(1);
                fold(slots.len() as u64);
                for &s in slots {
                    fold(u64::from(s));
                }
            }
            SchedulePolicy::WeightedDeficit(weights) => {
                fold(2);
                fold(weights.len() as u64);
                for &w in weights {
                    fold(u64::from(w));
                }
            }
        }
        fold(self.internal_words as u64);
        fold(self.window_depth as u64);
        fold(match self.window_policy {
            WindowPolicy::AutoSpill => 1,
            WindowPolicy::Fault => 2,
        });
        fold(u64::from(self.default_ext_latency));
        fold(match self.bus_fault {
            BusFaultPolicy::Legacy => 1,
            BusFaultPolicy::Fault => 2,
        });
        fold(self.abi_timeout);
        fold(u64::from(self.bus_error_bit));
        h
    }

    /// Serializes the configuration (every field, *including* the
    /// timing-only step/dispatch modes) into a snapshot writer. Used by
    /// replay files, which must reconstruct the machine exactly as run.
    pub fn save_into(&self, w: &mut disc_snap::SnapWriter) {
        w.put_usize(self.streams);
        w.put_usize(self.pipeline_depth);
        match &self.schedule {
            SchedulePolicy::Sequence(slots) => {
                w.put_u8(1);
                w.put_usize(slots.len());
                for &s in slots {
                    w.put_u8(s);
                }
            }
            SchedulePolicy::WeightedDeficit(weights) => {
                w.put_u8(2);
                w.put_usize(weights.len());
                for &wt in weights {
                    w.put_u32(wt);
                }
            }
        }
        w.put_usize(self.internal_words);
        w.put_usize(self.window_depth);
        w.put_u8(match self.window_policy {
            WindowPolicy::AutoSpill => 1,
            WindowPolicy::Fault => 2,
        });
        w.put_u32(self.default_ext_latency);
        w.put_u8(match self.bus_fault {
            BusFaultPolicy::Legacy => 1,
            BusFaultPolicy::Fault => 2,
        });
        w.put_u64(self.abi_timeout);
        w.put_u8(self.bus_error_bit);
        w.put_u8(match self.step_mode {
            StepMode::CycleByCycle => 1,
            StepMode::EventSkip => 2,
        });
        w.put_u8(match self.dispatch_mode {
            DispatchMode::Superblock => 1,
            DispatchMode::Legacy => 2,
        });
    }

    /// Deserializes a configuration written by [`save_into`](Self::save_into).
    ///
    /// # Errors
    ///
    /// Returns [`disc_snap::SnapError`] on truncation or a malformed tag.
    pub fn restore_from(r: &mut disc_snap::SnapReader<'_>) -> Result<Self, disc_snap::SnapError> {
        use disc_snap::SnapError;
        let streams = r.get_usize()?;
        let pipeline_depth = r.get_usize()?;
        let schedule = match r.get_u8()? {
            1 => {
                let n = r.get_usize()?;
                let mut slots = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    slots.push(r.get_u8()?);
                }
                SchedulePolicy::Sequence(slots)
            }
            2 => {
                let n = r.get_usize()?;
                let mut weights = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    weights.push(r.get_u32()?);
                }
                SchedulePolicy::WeightedDeficit(weights)
            }
            t => return Err(SnapError::Corrupt(format!("bad schedule tag {t}"))),
        };
        let internal_words = r.get_usize()?;
        let window_depth = r.get_usize()?;
        let window_policy = match r.get_u8()? {
            1 => WindowPolicy::AutoSpill,
            2 => WindowPolicy::Fault,
            t => return Err(SnapError::Corrupt(format!("bad window policy tag {t}"))),
        };
        let default_ext_latency = r.get_u32()?;
        let bus_fault = match r.get_u8()? {
            1 => BusFaultPolicy::Legacy,
            2 => BusFaultPolicy::Fault,
            t => return Err(SnapError::Corrupt(format!("bad bus fault tag {t}"))),
        };
        let abi_timeout = r.get_u64()?;
        let bus_error_bit = r.get_u8()?;
        let step_mode = match r.get_u8()? {
            1 => StepMode::CycleByCycle,
            2 => StepMode::EventSkip,
            t => return Err(SnapError::Corrupt(format!("bad step mode tag {t}"))),
        };
        let dispatch_mode = match r.get_u8()? {
            1 => DispatchMode::Superblock,
            2 => DispatchMode::Legacy,
            t => return Err(SnapError::Corrupt(format!("bad dispatch mode tag {t}"))),
        };
        Ok(MachineConfig {
            streams,
            pipeline_depth,
            schedule,
            internal_words,
            window_depth,
            window_policy,
            default_ext_latency,
            bus_fault,
            abi_timeout,
            bus_error_bit,
            step_mode,
            dispatch_mode,
        })
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when a field is out of its supported range; called by
    /// [`Machine::new`](crate::Machine::new).
    pub fn validate(&self) {
        assert!(
            (1..=disc_isa::MAX_STREAMS).contains(&self.streams),
            "streams must be 1..=8, got {}",
            self.streams
        );
        assert!(
            (3..=8).contains(&self.pipeline_depth),
            "pipeline depth must be 3..=8, got {}",
            self.pipeline_depth
        );
        assert!(
            self.internal_words >= 16 && self.internal_words <= 0x8000,
            "internal memory must be 16..=32768 words"
        );
        assert!(
            self.window_depth > disc_isa::WINDOW_REGS,
            "window depth must exceed the visible window size"
        );
        assert!(
            (1..8).contains(&self.bus_error_bit),
            "bus error bit must be 1..=7 (bit 0 never vectors), got {}",
            self.bus_error_bit
        );
        self.schedule.validate(self.streams);
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::disc1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disc1_matches_paper() {
        let c = MachineConfig::disc1();
        assert_eq!(c.streams, disc_isa::DISC1_STREAMS);
        assert_eq!(c.pipeline_depth, 4);
        assert_eq!(c.internal_words, 1024); // 2 KB of 16-bit words
        c.validate();
    }

    #[test]
    fn builder_setters() {
        let c = MachineConfig::disc1()
            .with_streams(2)
            .with_pipeline_depth(5)
            .with_window_depth(16)
            .with_window_policy(WindowPolicy::Fault)
            .with_default_ext_latency(7);
        assert_eq!(c.streams, 2);
        assert_eq!(c.pipeline_depth, 5);
        assert_eq!(c.window_depth, 16);
        assert_eq!(c.window_policy, WindowPolicy::Fault);
        assert_eq!(c.default_ext_latency, 7);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "streams must be")]
    fn zero_streams_rejected() {
        MachineConfig::disc1().with_streams(0).validate();
    }

    #[test]
    #[should_panic(expected = "pipeline depth")]
    fn shallow_pipeline_rejected() {
        MachineConfig::disc1().with_pipeline_depth(2).validate();
    }

    #[test]
    fn disc1_defaults_to_legacy_faults() {
        let c = MachineConfig::disc1();
        assert_eq!(c.bus_fault, BusFaultPolicy::Legacy);
        assert_eq!(c.abi_timeout, 0);
        assert_eq!(c.bus_error_bit, 5);
    }

    #[test]
    fn fault_builder_setters() {
        let c = MachineConfig::disc1()
            .with_bus_fault(BusFaultPolicy::Fault)
            .with_abi_timeout(64)
            .with_bus_error_bit(4);
        assert_eq!(c.bus_fault, BusFaultPolicy::Fault);
        assert_eq!(c.abi_timeout, 64);
        assert_eq!(c.bus_error_bit, 4);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "bus error bit")]
    fn background_bus_error_bit_rejected() {
        MachineConfig::disc1().with_bus_error_bit(0).validate();
    }

    #[test]
    fn fingerprint_ignores_timing_knobs() {
        let base = MachineConfig::disc1();
        let fp = base.fingerprint();
        for step in [StepMode::CycleByCycle, StepMode::EventSkip] {
            for dispatch in [DispatchMode::Superblock, DispatchMode::Legacy] {
                let c = base
                    .clone()
                    .with_step_mode(step)
                    .with_dispatch_mode(dispatch);
                assert_eq!(c.fingerprint(), fp, "{step:?}/{dispatch:?}");
            }
        }
        assert_ne!(base.clone().with_streams(2).fingerprint(), fp);
        assert_ne!(base.clone().with_abi_timeout(9).fingerprint(), fp);
    }

    #[test]
    fn config_snapshot_roundtrip() {
        let c = MachineConfig::disc1()
            .with_streams(3)
            .with_schedule(SchedulePolicy::WeightedDeficit(vec![3, 2, 1]))
            .with_bus_fault(BusFaultPolicy::Fault)
            .with_abi_timeout(128)
            .with_step_mode(StepMode::EventSkip)
            .with_dispatch_mode(DispatchMode::Legacy);
        let mut w = disc_snap::SnapWriter::new();
        c.save_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = disc_snap::SnapReader::new(&bytes);
        let back = MachineConfig::restore_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, c);
    }
}
