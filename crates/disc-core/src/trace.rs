//! Cycle-by-cycle tracing, used by the figure generators to reproduce the
//! paper's pipeline diagrams (Figures 3.1 and 3.2) and the dynamic
//! reallocation timeline (Figure 3.3).
//!
//! Tracing is built around the [`TraceSink`] trait: the machine assembles
//! one [`CycleRecord`] per cycle and hands it to whatever sink is
//! attached. The bounded ring-buffer [`Trace`] is the built-in sink behind
//! [`Machine::trace_start`](crate::Machine::trace_start); streaming sinks
//! (JSONL events, counter sampling) live in the `disc-obs` crate and
//! attach through
//! [`Machine::set_trace_sink`](crate::Machine::set_trace_sink).

use std::collections::VecDeque;

use disc_isa::Instruction;

use crate::stats::MachineStats;

/// Snapshot of one pipeline stage in one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Stream the instruction belongs to.
    pub stream: usize,
    /// Program address of the instruction.
    pub pc: u16,
    /// The instruction occupying the stage.
    pub instr: Instruction,
}

/// What kind of bus fault a [`TraceEvent::BusFault`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusFaultKind {
    /// The access targeted an address no peripheral decodes.
    Unmapped,
    /// The outstanding transaction exceeded the configured
    /// [`abi_timeout`](crate::MachineConfig::abi_timeout) and was aborted.
    Timeout,
}

impl std::fmt::Display for BusFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusFaultKind::Unmapped => f.write_str("unmapped"),
            BusFaultKind::Timeout => f.write_str("timeout"),
        }
    }
}

/// Notable event within a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// `count` instructions of `stream` were flushed.
    Flush {
        /// Stream whose instructions were removed.
        stream: usize,
        /// Number of slots flushed.
        count: usize,
        /// Human-readable cause (`"jump"`, `"io"`, `"bus-busy"`, …).
        cause: &'static str,
    },
    /// An external bus transaction started.
    BusStart {
        /// Issuing stream.
        stream: usize,
        /// External address.
        addr: u16,
        /// Access latency in cycles.
        latency: u32,
    },
    /// The outstanding bus transaction completed.
    BusComplete {
        /// Stream that was waiting on it.
        stream: usize,
    },
    /// A vectored interrupt was taken.
    Vector {
        /// Stream entering the handler.
        stream: usize,
        /// IR bit serviced.
        bit: u8,
        /// Handler address.
        target: u16,
    },
    /// A bus fault was delivered to a stream (see
    /// [`BusFaultPolicy::Fault`](crate::BusFaultPolicy::Fault)).
    BusFault {
        /// Faulting stream.
        stream: usize,
        /// External address of the faulting access.
        addr: u16,
        /// Unmapped access or transaction timeout.
        kind: BusFaultKind,
    },
    /// The stack-window engine stalled a stream for spill/fill traffic.
    Spill {
        /// Stalled stream.
        stream: usize,
        /// Stall cycles charged.
        cycles: u32,
    },
    /// An instruction left the write stage (architecturally committed).
    /// Only emitted while a sink is attached; the differential fuzz
    /// harness uses the per-stream retire order as the program-order
    /// ground truth to compare against the reference model.
    Retire {
        /// Stream the instruction belongs to.
        stream: usize,
        /// Program address of the retired instruction.
        pc: u16,
    },
}

/// One traced machine cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleRecord {
    /// Cycle number.
    pub cycle: u64,
    /// Pipeline occupancy after this cycle; index 0 is the fetch stage and
    /// the last index is the write stage. `None` is a bubble.
    pub stages: Vec<Option<StageSnapshot>>,
    /// Stream that fetched this cycle, if any.
    pub fetched: Option<usize>,
    /// Events raised during the cycle.
    pub events: Vec<TraceEvent>,
}

/// Consumer of per-cycle trace data.
///
/// The machine calls [`record_cycle`](TraceSink::record_cycle) once per
/// simulated cycle (when [`wants_records`](TraceSink::wants_records) is
/// `true`) and [`observe_stats`](TraceSink::observe_stats) every cycle
/// regardless, so counters-only sinks can sample
/// [`MachineStats`] without paying for record assembly.
///
/// Sinks are strictly *passive*: they observe the machine and must never
/// influence simulation behavior.
pub trait TraceSink: 'static {
    /// Whether the machine should assemble full [`CycleRecord`]s for this
    /// sink. Counters-only sinks return `false` to keep the hot path
    /// cheap (no per-stage snapshotting, no event buffering).
    fn wants_records(&self) -> bool {
        true
    }

    /// One completed machine cycle. Only called when
    /// [`wants_records`](TraceSink::wants_records) returns `true`.
    fn record_cycle(&mut self, record: CycleRecord);

    /// Called once per cycle (after any [`record_cycle`]
    /// (TraceSink::record_cycle)) with the cycle number just completed and
    /// the statistics as of the end of that cycle.
    fn observe_stats(&mut self, cycle: u64, stats: &MachineStats) {
        let _ = (cycle, stats);
    }

    /// Earliest absolute machine cycle `>= now` this sink needs to observe
    /// (via [`record_cycle`](TraceSink::record_cycle) /
    /// [`observe_stats`](TraceSink::observe_stats)), or `None` when the
    /// sink never needs another observation.
    ///
    /// [`StepMode::EventSkip`](crate::StepMode) consults this before
    /// fast-forwarding: cycles strictly before the returned value may be
    /// skipped without calling the sink for them. The default, `Some(now)`,
    /// declares that every cycle must be observed and therefore pins
    /// skipping off entirely — which is what full-record sinks (including
    /// the ring-buffer [`Trace`]) require for byte-identical output.
    /// Sampling sinks that only inspect cumulative counters at window
    /// boundaries can return the next boundary instead.
    fn next_observe(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    /// Flush hook, called when the sink is detached from the machine.
    fn finish(&mut self) {}

    /// Recovers the concrete sink type after
    /// [`Machine::take_trace_sink`](crate::Machine::take_trace_sink).
    /// Implementations are one line: `self`.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// A bounded trace buffer: the built-in ring-buffer [`TraceSink`].
///
/// Keeps the most recent `capacity` cycles with O(1) eviction per cycle
/// (the buffer used to evict with `Vec::remove(0)`, which made long
/// traced runs quadratic). A capacity of 0 keeps nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: VecDeque<CycleRecord>,
    capacity: usize,
}

impl Trace {
    /// Creates a trace keeping at most `capacity` cycles (oldest dropped).
    /// `capacity` 0 records nothing and is valid.
    pub fn new(capacity: usize) -> Self {
        Trace {
            records: VecDeque::new(),
            capacity,
        }
    }

    /// Appends one cycle, evicting the oldest when full (O(1)).
    pub fn push(&mut self, record: CycleRecord) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(record);
    }

    /// Maximum number of cycles retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Recorded cycles, oldest first.
    pub fn records(&self) -> &VecDeque<CycleRecord> {
        &self.records
    }

    /// Exports the trace as a Value Change Dump (VCD) waveform, viewable
    /// in GTKWave & co. One 8-bit signal per pipeline stage carries the
    /// occupying stream index (`0xff` = bubble), plus a `fetch` signal for
    /// the stream that issued each cycle.
    pub fn to_vcd(&self, stage_names: &[&str]) -> String {
        let depth = self
            .records
            .iter()
            .map(|r| r.stages.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        out.push_str("$version disc-core trace $end\n");
        out.push_str("$timescale 1 ns $end\n");
        out.push_str("$scope module disc1 $end\n");
        let id = vcd_id;
        for i in 0..depth {
            let name = stage_names.get(i).copied().unwrap_or("stage");
            out.push_str(&format!("$var wire 8 {} {name}{i} $end\n", id(i)));
        }
        out.push_str(&format!("$var wire 8 {} fetch $end\n", id(depth)));
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut last: Vec<Option<u16>> = vec![None; depth + 1];
        for r in &self.records {
            let mut changes = String::new();
            for (i, seen) in last.iter_mut().take(depth).enumerate() {
                let v = r
                    .stages
                    .get(i)
                    .and_then(|s| s.as_ref())
                    .map(|s| s.stream as u16)
                    .unwrap_or(0xff);
                if *seen != Some(v) {
                    changes.push_str(&format!("b{v:08b} {}\n", id(i)));
                    *seen = Some(v);
                }
            }
            let f = r.fetched.map(|s| s as u16).unwrap_or(0xff);
            if last[depth] != Some(f) {
                changes.push_str(&format!("b{f:08b} {}\n", id(depth)));
                last[depth] = Some(f);
            }
            if !changes.is_empty() {
                out.push_str(&format!("#{}\n{changes}", r.cycle));
            }
        }
        out
    }

    /// Renders the trace as the paper's pipeline diagrams: one row per
    /// pipeline stage, one column per cycle, each cell naming the stage and
    /// stream like `IF a1` in Figure 3.1 (here `IF s0` …). Bubbles print
    /// as `----`.
    pub fn pipeline_diagram(&self, stage_names: &[&str]) -> String {
        let mut out = String::new();
        let depth = self
            .records
            .iter()
            .map(|r| r.stages.len())
            .max()
            .unwrap_or(0);
        for stage in 0..depth {
            let name = stage_names.get(stage).copied().unwrap_or("??");
            for r in &self.records {
                match r.stages.get(stage).and_then(|s| s.as_ref()) {
                    Some(snap) => out.push_str(&format!("{name} s{} ", snap.stream)),
                    None => out.push_str(&format!("{name} -- ")),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl TraceSink for Trace {
    fn record_cycle(&mut self, record: CycleRecord) {
        self.push(record);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Printable-ASCII characters usable in a VCD identifier code
/// (`'!'..='~'`).
const VCD_ID_RANGE: usize = 94;

/// Generates the VCD identifier code for signal `i`.
///
/// VCD identifiers must stay within printable ASCII (33–126). The old
/// single-character scheme `b'!' + i` overflowed `u8` past signal 93 and
/// left the printable range well before that, so deep stage counts
/// produced corrupt waveforms. Signals 0–93 keep their historical
/// single-character codes; higher indices get multi-character codes via
/// bijective base-94 numeration, which never collides.
fn vcd_id(mut i: usize) -> String {
    let mut id = String::new();
    loop {
        id.push(char::from(b'!' + (i % VCD_ID_RANGE) as u8));
        i /= VCD_ID_RANGE;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_capacity_drops_oldest() {
        let mut t = Trace::new(2);
        for c in 0..5 {
            t.push(CycleRecord {
                cycle: c,
                ..Default::default()
            });
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records()[0].cycle, 3);
        assert_eq!(t.records()[1].cycle, 4);
    }

    #[test]
    fn vcd_export_has_header_and_changes() {
        let mut t = Trace::new(8);
        t.push(CycleRecord {
            cycle: 3,
            stages: vec![
                Some(StageSnapshot {
                    stream: 2,
                    pc: 0,
                    instr: Instruction::Nop,
                }),
                None,
            ],
            fetched: Some(2),
            events: vec![],
        });
        t.push(CycleRecord {
            cycle: 4,
            stages: vec![None, None],
            fetched: None,
            events: vec![],
        });
        let vcd = t.to_vcd(&["IF", "WR"]);
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("$var wire 8 ! IF0"));
        assert!(vcd.contains("#3"));
        assert!(vcd.contains("b00000010 !"), "stream 2 in IF:\n{vcd}");
        assert!(vcd.contains("b11111111"), "bubble encodes as 0xff");
        assert!(vcd.contains("#4"), "second cycle changes recorded");
    }

    #[test]
    fn zero_capacity_trace_keeps_nothing_and_never_panics() {
        // Regression: `Trace::new(0)` used to panic on the very first push
        // (`Vec::remove(0)` on an empty buffer when len == capacity == 0).
        let mut t = Trace::new(0);
        for c in 0..4 {
            t.push(CycleRecord {
                cycle: c,
                ..Default::default()
            });
        }
        assert!(t.records().is_empty());
        assert_eq!(t.capacity(), 0);
        assert!(t.to_vcd(&[]).contains("$enddefinitions"));
        assert_eq!(t.pipeline_diagram(&[]), "");
    }

    #[test]
    fn full_buffer_eviction_is_constant_time() {
        // Perf sanity: a full bounded trace must sustain O(1) eviction.
        // With the old `Vec::remove(0)` eviction this loop performed ~2.9
        // billion element moves and took minutes; as a ring buffer it is
        // instant. Functional assertions keep the test meaningful even on
        // a fast machine.
        const CAPACITY: usize = 10_000;
        const PUSHES: u64 = 300_000;
        let mut t = Trace::new(CAPACITY);
        for c in 0..PUSHES {
            t.push(CycleRecord {
                cycle: c,
                ..Default::default()
            });
        }
        assert_eq!(t.records().len(), CAPACITY);
        assert_eq!(t.records()[0].cycle, PUSHES - CAPACITY as u64);
        assert_eq!(t.records()[CAPACITY - 1].cycle, PUSHES - 1);
    }

    #[test]
    fn vcd_ids_stay_printable_and_unique_past_94_signals() {
        let n = 300;
        let ids: Vec<String> = (0..n).map(vcd_id).collect();
        for id in &ids {
            assert!(!id.is_empty());
            assert!(
                id.bytes().all(|b| (33..=126).contains(&b)),
                "id {id:?} leaves printable ASCII"
            );
        }
        let distinct: std::collections::HashSet<&String> = ids.iter().collect();
        assert_eq!(distinct.len(), n, "identifier codes must not collide");
        // Historical single-character codes are preserved.
        assert_eq!(vcd_id(0), "!");
        assert_eq!(vcd_id(93), "~");
        assert_eq!(vcd_id(94), "!!");
    }

    #[test]
    fn vcd_export_handles_deep_stage_counts() {
        // 120 stages + the fetch signal: far past the 94-code
        // single-character range that used to overflow.
        let depth = 120;
        let mut t = Trace::new(4);
        t.push(CycleRecord {
            cycle: 0,
            stages: (0..depth)
                .map(|i| {
                    (i % 2 == 0).then_some(StageSnapshot {
                        stream: i % 8,
                        pc: i as u16,
                        instr: Instruction::Nop,
                    })
                })
                .collect(),
            fetched: Some(1),
            events: vec![],
        });
        let names: Vec<String> = (0..depth).map(|i| format!("st{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let vcd = t.to_vcd(&refs);
        let mut ids = std::collections::HashSet::new();
        let mut vars = 0;
        for line in vcd.lines() {
            if let Some(rest) = line.strip_prefix("$var wire 8 ") {
                let id = rest.split_whitespace().next().unwrap();
                assert!(id.bytes().all(|b| (33..=126).contains(&b)), "{id:?}");
                assert!(ids.insert(id.to_string()), "duplicate id {id:?}");
                vars += 1;
            }
        }
        assert_eq!(vars, depth + 1, "one signal per stage plus fetch");
    }

    #[test]
    fn trace_sink_roundtrip_matches_direct_pushes() {
        let record = CycleRecord {
            cycle: 7,
            stages: vec![None],
            fetched: None,
            events: vec![],
        };
        let mut direct = Trace::new(4);
        direct.push(record.clone());
        let mut sink: Box<dyn TraceSink> = Box::new(Trace::new(4));
        sink.record_cycle(record);
        sink.finish();
        let roundtripped = *sink.into_any().downcast::<Trace>().unwrap();
        assert_eq!(roundtripped, direct);
    }

    #[test]
    fn diagram_renders_rows_per_stage() {
        let mut t = Trace::new(8);
        t.push(CycleRecord {
            cycle: 0,
            stages: vec![
                Some(StageSnapshot {
                    stream: 1,
                    pc: 0,
                    instr: Instruction::Nop,
                }),
                None,
            ],
            fetched: Some(1),
            events: vec![],
        });
        let d = t.pipeline_diagram(&["IF", "WR"]);
        assert!(d.contains("IF s1"));
        assert!(d.contains("WR --"));
    }
}
