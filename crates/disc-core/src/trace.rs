//! Cycle-by-cycle tracing, used by the figure generators to reproduce the
//! paper's pipeline diagrams (Figures 3.1 and 3.2) and the dynamic
//! reallocation timeline (Figure 3.3).

use disc_isa::Instruction;

/// Snapshot of one pipeline stage in one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Stream the instruction belongs to.
    pub stream: usize,
    /// Program address of the instruction.
    pub pc: u16,
    /// The instruction occupying the stage.
    pub instr: Instruction,
}

/// What kind of bus fault a [`TraceEvent::BusFault`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusFaultKind {
    /// The access targeted an address no peripheral decodes.
    Unmapped,
    /// The outstanding transaction exceeded the configured
    /// [`abi_timeout`](crate::MachineConfig::abi_timeout) and was aborted.
    Timeout,
}

impl std::fmt::Display for BusFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusFaultKind::Unmapped => f.write_str("unmapped"),
            BusFaultKind::Timeout => f.write_str("timeout"),
        }
    }
}

/// Notable event within a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// `count` instructions of `stream` were flushed.
    Flush {
        /// Stream whose instructions were removed.
        stream: usize,
        /// Number of slots flushed.
        count: usize,
        /// Human-readable cause (`"jump"`, `"io"`, `"bus-busy"`, …).
        cause: &'static str,
    },
    /// An external bus transaction started.
    BusStart {
        /// Issuing stream.
        stream: usize,
        /// External address.
        addr: u16,
        /// Access latency in cycles.
        latency: u32,
    },
    /// The outstanding bus transaction completed.
    BusComplete {
        /// Stream that was waiting on it.
        stream: usize,
    },
    /// A vectored interrupt was taken.
    Vector {
        /// Stream entering the handler.
        stream: usize,
        /// IR bit serviced.
        bit: u8,
        /// Handler address.
        target: u16,
    },
    /// A bus fault was delivered to a stream (see
    /// [`BusFaultPolicy::Fault`](crate::BusFaultPolicy::Fault)).
    BusFault {
        /// Faulting stream.
        stream: usize,
        /// External address of the faulting access.
        addr: u16,
        /// Unmapped access or transaction timeout.
        kind: BusFaultKind,
    },
    /// The stack-window engine stalled a stream for spill/fill traffic.
    Spill {
        /// Stalled stream.
        stream: usize,
        /// Stall cycles charged.
        cycles: u32,
    },
}

/// One traced machine cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleRecord {
    /// Cycle number.
    pub cycle: u64,
    /// Pipeline occupancy after this cycle; index 0 is the fetch stage and
    /// the last index is the write stage. `None` is a bubble.
    pub stages: Vec<Option<StageSnapshot>>,
    /// Stream that fetched this cycle, if any.
    pub fetched: Option<usize>,
    /// Events raised during the cycle.
    pub events: Vec<TraceEvent>,
}

/// A bounded trace buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<CycleRecord>,
    capacity: usize,
}

impl Trace {
    /// Creates a trace keeping at most `capacity` cycles (oldest dropped).
    pub fn new(capacity: usize) -> Self {
        Trace {
            records: Vec::new(),
            capacity,
        }
    }

    pub(crate) fn push(&mut self, record: CycleRecord) {
        if self.records.len() == self.capacity {
            self.records.remove(0);
        }
        self.records.push(record);
    }

    /// Recorded cycles, oldest first.
    pub fn records(&self) -> &[CycleRecord] {
        &self.records
    }

    /// Exports the trace as a Value Change Dump (VCD) waveform, viewable
    /// in GTKWave & co. One 8-bit signal per pipeline stage carries the
    /// occupying stream index (`0xff` = bubble), plus a `fetch` signal for
    /// the stream that issued each cycle.
    pub fn to_vcd(&self, stage_names: &[&str]) -> String {
        let depth = self
            .records
            .iter()
            .map(|r| r.stages.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        out.push_str("$version disc-core trace $end\n");
        out.push_str("$timescale 1 ns $end\n");
        out.push_str("$scope module disc1 $end\n");
        // Identifier codes: '!' onward.
        let id = |i: usize| char::from(b'!' + i as u8);
        for i in 0..depth {
            let name = stage_names.get(i).copied().unwrap_or("stage");
            out.push_str(&format!("$var wire 8 {} {name}{i} $end\n", id(i)));
        }
        out.push_str(&format!("$var wire 8 {} fetch $end\n", id(depth)));
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut last: Vec<Option<u16>> = vec![None; depth + 1];
        for r in &self.records {
            let mut changes = String::new();
            for (i, seen) in last.iter_mut().take(depth).enumerate() {
                let v = r
                    .stages
                    .get(i)
                    .and_then(|s| s.as_ref())
                    .map(|s| s.stream as u16)
                    .unwrap_or(0xff);
                if *seen != Some(v) {
                    changes.push_str(&format!("b{v:08b} {}\n", id(i)));
                    *seen = Some(v);
                }
            }
            let f = r.fetched.map(|s| s as u16).unwrap_or(0xff);
            if last[depth] != Some(f) {
                changes.push_str(&format!("b{f:08b} {}\n", id(depth)));
                last[depth] = Some(f);
            }
            if !changes.is_empty() {
                out.push_str(&format!("#{}\n{changes}", r.cycle));
            }
        }
        out
    }

    /// Renders the trace as the paper's pipeline diagrams: one row per
    /// pipeline stage, one column per cycle, each cell naming the stage and
    /// stream like `IF a1` in Figure 3.1 (here `IF s0` …). Bubbles print
    /// as `----`.
    pub fn pipeline_diagram(&self, stage_names: &[&str]) -> String {
        let mut out = String::new();
        let depth = self
            .records
            .iter()
            .map(|r| r.stages.len())
            .max()
            .unwrap_or(0);
        for stage in 0..depth {
            let name = stage_names.get(stage).copied().unwrap_or("??");
            for r in &self.records {
                match r.stages.get(stage).and_then(|s| s.as_ref()) {
                    Some(snap) => out.push_str(&format!("{name} s{} ", snap.stream)),
                    None => out.push_str(&format!("{name} -- ")),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_capacity_drops_oldest() {
        let mut t = Trace::new(2);
        for c in 0..5 {
            t.push(CycleRecord {
                cycle: c,
                ..Default::default()
            });
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records()[0].cycle, 3);
        assert_eq!(t.records()[1].cycle, 4);
    }

    #[test]
    fn vcd_export_has_header_and_changes() {
        let mut t = Trace::new(8);
        t.push(CycleRecord {
            cycle: 3,
            stages: vec![
                Some(StageSnapshot {
                    stream: 2,
                    pc: 0,
                    instr: Instruction::Nop,
                }),
                None,
            ],
            fetched: Some(2),
            events: vec![],
        });
        t.push(CycleRecord {
            cycle: 4,
            stages: vec![None, None],
            fetched: None,
            events: vec![],
        });
        let vcd = t.to_vcd(&["IF", "WR"]);
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("$var wire 8 ! IF0"));
        assert!(vcd.contains("#3"));
        assert!(vcd.contains("b00000010 !"), "stream 2 in IF:\n{vcd}");
        assert!(vcd.contains("b11111111"), "bubble encodes as 0xff");
        assert!(vcd.contains("#4"), "second cycle changes recorded");
    }

    #[test]
    fn diagram_renders_rows_per_stage() {
        let mut t = Trace::new(8);
        t.push(CycleRecord {
            cycle: 0,
            stages: vec![
                Some(StageSnapshot {
                    stream: 1,
                    pc: 0,
                    instr: Instruction::Nop,
                }),
                None,
            ],
            fetched: Some(1),
            events: vec![],
        });
        let d = t.pipeline_diagram(&["IF", "WR"]);
        assert!(d.contains("IF s1"));
        assert!(d.contains("WR --"));
    }
}
