//! `disc-snap` — the versioned binary snapshot codec for DISC machine
//! state.
//!
//! The format (`disc-snap/v1`) is hand-rolled like the JSON layer in
//! `disc-obs`: little-endian fixed-width integers, `u64` length-prefixed
//! byte strings, and explicit one-byte `Option` tags. There is no derive
//! machinery and no external dependency — every producer writes its fields
//! in a documented order and every consumer reads them back in the same
//! order, validating as it goes.
//!
//! A snapshot starts with a fingerprinted header ([`write_header`] /
//! [`read_header`]): magic, format string, a configuration fingerprint and
//! a program hash. Restore refuses blobs whose fingerprints do not match
//! the receiving machine, so state can never be applied across an
//! incompatible configuration. Fields that are *timing-invisible* (step
//! mode, dispatch mode) are excluded from the fingerprint by the producer,
//! which is what allows forking one warm snapshot across every
//! step/dispatch knob combination.
//!
//! The crate also defines [`ReplayableRng`], the one accessor behind which
//! every seeded random source in the workspace (the `disc-stoch` sampler,
//! the `disc-faults` cursor) exposes its state for checkpointing.

use std::fmt;

/// Format identifier embedded in every snapshot. Bump this whenever the
/// byte layout of any serialized component changes — the golden-blob
/// format-stability test enforces it.
pub const FORMAT: &str = "disc-snap/v1";

/// Eight-byte magic prefix of every snapshot blob.
pub const MAGIC: [u8; 8] = *b"DISCSNAP";

/// Decoding / compatibility error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The blob ended before the expected field.
    Truncated,
    /// The blob does not start with [`MAGIC`].
    BadMagic,
    /// The blob's format string is not [`FORMAT`].
    BadVersion(String),
    /// The blob was produced under an incompatible machine configuration.
    FingerprintMismatch {
        /// Fingerprint of the restoring machine.
        expected: u64,
        /// Fingerprint recorded in the blob.
        found: u64,
    },
    /// The blob was produced from a different program image.
    ProgramMismatch {
        /// Program hash of the restoring machine.
        expected: u64,
        /// Program hash recorded in the blob.
        found: u64,
    },
    /// A field failed structural validation.
    Corrupt(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "not a disc-snap blob (bad magic)"),
            SnapError::BadVersion(v) => {
                write!(f, "unsupported snapshot format {v:?} (expected {FORMAT:?})")
            }
            SnapError::FingerprintMismatch { expected, found } => write!(
                f,
                "config fingerprint mismatch: machine {expected:016x}, snapshot {found:016x}"
            ),
            SnapError::ProgramMismatch { expected, found } => write!(
                f,
                "program hash mismatch: machine {expected:016x}, snapshot {found:016x}"
            ),
            SnapError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Sequential binary writer. All integers are little-endian.
#[derive(Debug, Default, Clone)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64` (two's-complement `u64`).
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes an `Option<u16>` (tag byte + payload).
    pub fn put_opt_u16(&mut self, v: Option<u16>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                self.put_u16(x);
            }
        }
    }

    /// Writes an `Option<u64>` (tag byte + payload).
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
        }
    }
}

/// Sequential binary reader over an encoded blob.
#[derive(Debug, Clone)]
pub struct SnapReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        SnapReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` when the whole blob has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`, rejecting any byte other than 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Corrupt(format!("bad bool byte {b:#04x}"))),
        }
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a `usize` stored as `u64`, rejecting values that do not fit.
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt(format!("usize overflow: {v}")))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.get_usize()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SnapError> {
        let b = self.get_bytes()?;
        std::str::from_utf8(b).map_err(|_| SnapError::Corrupt("non-UTF-8 string".into()))
    }

    /// Reads a length-prefixed string and checks it against `expected` —
    /// the component name-tag convention used by every bus / peripheral
    /// blob so that state can never be applied to the wrong device kind.
    pub fn expect_str(&mut self, expected: &str) -> Result<(), SnapError> {
        let got = self.get_str()?;
        if got != expected {
            return Err(SnapError::Corrupt(format!(
                "component tag mismatch: expected {expected:?}, found {got:?}"
            )));
        }
        Ok(())
    }

    /// Reads an `Option<u16>`.
    pub fn get_opt_u16(&mut self) -> Result<Option<u16>, SnapError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u16()?)),
            b => Err(SnapError::Corrupt(format!("bad option tag {b:#04x}"))),
        }
    }

    /// Reads an `Option<u64>`.
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u64()?)),
            b => Err(SnapError::Corrupt(format!("bad option tag {b:#04x}"))),
        }
    }

    /// Errors unless the blob is fully consumed — applied at the end of a
    /// restore so trailing garbage is rejected rather than ignored.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(SnapError::Corrupt(format!(
                "{} trailing bytes after snapshot body",
                self.remaining()
            )))
        }
    }
}

/// Parsed snapshot header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapHeader {
    /// Fingerprint of the producing machine's configuration (timing-
    /// invisible knobs excluded).
    pub config_fingerprint: u64,
    /// Hash of the producing machine's program image.
    pub program_hash: u64,
}

/// Writes the `disc-snap/v1` header: magic, format string, config
/// fingerprint, program hash.
pub fn write_header(w: &mut SnapWriter, config_fingerprint: u64, program_hash: u64) {
    w.buf.extend_from_slice(&MAGIC);
    w.put_str(FORMAT);
    w.put_u64(config_fingerprint);
    w.put_u64(program_hash);
}

/// Reads and validates the header, returning the recorded fingerprints.
/// Compatibility with the restoring machine is the caller's check — the
/// header only proves the blob is a well-formed `disc-snap/v1` snapshot.
pub fn read_header(r: &mut SnapReader<'_>) -> Result<SnapHeader, SnapError> {
    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.get_str()?;
    if version != FORMAT {
        return Err(SnapError::BadVersion(version.to_string()));
    }
    Ok(SnapHeader {
        config_fingerprint: r.get_u64()?,
        program_hash: r.get_u64()?,
    })
}

/// The splitmix64 mixing function — the workspace-standard hash used for
/// config fingerprints and journal checksums (same constants as the
/// `disc-faults` decision hash and the `disc-obs` fingerprint).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Checksum of a byte string, used by the crash-safe shard journal in
/// `disc-par`: a splitmix64 fold over length and contents.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = splitmix64(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(word));
    }
    h
}

/// The single accessor behind which every seeded random source exposes
/// its state for checkpointing.
///
/// Implementors: the `disc-stoch` [`Sampler`] (xoshiro256++ core state)
/// and the `disc-faults` injector (whose "RNG" is a stateless
/// splitmix64 decision hash — its only replayable state is the cycle
/// cursor). A snapshot producer calls [`rng_state`](Self::rng_state) and
/// embeds the opaque blob; restore hands it back verbatim.
pub trait ReplayableRng {
    /// Serializes the generator state as an opaque byte blob.
    fn rng_state(&self) -> Vec<u8>;

    /// Restores the generator from a blob produced by
    /// [`rng_state`](Self::rng_state).
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] when the blob is malformed or belongs to a
    /// different generator kind.
    fn set_rng_state(&mut self, state: &[u8]) -> Result<(), SnapError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = SnapWriter::new();
        w.put_u8(0xab);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u16(0xbeef);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_i64(-42);
        w.put_usize(usize::MAX);
        w.put_bytes(b"raw");
        w.put_str("text");
        w.put_opt_u16(None);
        w.put_opt_u16(Some(7));
        w.put_opt_u64(Some(u64::MAX));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 0xbeef);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_usize().unwrap(), usize::MAX);
        assert_eq!(r.get_bytes().unwrap(), b"raw");
        assert_eq!(r.get_str().unwrap(), "text");
        assert_eq!(r.get_opt_u16().unwrap(), None);
        assert_eq!(r.get_opt_u16().unwrap(), Some(7));
        assert_eq!(r.get_opt_u64().unwrap(), Some(u64::MAX));
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = SnapWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        assert_eq!(r.get_u64(), Err(SnapError::Truncated));
        // A length prefix pointing past the end is truncation, not a panic.
        let mut w = SnapWriter::new();
        w.put_u64(1000);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_bytes(), Err(SnapError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = SnapWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.get_u8().unwrap();
        assert!(matches!(r.finish(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn bad_tags_are_corrupt() {
        let bytes = [2u8];
        assert!(matches!(
            SnapReader::new(&bytes).get_bool(),
            Err(SnapError::Corrupt(_))
        ));
        assert!(matches!(
            SnapReader::new(&bytes).get_opt_u16(),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn header_roundtrip_and_validation() {
        let mut w = SnapWriter::new();
        write_header(&mut w, 0x1111, 0x2222);
        w.put_u8(9);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let h = read_header(&mut r).unwrap();
        assert_eq!(h.config_fingerprint, 0x1111);
        assert_eq!(h.program_hash, 0x2222);
        assert_eq!(r.get_u8().unwrap(), 9);

        assert_eq!(
            read_header(&mut SnapReader::new(b"NOTSNAPX rest")),
            Err(SnapError::BadMagic)
        );
        let mut w = SnapWriter::new();
        w.put_bytes(&MAGIC); // wrong: length prefix where version belongs
        let bytes = w.into_bytes();
        assert!(read_header(&mut SnapReader::new(&bytes)).is_err());

        let mut w = SnapWriter::new();
        w.put_u8(0); // pad so we can splice magic + bad version
        let mut bytes = MAGIC.to_vec();
        let mut body = SnapWriter::new();
        body.put_str("disc-snap/v0");
        bytes.extend_from_slice(&body.into_bytes());
        let _ = w;
        assert_eq!(
            read_header(&mut SnapReader::new(&bytes)),
            Err(SnapError::BadVersion("disc-snap/v0".into()))
        );
    }

    #[test]
    fn expect_str_flags_wrong_component() {
        let mut w = SnapWriter::new();
        w.put_str("timer");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            r.expect_str("watchdog"),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn checksum_is_length_and_content_sensitive() {
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
        assert_ne!(checksum(b"abc"), checksum(b"abc\0"));
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // First output of the canonical splitmix64 stream seeded with 0.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
    }
}
