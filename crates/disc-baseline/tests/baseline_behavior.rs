//! Behavioral tests of the conventional baseline processor beyond the
//! in-crate unit tests: exact flush penalties, nested interrupt
//! priorities, stream-instruction degeneration, semaphores and window
//! spill freezes.

use disc_baseline::{BaselineConfig, BaselineMachine};
use disc_core::{Exit, FlatBus};
use disc_isa::{Program, Reg};

fn machine(src: &str) -> BaselineMachine {
    BaselineMachine::new(BaselineConfig::default(), &Program::assemble(src).unwrap())
}

#[test]
fn jump_penalty_matches_pipe_depth() {
    // A tight two-instruction loop: every taken jump flushes the fetches
    // behind it. With depth 4 (EX at stage 2) at most 2 slots are behind
    // the jump; total flushed = iterations * in-flight count.
    let mut m = machine(
        r#"
        .stream 0, main
    main:
        ldi r0, 100
    loop:
        subi r0, r0, 1
        jnz loop
        halt
    "#,
    );
    assert_eq!(m.run(10_000).unwrap(), Exit::Halted);
    let per_jump = m.stats().flushed_jump as f64 / 99.0;
    assert!(
        (0.9..=2.1).contains(&per_jump),
        "per-jump flush should be 1..=2 slots, got {per_jump}"
    );
}

#[test]
fn nested_interrupts_restore_outer_context() {
    let mut m = machine(
        r#"
        .stream 0, main
        .vector 0, 3, low
        .vector 0, 7, high
    main:
        jmp main
    low:
        winc 2
        signal 0, 7         ; request the higher level from inside
        ldi r0, 60
    busy:
        subi r0, r0, 1
        jnz busy            ; high preempts somewhere in here
        lda r1, 0x20
        sta r1, 0x21        ; copy high's result -> proves preemption
        wdec 2
        reti
    high:
        winc 2
        ldi r0, 7
        sta r0, 0x20
        wdec 2
        reti
    "#,
    );
    for _ in 0..5 {
        m.step().unwrap();
    }
    m.raise_interrupt(3);
    m.run(3_000).unwrap();
    assert_eq!(m.internal_memory().read(0x20), 7, "high handler ran");
    assert_eq!(m.internal_memory().read(0x21), 7, "low resumed and saw it");
    assert_eq!(m.stats().vectors_taken[0], 2);
}

#[test]
fn fork_degenerates_to_jump() {
    let mut m = machine(
        r#"
        .stream 0, main
    main:
        fork 2, elsewhere
        halt                 ; must be skipped
    elsewhere:
        ldi r0, 3
        sta r0, 0x30
        halt
    "#,
    );
    assert_eq!(m.run(1_000).unwrap(), Exit::Halted);
    assert_eq!(m.internal_memory().read(0x30), 3);
}

#[test]
fn signal_self_triggers_handler() {
    let mut m = machine(
        r#"
        .stream 0, main
        .vector 0, 5, isr
    main:
        signal 0, 5
        jmp main
    isr:
        ldi r0, 1
        sta r0, 0x40
        reti
    "#,
    );
    m.run(500).unwrap();
    assert_eq!(m.internal_memory().read(0x40), 1);
}

#[test]
fn internal_tset_works_single_stream() {
    let mut m = machine(
        r#"
        .stream 0, main
    main:
        ldi r1, 0x08
        tset r0, [r1]       ; old value (0) -> r0, mem = 0xffff
        sta r0, 0x10
        tset r2, [r1]       ; now reads 0xffff
        sta r2, 0x11
        halt
    "#,
    );
    assert_eq!(m.run(1_000).unwrap(), Exit::Halted);
    assert_eq!(m.internal_memory().read(0x10), 0);
    assert_eq!(m.internal_memory().read(0x11), 0xffff);
    assert_eq!(m.internal_memory().read(0x08), 0xffff);
}

#[test]
fn window_spill_freezes_but_preserves_values() {
    let cfg = BaselineConfig {
        window_depth: 12,
        ..BaselineConfig::default()
    };
    let program = Program::assemble(
        r#"
        .stream 0, main
    main:
        ldi r0, 20
        call down
        sta r0, 0x50
        halt
    down:
        cmpi r1, 0
        jz base
        winc 1
        subi r0, r2, 1
        call down
        addi r0, r0, 1
        mov r2, r0
        wdec 1
        ret
    base:
        ldi r1, 0
        ret
    "#,
    )
    .unwrap();
    let mut m = BaselineMachine::new(cfg, &program);
    assert_eq!(m.run(100_000).unwrap(), Exit::Halted);
    assert_eq!(m.internal_memory().read(0x50), 20, "recursion result");
    assert!(
        m.stats().spill_stall_cycles[0] > 0,
        "12-deep file must spill"
    );
}

#[test]
fn external_access_blocks_everything() {
    // Unlike DISC, the baseline makes zero forward progress during the
    // wait: retired count is frozen across the access window.
    let program = Program::assemble(
        r#"
        .stream 0, main
    main:
        lui r0, 0x80
        ld  r1, [r0]
        addi r2, r2, 1
        halt
    "#,
    )
    .unwrap();
    let mut m = BaselineMachine::with_bus(
        BaselineConfig::default(),
        &program,
        Box::new(FlatBus::new(40)),
    );
    // Step until the load issues (freeze starts).
    let mut frozen_at = None;
    for _ in 0..200 {
        let before = m.stats().retired[0];
        m.step().unwrap();
        if m.stats().wait_txn_cycles[0] > 0 && frozen_at.is_none() {
            frozen_at = Some(before);
        }
    }
    assert_eq!(m.stats().wait_txn_cycles[0], 40);
    assert_eq!(m.reg(Reg::R2), 1);
}

#[test]
fn masked_interrupts_wait_for_unmask() {
    let mut m = machine(
        r#"
        .stream 0, main
        .vector 0, 4, isr
    main:
        ldi mr, 1           ; mask all vectored levels
        ldi r0, 40
    spin:
        subi r0, r0, 1
        jnz spin
        ldi mr, 255
    hang:
        jmp hang
    isr:
        sta r0, 0x60        ; r0 is 0 once the spin finished
        reti
    "#,
    );
    for _ in 0..8 {
        m.step().unwrap();
    }
    m.raise_interrupt(4);
    m.run(3_000).unwrap();
    assert_eq!(m.stats().vectors_taken[0], 1);
    assert_eq!(
        m.internal_memory().read(0x60),
        0,
        "delivery happened after the spin completed"
    );
}
