//! The conventional single-instruction-stream pipelined processor the DISC
//! paper compares against (its "standard processor", the `Ps` baseline).
//!
//! The baseline executes the *same* DISC1 instruction set with the same ALU
//! semantics (shared via [`disc_core::alu`]) on an in-order pipeline, but
//! with the behaviour of a conventional early-1990s micro-controller:
//!
//! * **One stream.** There is nothing to reallocate idle slots to.
//! * **Jumps flush.** A taken jump resolving in EX drops the
//!   `pipeline_depth - 2` younger sequential fetches, exactly the
//!   `(pipe_length - 1)`-cycle penalty the paper charges (*"every time a
//!   jump type instruction is executed, the standard processor will
//!   require (pipe_length - 1) cycles to be flushed from the pipeline"* —
//!   one of those cycles is the refetch itself).
//! * **I/O halts the pipe.** An external access freezes the whole pipeline
//!   until the data returns (*"the pipe could simply be halted"*), because
//!   there is no other stream to run — this is the idle time DISC
//!   reclaims.
//! * **Interrupts context-switch.** Taking an interrupt costs a software
//!   save of the register context, and returning costs the restore
//!   ([`BaselineConfig::ctx_save_cycles`] /
//!   [`BaselineConfig::ctx_restore_cycles`]); DISC instead keeps every
//!   context resident.
//!
//! # Example
//!
//! ```
//! use disc_baseline::{BaselineConfig, BaselineMachine};
//! use disc_isa::Program;
//!
//! let program = Program::assemble(
//!     r#"
//!     .stream 0, main
//! main:
//!     ldi r0, 3
//!     ldi r1, 4
//!     mul r2, r0, r1
//!     sta r2, 0x10
//!     halt
//! "#,
//! )?;
//! let mut m = BaselineMachine::new(BaselineConfig::default(), &program);
//! m.run(1_000)?;
//! assert_eq!(m.internal_memory().read(0x10), 12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use disc_core::alu::{alu, eval_cond, imm_op};
use disc_core::{
    DataBus, Exit, Flags, FlatBus, InternalMemory, IrqRequest, MachineStats, SimError, StackWindow,
    WindowPolicy,
};
use disc_isa::{AwpMode, Cond, Instruction, Program, Reg};

/// Configuration of the baseline processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineConfig {
    /// Pipeline depth in stages (3..=8); jumps resolve next-to-last.
    pub pipeline_depth: usize,
    /// Cycles to save the register context when taking an interrupt
    /// (13 registers through single-cycle memory plus vector dispatch).
    pub ctx_save_cycles: u32,
    /// Cycles to restore the context on interrupt return.
    pub ctx_restore_cycles: u32,
    /// Internal data memory size in 16-bit words.
    pub internal_words: usize,
    /// Register-stack depth (the baseline is "register heavy").
    pub window_depth: usize,
    /// Latency of the default flat external memory.
    pub default_ext_latency: u32,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            pipeline_depth: 4,
            ctx_save_cycles: 16,
            ctx_restore_cycles: 16,
            internal_words: 1024,
            window_depth: 64,
            default_ext_latency: 2,
        }
    }
}

impl BaselineConfig {
    fn validate(&self) {
        assert!(
            (3..=8).contains(&self.pipeline_depth),
            "pipeline depth must be 3..=8"
        );
        assert!(self.internal_words >= 16, "internal memory too small");
        assert!(
            self.window_depth > disc_isa::WINDOW_REGS,
            "register stack must exceed the window"
        );
    }
}

#[derive(Debug, Clone)]
struct Slot {
    pc: u16,
    instr: Instruction,
    seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    bit: u8,
    resume_pc: u16,
    /// Flags saved at interrupt entry (the PSW half of the context save).
    flags: Flags,
}

/// Why the pipeline is currently frozen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Freeze {
    /// Running normally.
    None,
    /// External access in progress; completes when the counter expires.
    Io { remaining: u32 },
    /// Context save/restore in progress; on expiry the PC moves to
    /// `then_pc`.
    CtxSwitch { remaining: u32, then_pc: u16 },
    /// Plain stall (window spill/fill traffic); the PC is untouched.
    Stall { remaining: u32 },
}

/// The conventional single-stream comparator machine.
pub struct BaselineMachine {
    config: BaselineConfig,
    program: Program,
    pc: u16,
    flags: Flags,
    window: StackWindow,
    sp: u16,
    globals: [u16; disc_isa::GLOBAL_REGS],
    ir: u8,
    mr: u8,
    service: Vec<Frame>,
    vectors: [Option<u16>; disc_isa::IRQ_LEVELS],
    irq_raised_at: [Option<u64>; disc_isa::IRQ_LEVELS],
    intmem: InternalMemory,
    bus: Box<dyn DataBus>,
    pipe: Vec<Option<Slot>>,
    pending: Vec<(u64, u32)>,
    freeze: Freeze,
    /// Pending completion of a frozen external access.
    io_action: Option<IoAction>,
    stats: MachineStats,
    cycle: u64,
    halted: bool,
    next_seq: u64,
    irq_buf: Vec<IrqRequest>,
}

#[derive(Debug, Clone, Copy)]
enum IoAction {
    Read {
        addr: u16,
        rd: Reg,
        tset: bool,
        awp: i32,
    },
    Write {
        addr: u16,
        value: u16,
        awp: i32,
    },
}

const FLAG_BIT: u32 = 1 << 16;

fn source_mask(instr: &Instruction) -> u32 {
    let mut m = 0;
    for r in instr.sources() {
        m |= 1u32 << r.index();
        if r == Reg::Sr {
            m |= FLAG_BIT;
        }
    }
    match instr {
        Instruction::Jmp { cond, .. } if *cond != Cond::Always => m |= FLAG_BIT,
        Instruction::Ret { .. } => m |= 1 << Reg::R0.index(),
        Instruction::Alu {
            op: disc_isa::AluOp::Adc | disc_isa::AluOp::Sbc,
            ..
        } => m |= FLAG_BIT,
        _ => {}
    }
    m
}

fn dest_mask(instr: &Instruction) -> u32 {
    let mut m = 0;
    if let Some(r) = instr.destination() {
        m |= 1u32 << r.index();
        if r == Reg::Sr {
            m |= FLAG_BIT;
        }
    }
    match instr {
        Instruction::Alu { .. } | Instruction::AluImm { .. } => m |= FLAG_BIT,
        Instruction::Call { .. } => m |= 1 << Reg::R0.index(),
        _ => {}
    }
    m
}

fn moves_window(instr: &Instruction) -> bool {
    instr.awp_mode() != AwpMode::None
        || matches!(
            instr,
            Instruction::Call { .. }
                | Instruction::Ret { .. }
                | Instruction::Winc { .. }
                | Instruction::Wdec { .. }
        )
}

impl std::fmt::Debug for BaselineMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineMachine")
            .field("cycle", &self.cycle)
            .field("pc", &self.pc)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl BaselineMachine {
    /// Creates a baseline machine with flat external memory.
    ///
    /// The program's stream-0 entry and vectors are used; other streams'
    /// declarations are ignored (there is only one stream).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: BaselineConfig, program: &Program) -> Self {
        let latency = config.default_ext_latency;
        Self::with_bus(config, program, Box::new(FlatBus::new(latency)))
    }

    /// Creates a baseline machine with an explicit bus.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_bus(config: BaselineConfig, program: &Program, bus: Box<dyn DataBus>) -> Self {
        config.validate();
        let mut vectors = [None; disc_isa::IRQ_LEVELS];
        for bit in 1..disc_isa::IRQ_LEVELS as u8 {
            vectors[bit as usize] = program.vector(0, bit);
        }
        BaselineMachine {
            pc: program.entry(0).unwrap_or(0),
            flags: Flags::default(),
            window: StackWindow::new(config.window_depth, WindowPolicy::AutoSpill),
            sp: 0,
            globals: [0; disc_isa::GLOBAL_REGS],
            ir: 1, // background level runs
            mr: 0xff,
            service: Vec::new(),
            vectors,
            irq_raised_at: [None; disc_isa::IRQ_LEVELS],
            intmem: InternalMemory::new(config.internal_words),
            bus,
            pipe: vec![None; config.pipeline_depth],
            pending: Vec::new(),
            freeze: Freeze::None,
            io_action: None,
            stats: MachineStats::new(1),
            cycle: 0,
            halted: false,
            next_seq: 0,
            irq_buf: Vec::new(),
            program: program.clone(),
            config,
        }
    }

    /// Execution statistics (single-stream vectors have one entry).
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The internal memory.
    pub fn internal_memory(&self) -> &InternalMemory {
        &self.intmem
    }

    /// Mutable internal memory (test setup).
    pub fn internal_memory_mut(&mut self) -> &mut InternalMemory {
        &mut self.intmem
    }

    /// Current program counter.
    pub fn pc(&self) -> u16 {
        self.pc
    }

    /// Reads an architectural register (inspection path).
    pub fn reg(&self, r: Reg) -> u16 {
        match r {
            r if r.is_window() => self
                .window
                .try_slot_of(r.index())
                .map(|slot| self.window.read_slot(slot))
                .unwrap_or(0),
            Reg::G0 | Reg::G1 | Reg::G2 | Reg::G3 => self.globals[(r.index() - 8) as usize],
            Reg::Sp => self.sp,
            Reg::Sr => self.flags.to_word(),
            Reg::Ir => self.ir as u16,
            Reg::Mr => self.mr as u16,
            _ => unreachable!(),
        }
    }

    /// Raises IR bit `bit` (external interrupt line).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 8`.
    pub fn raise_interrupt(&mut self, bit: u8) {
        assert!(bit < 8);
        if self.ir & (1 << bit) == 0 {
            self.irq_raised_at[bit as usize] = Some(self.cycle);
        }
        self.ir |= 1 << bit;
    }

    /// Runs until halt/breakpoint or the cycle budget expires.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Decode`] on an undecodable program word.
    pub fn run(&mut self, max_cycles: u64) -> Result<Exit, SimError> {
        for _ in 0..max_cycles {
            if let Some(exit) = self.step()? {
                return Ok(exit);
            }
        }
        Ok(Exit::CycleLimit)
    }

    /// Advances one cycle; returns `Some` on halt or breakpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Decode`] on an undecodable program word.
    pub fn step(&mut self) -> Result<Option<Exit>, SimError> {
        if self.halted {
            return Ok(Some(Exit::Halted));
        }
        self.cycle += 1;
        self.stats.cycles += 1;
        self.irq_buf.clear();
        self.bus.tick(&mut self.irq_buf);
        for i in 0..self.irq_buf.len() {
            let irq = self.irq_buf[i];
            // All lines converge on the single context.
            if irq.bit < 8 {
                self.raise_interrupt(irq.bit);
            }
        }

        // Frozen pipe: burn the cycle.
        match self.freeze {
            Freeze::Io { remaining } => {
                self.stats.wait_txn_cycles[0] += 1;
                if remaining > 1 {
                    self.freeze = Freeze::Io {
                        remaining: remaining - 1,
                    };
                } else {
                    self.freeze = Freeze::None;
                    if let Some(action) = self.io_action.take() {
                        self.complete_io(action);
                    }
                }
                return Ok(None);
            }
            Freeze::CtxSwitch { remaining, then_pc } => {
                self.stats.wait_txn_cycles[0] += 1;
                if remaining > 1 {
                    self.freeze = Freeze::CtxSwitch {
                        remaining: remaining - 1,
                        then_pc,
                    };
                } else {
                    self.freeze = Freeze::None;
                    self.pc = then_pc;
                }
                return Ok(None);
            }
            Freeze::Stall { remaining } => {
                if remaining > 1 {
                    self.freeze = Freeze::Stall {
                        remaining: remaining - 1,
                    };
                } else {
                    self.freeze = Freeze::None;
                }
                return Ok(None);
            }
            Freeze::None => {}
        }

        // Pipeline advance.
        let depth = self.config.pipeline_depth;
        let ex = depth - 2;
        if let Some(slot) = self.pipe[depth - 1].take() {
            self.stats.retired[0] += 1;
            self.pending.retain(|(seq, _)| *seq != slot.seq);
        }
        for i in (1..depth).rev() {
            self.pipe[i] = self.pipe[i - 1].take();
        }

        // Execute at EX.
        let mut exit = None;
        if let Some(slot) = self.pipe[ex].clone() {
            exit = self.execute(slot, ex);
        }
        if self.halted || exit.is_some() {
            return Ok(exit);
        }
        if self.freeze != Freeze::None {
            // The EX instruction froze the pipe; no fetch this cycle.
            return Ok(None);
        }

        // Interrupt entry at the fetch boundary: conventional processors
        // flush and context-switch.
        if let Some(bit) = self.pending_interrupt() {
            if let Some(target) = self.vectors[bit as usize] {
                let oldest_pc = self.pipe[..ex]
                    .iter()
                    .filter_map(|s| s.as_ref())
                    .map(|s| s.pc)
                    .next_back();
                let resume = oldest_pc.unwrap_or(self.pc);
                for slot in self.pipe[..ex].iter_mut() {
                    if let Some(s) = slot.take() {
                        self.pending.retain(|(seq, _)| *seq != s.seq);
                        self.stats.flushed_irq += 1;
                    }
                }
                self.service.push(Frame {
                    bit,
                    resume_pc: resume,
                    flags: self.flags,
                });
                self.stats.vectors_taken[0] += 1;
                if let Some(raised) = self.irq_raised_at[bit as usize] {
                    // Latency includes the context save below.
                    self.stats
                        .irq_latency
                        .record(self.cycle - raised + self.config.ctx_save_cycles as u64);
                }
                self.freeze = Freeze::CtxSwitch {
                    remaining: self.config.ctx_save_cycles.max(1),
                    then_pc: target,
                };
                return Ok(None);
            }
        }

        // Fetch.
        let word = self.program.word(self.pc);
        let instr = match disc_isa::encode::decode(word) {
            Ok(i) => i,
            Err(_) => {
                return Err(SimError::Decode {
                    stream: 0,
                    pc: self.pc,
                    word,
                })
            }
        };
        let window_motion_in_flight = self.pending.iter().any(|(_, m)| m & 0xff != 0)
            || self.pipe.iter().flatten().any(|s| moves_window(&s.instr));
        let hazard = self
            .pending
            .iter()
            .any(|(_, m)| m & source_mask(&instr) != 0)
            || (window_motion_in_flight && moves_window(&instr));
        if hazard {
            self.stats.hazard_stalls[0] += 1;
            self.stats.bubbles += 1;
            return Ok(None);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let dm = dest_mask(&instr);
        if dm != 0 {
            self.pending.push((seq, dm));
        }
        self.pipe[0] = Some(Slot {
            pc: self.pc,
            instr,
            seq,
        });
        self.pc = self.pc.wrapping_add(1);
        Ok(None)
    }

    fn pending_interrupt(&self) -> Option<u8> {
        let armed = self.ir & self.mr & !1; // bit 0 is the running level
        if armed == 0 {
            return None;
        }
        let top = 7 - armed.leading_zeros() as u8;
        let level = self.service.last().map(|f| f.bit).unwrap_or(0);
        (top > level).then_some(top)
    }

    fn read_reg(&mut self, r: Reg) -> u16 {
        match r {
            r if r.is_window() => self.window.read(r.index()),
            Reg::G0 | Reg::G1 | Reg::G2 | Reg::G3 => self.globals[(r.index() - 8) as usize],
            Reg::Sp => self.sp,
            Reg::Sr => self.flags.to_word(),
            Reg::Ir => self.ir as u16,
            Reg::Mr => self.mr as u16,
            _ => unreachable!(),
        }
    }

    fn write_reg(&mut self, r: Reg, value: u16) {
        match r {
            r if r.is_window() => self.window.write(r.index(), value),
            Reg::G0 | Reg::G1 | Reg::G2 | Reg::G3 => {
                self.globals[(r.index() - 8) as usize] = value;
            }
            Reg::Sp => self.sp = value,
            Reg::Sr => self.flags = Flags::from_word(value),
            Reg::Ir => self.ir = value as u8,
            Reg::Mr => self.mr = value as u8,
            _ => unreachable!(),
        }
    }

    fn apply_awp(&mut self, delta: i32) {
        if delta == 0 {
            return;
        }
        let outcome = self.window.adjust(delta);
        if outcome.stall_cycles > 0 {
            self.stats.spill_stall_cycles[0] += outcome.stall_cycles as u64;
            // Spill traffic freezes the single pipe in place.
            self.freeze = Freeze::Stall {
                remaining: outcome.stall_cycles,
            };
        }
    }

    fn awp_delta(mode: AwpMode) -> i32 {
        match mode {
            AwpMode::None => 0,
            AwpMode::Inc => 1,
            AwpMode::Dec => -1,
        }
    }

    fn flush_younger(&mut self, ex: usize) {
        for slot in self.pipe[..ex].iter_mut() {
            if let Some(s) = slot.take() {
                self.pending.retain(|(seq, _)| *seq != s.seq);
                self.stats.flushed_jump += 1;
            }
        }
    }

    fn complete_io(&mut self, action: IoAction) {
        match action {
            IoAction::Read {
                addr,
                rd,
                tset,
                awp,
            } => {
                let value = if tset {
                    let old = self.bus.read(addr);
                    self.bus.write(addr, 0xffff);
                    old
                } else {
                    self.bus.read(addr)
                };
                self.write_reg(rd, value);
                // Release the load's scoreboard entry.
                self.pending.retain(|(seq, _)| *seq != u64::MAX);
                self.apply_awp(awp);
            }
            IoAction::Write { addr, value, awp } => {
                self.bus.write(addr, value);
                self.apply_awp(awp);
            }
        }
    }

    fn start_io(&mut self, action: IoAction, latency: u32, seq: u64) {
        self.stats.external_accesses += 1;
        // Keep the destination busy until the data lands.
        for p in &mut self.pending {
            if p.0 == seq {
                p.0 = u64::MAX;
            }
        }
        self.freeze = Freeze::Io { remaining: latency };
        self.io_action = Some(action);
    }

    fn execute(&mut self, slot: Slot, ex: usize) -> Option<Exit> {
        match slot.instr {
            Instruction::Nop => {}
            Instruction::Alu {
                op,
                awp,
                rd,
                rs,
                rt,
            } => {
                let a = self.read_reg(rs);
                let b = self.read_reg(rt);
                let (result, flags) = alu(op, a, b, self.flags);
                if op.writes_rd() {
                    self.write_reg(rd, result);
                }
                if rd != Reg::Sr || !op.writes_rd() {
                    self.flags = flags;
                }
                self.apply_awp(Self::awp_delta(awp));
            }
            Instruction::AluImm {
                op,
                awp,
                rd,
                rs,
                imm,
            } => {
                let a = self.read_reg(rs);
                let (result, flags) = alu(imm_op(op), a, imm as u16, self.flags);
                if op.writes_rd() {
                    self.write_reg(rd, result);
                }
                if rd != Reg::Sr || !op.writes_rd() {
                    self.flags = flags;
                }
                self.apply_awp(Self::awp_delta(awp));
            }
            Instruction::Ldi { awp, rd, imm } => {
                self.write_reg(rd, imm as u16);
                self.apply_awp(Self::awp_delta(awp));
            }
            Instruction::Lui { rd, imm } => {
                let low = self.read_reg(rd) & 0x00ff;
                self.write_reg(rd, ((imm as u16) << 8) | low);
            }
            Instruction::Ld {
                awp,
                rd,
                base,
                offset,
            } => {
                let addr = self.read_reg(base).wrapping_add(offset as i16 as u16);
                self.load(slot.seq, addr, rd, Self::awp_delta(awp), false);
            }
            Instruction::Lda { awp, rd, addr } => {
                self.load(slot.seq, addr, rd, Self::awp_delta(awp), false);
            }
            Instruction::St {
                awp,
                src,
                base,
                offset,
            } => {
                let addr = self.read_reg(base).wrapping_add(offset as i16 as u16);
                let value = self.read_reg(src);
                self.store(addr, value, Self::awp_delta(awp));
            }
            Instruction::Sta { awp, src, addr } => {
                let value = self.read_reg(src);
                self.store(addr, value, Self::awp_delta(awp));
            }
            Instruction::Tset { rd, base, offset } => {
                let addr = self.read_reg(base).wrapping_add(offset as i16 as u16);
                self.load(slot.seq, addr, rd, 0, true);
            }
            Instruction::Jmp { cond, target } => {
                self.stats.flow_instructions += 1;
                if eval_cond(cond, self.flags) {
                    self.pc = target;
                    self.flush_younger(ex);
                }
            }
            Instruction::Call { target } => {
                self.stats.flow_instructions += 1;
                self.apply_awp(1);
                let ret = slot.pc.wrapping_add(1);
                self.window.write(0, ret);
                self.pc = target;
                self.flush_younger(ex);
            }
            Instruction::Ret { pop } => {
                self.stats.flow_instructions += 1;
                self.apply_awp(-(pop as i32));
                let ret = self.window.read(0);
                self.apply_awp(-1);
                self.pc = ret;
                self.flush_younger(ex);
            }
            Instruction::Reti => {
                self.stats.flow_instructions += 1;
                if let Some(frame) = self.service.pop() {
                    self.ir &= !(1 << frame.bit);
                    self.irq_raised_at[frame.bit as usize] = None;
                    self.flags = frame.flags;
                    self.flush_younger(ex);
                    // Context restore, then resume.
                    self.freeze = Freeze::CtxSwitch {
                        remaining: self.config.ctx_restore_cycles.max(1),
                        then_pc: frame.resume_pc,
                    };
                }
            }
            Instruction::Winc { n } => self.apply_awp(n as i32),
            Instruction::Wdec { n } => self.apply_awp(-(n as i32)),
            // Stream-control instructions degenerate on one stream.
            Instruction::Fork { target, .. } => {
                // A fork on a uniprocessor is just a jump.
                self.stats.flow_instructions += 1;
                self.pc = target;
                self.flush_younger(ex);
            }
            Instruction::Signal { bit, .. } => self.raise_interrupt(bit),
            Instruction::Clri { bit } => {
                self.ir &= !(1 << bit);
                self.irq_raised_at[bit as usize] = None;
            }
            Instruction::Stop => {
                // With a single context, stop idles until an interrupt; we
                // model it as exiting when nothing is pending.
                if self.pending_interrupt().is_none() {
                    self.halted = true;
                    return Some(Exit::AllIdle);
                }
            }
            Instruction::Halt => {
                self.halted = true;
                // Count older executed in-flight instructions as retired.
                for i in ex + 1..self.pipe.len() {
                    if self.pipe[i].take().is_some() {
                        self.stats.retired[0] += 1;
                    }
                }
                return Some(Exit::Halted);
            }
            Instruction::Brk => {
                return Some(Exit::Breakpoint {
                    stream: 0,
                    pc: slot.pc,
                });
            }
        }
        None
    }

    fn load(&mut self, seq: u64, addr: u16, rd: Reg, awp: i32, tset: bool) {
        if self.intmem.contains(addr) {
            let value = if tset {
                self.intmem.test_and_set(addr)
            } else {
                self.intmem.read(addr)
            };
            self.write_reg(rd, value);
            self.apply_awp(awp);
            return;
        }
        let latency = self.bus.latency(addr, false).unwrap_or(0);
        if latency == 0 {
            let value = if tset {
                let old = self.bus.read(addr);
                self.bus.write(addr, 0xffff);
                old
            } else {
                self.bus.read(addr)
            };
            self.write_reg(rd, value);
            self.apply_awp(awp);
            return;
        }
        self.start_io(
            IoAction::Read {
                addr,
                rd,
                tset,
                awp,
            },
            latency,
            seq,
        );
    }

    fn store(&mut self, addr: u16, value: u16, awp: i32) {
        if self.intmem.contains(addr) {
            self.intmem.write(addr, value);
            self.apply_awp(awp);
            return;
        }
        let latency = self.bus.latency(addr, true).unwrap_or(0);
        if latency == 0 {
            self.bus.write(addr, value);
            self.apply_awp(awp);
            return;
        }
        self.start_io(IoAction::Write { addr, value, awp }, latency, u64::MAX - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(src: &str) -> BaselineMachine {
        let p = Program::assemble(src).unwrap();
        BaselineMachine::new(BaselineConfig::default(), &p)
    }

    #[test]
    fn computes_like_disc() {
        let mut m = machine(
            r#"
            .stream 0, main
        main:
            ldi r0, 10
            ldi r1, 0
        loop:
            add r1, r1, r0
            subi r0, r0, 1
            jnz loop
            sta r1, 0x40
            halt
        "#,
        );
        assert_eq!(m.run(10_000).unwrap(), Exit::Halted);
        assert_eq!(m.internal_memory().read(0x40), 55);
    }

    #[test]
    fn io_halts_whole_pipe() {
        let p = Program::assemble(
            r#"
            .stream 0, main
        main:
            lui r0, 0x80
            ld  r1, [r0]
            addi r1, r1, 1
            sta r1, 0x10
            halt
        "#,
        )
        .unwrap();
        let mut bus = FlatBus::new(10);
        bus.poke(0x8000, 5);
        let mut m = BaselineMachine::with_bus(BaselineConfig::default(), &p, Box::new(bus));
        assert_eq!(m.run(1_000).unwrap(), Exit::Halted);
        assert_eq!(m.internal_memory().read(0x10), 6);
        assert_eq!(m.stats().external_accesses, 1);
        assert_eq!(m.stats().wait_txn_cycles[0], 10);
    }

    #[test]
    fn interrupt_pays_context_switch() {
        let mut m = machine(
            r#"
            .stream 0, main
            .vector 0, 3, isr
        main:
            jmp main
        isr:
            ldi r0, 1
            sta r0, 0x30
            reti
        "#,
        );
        for _ in 0..10 {
            m.step().unwrap();
        }
        m.raise_interrupt(3);
        m.run(200).unwrap();
        assert_eq!(m.internal_memory().read(0x30), 1);
        let lat = m.stats().max_irq_latency().unwrap();
        assert!(
            lat >= BaselineConfig::default().ctx_save_cycles as u64,
            "latency must include the context save, got {lat}"
        );
    }

    #[test]
    fn calls_and_windows_match_disc_semantics() {
        let mut m = machine(
            r#"
            .stream 0, main
        main:
            ldi r0, 21
            call double
            sta r0, 0x11
            halt
        double:
            add r1, r1, r1
            ret
        "#,
        );
        assert_eq!(m.run(1_000).unwrap(), Exit::Halted);
        assert_eq!(m.internal_memory().read(0x11), 42);
    }

    #[test]
    fn jump_flush_costs_cycles() {
        let mut m = machine(
            r#"
            .stream 0, main
        main:
            ldi r0, 50
        loop:
            subi r0, r0, 1
            jnz loop
            halt
        "#,
        );
        m.run(10_000).unwrap();
        assert!(m.stats().flushed_jump > 0);
        // Utilization well below 1 because of flushes + flag hazards.
        assert!(m.stats().utilization() < 0.8);
    }

    #[test]
    fn stop_with_no_interrupts_idles() {
        let mut m = machine(".stream 0, m\nm: stop\n");
        assert_eq!(m.run(100).unwrap(), Exit::AllIdle);
    }
}
