//! Reference ALU and condition evaluation, written against the ISA
//! contract rather than shared with `disc-core`.
//!
//! Flag conventions (ISA §"status register"):
//!
//! * `Z` — result is zero; `N` — bit 15 of the result.
//! * Additions set `C` on carry out of bit 15; subtractions set `C` when
//!   **no** borrow occurred (`a >= b + borrow_in`), the classic
//!   borrow-inverted carry.
//! * `V` is two's-complement overflow for add/sub, cleared by the logical
//!   ops, multiplies and shifts, and untouched by `mov`/`not`.
//! * Shifts move the last bit shifted out into `C`; a shift count of zero
//!   leaves `C` clear.

use disc_isa::{AluImmOp, AluOp, Cond};

/// Condition flags of one reference stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefFlags {
    /// Zero.
    pub z: bool,
    /// Negative (bit 15).
    pub n: bool,
    /// Carry / not-borrow.
    pub c: bool,
    /// Two's-complement overflow.
    pub v: bool,
}

impl RefFlags {
    /// Packs the flags into the low nibble of an `sr` word
    /// (`Z N C V` in bits `0..=3`).
    pub fn to_word(self) -> u16 {
        (self.z as u16) | (self.n as u16) << 1 | (self.c as u16) << 2 | (self.v as u16) << 3
    }

    /// Unpacks an `sr` word.
    pub fn from_word(w: u16) -> Self {
        RefFlags {
            z: w & 1 != 0,
            n: w & 2 != 0,
            c: w & 4 != 0,
            v: w & 8 != 0,
        }
    }
}

fn zn(r: u16) -> (bool, bool) {
    (r == 0, r & 0x8000 != 0)
}

/// Two's-complement overflow of `a + b = r` (sign of both inputs differs
/// from the sign of the result).
fn add_overflow(a: u16, b: u16, r: u16) -> bool {
    ((a ^ r) & (b ^ r) & 0x8000) != 0
}

/// Two's-complement overflow of `a - b = r`.
fn sub_overflow(a: u16, b: u16, r: u16) -> bool {
    ((a ^ b) & (a ^ r) & 0x8000) != 0
}

fn add_like(a: u16, b: u16, carry_in: bool, mut f: RefFlags) -> (u16, RefFlags) {
    let wide = a as u32 + b as u32 + carry_in as u32;
    let r = wide as u16;
    f.c = wide > 0xffff;
    f.v = add_overflow(a, b, r);
    (f.z, f.n) = zn(r);
    (r, f)
}

fn sub_like(a: u16, b: u16, borrow_in: bool, mut f: RefFlags) -> (u16, RefFlags) {
    let r = a.wrapping_sub(b).wrapping_sub(borrow_in as u16);
    f.c = a as u32 >= b as u32 + borrow_in as u32;
    f.v = sub_overflow(a, b, r);
    (f.z, f.n) = zn(r);
    (r, f)
}

fn logic_like(r: u16, mut f: RefFlags) -> (u16, RefFlags) {
    f.c = false;
    f.v = false;
    (f.z, f.n) = zn(r);
    (r, f)
}

/// Evaluates the reference ALU: result plus updated flags. The caller
/// discards the result for `cmp`.
pub fn ref_alu(op: AluOp, a: u16, b: u16, flags: RefFlags) -> (u16, RefFlags) {
    let mut f = flags;
    match op {
        AluOp::Add => add_like(a, b, false, f),
        AluOp::Adc => add_like(a, b, flags.c, f),
        AluOp::Sub | AluOp::Cmp => sub_like(a, b, false, f),
        AluOp::Sbc => sub_like(a, b, !flags.c, f),
        AluOp::And => logic_like(a & b, f),
        AluOp::Or => logic_like(a | b, f),
        AluOp::Xor => logic_like(a ^ b, f),
        AluOp::Mul => logic_like((a as u32 * b as u32) as u16, f),
        AluOp::Mulh => logic_like(((a as u32 * b as u32) >> 16) as u16, f),
        AluOp::Shl => {
            let sh = (b & 0xf) as u32;
            let wide = (a as u32) << sh;
            let r = wide as u16;
            f.c = sh > 0 && wide & 0x1_0000 != 0;
            f.v = false;
            (f.z, f.n) = zn(r);
            (r, f)
        }
        AluOp::Shr => {
            let sh = (b & 0xf) as u32;
            let r = if sh == 0 { a } else { a >> sh };
            f.c = sh > 0 && (a >> (sh - 1)) & 1 != 0;
            f.v = false;
            (f.z, f.n) = zn(r);
            (r, f)
        }
        AluOp::Asr => {
            let sh = (b & 0xf) as u32;
            let r = ((a as i16) >> sh) as u16;
            f.c = sh > 0 && ((a as i16) >> (sh - 1)) & 1 != 0;
            f.v = false;
            (f.z, f.n) = zn(r);
            (r, f)
        }
        AluOp::Mov => {
            (f.z, f.n) = zn(a);
            (a, f)
        }
        AluOp::Not => {
            let r = !a;
            (f.z, f.n) = zn(r);
            (r, f)
        }
    }
}

/// Evaluates an immediate-form ALU operation (`b` is the zero-extended
/// 8-bit immediate).
pub fn ref_alu_imm(op: AluImmOp, a: u16, imm: u8, flags: RefFlags) -> (u16, RefFlags) {
    let three_op = match op {
        AluImmOp::Addi => AluOp::Add,
        AluImmOp::Subi => AluOp::Sub,
        AluImmOp::Andi => AluOp::And,
        AluImmOp::Ori => AluOp::Or,
        AluImmOp::Xori => AluOp::Xor,
        AluImmOp::Cmpi => AluOp::Cmp,
    };
    ref_alu(three_op, a, imm as u16, flags)
}

/// Evaluates a jump condition.
pub fn ref_cond(cond: Cond, f: RefFlags) -> bool {
    match cond {
        Cond::Always => true,
        Cond::Z => f.z,
        Cond::Nz => !f.z,
        Cond::C => f.c,
        Cond::Nc => !f.c,
        Cond::N => f.n,
        Cond::Nn => !f.n,
        Cond::V => f.v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_word_roundtrip() {
        for w in 0..16u16 {
            assert_eq!(RefFlags::from_word(w).to_word(), w);
        }
        // High bits of an `sr` write are ignored.
        assert_eq!(RefFlags::from_word(0xfff5).to_word(), 0x5);
    }

    #[test]
    fn sub_carry_is_not_borrow() {
        let (r, f) = ref_alu(AluOp::Sub, 3, 5, RefFlags::default());
        assert_eq!(r, 0xfffe);
        assert!(!f.c && f.n);
        let (_, f) = ref_alu(AluOp::Sub, 5, 5, RefFlags::default());
        assert!(f.c && f.z);
    }

    #[test]
    fn sbc_borrows_when_carry_clear() {
        let mut f = RefFlags {
            c: false,
            ..Default::default()
        };
        assert_eq!(ref_alu(AluOp::Sbc, 10, 3, f).0, 6);
        f.c = true;
        assert_eq!(ref_alu(AluOp::Sbc, 10, 3, f).0, 7);
    }

    #[test]
    fn mov_keeps_carry_and_overflow() {
        let f = RefFlags {
            c: true,
            v: true,
            ..Default::default()
        };
        let (_, f2) = ref_alu(AluOp::Mov, 1, 0, f);
        assert!(f2.c && f2.v && !f2.z);
    }

    #[test]
    fn shifts_capture_last_bit_out() {
        let (r, f) = ref_alu(AluOp::Shl, 0x8001, 1, RefFlags::default());
        assert_eq!(r, 2);
        assert!(f.c);
        let (_, f) = ref_alu(AluOp::Shr, 1, 1, RefFlags::default());
        assert!(f.c);
        let (r, _) = ref_alu(AluOp::Asr, 0x8000, 15, RefFlags::default());
        assert_eq!(r, 0xffff);
    }
}
