//! Golden-reference architectural model of the DISC1 core.
//!
//! `disc-ref` is a deliberately simple, non-pipelined interpreter of the
//! DISC1 instruction set. It shares the `disc-isa` decoder with the
//! cycle-accurate simulator but **none** of `disc-core`'s execution code:
//! the ALU, flag rules, stack-window register file and interrupt delivery
//! are re-implemented here directly from the ISA contract, so the two
//! models only agree when both read the specification the same way.
//!
//! The model executes one instruction at a time, one stream at a time
//! (round-robin at instruction granularity), with every external bus
//! access completing instantly. All pipeline phenomena of the real
//! machine — flushes, bus waits, spill stalls, slot reallocation — are
//! timing-only, so the final *architectural* state (registers, flags,
//! window stacks, internal/external memory, globals, interrupt state and
//! the per-stream retired-instruction streams) must match the
//! cycle-accurate machine exactly. The `disc-bench` fuzz harness leans on
//! this as its differential oracle.
//!
//! # Example
//!
//! ```
//! use disc_isa::Program;
//! use disc_ref::{RefConfig, RefExit, RefMachine};
//!
//! let program = Program::assemble(
//!     ".stream 0, main\nmain:\n    ldi r0, 21\n    add r1, r0, r0\n    halt\n",
//! )
//! .unwrap();
//! let mut m = RefMachine::new(RefConfig::disc1(), &program);
//! assert_eq!(m.run(1_000), RefExit::Halted);
//! assert_eq!(m.window_reg(0, 1), 42);
//! ```

mod alu;
mod interp;
mod window;

pub use alu::{ref_alu, ref_alu_imm, ref_cond, RefFlags};
pub use interp::{RefConfig, RefExit, RefMachine, RefWindowPolicy};
pub use window::RefWindow;
