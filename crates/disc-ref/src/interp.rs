//! The reference interpreter: one instruction at a time, one stream at a
//! time, every bus access instant.
//!
//! Architecturally the DISC1 pipeline commits all state changes at the EX
//! stage in program order; flushes only ever remove *unexecuted* younger
//! instructions, and bus waits, spill stalls and scheduling merely decide
//! *when* a stream's next instruction executes. The reference model
//! therefore executes each stream's instruction sequence directly,
//! delivering pending vectored interrupts between instructions (the
//! machine delivers them between EX slots of the same stream, which is the
//! same program-order point).

use std::collections::BTreeMap;

use disc_isa::{encode, Instruction, Program, Reg, GLOBAL_REGS, IRQ_LEVELS, MAX_STREAMS};

use crate::alu::{ref_alu, ref_alu_imm, ref_cond, RefFlags};
use crate::window::RefWindow;

/// Stack-window pressure policy of the reference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefWindowPolicy {
    /// Hardware spills/fills transparently; never faults.
    #[default]
    AutoSpill,
    /// Overflow/underflow of the physical file raises IR bit 6.
    Fault,
}

/// Configuration of the reference machine.
#[derive(Debug, Clone)]
pub struct RefConfig {
    /// Number of instruction streams.
    pub streams: usize,
    /// Words of internal (zero-latency) data memory.
    pub internal_words: usize,
    /// Physical stack-window depth per stream.
    pub window_depth: usize,
    /// Window pressure policy.
    pub window_policy: RefWindowPolicy,
}

impl RefConfig {
    /// The DISC1 configuration of the paper: 4 streams, 1 Kword internal
    /// memory, 64-deep window file with transparent spill.
    pub fn disc1() -> Self {
        RefConfig {
            streams: 4,
            internal_words: 1024,
            window_depth: 64,
            window_policy: RefWindowPolicy::AutoSpill,
        }
    }

    /// Same configuration with a different stream count.
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        self
    }
}

/// Why the reference machine stopped running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefExit {
    /// A stream executed `halt`.
    Halted,
    /// Every stream went inactive.
    AllIdle,
    /// A stream executed `brk`.
    Breakpoint {
        /// Stream that hit the breakpoint.
        stream: usize,
        /// Address of the `brk`.
        pc: u16,
    },
    /// A stream fetched an undecodable word.
    Decode {
        /// Stream that faulted.
        stream: usize,
        /// Address of the bad word.
        pc: u16,
        /// The word itself.
        word: u32,
    },
    /// The step budget ran out first.
    StepLimit,
}

/// One nested interrupt-service record.
#[derive(Debug, Clone, Copy)]
struct ServiceFrame {
    bit: u8,
    resume_pc: u16,
    flags: RefFlags,
}

/// Architectural state of one reference stream.
#[derive(Debug)]
struct RefStream {
    pc: u16,
    flags: RefFlags,
    window: RefWindow,
    sp: u16,
    ir: u8,
    mr: u8,
    service: Vec<ServiceFrame>,
    vectors: [Option<u16>; IRQ_LEVELS],
    retired: u64,
    retired_pcs: Vec<u16>,
}

impl RefStream {
    fn new(window_depth: usize, fault_on_pressure: bool) -> Self {
        RefStream {
            pc: 0,
            flags: RefFlags::default(),
            window: RefWindow::new(window_depth, fault_on_pressure),
            sp: 0,
            ir: 0,
            mr: 0xff,
            service: Vec::new(),
            vectors: [None; IRQ_LEVELS],
            retired: 0,
            retired_pcs: Vec::new(),
        }
    }

    fn active(&self) -> bool {
        self.ir & self.mr != 0
    }

    fn service_level(&self) -> u8 {
        self.service.last().map(|f| f.bit).unwrap_or(0)
    }

    /// Highest armed bit strictly above the current service level; bit 0
    /// (background) never preempts.
    fn pending_interrupt(&self) -> Option<u8> {
        let armed = self.ir & self.mr;
        if armed == 0 {
            return None;
        }
        let top = 7 - armed.leading_zeros() as u8;
        if top > self.service_level() && top > 0 {
            Some(top)
        } else {
            None
        }
    }

    fn raise(&mut self, bit: u8) {
        assert!(bit < 8);
        self.ir |= 1 << bit;
    }

    fn clear_irq(&mut self, bit: u8) {
        assert!(bit < 8);
        self.ir &= !(1 << bit);
    }
}

enum Outcome {
    Normal,
    Halt,
    Brk,
}

/// The golden-reference DISC1 machine.
#[derive(Debug)]
pub struct RefMachine {
    streams: Vec<RefStream>,
    globals: [u16; GLOBAL_REGS],
    intmem: Vec<u16>,
    /// Sparse external memory; unwritten words read 0 (flat-RAM model).
    extmem: BTreeMap<u16, u16>,
    code: Vec<Result<Instruction, u32>>,
    halted: bool,
    steps: u64,
}

impl RefMachine {
    /// Builds a reference machine and loads `program` (entries activate
    /// their streams at background level, exactly like the hardware).
    ///
    /// # Panics
    ///
    /// Panics if `config.streams` is 0 or above [`MAX_STREAMS`].
    pub fn new(config: RefConfig, program: &Program) -> Self {
        assert!(
            (1..=MAX_STREAMS).contains(&config.streams),
            "stream count {} out of range 1..={MAX_STREAMS}",
            config.streams
        );
        let fault = config.window_policy == RefWindowPolicy::Fault;
        let mut streams = Vec::with_capacity(config.streams);
        for s in 0..config.streams {
            let mut st = RefStream::new(config.window_depth, fault);
            for bit in 1..IRQ_LEVELS as u8 {
                st.vectors[bit as usize] = program.vector(s, bit);
            }
            if let Some(entry) = program.entry(s) {
                st.pc = entry;
                st.raise(0);
            }
            streams.push(st);
        }
        let code = (0..program.len())
            .map(|addr| encode::decode(program.word(addr as u16)).map_err(|e| e.word()))
            .collect();
        RefMachine {
            streams,
            globals: [0; GLOBAL_REGS],
            intmem: vec![0; config.internal_words],
            extmem: BTreeMap::new(),
            code,
            halted: false,
            steps: 0,
        }
    }

    /// Runs until halt, breakpoint, decode fault, idleness, or until
    /// `max_steps` instructions have executed across all streams.
    pub fn run(&mut self, max_steps: u64) -> RefExit {
        if self.halted {
            return RefExit::Halted;
        }
        loop {
            let mut progressed = false;
            for s in 0..self.streams.len() {
                self.deliver_vectors(s);
                if !self.streams[s].active() {
                    continue;
                }
                progressed = true;
                if self.steps >= max_steps {
                    return RefExit::StepLimit;
                }
                self.steps += 1;
                if let Some(exit) = self.step_stream(s) {
                    return exit;
                }
            }
            if !progressed {
                return RefExit::AllIdle;
            }
        }
    }

    /// Delivers pending vectored interrupts to stream `s`. Only the
    /// highest pending bit is considered (matching the hardware); an
    /// uninstalled vector leaves the stream executing sequentially.
    fn deliver_vectors(&mut self, s: usize) {
        while let Some(bit) = self.streams[s].pending_interrupt() {
            let Some(target) = self.streams[s].vectors[bit as usize] else {
                return;
            };
            let st = &mut self.streams[s];
            st.service.push(ServiceFrame {
                bit,
                resume_pc: st.pc,
                flags: st.flags,
            });
            st.pc = target;
        }
    }

    /// Executes one instruction of stream `s`.
    fn step_stream(&mut self, s: usize) -> Option<RefExit> {
        let pc = self.streams[s].pc;
        let word_at = |code: &[Result<Instruction, u32>], pc: u16| {
            code.get(pc as usize)
                .copied()
                .unwrap_or(Ok(Instruction::Nop))
        };
        let instr = match word_at(&self.code, pc) {
            Ok(i) => i,
            Err(word) => {
                return Some(RefExit::Decode {
                    stream: s,
                    pc,
                    word,
                })
            }
        };
        self.streams[s].pc = pc.wrapping_add(1);
        match self.execute(s, pc, instr) {
            Outcome::Normal => {
                self.streams[s].retired += 1;
                self.streams[s].retired_pcs.push(pc);
                None
            }
            Outcome::Halt => {
                self.halted = true;
                Some(RefExit::Halted)
            }
            Outcome::Brk => Some(RefExit::Breakpoint { stream: s, pc }),
        }
    }

    fn execute(&mut self, s: usize, pc: u16, instr: Instruction) -> Outcome {
        match instr {
            Instruction::Nop => {}
            Instruction::Alu {
                op,
                awp,
                rd,
                rs,
                rt,
            } => {
                let a = self.read_reg(s, rs);
                let b = self.read_reg(s, rt);
                let (result, flags) = ref_alu(op, a, b, self.streams[s].flags);
                if op.writes_rd() {
                    self.write_reg(s, rd, result);
                }
                // A result written into `sr` wins over the ALU flags.
                if rd != Reg::Sr || !op.writes_rd() {
                    self.streams[s].flags = flags;
                }
                self.apply_awp(s, awp_delta(awp));
            }
            Instruction::AluImm {
                op,
                awp,
                rd,
                rs,
                imm,
            } => {
                let a = self.read_reg(s, rs);
                let (result, flags) = ref_alu_imm(op, a, imm, self.streams[s].flags);
                if op.writes_rd() {
                    self.write_reg(s, rd, result);
                }
                if rd != Reg::Sr || !op.writes_rd() {
                    self.streams[s].flags = flags;
                }
                self.apply_awp(s, awp_delta(awp));
            }
            Instruction::Ldi { awp, rd, imm } => {
                self.write_reg(s, rd, imm as u16);
                self.apply_awp(s, awp_delta(awp));
            }
            Instruction::Lui { rd, imm } => {
                let low = self.read_reg(s, rd) & 0x00ff;
                self.write_reg(s, rd, ((imm as u16) << 8) | low);
            }
            Instruction::Ld {
                awp,
                rd,
                base,
                offset,
            } => {
                let addr = self.read_reg(s, base).wrapping_add(offset as i16 as u16);
                let value = self.data_read(addr, false);
                self.write_reg(s, rd, value);
                self.apply_awp(s, awp_delta(awp));
            }
            Instruction::Lda { awp, rd, addr } => {
                let value = self.data_read(addr, false);
                self.write_reg(s, rd, value);
                self.apply_awp(s, awp_delta(awp));
            }
            Instruction::St {
                awp,
                src,
                base,
                offset,
            } => {
                let addr = self.read_reg(s, base).wrapping_add(offset as i16 as u16);
                let value = self.read_reg(s, src);
                self.data_write(addr, value);
                self.apply_awp(s, awp_delta(awp));
            }
            Instruction::Sta { awp, src, addr } => {
                let value = self.read_reg(s, src);
                self.data_write(addr, value);
                self.apply_awp(s, awp_delta(awp));
            }
            Instruction::Tset { rd, base, offset } => {
                let addr = self.read_reg(s, base).wrapping_add(offset as i16 as u16);
                let value = self.data_read(addr, true);
                self.write_reg(s, rd, value);
            }
            Instruction::Jmp { cond, target } => {
                if ref_cond(cond, self.streams[s].flags) {
                    self.streams[s].pc = target;
                }
            }
            Instruction::Call { target } => {
                self.apply_awp(s, 1);
                let ret = pc.wrapping_add(1);
                self.streams[s].window.write(0, ret);
                self.streams[s].pc = target;
            }
            Instruction::Ret { pop } => {
                self.apply_awp(s, -(pop as i32));
                let ret = self.streams[s].window.read(0);
                self.apply_awp(s, -1);
                self.streams[s].pc = ret;
            }
            Instruction::Reti => {
                if let Some(frame) = self.streams[s].service.pop() {
                    let st = &mut self.streams[s];
                    st.clear_irq(frame.bit);
                    st.pc = frame.resume_pc;
                    st.flags = frame.flags;
                }
            }
            Instruction::Winc { n } => self.apply_awp(s, n as i32),
            Instruction::Wdec { n } => self.apply_awp(s, -(n as i32)),
            Instruction::Fork { stream, target } => {
                let t = stream as usize;
                if t < self.streams.len() {
                    if !self.streams[t].active() {
                        self.streams[t].pc = target;
                    }
                    self.streams[t].raise(0);
                }
            }
            Instruction::Signal { stream, bit } => {
                let t = stream as usize;
                if t < self.streams.len() {
                    self.streams[t].raise(bit);
                }
            }
            Instruction::Clri { bit } => self.streams[s].clear_irq(bit),
            Instruction::Stop => {
                // Deactivate the level being serviced; other latched
                // requests stay pending. The service frame (if any) is
                // deliberately *not* popped — `stop` parks the stream,
                // it does not return from the handler.
                let level = self.streams[s].service_level();
                self.streams[s].clear_irq(level);
            }
            Instruction::Halt => return Outcome::Halt,
            Instruction::Brk => return Outcome::Brk,
        }
        Outcome::Normal
    }

    fn apply_awp(&mut self, s: usize, delta: i32) {
        if delta == 0 {
            return;
        }
        if self.streams[s].window.adjust(delta) {
            self.streams[s].raise(6);
        }
    }

    fn read_reg(&self, s: usize, r: Reg) -> u16 {
        match r {
            r if r.is_window() => self.streams[s].window.read(r.index()),
            r if r.is_global() => self.globals[(r.index() - 8) as usize],
            Reg::Sp => self.streams[s].sp,
            Reg::Sr => self.streams[s].flags.to_word(),
            Reg::Ir => self.streams[s].ir as u16,
            Reg::Mr => self.streams[s].mr as u16,
            _ => unreachable!("register space is exhaustive"),
        }
    }

    fn write_reg(&mut self, s: usize, r: Reg, value: u16) {
        match r {
            r if r.is_window() => self.streams[s].window.write(r.index(), value),
            r if r.is_global() => self.globals[(r.index() - 8) as usize] = value,
            Reg::Sp => self.streams[s].sp = value,
            Reg::Sr => self.streams[s].flags = RefFlags::from_word(value),
            Reg::Ir => self.streams[s].ir = value as u8,
            Reg::Mr => self.streams[s].mr = value as u8,
            _ => unreachable!("register space is exhaustive"),
        }
    }

    fn data_read(&mut self, addr: u16, tset: bool) -> u16 {
        if let Some(cell) = self.intmem.get_mut(addr as usize) {
            let value = *cell;
            if tset {
                *cell = 0xffff;
            }
            value
        } else {
            let value = self.extmem.get(&addr).copied().unwrap_or(0);
            if tset {
                self.extmem.insert(addr, 0xffff);
            }
            value
        }
    }

    fn data_write(&mut self, addr: u16, value: u16) {
        if let Some(cell) = self.intmem.get_mut(addr as usize) {
            *cell = value;
        } else {
            self.extmem.insert(addr, value);
        }
    }

    // ---- inspection -----------------------------------------------------

    /// Number of streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// `true` once a `halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Instructions executed so far across all streams.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Program counter of stream `s`.
    pub fn pc(&self, s: usize) -> u16 {
        self.streams[s].pc
    }

    /// Packed `sr` word of stream `s`.
    pub fn flags_word(&self, s: usize) -> u16 {
        self.streams[s].flags.to_word()
    }

    /// Software stack pointer of stream `s`.
    pub fn sp(&self, s: usize) -> u16 {
        self.streams[s].sp
    }

    /// Interrupt request register of stream `s`.
    pub fn ir(&self, s: usize) -> u8 {
        self.streams[s].ir
    }

    /// Interrupt mask register of stream `s`.
    pub fn mr(&self, s: usize) -> u8 {
        self.streams[s].mr
    }

    /// `true` while stream `s` has any armed interrupt bit.
    pub fn active(&self, s: usize) -> bool {
        self.streams[s].active()
    }

    /// Active window pointer of stream `s`.
    pub fn awp(&self, s: usize) -> usize {
        self.streams[s].window.awp()
    }

    /// Window register `Rn` of stream `s` as currently visible.
    pub fn window_reg(&self, s: usize, n: u8) -> u16 {
        self.streams[s].window.read(n)
    }

    /// Logical window slot `slot` of stream `s`.
    pub fn window_slot(&self, s: usize, slot: usize) -> u16 {
        self.streams[s].window.read_slot(slot)
    }

    /// Peak logical window depth of stream `s`.
    pub fn max_window_depth(&self, s: usize) -> usize {
        self.streams[s].window.max_depth()
    }

    /// Nested service depth of stream `s`.
    pub fn service_depth(&self, s: usize) -> usize {
        self.streams[s].service.len()
    }

    /// Interrupt level stream `s` is currently servicing (0 = background).
    pub fn service_level(&self, s: usize) -> u8 {
        self.streams[s].service_level()
    }

    /// Instructions architecturally executed by stream `s`.
    pub fn retired(&self, s: usize) -> u64 {
        self.streams[s].retired
    }

    /// Addresses of the instructions stream `s` executed, in order.
    pub fn retired_pcs(&self, s: usize) -> &[u16] {
        &self.streams[s].retired_pcs
    }

    /// Global register `i`.
    pub fn global(&self, i: usize) -> u16 {
        self.globals[i]
    }

    /// Internal memory word `addr`.
    pub fn internal(&self, addr: u16) -> u16 {
        self.intmem[addr as usize]
    }

    /// Internal memory size in words.
    pub fn internal_len(&self) -> usize {
        self.intmem.len()
    }

    /// External memory word `addr` (unwritten words read 0).
    pub fn external(&self, addr: u16) -> u16 {
        self.extmem.get(&addr).copied().unwrap_or(0)
    }

    /// Every external address the program wrote (or `tset`), sorted.
    pub fn external_addrs(&self) -> Vec<u16> {
        self.extmem.keys().copied().collect()
    }

    /// Raises IR bit `bit` of stream `s` (test hook, mirrors the machine).
    pub fn raise_interrupt(&mut self, s: usize, bit: u8) {
        self.streams[s].raise(bit);
    }

    /// Installs an interrupt vector (test hook, mirrors the machine).
    pub fn set_vector(&mut self, s: usize, bit: u8, target: u16) {
        assert!((1..IRQ_LEVELS as u8).contains(&bit));
        self.streams[s].vectors[bit as usize] = Some(target);
    }
}

fn awp_delta(mode: disc_isa::AwpMode) -> i32 {
    match mode {
        disc_isa::AwpMode::None => 0,
        disc_isa::AwpMode::Inc => 1,
        disc_isa::AwpMode::Dec => -1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_asm(src: &str) -> (RefMachine, RefExit) {
        let program = Program::assemble(src).expect("assemble");
        let mut m = RefMachine::new(RefConfig::disc1().with_streams(1), &program);
        let exit = m.run(100_000);
        (m, exit)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (m, exit) = run_asm(
            ".stream 0, main\nmain:\n\
             ldi r0, 7\n\
             ldi r1, 5\n\
             mul r2, r0, r1\n\
             halt\n",
        );
        assert_eq!(exit, RefExit::Halted);
        assert_eq!(m.window_reg(0, 2), 35);
        // ldi, ldi, mul executed; halt is not counted as retired.
        assert_eq!(m.retired(0), 3);
    }

    #[test]
    fn call_ret_window_discipline() {
        let (m, exit) = run_asm(
            ".stream 0, main\nmain:\n\
             ldi r0, 1\n\
             call fn\n\
             add r1, r0, r0\n\
             halt\n\
             fn:\n\
             winc 2\n\
             ldi r0, 9\n\
             ret 2\n",
        );
        assert_eq!(exit, RefExit::Halted);
        assert_eq!(m.awp(0), 7, "call/ret must balance the window");
        assert_eq!(m.window_reg(0, 1), 2);
    }

    #[test]
    fn loops_terminate() {
        let (m, exit) = run_asm(
            ".stream 0, main\nmain:\n\
             ldi r0, 0\n\
             ldi r7, 10\n\
             loop:\n\
             addi r0, r0, 3\n\
             subi r7, r7, 1\n\
             jnz loop\n\
             halt\n",
        );
        assert_eq!(exit, RefExit::Halted);
        assert_eq!(m.window_reg(0, 0), 30);
    }

    #[test]
    fn self_signal_vectors_and_resumes() {
        let (m, exit) = run_asm(
            ".stream 0, main\nmain:\n\
             ldi r1, 0\n\
             signal 0, 3\n\
             addi r1, r1, 1\n\
             stop\n\
             .vector 0, 3, isr\n\
             isr:\n\
             ldi g0, 77\n\
             reti\n",
        );
        assert_eq!(exit, RefExit::AllIdle);
        assert_eq!(m.global(0), 77);
        assert_eq!(m.window_reg(0, 1), 1, "background resumed after reti");
        assert_eq!(m.service_depth(0), 0);
    }

    #[test]
    fn fork_starts_second_stream() {
        let program = Program::assemble(
            ".stream 0, main\nmain:\n\
             fork 1, other\n\
             stop\n\
             other:\n\
             ldi g1, 5\n\
             stop\n",
        )
        .expect("assemble");
        let mut m = RefMachine::new(RefConfig::disc1().with_streams(2), &program);
        assert_eq!(m.run(1_000), RefExit::AllIdle);
        assert_eq!(m.global(1), 5);
        assert!(!m.active(0) && !m.active(1));
    }

    #[test]
    fn tset_is_atomic_read_set() {
        let (m, exit) = run_asm(
            ".stream 0, main\nmain:\n\
             ldi r6, 0x40\n\
             tset r0, [r6]\n\
             tset r1, [r6]\n\
             halt\n",
        );
        assert_eq!(exit, RefExit::Halted);
        assert_eq!(m.window_reg(0, 0), 0, "first tset sees the old value");
        assert_eq!(m.window_reg(0, 1), 0xffff, "second tset sees the lock");
        assert_eq!(m.internal(0x40), 0xffff);
    }

    #[test]
    fn external_memory_is_instant() {
        let (m, exit) = run_asm(
            ".stream 0, main\nmain:\n\
             ldi r0, 123\n\
             sta r0, 0xa00\n\
             lda r1, 0xa00\n\
             halt\n",
        );
        assert_eq!(exit, RefExit::Halted);
        assert_eq!(m.window_reg(0, 1), 123);
        assert_eq!(m.external(0xa00), 123);
        assert_eq!(m.external_addrs(), vec![0xa00]);
    }

    #[test]
    fn step_limit_reports() {
        let (_, exit) = run_asm(
            ".stream 0, main\nmain:\n\
             loop:\n\
             jmp loop\n",
        );
        assert_eq!(exit, RefExit::StepLimit);
    }
}
