//! Reference stack-window register file.
//!
//! The architectural contract (paper §3.5, mirrored from the ISA not from
//! `disc-core`): a per-stream register stack addressed by the active
//! window pointer, `Rn = stack[awp - n]`. Incrementing allocates a fresh
//! `R0`; decrementing discards it; slot contents persist across
//! dec/re-inc. Reads or decrements reaching below the stack bottom
//! saturate (reads return 0, writes are dropped, the AWP pins at 0).
//!
//! The physical file is finite. In the reference model spill/fill traffic
//! is free (timing is not modelled), but residency still matters under
//! the fault policy: growing past the physical depth or shrinking back
//! onto spilled-out slots must report a stack fault exactly where the
//! hardware would raise one.

use disc_isa::WINDOW_REGS;

/// Reference stack-window file for one stream.
#[derive(Debug, Clone)]
pub struct RefWindow {
    stack: Vec<u16>,
    awp: usize,
    /// Lowest logical slot resident in physical registers.
    resident_low: usize,
    depth: usize,
    /// `true` = fault policy (report overflow/underflow of the physical
    /// file); `false` = auto spill/fill (never faults).
    fault_on_pressure: bool,
    max_awp: usize,
}

impl RefWindow {
    /// Creates a window file with `depth` physical registers.
    ///
    /// # Panics
    ///
    /// Panics if `depth <= WINDOW_REGS` — the physical file must at least
    /// hold one full visible window.
    pub fn new(depth: usize, fault_on_pressure: bool) -> Self {
        assert!(depth > WINDOW_REGS, "physical depth must exceed the window");
        RefWindow {
            stack: vec![0; depth],
            awp: WINDOW_REGS - 1,
            resident_low: 0,
            depth,
            fault_on_pressure,
            max_awp: WINDOW_REGS - 1,
        }
    }

    /// Current active window pointer (logical slot of `R0`).
    pub fn awp(&self) -> usize {
        self.awp
    }

    /// Deepest AWP observed plus one (peak logical stack depth).
    pub fn max_depth(&self) -> usize {
        self.max_awp + 1
    }

    /// Reads `Rn`; underflowed reads return 0.
    pub fn read(&self, n: u8) -> u16 {
        assert!((n as usize) < WINDOW_REGS);
        match self.awp.checked_sub(n as usize) {
            Some(slot) => self.stack[slot],
            None => 0,
        }
    }

    /// Writes `Rn`; underflowed writes are dropped.
    pub fn write(&mut self, n: u8, value: u16) {
        assert!((n as usize) < WINDOW_REGS);
        if let Some(slot) = self.awp.checked_sub(n as usize) {
            self.stack[slot] = value;
        }
    }

    /// Reads a logical slot directly (state comparison path).
    pub fn read_slot(&self, slot: usize) -> u16 {
        self.stack.get(slot).copied().unwrap_or(0)
    }

    /// Moves the AWP by `delta`. Returns `true` when the move pressured
    /// the physical file under the fault policy (stack-fault interrupt).
    pub fn adjust(&mut self, delta: i32) -> bool {
        let new_awp = if delta >= 0 {
            self.awp.saturating_add(delta as usize)
        } else {
            self.awp.saturating_sub((-delta) as usize)
        };
        self.awp = new_awp;
        self.max_awp = self.max_awp.max(new_awp);
        if new_awp >= self.stack.len() {
            self.stack.resize(new_awp + 1, 0);
        }
        let mut fault = false;
        if new_awp >= self.resident_low + self.depth {
            // Grew past the top of the physical file: the oldest resident
            // slots leave it (spilled by hardware, faulting otherwise).
            fault = self.fault_on_pressure;
            self.resident_low = new_awp + 1 - self.depth;
        } else {
            // Shrinking: the whole visible window must be resident.
            let window_low = new_awp.saturating_sub(WINDOW_REGS - 1);
            if window_low < self.resident_low {
                fault = self.fault_on_pressure;
                self.resident_low = window_low;
            }
        }
        fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_on_increment() {
        let mut w = RefWindow::new(64, false);
        w.write(0, 10);
        assert!(!w.adjust(1));
        assert_eq!(w.read(1), 10);
        w.write(0, 99);
        w.adjust(-1);
        assert_eq!(w.read(0), 10);
        // Contents persist across dec/re-inc.
        w.adjust(1);
        assert_eq!(w.read(0), 99);
    }

    #[test]
    fn underflow_saturates() {
        let mut w = RefWindow::new(64, false);
        assert!(!w.adjust(-30));
        assert_eq!(w.awp(), 0);
        assert_eq!(w.read(1), 0);
        w.write(1, 7); // dropped
        assert_eq!(w.read(1), 0);
    }

    #[test]
    fn fault_policy_reports_overflow_and_refill() {
        let mut w = RefWindow::new(9, true);
        assert!(!w.adjust(1)); // awp 8, exactly fills the file
        assert!(w.adjust(1)); // awp 9: one slot past -> fault
        assert!(w.adjust(-2), "shrinking back over a spilled slot faults");
    }

    #[test]
    fn autospill_never_faults() {
        let mut w = RefWindow::new(9, false);
        for _ in 0..40 {
            assert!(!w.adjust(1));
        }
        for _ in 0..40 {
            assert!(!w.adjust(-1));
        }
    }
}
