//! Differential tests on *real* programs: everything the `disc-cc`
//! compiler or the firmware library emits must finish with identical
//! architectural state on the cycle-accurate machine and the reference
//! interpreter.

use disc_core::{Exit, Machine, MachineConfig};
use disc_isa::{Program, Reg};
use disc_ref::{RefConfig, RefExit, RefMachine};

/// Runs `program` single-stream on both models to a `halt` and asserts
/// the architectural state matches everywhere it is comparable.
fn assert_same_final_state(program: &Program, what: &str) {
    let mut m = Machine::new(MachineConfig::disc1().with_streams(1), program);
    let exit = m.run(3_000_000).expect("machine executes");
    assert_eq!(exit, Exit::Halted, "{what}: machine must halt");

    let mut r = RefMachine::new(RefConfig::disc1().with_streams(1), program);
    let rexit = r.run(1_000_000);
    assert_eq!(rexit, RefExit::Halted, "{what}: reference must halt");

    assert_eq!(
        m.stats().retired[0],
        r.retired(0),
        "{what}: retired instruction count"
    );
    let st = m.stream(0);
    assert_eq!(st.flags().to_word(), r.flags_word(0), "{what}: final flags");
    assert_eq!(st.window().awp(), r.awp(0), "{what}: final awp");
    let depth = st.window().max_depth().max(r.max_window_depth(0));
    for slot in 0..depth {
        assert_eq!(
            st.window().read_slot(slot),
            r.window_slot(0, slot),
            "{what}: window slot {slot}"
        );
    }
    assert_eq!(m.reg(0, Reg::Sp), r.sp(0), "{what}: sp");
    for addr in 0..r.internal_len() as u16 {
        assert_eq!(
            m.internal_memory().read(addr),
            r.internal(addr),
            "{what}: internal memory {addr:#x}"
        );
    }
    for g in 0..disc_isa::GLOBAL_REGS {
        assert_eq!(m.global(g), r.global(g), "{what}: global g{g}");
    }
}

// ---- disc-cc compiled programs -----------------------------------------

/// Compiles `source` with disc-cc and checks both models agree; also
/// pins the expected values of the named variables on the reference.
fn check_compiled(source: &str, expect: &[(&str, u16)]) {
    let compiled = disc_cc::compile(source).expect("source compiles");
    assert_same_final_state(&compiled.program, "compiled program");

    let mut r = RefMachine::new(RefConfig::disc1().with_streams(1), &compiled.program);
    assert_eq!(r.run(1_000_000), RefExit::Halted);
    for (name, want) in expect {
        let addr = compiled
            .variables()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| *a)
            .expect("variable exists");
        assert_eq!(r.internal(addr), *want, "variable {name}");
    }
}

#[test]
fn compiled_arithmetic_matches() {
    check_compiled(
        "var x = 7; var y = x * x + 1; mem[0x10] = y;",
        &[("x", 7), ("y", 50)],
    );
}

#[test]
fn compiled_loop_matches() {
    check_compiled(
        "var n = 10; var sum = 0;\n\
         while (n) { sum = sum + n * n; n = n - 1; }\n\
         mem[0x20] = sum;",
        &[("sum", 385), ("n", 0)],
    );
}

#[test]
fn compiled_branches_and_logic_match() {
    check_compiled(
        "var a = 3; var b = 0; var r = 0;\n\
         if (a && !b) { r = 1; } else { r = 2; }\n\
         if (a >= 4 || b == 0) { r = r + 10; }\n\
         var s = (a << 4) ^ (a | 9);",
        &[("r", 11), ("s", 0x30 ^ (3 | 9))],
    );
}

#[test]
fn compiled_memory_traffic_matches() {
    check_compiled(
        "var i = 8; \n\
         while (i) { mem[0x40 + i] = i * 5; i = i - 1; }\n\
         var total = mem[0x41] + mem[0x44] + mem[0x48];",
        &[("total", 5 + 20 + 40)],
    );
}

#[test]
fn compiled_wrapping_arithmetic_matches() {
    check_compiled(
        "var big = 65535; var w = big + 3; var m = big * big;\n\
         var sh = big >> 3; var neg = -w;",
        &[
            ("w", 2),
            ("m", 1),
            ("sh", 0x1fff),
            ("neg", 0u16.wrapping_sub(2)),
        ],
    );
}

// ---- firmware kernels ---------------------------------------------------

/// Assembles a firmware call harness and checks both models agree.
fn check_firmware(routine: &str, args: &[u16]) {
    let mut src = String::from(".stream 0, main\nmain:\n");
    for (i, a) in args.iter().enumerate() {
        src.push_str(&format!("    li r{i}, {a}\n"));
    }
    src.push_str(&format!("    call {routine}\n"));
    for i in 0..4 {
        src.push_str(&format!("    sta r{i}, {:#x}\n", 0x10 + i));
    }
    src.push_str("    halt\n");
    let src = disc_firmware::with_library(&src);
    let program = Program::assemble(&src).expect("firmware assembles");
    assert_same_final_state(&program, &format!("firmware {routine}{args:?}"));
}

#[test]
fn firmware_div16_matches() {
    for (n, d) in [(100u16, 7u16), (65535, 1), (5, 9), (1234, 0), (40000, 123)] {
        check_firmware("div16", &[n, d]);
    }
}

#[test]
fn firmware_sqrt16_matches() {
    for x in [0u16, 1, 2, 99, 100, 65535] {
        check_firmware("sqrt16", &[x]);
    }
}

#[test]
fn firmware_mul32_and_add32_match() {
    check_firmware("mul32", &[40_000, 50_000]);
    check_firmware("mul32", &[0xffff, 0xffff]);
    check_firmware("add32", &[1, 0xffff, 0, 2]);
    check_firmware("add32", &[0xffff, 0xffff, 0xffff, 0xffff]);
}

#[test]
fn firmware_memcpy_and_memset_match() {
    // memcpy reads uninitialized (zero) source words — still deterministic.
    check_firmware("memcpy", &[0x60, 0x40, 5]);
    check_firmware("memset", &[0x70, 0x2bd, 4]);
}
