//! Stack-window register file edge cases, pinned against the reference
//! interpreter: spills and fills at the exact physical-depth boundary,
//! AWP underflow, and the fault (non-spilling) window policy.

use disc_core::{Exit, Machine, MachineConfig, WindowPolicy};
use disc_isa::Program;
use disc_ref::{RefConfig, RefExit, RefMachine, RefWindowPolicy};

/// Runs `source` single-stream on both models with the given window
/// configuration and asserts identical final architectural state.
/// Returns the reference machine for extra pinned assertions.
fn run_both(source: &str, depth: usize, fault: bool) -> RefMachine {
    let program = Program::assemble(source).expect("test program assembles");

    let mut mc = MachineConfig::disc1()
        .with_streams(1)
        .with_window_depth(depth);
    if fault {
        mc = mc.with_window_policy(WindowPolicy::Fault);
    }
    let mut m = Machine::new(mc, &program);
    let exit = m.run(200_000).expect("machine executes");
    assert!(
        matches!(exit, Exit::Halted | Exit::AllIdle),
        "machine exit: {exit:?}"
    );

    let mut rc = RefConfig::disc1().with_streams(1);
    rc.window_depth = depth;
    if fault {
        rc.window_policy = RefWindowPolicy::Fault;
    }
    let mut r = RefMachine::new(rc, &program);
    let rexit = r.run(100_000);
    match exit {
        Exit::Halted => assert_eq!(rexit, RefExit::Halted),
        Exit::AllIdle => assert_eq!(rexit, RefExit::AllIdle),
        _ => unreachable!(),
    }

    let st = m.stream(0);
    assert_eq!(st.ir(), r.ir(0), "final ir");
    assert_eq!(st.service_level(), r.service_level(0), "service level");
    assert_eq!(st.window().awp(), r.awp(0), "final awp");
    assert_eq!(st.flags().to_word(), r.flags_word(0), "final flags");
    let slots = st.window().max_depth().max(r.max_window_depth(0));
    for slot in 0..slots {
        assert_eq!(
            st.window().read_slot(slot),
            r.window_slot(0, slot),
            "window slot {slot}"
        );
    }
    for addr in 0..0x100u16 {
        assert_eq!(
            m.internal_memory().read(addr),
            r.internal(addr),
            "internal {addr:#x}"
        );
    }
    assert_eq!(m.stats().retired[0], r.retired(0), "retired count");
    r
}

#[test]
fn values_survive_spill_and_fill_at_exact_boundary() {
    // Physical depth 12, AWP starts at 7 (slots 0..=11 resident after one
    // winc 4). One more winc crosses the boundary and must spill exactly
    // one slot; the wdec walk back must fill it with the original value.
    let src = r#"
        .stream 0, main
    main:
        ldi r0, 0x111       ; slot 7 (awp=7)
        winc 4              ; awp=11: resident set exactly full
        ldi r0, 0x222       ; slot 11
        winc 1              ; awp=12: spills slot 0
        ldi r0, 0x333       ; slot 12
        wdec 1              ; back to 11
        add r1, r0, r0      ; r0 must still be 0x222
        sta r1, 0x20
        wdec 4              ; refill: r0 is the original slot-7 value again
        sta r0, 0x21
        halt
    "#;
    let r = run_both(src, 12, false);
    assert_eq!(r.internal(0x20), 0x444, "slot 11 survived the spill");
    assert_eq!(r.internal(0x21), 0x111, "slot 7 refilled from the stack");
    assert_eq!(r.window_slot(0, 12), 0x333, "spilled excursion slot kept");
}

#[test]
fn deep_excursion_spills_and_refills_many_slots() {
    // Marker in every visible register, then an excursion far past the
    // physical depth; on return every marker must be back.
    let src = r#"
        .stream 0, main
    main:
        ldi r0, 10
        ldi r1, 11
        ldi r2, 12
        ldi r3, 13
        ldi r4, 14
        ldi r5, 15
        ldi r6, 16
        ldi r7, 17
        winc 40             ; 5x the physical depth of 8+1
        ldi r0, 99
        wdec 40
        sta r0, 0x30
        sta r7, 0x31
        halt
    "#;
    let r = run_both(src, 9, false);
    assert_eq!(r.internal(0x30), 10, "r0 refilled");
    assert_eq!(r.internal(0x31), 17, "r7 refilled");
}

#[test]
fn awp_underflow_saturates_identically() {
    // wdec below the initial frame: AWP saturates at 0, leaving only
    // slot 0 visible as r0 — writes to r1.. drop and reads return 0 on
    // both models, and climbing back restores the original frame.
    let src = r#"
        .stream 0, main
    main:
        ldi r0, 7           ; slot 7
        wdec 200            ; far below zero: saturates at awp=0
        ldi r1, 5           ; r1 is out of window: the write drops
        add r2, r1, r1      ; reads/writes out of window: 0, dropped
        sta r2, 0x40        ; r2 reads as 0
        winc 7              ; climb back up to the original frame
        sta r0, 0x41        ; slot 7 still holds 7
        halt
    "#;
    let r = run_both(src, 64, false);
    assert_eq!(r.internal(0x40), 0, "out-of-window register reads as 0");
    assert_eq!(r.internal(0x41), 7, "original frame restored");
}

#[test]
fn ret_pops_past_zero_saturate() {
    // `ret 255` saturates the pop at AWP 0 and takes its return address
    // from slot 0 — which main seeded with a landing pad, so the wild
    // return is fully deterministic on both models.
    let src = r#"
        .stream 0, main
    main:
        wdec 7              ; expose slot 0 as r0
        ldi r0, done        ; seed the landing pad
        winc 7              ; restore the frame
        call sub
        halt                ; skipped: sub returns to `done` instead
    sub:
        ret 255             ; wildly wrong pop count: must not diverge
    done:
        ldi r0, 0x5a        ; awp saturated to 0: only r0 is in window
        sta r0, 0x50
        halt
    "#;
    let r = run_both(src, 64, false);
    assert_eq!(r.internal(0x50), 0x5a, "wild return landed on the pad");
}

#[test]
fn fault_policy_raises_bit_6_instead_of_spilling() {
    // Depth 12, no spill hardware: the winc that crosses the boundary
    // must raise IR bit 6 and vector to the installed handler.
    let src = r#"
        .stream 0, main
        .vector 0, 6, ovf
    main:
        ldi r0, 1
        winc 4              ; fills the physical window exactly: no fault
        winc 1              ; crosses: faults
        ldi r2, 2
        halt
    ovf:
        ldi r3, 0x77
        sta r3, 0x60
        reti
    "#;
    let r = run_both(src, 12, true);
    assert_eq!(r.internal(0x60), 0x77, "overflow handler ran");
}

#[test]
fn fault_policy_without_handler_latches_ir_bit() {
    // Same overflow with no vector installed: bit 6 stays pending in IR
    // on both models and execution continues.
    let src = r#"
        .stream 0, main
    main:
        winc 20
        ldi r0, 5
        sta r0, 0x70
        halt
    "#;
    let r = run_both(src, 12, true);
    assert_eq!(r.ir(0) & (1 << 6), 1 << 6, "fault bit pending");
    assert_eq!(r.internal(0x70), 5, "stream kept running");
}

#[test]
fn boundary_is_exact_no_fault_at_full_window() {
    // Filling the window to exactly its physical depth must NOT fault.
    let src = r#"
        .stream 0, main
    main:
        winc 4              ; awp=11 with depth 12: exactly full
        ldi r0, 9
        sta r0, 0x80
        wdec 4
        halt
    "#;
    let r = run_both(src, 12, true);
    assert_eq!(r.ir(0) & (1 << 6), 0, "no spurious fault at the boundary");
    assert_eq!(r.internal(0x80), 9);
}
