//! Property tests: every firmware routine agrees with Rust reference
//! arithmetic on random inputs, executed on the cycle-accurate machine.

use disc_core::{Exit, Machine, MachineConfig};
use disc_firmware::with_library;
use disc_isa::Program;
use proptest::prelude::*;

fn call(routine: &str, args: &[u16]) -> [u16; 4] {
    let mut src = String::from(".stream 0, main\nmain:\n");
    for (i, a) in args.iter().enumerate() {
        src.push_str(&format!("    li r{i}, {a}\n"));
    }
    src.push_str(&format!("    call {routine}\n"));
    for i in 0..4 {
        src.push_str(&format!("    sta r{i}, {:#x}\n", 0x10 + i));
    }
    src.push_str("    halt\n");
    let program = Program::assemble(&with_library(&src)).unwrap();
    let mut m = Machine::new(MachineConfig::disc1().with_streams(1), &program);
    assert_eq!(m.run(200_000).unwrap(), Exit::Halted);
    [
        m.internal_memory().read(0x10),
        m.internal_memory().read(0x11),
        m.internal_memory().read(0x12),
        m.internal_memory().read(0x13),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn div16_matches_rust(n in any::<u16>(), d in 1u16..) {
        let [q, r, ..] = call("div16", &[n, d]);
        prop_assert_eq!(q, n / d, "quotient of {} / {}", n, d);
        prop_assert_eq!(r, n % d, "remainder of {} / {}", n, d);
    }

    #[test]
    fn sqrt16_matches_rust(x in any::<u16>()) {
        let [s, ..] = call("sqrt16", &[x]);
        let want = (x as f64).sqrt().floor() as u16;
        prop_assert_eq!(s, want, "sqrt({})", x);
    }

    #[test]
    fn mul32_matches_rust(a in any::<u16>(), b in any::<u16>()) {
        let [hi, lo, ..] = call("mul32", &[a, b]);
        prop_assert_eq!(((hi as u32) << 16) | lo as u32, a as u32 * b as u32);
    }

    #[test]
    fn add32_matches_rust(a in any::<u32>(), b in any::<u32>()) {
        let [hi, lo, ..] = call(
            "add32",
            &[(a >> 16) as u16, a as u16, (b >> 16) as u16, b as u16],
        );
        let got = ((hi as u32) << 16) | lo as u32;
        prop_assert_eq!(got, a.wrapping_add(b));
    }

    #[test]
    fn div_identity_reconstructs_dividend(n in any::<u16>(), d in 1u16..) {
        // q*d + r == n, via mul32 + add32 run on the machine too.
        let [q, r, ..] = call("div16", &[n, d]);
        let [hi, lo, ..] = call("mul32", &[q, d]);
        let [shi, slo, ..] = call("add32", &[hi, lo, 0, r]);
        prop_assert_eq!(shi, 0, "q*d + r must fit 16 bits when n does");
        prop_assert_eq!(slo, n);
    }
}
