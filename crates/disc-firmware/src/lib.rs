//! Tested DISC1 assembly firmware routines.
//!
//! The 16-bit DISC1 ISA has a hardware multiplier but no divider, no
//! square root and no multi-word arithmetic — exactly the operations an
//! automotive control loop needs (scaling sensor readings, computing RMS
//! values, copying I/O buffers). This crate provides hand-written,
//! property-tested assembly for them, as a library that links (textually)
//! after any user program.
//!
//! # Calling convention
//!
//! Arguments go in the **caller's** `r0, r1, …`; `call` slides the window
//! so the callee sees them as `r1, r2, …` with its return address in `r0`.
//! Results come back in the same caller registers. All routines preserve
//! every other caller register (they allocate their scratch with
//! `winc`/`wdec`).
//!
//! | routine  | caller args | caller results |
//! |----------|-------------|----------------|
//! | `div16`  | `r0` = dividend, `r1` = divisor | `r0` = quotient, `r1` = remainder (÷0 ⇒ `0xffff`, dividend) |
//! | `sqrt16` | `r0` = x | `r0` = ⌊√x⌋ |
//! | `mul32`  | `r0` = a, `r1` = b | `r0` = high word, `r1` = low word of `a·b` |
//! | `add32`  | `r0..r3` = a-hi, a-lo, b-hi, b-lo | `r0` = sum-hi, `r1` = sum-lo |
//! | `memcpy` | `r0` = dst, `r1` = src, `r2` = words | (memory copied; args clobbered) |
//! | `memset` | `r0` = dst, `r1` = value, `r2` = words | (memory filled; args clobbered) |
//!
//! # Example
//!
//! ```
//! use disc_core::{Machine, MachineConfig};
//! use disc_isa::Program;
//!
//! let src = disc_firmware::with_library(
//!     r#"
//!     .stream 0, main
//! main:
//!     li   r0, 50000
//!     ldi  r1, 321
//!     call div16
//!     sta  r0, 0x10     ; 155
//!     sta  r1, 0x11     ; 245
//!     halt
//! "#,
//! );
//! let mut m = Machine::new(MachineConfig::disc1(), &Program::assemble(&src)?);
//! m.run(10_000)?;
//! assert_eq!(m.internal_memory().read(0x10), 155);
//! assert_eq!(m.internal_memory().read(0x11), 245);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

/// The firmware library source (labels `div16`, `sqrt16`, `mul32`,
/// `add32`, `memcpy`, `memset`).
pub const LIBRARY: &str = r#"
; ---- disc-firmware library -------------------------------------------

; div16: unsigned 16-bit restoring division.
; callee view: r0=ret, r1=dividend/quotient-slot, r2=divisor/remainder-slot
div16:
    winc 5                  ; r0..r4 scratch | r5=ret | r6=n -> q | r7=d -> rem
    clr r0                  ; quotient
    clr r1                  ; remainder
    ldi r2, 16              ; bit counter
    cmpi r7, 0
    jz  div16_zero
div16_loop:
    ldi r3, 1
    shl r1, r1, r3          ; rem <<= 1
    ldi r3, 15
    shr r4, r6, r3          ; msb of n
    or  r1, r1, r4
    ldi r3, 1
    shl r6, r6, r3          ; n <<= 1
    shl r0, r0, r3          ; q <<= 1
    cmp r1, r7              ; rem >= d ?
    jnc div16_skip
    sub r1, r1, r7
    ori r0, r0, 1
div16_skip:
    subi r2, r2, 1
    jnz div16_loop
    mov r6, r0
    mov r7, r1
    wdec 5
    ret
div16_zero:
    mov r7, r6              ; remainder = dividend
    ldi r6, -1              ; quotient = 0xffff
    wdec 5
    ret

; sqrt16: integer square root (digit-by-digit).
; callee view: r1 = x -> floor(sqrt(x))
sqrt16:
    winc 5                  ; r0..r4 scratch | r5=ret | r6=x -> result
    clr r0                  ; res
    ldi r1, 1
    ldi r3, 14
    shl r1, r1, r3          ; bit = 1 << 14
sqrt_align:
    cmpi r1, 0
    jz  sqrt_done
    cmp r6, r1              ; x >= bit ?
    jc  sqrt_loop
    ldi r3, 2
    shr r1, r1, r3
    jmp sqrt_align
sqrt_loop:
    cmpi r1, 0
    jz  sqrt_done
    add r2, r0, r1          ; tmp = res + bit
    cmp r6, r2              ; x >= tmp ?
    jnc sqrt_else
    sub r6, r6, r2
    ldi r3, 1
    shr r0, r0, r3
    add r0, r0, r1          ; res = (res >> 1) + bit
    jmp sqrt_next
sqrt_else:
    ldi r3, 1
    shr r0, r0, r3
sqrt_next:
    ldi r3, 2
    shr r1, r1, r3
    jmp sqrt_loop
sqrt_done:
    mov r6, r0
    wdec 5
    ret

; mul32: full 32-bit product via the hardware multiplier.
; callee view: r1 = a -> hi, r2 = b -> lo
mul32:
    winc 2                  ; r0,r1 scratch | r2=ret | r3=a | r4=b
    mulh r0, r3, r4
    mul  r1, r3, r4
    mov r3, r0
    mov r4, r1
    wdec 2
    ret

; add32: 32-bit addition with the carry chain.
; callee view: r1=a-hi, r2=a-lo, r3=b-hi, r4=b-lo -> r1=sum-hi, r2=sum-lo
add32:
    add r2, r2, r4
    adc r1, r1, r3
    ret

; memcpy: word copy, low-to-high (any address space).
; callee view: r1=dst, r2=src, r3=len (all clobbered)
memcpy:
    winc 1                  ; r0 scratch | r1=ret | r2=dst | r3=src | r4=len
memcpy_loop:
    cmpi r4, 0
    jz  memcpy_done
    ld  r0, [r3]
    st  r0, [r2]
    inc r2
    inc r3
    dec r4
    jmp memcpy_loop
memcpy_done:
    wdec 1
    ret

; memset: word fill.
; callee view: r1=dst, r2=value, r3=len (dst/len clobbered)
memset:
memset_loop:
    cmpi r3, 0
    jz  memset_done
    st  r2, [r1]
    inc r1
    dec r3
    jmp memset_loop
memset_done:
    ret
"#;

/// Appends the firmware library after `user_source` so its labels resolve.
pub fn with_library(user_source: &str) -> String {
    format!("{user_source}\n{LIBRARY}")
}

#[cfg(test)]
mod tests {
    use disc_core::{Exit, Machine, MachineConfig};
    use disc_isa::Program;

    /// Calls `routine` with `args` preloaded into the caller's `r0..`,
    /// returning the caller's `r0..r3` afterwards plus the machine for
    /// memory checks.
    fn call(routine: &str, args: &[u16], setup_mem: &[(u16, u16)]) -> ([u16; 4], Machine) {
        let mut src = String::from(".stream 0, main\nmain:\n");
        for (i, a) in args.iter().enumerate() {
            src.push_str(&format!("    li r{i}, {a}\n"));
        }
        src.push_str(&format!("    call {routine}\n"));
        for i in 0..4 {
            src.push_str(&format!("    sta r{i}, {:#x}\n", 0x10 + i));
        }
        src.push_str("    halt\n");
        let src = crate::with_library(&src);
        let program = Program::assemble(&src).expect("firmware assembles");
        let mut m = Machine::new(MachineConfig::disc1().with_streams(1), &program);
        for &(addr, v) in setup_mem {
            m.internal_memory_mut().write(addr, v);
        }
        let exit = m.run(100_000).expect("firmware runs");
        assert_eq!(exit, Exit::Halted, "{routine} must return and halt");
        let out = [
            m.internal_memory().read(0x10),
            m.internal_memory().read(0x11),
            m.internal_memory().read(0x12),
            m.internal_memory().read(0x13),
        ];
        (out, m)
    }

    #[test]
    fn div16_basic() {
        let ([q, r, ..], _) = call("div16", &[100, 7], &[]);
        assert_eq!((q, r), (14, 2));
        let ([q, r, ..], _) = call("div16", &[65535, 1], &[]);
        assert_eq!((q, r), (65535, 0));
        let ([q, r, ..], _) = call("div16", &[5, 9], &[]);
        assert_eq!((q, r), (0, 5));
    }

    #[test]
    fn div16_by_zero_is_saturating() {
        let ([q, r, ..], _) = call("div16", &[1234, 0], &[]);
        assert_eq!(q, 0xffff);
        assert_eq!(r, 1234);
    }

    #[test]
    fn sqrt16_basic() {
        for (x, want) in [
            (0u16, 0u16),
            (1, 1),
            (2, 1),
            (4, 2),
            (99, 9),
            (100, 10),
            (65535, 255),
        ] {
            let ([got, ..], _) = call("sqrt16", &[x], &[]);
            assert_eq!(got, want, "sqrt({x})");
        }
    }

    #[test]
    fn mul32_splits_product() {
        let ([hi, lo, ..], _) = call("mul32", &[40_000, 50_000], &[]);
        assert_eq!(((hi as u32) << 16) | lo as u32, 40_000u32 * 50_000);
    }

    #[test]
    fn add32_carries_across_words() {
        // 0x0001_ffff + 0x0000_0002 = 0x0002_0001
        let ([hi, lo, ..], _) = call("add32", &[1, 0xffff, 0, 2], &[]);
        assert_eq!((hi, lo), (2, 1));
    }

    #[test]
    fn memcpy_moves_block() {
        let setup: Vec<(u16, u16)> = (0..5).map(|i| (0x40 + i, 100 + i)).collect();
        let (_, m) = call("memcpy", &[0x60, 0x40, 5], &setup);
        for i in 0..5 {
            assert_eq!(m.internal_memory().read(0x60 + i), 100 + i);
        }
    }

    #[test]
    fn memset_fills_block() {
        let (_, m) = call("memset", &[0x70, 0xabcd_u16 & 0x7ff, 4], &[]);
        let v = 0xabcd_u16 & 0x7ff;
        for i in 0..4 {
            assert_eq!(m.internal_memory().read(0x70 + i), v);
        }
        assert_eq!(m.internal_memory().read(0x74), 0, "fill stops at len");
    }

    #[test]
    fn routines_preserve_unrelated_registers() {
        // Load sentinels into r2/r3 around a div16 call (args r0, r1).
        let src = crate::with_library(
            r#"
            .stream 0, main
        main:
            li  r2, 0x1111
            li  r3, 0x2222
            ldi r0, 100
            ldi r1, 9
            call div16
            sta r2, 0x20
            sta r3, 0x21
            halt
        "#,
        );
        let program = Program::assemble(&src).unwrap();
        let mut m = Machine::new(MachineConfig::disc1().with_streams(1), &program);
        m.run(100_000).unwrap();
        assert_eq!(m.internal_memory().read(0x20), 0x1111);
        assert_eq!(m.internal_memory().read(0x21), 0x2222);
    }
}
