//! Real-time task model.

/// A periodic hard-real-time task.
///
/// Every `period` cycles (starting at `offset`) an external interrupt
/// activates the task's handler; the handler must complete within
/// `deadline` cycles of the activation. The handler body runs
/// [`body`](Task::body) instructions of computation and performs
/// [`io_reads`](Task::io_reads) external reads of
/// [`io_latency`](Task::io_latency) cycles each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Display name.
    pub name: String,
    /// Activation period in cycles.
    pub period: u64,
    /// Relative deadline in cycles.
    pub deadline: u64,
    /// First activation time.
    pub offset: u64,
    /// Handler computation length in loop iterations (~3 instructions
    /// each).
    pub body: u32,
    /// External reads per activation.
    pub io_reads: u32,
    /// Access time of the task's I/O device in cycles.
    pub io_latency: u32,
    /// `true` for sporadic tasks: activations arrive as a Poisson process
    /// with mean inter-arrival [`period`](Task::period) instead of
    /// strictly periodically (the paper's "stochastically occurring
    /// interrupts").
    pub sporadic: bool,
}

impl Task {
    /// Creates a task with an empty body and no I/O.
    ///
    /// # Panics
    ///
    /// Panics if `period` or `deadline` is zero.
    pub fn new(name: &str, period: u64, deadline: u64) -> Self {
        assert!(period > 0, "period must be nonzero");
        assert!(deadline > 0, "deadline must be nonzero");
        Task {
            name: name.to_string(),
            period,
            deadline,
            offset: 0,
            body: 1,
            io_reads: 0,
            io_latency: 0,
            sporadic: false,
        }
    }

    /// Sets the handler computation length (loop iterations).
    pub fn with_body(mut self, body: u32) -> Self {
        self.body = body.max(1);
        self
    }

    /// Sets per-activation I/O: `reads` accesses of `latency` cycles each.
    pub fn with_io(mut self, reads: u32, latency: u32) -> Self {
        self.io_reads = reads;
        self.io_latency = latency;
        self
    }

    /// Sets the first activation time.
    pub fn with_offset(mut self, offset: u64) -> Self {
        self.offset = offset;
        self
    }

    /// Makes the task sporadic: exponential inter-arrival gaps with mean
    /// [`period`](Task::period).
    pub fn sporadic(mut self) -> Self {
        self.sporadic = true;
        self
    }

    /// Conservative worst-case execution time estimate in cycles: each
    /// body iteration costs up to 6 cycles (`subi` + flag-hazard stall +
    /// `jnz` + jump flush), each I/O read its access time plus issue/flush
    /// overhead, plus the handler prologue/epilogue.
    pub fn wcet_estimate(&self) -> u64 {
        let compute = self.body as u64 * 6;
        let io = self.io_reads as u64 * (self.io_latency as u64 + 6);
        compute + io + 16
    }

    /// Utilization = WCET estimate / period.
    pub fn utilization(&self) -> f64 {
        self.wcet_estimate() as f64 / self.period as f64
    }
}

/// A set of tasks to run together (at most 3 on DISC1 — stream 0 is the
/// background stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSet {
    /// The tasks, highest priority first.
    pub tasks: Vec<Task>,
    /// Whether a background compute stream runs alongside the tasks.
    pub background: bool,
}

impl TaskSet {
    /// Creates a task set with a background stream.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or holds more than 3 tasks (DISC1 has 4
    /// streams and stream 0 is the background).
    pub fn new(tasks: Vec<Task>) -> Self {
        assert!(!tasks.is_empty(), "task set needs at least one task");
        assert!(
            tasks.len() <= 3,
            "at most 3 tasks fit beside the background"
        );
        TaskSet {
            tasks,
            background: true,
        }
    }

    /// Disables the background stream.
    pub fn without_background(mut self) -> Self {
        self.background = false;
        self
    }

    /// Total utilization of the task set.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let t = Task::new("a", 100, 80)
            .with_body(10)
            .with_io(2, 30)
            .with_offset(5);
        assert_eq!(t.body, 10);
        assert_eq!(t.io_reads, 2);
        assert_eq!(t.offset, 5);
        assert!(t.wcet_estimate() > 100, "io dominates");
    }

    #[test]
    fn utilization_scales_with_period() {
        let fast = Task::new("f", 100, 100).with_body(10);
        let slow = Task::new("s", 1000, 1000).with_body(10);
        assert!(fast.utilization() > slow.utilization() * 9.0);
    }

    #[test]
    #[should_panic(expected = "at most 3 tasks")]
    fn too_many_tasks_rejected() {
        let t = Task::new("x", 10, 10);
        let _ = TaskSet::new(vec![t.clone(), t.clone(), t.clone(), t]);
    }

    #[test]
    #[should_panic(expected = "period must be nonzero")]
    fn zero_period_rejected() {
        let _ = Task::new("x", 0, 10);
    }
}
