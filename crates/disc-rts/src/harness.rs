//! Host harness: drives a machine cycle by cycle, injects task
//! activations, observes completions and scores deadlines.

use std::collections::VecDeque;

use disc_baseline::{BaselineConfig, BaselineMachine};
use disc_core::{Machine, MachineConfig, MachineStats, SchedulePolicy, SimError, SkipStats};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::codegen;
use crate::task::TaskSet;

/// Per-task result of a harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskOutcome {
    /// Task name.
    pub name: String,
    /// Activations injected.
    pub activations: u64,
    /// Handler completions observed.
    pub completions: u64,
    /// Deadline misses (late completions plus activations whose deadline
    /// passed unserved — including coalesced interrupts).
    pub misses: u64,
    /// Worst observed response time in cycles.
    pub max_response: u64,
    /// Mean observed response time in cycles.
    pub mean_response: f64,
    /// All observed response times.
    pub responses: Vec<u64>,
}

impl TaskOutcome {
    /// Nearest-rank percentile of the observed response times.
    ///
    /// # Panics
    ///
    /// Panics if `p > 100`.
    pub fn response_percentile(&self, p: u8) -> Option<u64> {
        crate::latency::LatencyReport::percentile(&self.responses, p)
    }
}

/// Result of running a task set on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Per-task results, in task order.
    pub tasks: Vec<TaskOutcome>,
    /// Cycles simulated.
    pub cycles: u64,
    /// Machine utilization over the run.
    pub utilization: f64,
    /// Worst hardware-measured interrupt latency (raise → handler fetch,
    /// including any context-switch cost).
    pub max_irq_latency: Option<u64>,
    /// Background instructions retired (progress of the non-RT work).
    pub background_retired: u64,
    /// Full machine statistics, including the bus-fault counters
    /// (`bus_faults`, `abi_timeouts`, `unmapped_accesses`) a fault
    /// campaign asserts on.
    pub stats: MachineStats,
    /// Event-skip accounting (all zero under
    /// [`StepMode::CycleByCycle`](disc_core::StepMode) and on the
    /// baseline machine, which has no skip mode).
    pub skip_stats: SkipStats,
}

impl SimOutcome {
    /// Total deadline misses across tasks.
    pub fn total_misses(&self) -> u64 {
        self.tasks.iter().map(|t| t.misses).sum()
    }
}

/// Anything the deadline driver can run a task set on.
trait Target {
    fn step_once(&mut self) -> Result<(), SimError>;
    fn activate(&mut self, task: usize);
    fn completions(&self, task: usize) -> u16;
    fn stats(&self) -> &MachineStats;
    fn skip_stats(&self) -> SkipStats {
        SkipStats::default()
    }
}

struct DiscTarget(Machine);

impl Target for DiscTarget {
    fn step_once(&mut self) -> Result<(), SimError> {
        self.0.step().map(|_| ())
    }
    fn activate(&mut self, task: usize) {
        self.0.raise_interrupt(task + 1, codegen::DISC_TASK_BIT);
    }
    fn completions(&self, task: usize) -> u16 {
        self.0
            .internal_memory()
            .read(codegen::completion_addr(task))
    }
    fn stats(&self) -> &MachineStats {
        self.0.stats()
    }
    fn skip_stats(&self) -> SkipStats {
        *self.0.skip_stats()
    }
}

struct BaselineTarget(BaselineMachine);

impl Target for BaselineTarget {
    fn step_once(&mut self) -> Result<(), SimError> {
        self.0.step().map(|_| ())
    }
    fn activate(&mut self, task: usize) {
        self.0.raise_interrupt(codegen::baseline_task_bit(task));
    }
    fn completions(&self, task: usize) -> u16 {
        self.0
            .internal_memory()
            .read(codegen::completion_addr(task))
    }
    fn stats(&self) -> &MachineStats {
        self.0.stats()
    }
}

/// Builds each task's activation schedule up front: strictly periodic, or
/// a Poisson process with the same mean rate for sporadic tasks
/// (deterministic per task index, so DISC and baseline runs see identical
/// stimulus).
fn arrival_schedule(set: &TaskSet, horizon: u64) -> Vec<Vec<u64>> {
    set.tasks
        .iter()
        .enumerate()
        .map(|(i, task)| {
            let mut arrivals = Vec::new();
            if task.sporadic {
                let mut rng = SmallRng::seed_from_u64(0xd15c_0000 + i as u64);
                let mut t = task.offset;
                loop {
                    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    let gap = (-u.ln() * task.period as f64).ceil() as u64;
                    t += gap.max(1);
                    if t >= horizon {
                        break;
                    }
                    arrivals.push(t);
                }
            } else {
                let mut t = task.offset;
                while t < horizon {
                    arrivals.push(t);
                    t += task.period;
                }
            }
            arrivals
        })
        .collect()
}

fn drive<T: Target>(mut target: T, set: &TaskSet, horizon: u64) -> Result<SimOutcome, SimError> {
    let n = set.tasks.len();
    let schedule = arrival_schedule(set, horizon);
    let mut next_arrival = vec![0usize; n];
    let mut outstanding: Vec<VecDeque<u64>> = vec![VecDeque::new(); n];
    let mut seen: Vec<u64> = vec![0; n];
    let mut outcomes: Vec<TaskOutcome> = set
        .tasks
        .iter()
        .map(|t| TaskOutcome {
            name: t.name.clone(),
            activations: 0,
            completions: 0,
            misses: 0,
            max_response: 0,
            mean_response: 0.0,
            responses: Vec::new(),
        })
        .collect();
    for cycle in 0..horizon {
        for i in 0..n {
            // An activation whose deadline expired without service was
            // lost (coalesced on the single IR bit, or overrun). Count
            // the miss and drop the job, so later completions are matched
            // against the arrival they actually serviced instead of
            // cascading inflated responses down the whole queue.
            while let Some(&t0) = outstanding[i].front() {
                if cycle > t0 + set.tasks[i].deadline {
                    outstanding[i].pop_front();
                    outcomes[i].misses += 1;
                } else {
                    break;
                }
            }
            while next_arrival[i] < schedule[i].len() && schedule[i][next_arrival[i]] == cycle {
                target.activate(i);
                outstanding[i].push_back(cycle);
                outcomes[i].activations += 1;
                next_arrival[i] += 1;
            }
        }
        target.step_once()?;
        for i in 0..n {
            let count = target.completions(i) as u64;
            while seen[i] < count {
                seen[i] += 1;
                outcomes[i].completions += 1;
                if let Some(t0) = outstanding[i].pop_front() {
                    let response = cycle + 1 - t0;
                    if response > set.tasks[i].deadline {
                        outcomes[i].misses += 1;
                    }
                    outcomes[i].responses.push(response);
                }
            }
        }
    }
    // Activations whose deadline expired without service are misses
    // (coalesced interrupts and overruns land here).
    for i in 0..n {
        for &t0 in &outstanding[i] {
            if horizon > t0 + set.tasks[i].deadline {
                outcomes[i].misses += 1;
            }
        }
    }
    for o in &mut outcomes {
        o.max_response = o.responses.iter().copied().max().unwrap_or(0);
        o.mean_response = if o.responses.is_empty() {
            0.0
        } else {
            o.responses.iter().sum::<u64>() as f64 / o.responses.len() as f64
        };
    }
    let skip_stats = target.skip_stats();
    let stats = target.stats();
    Ok(SimOutcome {
        cycles: stats.cycles,
        utilization: stats.utilization(),
        max_irq_latency: stats.max_irq_latency(),
        background_retired: stats.retired[0],
        stats: stats.clone(),
        skip_stats,
        tasks: outcomes,
    })
}

/// Runs the task set on a DISC1 machine (dedicated stream per task, even
/// round-robin schedule).
///
/// # Errors
///
/// Propagates [`SimError`] from the machine.
pub fn run_on_disc(set: &TaskSet, horizon: u64) -> Result<SimOutcome, SimError> {
    run_on_disc_with_schedule(set, horizon, None)
}

/// Like [`run_on_disc`] but with an explicit scheduler partition (e.g.
/// from [`partition::schedule_for`](crate::partition::schedule_for)).
///
/// # Errors
///
/// Propagates [`SimError`] from the machine.
pub fn run_on_disc_with_schedule(
    set: &TaskSet,
    horizon: u64,
    schedule: Option<SchedulePolicy>,
) -> Result<SimOutcome, SimError> {
    run_on_disc_with_bus(
        set,
        horizon,
        schedule,
        MachineConfig::disc1(),
        Box::new(codegen::device_bus(set)),
    )
}

/// Like [`run_on_disc_with_schedule`] but with an explicit base machine
/// configuration (e.g. a [`BusFaultPolicy`](disc_core::BusFaultPolicy)
/// and ABI timeout) and an arbitrary external bus — typically a
/// `disc_faults::FaultInjector` wrapping [`codegen::device_bus`]. The
/// stream count is derived from the task set regardless of `cfg`.
///
/// # Errors
///
/// Propagates [`SimError`] from the machine.
pub fn run_on_disc_with_bus(
    set: &TaskSet,
    horizon: u64,
    schedule: Option<SchedulePolicy>,
    cfg: MachineConfig,
    bus: Box<dyn disc_core::DataBus>,
) -> Result<SimOutcome, SimError> {
    let program = codegen::disc_program(set);
    let streams = set.tasks.len() + 1;
    let mut cfg = cfg.with_streams(streams);
    if let Some(s) = schedule {
        cfg = cfg.with_schedule(s);
    }
    let mut machine = Machine::with_bus(cfg, &program, bus);
    machine.set_idle_exit(false);
    drive(DiscTarget(machine), set, horizon)
}

/// Runs the task set on the conventional baseline machine (all handlers
/// share the single context; interrupts pay the context-switch cost).
///
/// # Errors
///
/// Propagates [`SimError`] from the machine.
pub fn run_on_baseline(set: &TaskSet, horizon: u64) -> Result<SimOutcome, SimError> {
    let program = codegen::baseline_program(set);
    let bus = codegen::device_bus(set);
    let machine = BaselineMachine::with_bus(BaselineConfig::default(), &program, Box::new(bus));
    drive(BaselineTarget(machine), set, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Task;

    #[test]
    fn single_light_task_meets_every_deadline_on_disc() {
        let set = TaskSet::new(vec![Task::new("t", 500, 250).with_body(30)]);
        let out = run_on_disc(&set, 20_000).unwrap();
        let t = &out.tasks[0];
        assert!(t.activations >= 39);
        assert_eq!(
            t.misses,
            0,
            "responses: {:?}",
            &t.responses[..4.min(t.responses.len())]
        );
        assert!(t.completions >= t.activations - 1);
        assert!(t.max_response <= 250);
        assert!(out.background_retired > 5_000, "background kept running");
    }

    #[test]
    fn disc_outcome_attribution_balances_under_rt_workload() {
        // The interrupt-driven RT harness exercises vectors, external
        // I/O and scheduler reallocation together; the per-stream cycle
        // attribution must still account for every elapsed cycle.
        let set = TaskSet::new(vec![
            Task::new("fast", 400, 300).with_body(20).with_io(1, 8),
            Task::new("slow", 900, 800).with_body(60),
        ]);
        let out = run_on_disc(&set, 20_000).unwrap();
        if let Err(violations) = out.stats.attribution.check(out.stats.cycles) {
            panic!("attribution imbalance: {}", violations.join("; "));
        }
        // The harness keeps every stream busy enough that some cycles
        // must land outside plain issue for at least one stream.
        let issued: u64 = out.stats.attribution.issue.iter().sum();
        assert!(issued > 0 && issued < out.stats.cycles * out.stats.attribution.streams() as u64);
    }

    #[test]
    fn baseline_pays_context_switch_latency() {
        let set = TaskSet::new(vec![Task::new("t", 800, 700).with_body(10)]);
        let disc = run_on_disc(&set, 20_000).unwrap();
        let base = run_on_baseline(&set, 20_000).unwrap();
        assert!(base.tasks[0].completions > 10);
        // The hardware-measured delivery latency exposes the context-save
        // cost directly; end-to-end response times are closer because the
        // DISC handler shares slots with the background stream while the
        // baseline handler preempts it outright.
        let disc_lat = disc.max_irq_latency.unwrap();
        let base_lat = base.max_irq_latency.unwrap();
        assert!(disc_lat <= 8, "DISC latency {disc_lat}");
        assert!(
            base_lat >= 16,
            "baseline latency must include the context save, got {base_lat}"
        );
        assert!(
            base.tasks[0].mean_response > disc.tasks[0].mean_response,
            "baseline {} vs disc {}",
            base.tasks[0].mean_response,
            disc.tasks[0].mean_response
        );
    }

    #[test]
    fn overload_misses_deadlines() {
        // WCET ≈ period: the task cannot keep up with a tight deadline.
        let set = TaskSet::new(vec![Task::new("hog", 300, 120).with_body(200)]);
        let out = run_on_disc(&set, 30_000).unwrap();
        assert!(out.tasks[0].misses > 0, "overload must miss");
    }

    #[test]
    fn three_tasks_with_io_run_concurrently_on_disc() {
        let set = TaskSet::new(vec![
            Task::new("fast", 600, 400).with_body(20).with_io(1, 15),
            Task::new("mid", 1000, 800).with_body(60),
            Task::new("slow", 2200, 2000).with_body(100).with_io(2, 40),
        ]);
        let out = run_on_disc(&set, 60_000).unwrap();
        for t in &out.tasks {
            assert!(t.completions > 10, "{} completed {}", t.name, t.completions);
            assert_eq!(t.misses, 0, "{} missed (max {})", t.name, t.max_response);
        }
    }

    #[test]
    fn response_percentiles_are_ordered() {
        let set = TaskSet::new(vec![Task::new("t", 600, 550).with_body(25)]);
        let out = run_on_disc(&set, 30_000).unwrap();
        let t = &out.tasks[0];
        let p50 = t.response_percentile(50).unwrap();
        let p99 = t.response_percentile(99).unwrap();
        assert!(p50 <= p99);
        assert!(p99 <= t.max_response);
    }

    #[test]
    fn sporadic_arrivals_are_poisson_like_and_reproducible() {
        // Long mean gap + tiny handler keep interrupt coalescing (a real
        // property of one IR bit per source) rare.
        let set = TaskSet::new(vec![Task::new("s", 2000, 1800).with_body(5).sporadic()]);
        let a = run_on_disc(&set, 120_000).unwrap();
        let b = run_on_disc(&set, 120_000).unwrap();
        assert_eq!(
            a.tasks[0].activations, b.tasks[0].activations,
            "deterministic stimulus"
        );
        // ~60 expected arrivals; Poisson spread allows a generous band.
        let acts = a.tasks[0].activations;
        assert!((35..=90).contains(&acts), "got {acts} arrivals");
        // Bursty back-to-back arrivals coalesce on the single IR bit; with
        // these parameters that stays a small fraction.
        assert!(
            a.tasks[0].misses <= acts / 5,
            "misses {} of {acts}",
            a.tasks[0].misses
        );
        assert!(a.tasks[0].completions >= acts - a.tasks[0].misses);
    }

    #[test]
    fn sporadic_bursts_hurt_baseline_more() {
        // A sporadic high-rate task plus a periodic one: the baseline
        // serializes handlers behind context switches.
        let set = TaskSet::new(vec![
            Task::new("burst", 700, 650).with_body(40).sporadic(),
            Task::new("steady", 1100, 1000).with_body(60),
        ]);
        let disc = run_on_disc(&set, 80_000).unwrap();
        let base = run_on_baseline(&set, 80_000).unwrap();
        // The steady task rides shotgun: on DISC it keeps its own stream,
        // on the baseline it queues behind burst handlers and context
        // switches, so its deadline record and worst response degrade.
        let (disc_steady, base_steady) = (&disc.tasks[1], &base.tasks[1]);
        assert!(disc_steady.misses <= base_steady.misses);
        assert!(disc_steady.max_response <= base_steady.max_response);
        assert!(disc.background_retired > base.background_retired);
    }

    #[test]
    fn partitioned_schedule_still_meets_deadlines() {
        let set = TaskSet::new(vec![
            Task::new("a", 700, 500).with_body(40),
            Task::new("b", 1300, 1000).with_body(80),
        ]);
        let schedule = crate::partition::schedule_for(&set);
        let out = run_on_disc_with_schedule(&set, 40_000, Some(schedule)).unwrap();
        assert_eq!(out.total_misses(), 0);
    }
}
