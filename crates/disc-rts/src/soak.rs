//! Real-time isolation soak harness.
//!
//! The paper's central robustness claim is *containment*: a stream stuck
//! on a misbehaving peripheral loses only its own throughput — every
//! other stream keeps its pipeline share and its deadlines. This module
//! tests that claim mechanically, at campaign scale: many seeded runs of
//! a real-time workload, each with a randomly-generated (but fully
//! deterministic) fault plan aimed at exactly one *victim* task, each
//! checked against isolation invariants derived from a fault-free
//! reference run of the same workload.
//!
//! Every run is classified — [`RunVerdict::Clean`], a list of invariant
//! [`RunVerdict::Violations`], or a [`RunVerdict::SimFault`] — and a run
//! in which the planned faults demonstrably never fired is itself a
//! violation: a soak that passes because the fault missed proves nothing.
//!
//! Campaign seeds replay byte for byte ([`run_one`] with the same seed and
//! config is a pure function), so a failing seed from CI is a one-line
//! local repro.

use disc_core::{BusFaultPolicy, MachineConfig, SimError, SkipStats, StepMode};
use disc_faults::{AddrRange, FaultInjector, FaultLog, FaultPlan, FaultWindow};
use disc_obs::{stats_json, Json, RunReport};
use disc_par::{Journal, ResumeStats};
use disc_snap::{splitmix64, SnapError, SnapReader, SnapWriter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::codegen;
use crate::harness::{run_on_disc_with_bus, SimOutcome};
use crate::task::{Task, TaskSet};

/// Parameters of a soak campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// Seed of the first run; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Number of seeded runs.
    pub runs: u64,
    /// Cycles simulated per run.
    pub horizon: u64,
    /// ABI transaction timeout configured on the machine (the recovery
    /// bound the invariants lean on).
    pub abi_timeout: u64,
    /// Allowed fractional throughput loss for non-victim tasks and the
    /// background stream, relative to the fault-free reference.
    pub tolerance: f64,
    /// Additional deadline misses tolerated per non-victim task (bounded
    /// bus coupling can legitimately cost a miss at the margin).
    pub miss_slack: u64,
    /// Allowed growth of the worst observed interrupt latency over the
    /// reference, beyond one ABI timeout.
    pub irq_latency_slack: u64,
    /// Stepping mode every machine in the campaign (runs and reference)
    /// is configured with. The harness drives soak machines cycle by
    /// cycle, so either mode must produce the identical campaign — a
    /// property the equivalence tests assert.
    pub step_mode: StepMode,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            base_seed: 0xd15c_50ac,
            runs: 100,
            horizon: 30_000,
            abi_timeout: 64,
            tolerance: 0.4,
            miss_slack: 2,
            irq_latency_slack: 128,
            step_mode: StepMode::CycleByCycle,
        }
    }
}

impl SoakConfig {
    /// Machine configuration every soak run (and the reference) uses.
    pub fn machine_config(&self) -> MachineConfig {
        MachineConfig::disc1()
            .with_bus_fault(BusFaultPolicy::Fault)
            .with_abi_timeout(self.abi_timeout)
            .with_step_mode(self.step_mode)
    }
}

/// Classification of one soak run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunVerdict {
    /// All invariants held.
    Clean,
    /// One or more invariant violations (human-readable, one per entry).
    Violations(Vec<String>),
    /// The simulator itself returned an error.
    SimFault(SimError),
}

/// Outcome of a single seeded fault run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakRun {
    /// The run's seed (replays the run exactly).
    pub seed: u64,
    /// Index of the faulted task.
    pub victim: usize,
    /// Invariant classification.
    pub verdict: RunVerdict,
    /// What the injector actually delivered.
    pub fault_log: FaultLog,
    /// Bus-error interrupts the machine recorded, all streams.
    pub bus_faults: u64,
    /// ABI transactions aborted by timeout.
    pub abi_timeouts: u64,
    /// Cycles the run simulated (zero when the simulator faulted).
    pub cycles: u64,
    /// Event-skip accounting for the run (all zero in cycle-by-cycle
    /// mode).
    pub skip_stats: SkipStats,
}

impl SoakRun {
    /// `true` when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.verdict == RunVerdict::Clean
    }

    /// Serializes the run for the resumable-campaign journal
    /// ([`run_campaign_resumable`]); [`SoakRun::load_bytes`] inverts it.
    pub fn save_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.seed);
        w.put_usize(self.victim);
        match &self.verdict {
            RunVerdict::Clean => w.put_u8(0),
            RunVerdict::Violations(msgs) => {
                w.put_u8(1);
                w.put_usize(msgs.len());
                for msg in msgs {
                    w.put_str(msg);
                }
            }
            RunVerdict::SimFault(e) => {
                w.put_u8(2);
                match *e {
                    SimError::Decode { stream, pc, word } => {
                        w.put_u8(0);
                        w.put_usize(stream);
                        w.put_u16(pc);
                        w.put_u32(word);
                    }
                    SimError::UnhandledStackFault { stream } => {
                        w.put_u8(1);
                        w.put_usize(stream);
                    }
                    SimError::UnhandledBusFault { stream, addr } => {
                        w.put_u8(2);
                        w.put_usize(stream);
                        w.put_u16(addr);
                    }
                }
            }
        }
        for (_, count) in self.fault_log.counters() {
            w.put_u64(count);
        }
        w.put_u64(self.bus_faults);
        w.put_u64(self.abi_timeouts);
        w.put_u64(self.cycles);
        w.put_u64(self.skip_stats.skips);
        w.put_u64(self.skip_stats.cycles_skipped);
        w.into_bytes()
    }

    /// Deserializes a journalled run. Errors mean the payload is not a
    /// [`SoakRun::save_bytes`] image (version drift or corruption); the
    /// resumable campaign treats that shard as never having run.
    pub fn load_bytes(bytes: &[u8]) -> Result<SoakRun, SnapError> {
        let mut r = SnapReader::new(bytes);
        let seed = r.get_u64()?;
        let victim = r.get_usize()?;
        let verdict = match r.get_u8()? {
            0 => RunVerdict::Clean,
            1 => {
                let n = r.get_usize()?;
                let mut msgs = Vec::with_capacity(n);
                for _ in 0..n {
                    msgs.push(r.get_str()?.to_string());
                }
                RunVerdict::Violations(msgs)
            }
            2 => RunVerdict::SimFault(match r.get_u8()? {
                0 => SimError::Decode {
                    stream: r.get_usize()?,
                    pc: r.get_u16()?,
                    word: r.get_u32()?,
                },
                1 => SimError::UnhandledStackFault {
                    stream: r.get_usize()?,
                },
                2 => SimError::UnhandledBusFault {
                    stream: r.get_usize()?,
                    addr: r.get_u16()?,
                },
                other => return Err(SnapError::Corrupt(format!("unknown SimError tag {other}"))),
            }),
            other => return Err(SnapError::Corrupt(format!("unknown verdict tag {other}"))),
        };
        let fault_log = FaultLog {
            inflated_probes: r.get_u64()?,
            stuck_probes: r.get_u64()?,
            blackouts: r.get_u64()?,
            bit_flips: r.get_u64()?,
            dropped_irqs: r.get_u64()?,
            spurious_irqs: r.get_u64()?,
        };
        let run = SoakRun {
            seed,
            victim,
            verdict,
            fault_log,
            bus_faults: r.get_u64()?,
            abi_timeouts: r.get_u64()?,
            cycles: r.get_u64()?,
            skip_stats: SkipStats {
                skips: r.get_u64()?,
                cycles_skipped: r.get_u64()?,
            },
        };
        r.finish()?;
        Ok(run)
    }
}

/// Aggregate result of [`run_campaign`].
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Per-run results in seed order.
    pub runs: Vec<SoakRun>,
    /// The fault-free reference outcome the invariants compare against.
    pub reference: SimOutcome,
}

impl SoakReport {
    /// Runs in which every invariant held.
    pub fn clean(&self) -> usize {
        self.runs.iter().filter(|r| r.is_clean()).count()
    }

    /// Runs with at least one violation or simulator fault.
    pub fn failed(&self) -> Vec<&SoakRun> {
        self.runs.iter().filter(|r| !r.is_clean()).collect()
    }

    /// `true` when the whole campaign is clean.
    pub fn passed(&self) -> bool {
        self.runs.iter().all(|r| r.is_clean())
    }

    /// Faults delivered across the campaign.
    pub fn faults_delivered(&self) -> u64 {
        self.runs.iter().map(|r| r.fault_log.total()).sum()
    }

    /// Total cycles simulated across the campaign: the fault-free
    /// reference run plus every seeded fault run.
    pub fn total_cycles(&self) -> u64 {
        self.reference.cycles + self.runs.iter().map(|r| r.cycles).sum::<u64>()
    }

    /// Event-skip accounting aggregated over the reference run and every
    /// seeded fault run.
    pub fn total_skip_stats(&self) -> SkipStats {
        let mut total = self.reference.skip_stats;
        for run in &self.runs {
            total.skips += run.skip_stats.skips;
            total.cycles_skipped += run.skip_stats.cycles_skipped;
        }
        total
    }

    /// [`SoakReport::run_report`] with the measured wall-clock seconds
    /// the campaign took, from which the timing section's
    /// `sim_cycles_per_sec` (total campaign cycles over wall time) is
    /// derived.
    pub fn run_report_timed(&self, cfg: &SoakConfig, wall_secs: Option<f64>) -> RunReport {
        let throughput = wall_secs
            .filter(|&s| s > 0.0)
            .map(|s| self.total_cycles() as f64 / s);
        self.run_report(cfg)
            .with_timing(cfg.step_mode, throughput, &self.total_skip_stats())
    }

    /// Builds the campaign's schema-versioned [`RunReport`]: campaign
    /// parameters and verdict, aggregated fault-injection counters, the
    /// per-run failure list, and the fault-free reference outcome with
    /// its full stats (including the per-stream cycle attribution) plus
    /// the fingerprinted machine configuration every run used.
    pub fn run_report(&self, cfg: &SoakConfig) -> RunReport {
        let machine_cfg = cfg
            .machine_config()
            .with_streams(self.reference.tasks.len() + 1);
        let mut fault_totals = FaultLog::default();
        for run in &self.runs {
            fault_totals.inflated_probes += run.fault_log.inflated_probes;
            fault_totals.stuck_probes += run.fault_log.stuck_probes;
            fault_totals.blackouts += run.fault_log.blackouts;
            fault_totals.bit_flips += run.fault_log.bit_flips;
            fault_totals.dropped_irqs += run.fault_log.dropped_irqs;
            fault_totals.spurious_irqs += run.fault_log.spurious_irqs;
        }
        let failures = Json::Arr(
            self.failed()
                .iter()
                .map(|run| {
                    let detail = match &run.verdict {
                        RunVerdict::Violations(v) => Json::Arr(v.iter().map(Json::str).collect()),
                        RunVerdict::SimFault(e) => {
                            Json::Arr(vec![Json::str(format!("simulator fault: {e}"))])
                        }
                        RunVerdict::Clean => unreachable!("failed() filters clean runs"),
                    };
                    Json::obj([
                        ("seed", Json::U64(run.seed)),
                        ("victim", Json::U64(run.victim as u64)),
                        ("violations", detail),
                    ])
                })
                .collect(),
        );
        RunReport::new("soak")
            .section(
                "campaign",
                Json::obj([
                    ("base_seed", Json::U64(cfg.base_seed)),
                    ("runs", Json::U64(cfg.runs)),
                    ("horizon", Json::U64(cfg.horizon)),
                    ("abi_timeout", Json::U64(cfg.abi_timeout)),
                    ("clean", Json::U64(self.clean() as u64)),
                    ("passed", Json::Bool(self.passed())),
                    ("faults_delivered", Json::U64(self.faults_delivered())),
                    (
                        "bus_faults",
                        Json::U64(self.runs.iter().map(|r| r.bus_faults).sum()),
                    ),
                    (
                        "abi_timeouts",
                        Json::U64(self.runs.iter().map(|r| r.abi_timeouts).sum()),
                    ),
                ]),
            )
            .section(
                "fault_counters",
                Json::obj(
                    fault_totals
                        .counters()
                        .into_iter()
                        .map(|(name, v)| (name, Json::U64(v))),
                ),
            )
            .section("failures", failures)
            .section(
                "reference",
                Json::obj([
                    ("cycles", Json::U64(self.reference.cycles)),
                    ("utilization", Json::F64(self.reference.utilization)),
                    (
                        "max_irq_latency",
                        self.reference.max_irq_latency.map_or(Json::Null, Json::U64),
                    ),
                    (
                        "background_retired",
                        Json::U64(self.reference.background_retired),
                    ),
                    ("stats", stats_json(&self.reference.stats)),
                ]),
            )
            .with_config(&machine_cfg)
    }

    /// Multi-line human-readable summary (one line per failed run).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "soak: {}/{} runs clean, {} faults delivered, {} bus-error irqs, {} abi timeouts\n",
            self.clean(),
            self.runs.len(),
            self.faults_delivered(),
            self.runs.iter().map(|r| r.bus_faults).sum::<u64>(),
            self.runs.iter().map(|r| r.abi_timeouts).sum::<u64>(),
        );
        for run in self.failed() {
            match &run.verdict {
                RunVerdict::Violations(v) => {
                    for msg in v {
                        s.push_str(&format!(
                            "  seed {:#x} victim {}: {msg}\n",
                            run.seed, run.victim
                        ));
                    }
                }
                RunVerdict::SimFault(e) => {
                    s.push_str(&format!(
                        "  seed {:#x} victim {}: simulator fault: {e}\n",
                        run.seed, run.victim
                    ));
                }
                RunVerdict::Clean => unreachable!("failed() filters clean runs"),
            }
        }
        s
    }
}

/// The standard soak workload: three periodic control tasks, each with
/// external I/O on its own device window, plus the background stream.
/// Deadlines carry enough slack that bounded bus interference (one ABI
/// timeout per coupling episode) cannot push a healthy task over.
pub fn workload() -> TaskSet {
    TaskSet::new(vec![
        Task::new("ctl", 900, 800).with_body(30).with_io(2, 12),
        Task::new("log", 1_500, 1_400).with_body(60).with_io(1, 20),
        Task::new("ui", 2_500, 2_300).with_body(100).with_io(1, 8),
    ])
}

/// Generates the deterministic fault plan for one seeded run: always one
/// availability fault (stuck or blackout window) on the victim's device,
/// plus optionally latency inflation, read bit flips, and spurious
/// activations of the victim's stream.
pub fn fault_plan_for(seed: u64, victim: usize, horizon: u64) -> FaultPlan {
    let mut rng = SmallRng::seed_from_u64(seed);
    let device = AddrRange::new(
        codegen::device_addr(victim),
        codegen::device_addr(victim) + 15,
    );
    let h = horizon as f64;

    // One availability fault, long enough that every task period fits
    // inside it — the fault cannot miss the victim's access pattern.
    let start = (h * rng.gen_range(10..=40) as f64 / 100.0) as u64;
    let len = (h * rng.gen_range(12..=30) as f64 / 100.0) as u64;
    let window = FaultWindow::between(start, start + len);
    let mut plan = FaultPlan::new(seed);
    plan = if rng.gen_bool(0.5) {
        plan.stuck(device, window)
    } else {
        plan.blackout(device, window)
    };

    if rng.gen_bool(0.5) {
        plan = plan.latency_add(device, rng.gen_range(5..=40), FaultWindow::always());
    }
    if rng.gen_bool(0.5) {
        let mask = 1u16 << rng.gen_range(0..=15);
        plan = plan.bit_flip(
            device,
            mask,
            0.1 + 0.8 * rng.gen::<f64>(),
            FaultWindow::always(),
        );
    }
    if rng.gen_bool(0.4) {
        let interval = rng.gen_range(400..=2_000);
        plan = plan.spurious_irq(
            victim + 1,
            codegen::DISC_TASK_BIT,
            interval,
            FaultWindow::between(0, horizon),
        );
    }
    plan
}

/// Checks the isolation invariants of one faulted outcome against the
/// fault-free reference. Returns one message per violation.
pub fn check_invariants(
    cfg: &SoakConfig,
    set: &TaskSet,
    victim: usize,
    reference: &SimOutcome,
    outcome: &SimOutcome,
    log: &FaultLog,
) -> Vec<String> {
    let mut violations = Vec::new();
    let keep = 1.0 - cfg.tolerance;

    for (i, task) in set.tasks.iter().enumerate() {
        if i == victim {
            continue;
        }
        let (got, want) = (
            outcome.tasks[i].completions,
            (reference.tasks[i].completions as f64 * keep) as u64,
        );
        if got < want {
            violations.push(format!(
                "task {} lost throughput: {got} completions vs {} in reference (floor {want})",
                task.name, reference.tasks[i].completions
            ));
        }
        let (got, allowed) = (
            outcome.tasks[i].misses,
            reference.tasks[i].misses + cfg.miss_slack,
        );
        if got > allowed {
            violations.push(format!(
                "task {} missed deadlines: {got} vs {} in reference (+{} slack)",
                task.name, reference.tasks[i].misses, cfg.miss_slack
            ));
        }
    }

    let floor = (reference.background_retired as f64 * keep) as u64;
    if outcome.background_retired < floor {
        violations.push(format!(
            "background starved: {} retired vs {} in reference (floor {floor})",
            outcome.background_retired, reference.background_retired
        ));
    }

    let bound = reference.max_irq_latency.unwrap_or(0) + cfg.abi_timeout + cfg.irq_latency_slack;
    if let Some(lat) = outcome.max_irq_latency {
        if lat > bound {
            violations.push(format!(
                "irq latency blew its bound: {lat} vs {:?} in reference (bound {bound})",
                reference.max_irq_latency
            ));
        }
    }

    if outcome.tasks[victim].completions == 0 {
        violations.push(format!(
            "victim {} starved outright: windowed faults must not erase it",
            set.tasks[victim].name
        ));
    }

    // Fault evidence: the injector delivered something, the machine saw
    // it, and it landed only on the victim's stream.
    if log.total() == 0 {
        violations.push("fault plan never fired: the run proves nothing".into());
    }
    if outcome.stats.bus_faults_total() == 0 {
        violations.push("no bus-error interrupt recorded despite an availability fault".into());
    }
    for (s, &n) in outcome.stats.bus_faults.iter().enumerate() {
        if s != victim + 1 && n != 0 {
            violations.push(format!(
                "bus faults leaked to stream {s}: {n} recorded (victim stream is {})",
                victim + 1
            ));
        }
    }
    violations
}

/// Executes one seeded fault run and classifies it. Pure function of
/// `(cfg, seed, reference)` — a failing seed replays exactly.
pub fn run_one(cfg: &SoakConfig, set: &TaskSet, seed: u64, reference: &SimOutcome) -> SoakRun {
    let victim = (seed % set.tasks.len() as u64) as usize;
    let plan = fault_plan_for(seed, victim, cfg.horizon);
    let injector = FaultInjector::new(plan, Box::new(codegen::device_bus(set)));
    let log_handle = injector.log_handle();
    let result = run_on_disc_with_bus(
        set,
        cfg.horizon,
        None,
        cfg.machine_config(),
        Box::new(injector),
    );
    let fault_log = log_handle.snapshot();
    match result {
        Err(e) => SoakRun {
            seed,
            victim,
            verdict: RunVerdict::SimFault(e),
            fault_log,
            bus_faults: 0,
            abi_timeouts: 0,
            cycles: 0,
            skip_stats: SkipStats::default(),
        },
        Ok(outcome) => {
            let violations = check_invariants(cfg, set, victim, reference, &outcome, &fault_log);
            SoakRun {
                seed,
                victim,
                verdict: if violations.is_empty() {
                    RunVerdict::Clean
                } else {
                    RunVerdict::Violations(violations)
                },
                fault_log,
                bus_faults: outcome.stats.bus_faults_total(),
                abi_timeouts: outcome.stats.abi_timeouts,
                cycles: outcome.stats.cycles,
                skip_stats: outcome.skip_stats,
            }
        }
    }
}

/// Runs a full campaign: one fault-free reference run, then `cfg.runs`
/// seeded fault runs fanned across worker threads with
/// [`disc_par::par_map`] (cap with `DISC_JOBS`). Results are in seed
/// order regardless of scheduling.
///
/// # Panics
///
/// Panics if the fault-free reference run itself fails — the workload is
/// broken, and no campaign result would be meaningful.
pub fn run_campaign(cfg: &SoakConfig) -> SoakReport {
    let set = workload();
    let reference = run_on_disc_with_bus(
        &set,
        cfg.horizon,
        None,
        cfg.machine_config(),
        Box::new(codegen::device_bus(&set)),
    )
    .expect("fault-free reference run must succeed");
    let seeds: Vec<u64> = (0..cfg.runs).map(|i| cfg.base_seed + i).collect();
    let runs = disc_par::par_map(seeds, |seed| run_one(cfg, &set, seed, &reference));
    SoakReport { runs, reference }
}

/// Fingerprint identifying a campaign for checkpoint journals: every
/// [`SoakConfig`] field (including the step mode, whose skip accounting
/// lands in each [`SoakRun`]) plus the machine-config fingerprint, so a
/// journal can never resume into a campaign it was not recorded under.
pub fn campaign_fingerprint(cfg: &SoakConfig) -> u64 {
    let machine = cfg
        .machine_config()
        .with_streams(workload().tasks.len() + 1);
    let mut h = splitmix64(0x5eed_d15c ^ cfg.base_seed);
    h = splitmix64(h ^ cfg.runs);
    h = splitmix64(h ^ cfg.horizon);
    h = splitmix64(h ^ cfg.abi_timeout);
    h = splitmix64(h ^ cfg.tolerance.to_bits());
    h = splitmix64(h ^ cfg.miss_slack);
    h = splitmix64(h ^ cfg.irq_latency_slack);
    h = splitmix64(
        h ^ match cfg.step_mode {
            StepMode::CycleByCycle => 0,
            StepMode::EventSkip => 1,
        },
    );
    splitmix64(h ^ machine.fingerprint())
}

/// [`run_campaign`] with crash resumption: each completed run is
/// appended to `journal` as it finishes, and runs already journalled
/// (from a previous, possibly `kill -9`'d, invocation) are replayed
/// from disk instead of re-simulated. The fault-free reference run is
/// cheap and pure, so it is recomputed rather than journalled.
///
/// The journal must have been opened against [`campaign_fingerprint`]
/// of the same `cfg` — [`Journal::resume`] enforces that — which makes
/// the final [`SoakReport`] identical to an uninterrupted
/// [`run_campaign`] no matter where the previous invocation died.
///
/// # Panics
///
/// Panics if the fault-free reference run fails or a journal append
/// fails.
pub fn run_campaign_resumable(cfg: &SoakConfig, journal: &Journal) -> (SoakReport, ResumeStats) {
    let set = workload();
    let reference = run_on_disc_with_bus(
        &set,
        cfg.horizon,
        None,
        cfg.machine_config(),
        Box::new(codegen::device_bus(&set)),
    )
    .expect("fault-free reference run must succeed");
    let seeds: Vec<u64> = (0..cfg.runs).map(|i| cfg.base_seed + i).collect();
    let (runs, resume) = disc_par::par_map_resumable(
        seeds,
        journal,
        |seed| run_one(cfg, &set, seed, &reference),
        SoakRun::save_bytes,
        |bytes| SoakRun::load_bytes(bytes).ok(),
    );
    (SoakReport { runs, reference }, resume)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(runs: u64) -> SoakConfig {
        SoakConfig {
            runs,
            horizon: 20_000,
            ..SoakConfig::default()
        }
    }

    #[test]
    fn small_campaign_is_clean_and_injects_faults() {
        let report = run_campaign(&quick_cfg(6));
        assert!(report.passed(), "{}", report.summary());
        assert!(report.faults_delivered() > 0);
        assert!(report.runs.iter().all(|r| r.bus_faults > 0));
        assert!(report.summary().contains("6/6 runs clean"));
    }

    #[test]
    fn run_report_captures_campaign_and_reference() {
        let cfg = quick_cfg(2);
        let report = run_campaign(&cfg);
        let text = report.run_report(&cfg).render();
        assert!(text.contains("\"schema\": \"disc-run-report/v3\""));
        assert!(text.contains("\"tool\": \"soak\""));
        assert!(text.contains("\"faults_delivered\""));
        assert!(text.contains("\"inflated_probes\""));
        assert!(text.contains("\"attribution\""));
        assert!(text.contains("\"fingerprint\""));
        // Reference run attribution must balance against its cycles.
        let stats = &report.reference.stats;
        assert!(stats.attribution.check(stats.cycles).is_ok());
    }

    #[test]
    fn runs_replay_byte_for_byte() {
        let cfg = quick_cfg(1);
        let set = workload();
        let reference = run_on_disc_with_bus(
            &set,
            cfg.horizon,
            None,
            cfg.machine_config(),
            Box::new(codegen::device_bus(&set)),
        )
        .unwrap();
        let a = run_one(&cfg, &set, cfg.base_seed + 3, &reference);
        let b = run_one(&cfg, &set, cfg.base_seed + 3, &reference);
        assert_eq!(a, b);
    }

    fn tmp_journal(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("disc-soak-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn soak_run_serialization_roundtrips_every_verdict() {
        let base = SoakRun {
            seed: 0xabcd,
            victim: 2,
            verdict: RunVerdict::Clean,
            fault_log: FaultLog {
                inflated_probes: 1,
                stuck_probes: 2,
                blackouts: 3,
                bit_flips: 4,
                dropped_irqs: 5,
                spurious_irqs: 6,
            },
            bus_faults: 7,
            abi_timeouts: 8,
            cycles: 20_000,
            skip_stats: SkipStats {
                skips: 9,
                cycles_skipped: 1_000,
            },
        };
        let verdicts = [
            RunVerdict::Clean,
            RunVerdict::Violations(vec!["task ui lost throughput".into(), "leaked".into()]),
            RunVerdict::SimFault(SimError::Decode {
                stream: 1,
                pc: 0x30,
                word: 0xffffff,
            }),
            RunVerdict::SimFault(SimError::UnhandledStackFault { stream: 3 }),
            RunVerdict::SimFault(SimError::UnhandledBusFault {
                stream: 2,
                addr: 0x8004,
            }),
        ];
        for verdict in verdicts {
            let run = SoakRun {
                verdict,
                ..base.clone()
            };
            assert_eq!(SoakRun::load_bytes(&run.save_bytes()).unwrap(), run);
        }
        // Trailing garbage is corruption, not padding.
        let mut bytes = base.save_bytes();
        bytes.push(0);
        assert!(SoakRun::load_bytes(&bytes).is_err());
    }

    #[test]
    fn interrupted_campaign_resumes_to_the_uninterrupted_report() {
        let cfg = quick_cfg(4);
        let baseline = run_campaign(&cfg);

        // Simulate a campaign killed after two shards: journal exactly
        // the runs for seeds 0 and 2, then resume.
        let path = tmp_journal("resume");
        let fpr = campaign_fingerprint(&cfg);
        let journal = Journal::create(&path, fpr).unwrap();
        journal.record(0, &baseline.runs[0].save_bytes()).unwrap();
        journal.record(2, &baseline.runs[2].save_bytes()).unwrap();
        drop(journal);

        let journal = Journal::resume(&path, fpr).unwrap();
        let (resumed, stats) = run_campaign_resumable(&cfg, &journal);
        assert_eq!(stats.total, 4);
        assert_eq!(stats.loaded, 2);
        assert_eq!(stats.executed, 2);
        assert_eq!(resumed, baseline);
        // The report JSON is identical too, resume section aside.
        assert_eq!(
            resumed.run_report(&cfg).render(),
            baseline.run_report(&cfg).render()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn campaign_fingerprint_tracks_every_knob() {
        let cfg = quick_cfg(4);
        let base = campaign_fingerprint(&cfg);
        let variants = [
            SoakConfig {
                runs: 5,
                ..cfg.clone()
            },
            SoakConfig {
                horizon: cfg.horizon + 1,
                ..cfg.clone()
            },
            SoakConfig {
                base_seed: cfg.base_seed + 1,
                ..cfg.clone()
            },
            SoakConfig {
                step_mode: StepMode::EventSkip,
                ..cfg.clone()
            },
            SoakConfig {
                tolerance: cfg.tolerance / 2.0,
                ..cfg.clone()
            },
        ];
        for variant in &variants {
            assert_ne!(base, campaign_fingerprint(variant), "{variant:?}");
        }
        // A journal from a differently configured campaign is refused.
        let path = tmp_journal("mismatch");
        Journal::create(&path, base).unwrap();
        assert!(Journal::resume(&path, campaign_fingerprint(&variants[0])).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn plans_vary_with_seed_and_always_include_availability_fault() {
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..32 {
            let plan = fault_plan_for(seed, (seed % 3) as usize, 30_000);
            assert!(!plan.is_empty());
            assert!(
                plan.faults().iter().any(|f| matches!(
                    f.kind,
                    disc_faults::FaultKind::Stuck | disc_faults::FaultKind::Blackout
                )),
                "seed {seed} lacks an availability fault"
            );
            distinct.insert(plan.faults().len());
        }
        assert!(distinct.len() > 1, "plans do vary across seeds");
    }

    #[test]
    fn doctored_outcome_trips_the_invariants() {
        let cfg = quick_cfg(1);
        let set = workload();
        let reference = run_on_disc_with_bus(
            &set,
            cfg.horizon,
            None,
            cfg.machine_config(),
            Box::new(codegen::device_bus(&set)),
        )
        .unwrap();
        let victim = 0;
        let mut faked = reference.clone();
        // A convincing log so the evidence invariants stay quiet.
        let log = FaultLog {
            stuck_probes: 3,
            ..FaultLog::default()
        };
        faked.stats.bus_faults = vec![0; set.tasks.len() + 1];
        faked.stats.bus_faults[victim + 1] = 3;

        // Starve a non-victim task and the background stream.
        faked.tasks[1].completions = 0;
        faked.background_retired = 0;
        let violations = check_invariants(&cfg, &set, victim, &reference, &faked, &log);
        assert!(
            violations.iter().any(|v| v.contains("lost throughput")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("background starved")),
            "{violations:?}"
        );

        // A fault leaking onto the wrong stream is also a violation.
        faked.stats.bus_faults[2] = 1;
        let violations = check_invariants(&cfg, &set, victim, &reference, &faked, &log);
        assert!(
            violations.iter().any(|v| v.contains("leaked to stream 2")),
            "{violations:?}"
        );

        // And a run whose faults never fired proves nothing.
        let empty = FaultLog::default();
        let violations =
            check_invariants(&cfg, &set, victim, &reference, &reference.clone(), &empty);
        assert!(
            violations.iter().any(|v| v.contains("never fired")),
            "{violations:?}"
        );
    }
}
