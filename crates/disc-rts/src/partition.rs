//! Throughput partition allocation — the paper's "General scheduling".
//!
//! *"It has been shown [Coffman & Denning] that if the processor
//! throughput can be partitioned arbitrarily among the executing
//! processes, scheduling which is in some senses optimal can be achieved.
//! This throughput partitioning must be done with very low overhead."*
//! DISC1 partitions in 1/16 increments through the scheduler sequence
//! table; this module computes the share table for a task set.

use disc_core::{SchedulePolicy, SEQUENCE_SLOTS};

use crate::task::TaskSet;

/// Splits the 16 scheduler slots proportionally to `weights`, guaranteeing
/// every stream at least one slot (largest-remainder rounding).
///
/// # Panics
///
/// Panics if `weights` is empty, longer than 16 entries, or sums to zero.
pub fn allocate_shares(weights: &[f64]) -> Vec<u32> {
    assert!(!weights.is_empty(), "no streams to allocate");
    assert!(
        weights.len() <= SEQUENCE_SLOTS,
        "more streams than scheduler slots"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum above zero");
    let n = weights.len();
    let slots = SEQUENCE_SLOTS as u32;
    // Start with the one guaranteed slot each, distribute the rest by
    // largest remainder of the proportional entitlement.
    let mut shares = vec![1u32; n];
    let mut remaining = slots - n as u32;
    let mut entitlements: Vec<(usize, f64)> = weights
        .iter()
        .enumerate()
        .map(|(i, w)| (i, w / total * slots as f64 - 1.0))
        .collect();
    while remaining > 0 {
        entitlements.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let (idx, e) = entitlements[0];
        shares[idx] += 1;
        entitlements[0] = (idx, e - 1.0);
        remaining -= 1;
    }
    debug_assert_eq!(shares.iter().sum::<u32>(), slots);
    shares
}

/// Slot shares for a task set: index 0 is the background stream (slack),
/// then one entry per task. Allocation is **deadline-aware**: each task
/// receives the minimum share whose analytic response bound
/// ([`response_bound`]) fits its deadline; the background stream gets the
/// rest. When the demands exceed the table, task shares are scaled down
/// proportionally (the set is unschedulable and [`analyze`] will say so).
pub fn shares_for(set: &TaskSet) -> Vec<u32> {
    let slots = SEQUENCE_SLOTS as u64;
    let mut needs: Vec<u32> = set
        .tasks
        .iter()
        .map(|t| {
            let budget = t.deadline.saturating_sub(slots + 8).max(1);
            let need = (t.wcet_estimate() * slots).div_ceil(budget);
            need.clamp(1, slots - 1) as u32
        })
        .collect();
    let mut total: u32 = needs.iter().sum();
    // Keep at least one slot for the background stream.
    while total > SEQUENCE_SLOTS as u32 - 1 {
        let max = needs.iter().copied().max().unwrap();
        if max == 1 {
            break;
        }
        let idx = needs.iter().position(|&n| n == max).unwrap();
        needs[idx] -= 1;
        total -= 1;
    }
    let background = (SEQUENCE_SLOTS as u32).saturating_sub(total).max(1);
    let mut shares = vec![background];
    shares.extend(needs);
    // Rounding slack goes to the background.
    let sum: u32 = shares.iter().sum();
    shares[0] += (SEQUENCE_SLOTS as u32).saturating_sub(sum);
    shares
}

/// Builds the DISC scheduler policy for a task set: stream 0 (background)
/// receives the slack; each task stream receives a share proportional to
/// its utilization.
pub fn schedule_for(set: &TaskSet) -> SchedulePolicy {
    SchedulePolicy::partitioned(&shares_for(set))
}

/// Static schedulability verdict for one task under the utilization
/// partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskAnalysis {
    /// Task name.
    pub name: String,
    /// Scheduler slots the task's stream receives (of 16).
    pub slots: u32,
    /// Analytic worst-case response bound in cycles.
    pub bound: u64,
    /// The task's deadline.
    pub deadline: u64,
    /// `bound <= deadline`.
    pub schedulable: bool,
}

/// Analyzes every task of a set against the utilization partition: a task
/// is declared schedulable when its analytic response bound fits its
/// deadline. Conservative — the dynamic reallocation of idle slots only
/// improves on the bound.
pub fn analyze(set: &TaskSet) -> Vec<TaskAnalysis> {
    let shares = shares_for(set);
    set.tasks
        .iter()
        .zip(shares.iter().skip(1))
        .map(|(task, &slots)| {
            let bound = response_bound(task, slots);
            TaskAnalysis {
                name: task.name.clone(),
                slots,
                bound,
                deadline: task.deadline,
                schedulable: bound <= task.deadline,
            }
        })
        .collect()
}

/// Analytic worst-case response bound for a task running on a dedicated
/// stream holding `slots` of the 16 scheduler slots: the handler's WCET
/// stretched by the inverse share, plus vector delivery and one partition
/// round of jitter. Valid when the other streams stay busy (the bound is
/// conservative; dynamic reallocation only speeds things up).
pub fn response_bound(task: &crate::Task, slots: u32) -> u64 {
    assert!(
        (1..=SEQUENCE_SLOTS as u32).contains(&slots),
        "slots must be 1..=16"
    );
    let stretch = SEQUENCE_SLOTS as u64;
    task.wcet_estimate() * stretch / slots as u64 + stretch + 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Task;

    #[test]
    fn shares_sum_to_sixteen_and_respect_proportion() {
        let s = allocate_shares(&[3.0, 1.0]);
        assert_eq!(s.iter().sum::<u32>(), 16);
        assert_eq!(s, vec![12, 4]);
    }

    #[test]
    fn every_stream_gets_a_slot() {
        let s = allocate_shares(&[100.0, 0.0001, 0.0001, 0.0001]);
        assert_eq!(s.iter().sum::<u32>(), 16);
        assert!(s.iter().all(|&x| x >= 1));
        assert_eq!(s[0], 13);
    }

    #[test]
    fn schedule_for_covers_all_streams() {
        let set = crate::TaskSet::new(vec![
            Task::new("a", 200, 100).with_body(20),
            Task::new("b", 1000, 900).with_body(10),
        ]);
        let policy = schedule_for(&set);
        policy.validate(3);
        if let SchedulePolicy::Sequence(seq) = &policy {
            assert_eq!(seq.len(), SEQUENCE_SLOTS);
            for s in 0..3u8 {
                assert!(seq.contains(&s), "stream {s} owns no slot");
            }
        } else {
            panic!("expected a sequence policy");
        }
    }

    #[test]
    #[should_panic(expected = "more streams")]
    fn too_many_streams_rejected() {
        let _ = allocate_shares(&[1.0; 17]);
    }

    #[test]
    fn analyze_flags_infeasible_tasks() {
        let set = crate::TaskSet::new(vec![
            Task::new("easy", 5000, 4500).with_body(30),
            Task::new("impossible", 400, 60).with_body(80),
        ]);
        let report = analyze(&set);
        assert_eq!(report.len(), 2);
        assert!(report[0].schedulable, "{:?}", report[0]);
        assert!(!report[1].schedulable, "{:?}", report[1]);
    }

    #[test]
    fn analyze_schedulable_sets_run_clean() {
        let set = crate::TaskSet::new(vec![
            Task::new("a", 3000, 2800).with_body(40),
            Task::new("b", 6000, 5500).with_body(90),
        ]);
        let report = analyze(&set);
        assert!(report.iter().all(|t| t.schedulable), "{report:?}");
        let out = crate::harness::run_on_disc_with_schedule(&set, 60_000, Some(schedule_for(&set)))
            .unwrap();
        assert_eq!(out.total_misses(), 0, "analysis promised schedulability");
    }

    #[test]
    fn response_bound_holds_empirically() {
        use crate::harness::run_on_disc_with_schedule;
        use disc_core::SchedulePolicy;

        let task = Task::new("t", 2000, 1900).with_body(40);
        let set = crate::TaskSet::new(vec![task.clone()]);
        for slots in [4u32, 8, 12] {
            let schedule = SchedulePolicy::partitioned(&[16 - slots, slots]);
            let out = run_on_disc_with_schedule(&set, 40_000, Some(schedule)).unwrap();
            let bound = response_bound(&task, slots);
            assert!(
                out.tasks[0].max_response <= bound,
                "measured {} exceeds bound {bound} at {slots} slots",
                out.tasks[0].max_response
            );
        }
    }

    #[test]
    fn response_bound_scales_inversely_with_share() {
        let task = Task::new("t", 1000, 900).with_body(50);
        assert!(response_bound(&task, 2) > response_bound(&task, 8) * 3);
    }
}
