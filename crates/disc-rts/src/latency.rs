//! The interrupt-latency experiment (§4.1 of the paper).
//!
//! *"By dedicating a stream to a particular interrupt, we can achieve very
//! high figures of merit since the instructions will start execution
//! immediately."* The paper also notes the conventional latency figure is
//! ambiguous; here the metric is defined precisely: **cycles from the
//! interrupt line asserting to the first handler instruction fetching**,
//! including any context-save cost the architecture imposes.

use disc_baseline::{BaselineConfig, BaselineMachine};
use disc_core::{Machine, MachineConfig, SimError};
use disc_isa::Program;

/// Latency samples from DISC (dedicated-stream delivery) and the baseline
/// (context-switched delivery) under identical stimulus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyReport {
    /// DISC per-interrupt latencies in cycles.
    pub disc: Vec<u64>,
    /// Baseline per-interrupt latencies in cycles.
    pub baseline: Vec<u64>,
}

impl LatencyReport {
    fn summary(samples: &[u64]) -> (f64, u64) {
        if samples.is_empty() {
            return (0.0, 0);
        }
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        let max = samples.iter().copied().max().unwrap_or(0);
        (mean, max)
    }

    /// `(mean, worst)` DISC latency.
    pub fn disc_summary(&self) -> (f64, u64) {
        Self::summary(&self.disc)
    }

    /// `(mean, worst)` baseline latency.
    pub fn baseline_summary(&self) -> (f64, u64) {
        Self::summary(&self.baseline)
    }

    /// The `p`-th percentile (0..=100) of a latency sample set, using the
    /// nearest-rank method — the paper notes conventional latency figures
    /// are ambiguous; percentiles over a defined metric fix that.
    ///
    /// # Panics
    ///
    /// Panics if `p > 100`.
    pub fn percentile(samples: &[u64], p: u8) -> Option<u64> {
        assert!(p <= 100, "percentile out of range");
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = ((p as usize * sorted.len()).div_ceil(100)).max(1);
        Some(sorted[rank - 1])
    }

    /// `(p50, p99, max)` of the DISC samples.
    pub fn disc_percentiles(&self) -> (Option<u64>, Option<u64>, Option<u64>) {
        (
            Self::percentile(&self.disc, 50),
            Self::percentile(&self.disc, 99),
            self.disc.iter().copied().max(),
        )
    }

    /// `(p50, p99, max)` of the baseline samples.
    pub fn baseline_percentiles(&self) -> (Option<u64>, Option<u64>, Option<u64>) {
        (
            Self::percentile(&self.baseline, 50),
            Self::percentile(&self.baseline, 99),
            self.baseline.iter().copied().max(),
        )
    }
}

fn disc_program(busy_streams: usize) -> Program {
    let mut src = String::new();
    for s in 0..busy_streams {
        src.push_str(&format!(".stream {s}, work{s}\n"));
        src.push_str(&format!(
            "work{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    jmp work{s}\n"
        ));
    }
    // Stream 3 is the dormant interrupt server.
    src.push_str(".vector 3, 5, isr\n");
    src.push_str("isr:\n    lda r0, 0x40\n    addi r0, r0, 1\n    sta r0, 0x40\n    reti\n");
    Program::assemble(&src).expect("latency program assembles")
}

fn baseline_program() -> Program {
    Program::assemble(
        r#"
        .stream 0, work
        .vector 0, 5, isr
    work:
        addi r0, r0, 1
        addi r1, r1, 1
        jmp work
    isr:
        winc 2
        lda r0, 0x40
        addi r0, r0, 1
        sta r0, 0x40
        wdec 2
        reti
    "#,
    )
    .expect("baseline latency program assembles")
}

/// Measures `samples` interrupt deliveries spaced `spacing` cycles apart
/// on both machines, with `busy_streams` DISC streams running background
/// work (the baseline always runs one background loop).
///
/// # Errors
///
/// Propagates [`SimError`] from either machine.
///
/// # Panics
///
/// Panics if `busy_streams > 3` (stream 3 is the interrupt server) or
/// `spacing == 0`.
pub fn latency_experiment(
    busy_streams: usize,
    samples: usize,
    spacing: u64,
) -> Result<LatencyReport, SimError> {
    assert!(busy_streams <= 3, "stream 3 is reserved for the server");
    assert!(spacing > 0, "spacing must be nonzero");

    let mut disc = Machine::new(MachineConfig::disc1(), &disc_program(busy_streams));
    disc.set_idle_exit(false);
    let mut base = BaselineMachine::new(BaselineConfig::default(), &baseline_program());

    for _ in 0..samples {
        disc.raise_interrupt(3, 5);
        base.raise_interrupt(5);
        for _ in 0..spacing {
            disc.step()?;
            base.step()?;
        }
    }
    Ok(LatencyReport {
        disc: disc.stats().irq_latency.samples().to_vec(),
        baseline: base.stats().irq_latency.samples().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_stream_beats_context_switch() {
        let r = latency_experiment(3, 20, 400).unwrap();
        assert_eq!(r.disc.len(), 20);
        assert_eq!(r.baseline.len(), 20);
        let (disc_mean, disc_max) = r.disc_summary();
        let (base_mean, base_max) = r.baseline_summary();
        assert!(
            disc_max <= 8,
            "DISC worst-case latency should be single digits, got {disc_max}"
        );
        assert!(
            base_mean > disc_mean * 3.0,
            "baseline {base_mean} vs DISC {disc_mean}"
        );
        assert!(base_max >= 16, "context save dominates: {base_max}");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples = vec![5, 1, 9, 3, 7];
        assert_eq!(LatencyReport::percentile(&samples, 50), Some(5));
        assert_eq!(LatencyReport::percentile(&samples, 100), Some(9));
        assert_eq!(LatencyReport::percentile(&samples, 1), Some(1));
        assert_eq!(LatencyReport::percentile(&[], 50), None);
    }

    #[test]
    fn idle_machine_latency_is_minimal() {
        let r = latency_experiment(0, 10, 200).unwrap();
        let (_, max) = r.disc_summary();
        assert!(max <= 4, "empty machine delivers almost immediately: {max}");
    }
}
