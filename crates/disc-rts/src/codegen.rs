//! Assembly generation for task sets.
//!
//! Each task compiles to an interrupt handler that reads its I/O device,
//! runs its computation loop, bumps a per-task completion counter in
//! internal memory (the host harness watches it) and returns. Handlers
//! allocate a stack-window frame so nested preemption on the baseline
//! cannot corrupt live registers.

use disc_bus::{ExtRam, PeripheralBus};
use disc_isa::Program;

use crate::task::TaskSet;

/// Internal-memory address of task `i`'s completion counter.
pub const COMPLETION_BASE: u16 = 0x100;

/// External base address of task `i`'s I/O device.
pub const DEVICE_BASE: u16 = 0x8000;

/// Address stride between task devices.
pub const DEVICE_STRIDE: u16 = 0x400;

/// IR bit used to activate a task's dedicated stream on DISC.
pub const DISC_TASK_BIT: u8 = 3;

/// Completion-counter address of task `i`.
pub fn completion_addr(task: usize) -> u16 {
    COMPLETION_BASE + task as u16
}

/// Device base address of task `i`.
pub fn device_addr(task: usize) -> u16 {
    DEVICE_BASE + task as u16 * DEVICE_STRIDE
}

/// IR bit used for task `i` on the baseline (task 0 gets the highest
/// priority).
pub fn baseline_task_bit(task: usize) -> u8 {
    7 - task as u8
}

fn handler_asm(i: usize, task: &crate::Task) -> String {
    let mut s = String::new();
    s.push_str(&format!("isr{i}:\n"));
    s.push_str("    winc 6\n");
    if task.io_reads > 0 {
        let hi = (device_addr(i) >> 8) as u8;
        s.push_str(&format!("    ldi r2, 0\n    lui r2, {hi}\n"));
        s.push_str(&format!("    ldi r4, {}\n", task.io_reads));
        s.push_str(&format!(
            "io{i}:\n    ld r3, [r2]\n    subi r4, r4, 1\n    jnz io{i}\n"
        ));
    }
    s.push_str(&format!("    ldi r1, {}\n", task.body.min(2047)));
    s.push_str(&format!("w{i}:\n    subi r1, r1, 1\n    jnz w{i}\n"));
    let cnt = completion_addr(i);
    s.push_str(&format!(
        "    lda r5, {cnt:#x}\n    addi r5, r5, 1\n    sta r5, {cnt:#x}\n"
    ));
    s.push_str("    wdec 6\n    reti\n");
    s
}

fn background_asm() -> &'static str {
    // A compute loop touching only its own r0.
    ".stream 0, bg\nbg:\n    addi r0, r0, 1\n    jmp bg\n"
}

/// Assembles the DISC program for a task set: one dedicated
/// interrupt-server stream per task (stream `i + 1`, vector bit
/// [`DISC_TASK_BIT`]) plus the optional background stream 0.
///
/// # Panics
///
/// Panics if the generated assembly fails to assemble (a codegen bug).
pub fn disc_program(set: &TaskSet) -> Program {
    let mut src = String::new();
    if set.background {
        src.push_str(background_asm());
    }
    for (i, task) in set.tasks.iter().enumerate() {
        src.push_str(&format!(".vector {}, {DISC_TASK_BIT}, isr{i}\n", i + 1));
        src.push_str(&handler_asm(i, task));
    }
    Program::assemble(&src).expect("generated DISC assembly must assemble")
}

/// Assembles the baseline program: every handler vectors on stream 0 with
/// priority by task index (task 0 highest), sharing the single context
/// with the background loop.
///
/// # Panics
///
/// Panics if the generated assembly fails to assemble (a codegen bug).
pub fn baseline_program(set: &TaskSet) -> Program {
    let mut src = String::new();
    src.push_str(background_asm());
    for (i, task) in set.tasks.iter().enumerate() {
        src.push_str(&format!(".vector 0, {}, isr{i}\n", baseline_task_bit(i)));
        src.push_str(&handler_asm(i, task));
    }
    Program::assemble(&src).expect("generated baseline assembly must assemble")
}

/// Builds the peripheral bus: one external RAM window per task with the
/// task's I/O latency.
///
/// # Panics
///
/// Panics on overlapping device windows (impossible for ≤3 tasks).
pub fn device_bus(set: &TaskSet) -> PeripheralBus {
    let mut bus = PeripheralBus::new();
    for (i, task) in set.tasks.iter().enumerate() {
        bus.map(
            device_addr(i),
            16,
            Box::new(ExtRam::new(16, task.io_latency.max(1))),
        )
        .expect("device windows are disjoint");
    }
    bus
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Task;

    fn set() -> TaskSet {
        TaskSet::new(vec![
            Task::new("a", 500, 300).with_body(20).with_io(2, 10),
            Task::new("b", 900, 500).with_body(50),
        ])
    }

    #[test]
    fn disc_program_assembles_with_vectors() {
        let p = disc_program(&set());
        assert_eq!(p.entry(0), Some(0), "background on stream 0");
        assert!(p.vector(1, DISC_TASK_BIT).is_some());
        assert!(p.vector(2, DISC_TASK_BIT).is_some());
        assert!(p.vector(3, DISC_TASK_BIT).is_none());
    }

    #[test]
    fn baseline_program_assembles_with_priorities() {
        let p = baseline_program(&set());
        assert!(p.vector(0, 7).is_some(), "task 0 highest priority");
        assert!(p.vector(0, 6).is_some());
        assert!(p.vector(0, 5).is_none());
    }

    #[test]
    fn device_layout_is_disjoint() {
        assert_eq!(device_addr(0), 0x8000);
        assert_eq!(device_addr(1), 0x8400);
        assert_eq!(completion_addr(2), 0x102);
        let _ = device_bus(&set());
    }

    #[test]
    fn io_free_tasks_skip_device_code() {
        let one = TaskSet::new(vec![Task::new("x", 100, 90)]);
        let p = disc_program(&one);
        let listing = p.listing();
        assert!(!listing.contains("lui"), "no device access generated");
    }
}
