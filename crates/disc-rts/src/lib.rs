//! Real-time systems layer over the DISC1 and baseline machines.
//!
//! The paper's motivating domain is hard-real-time control: *"externally
//! derived deadlines from the controlled system produce widely varying
//! computational loads on the controller, as it must respond to these
//! external requests and interrupts in a specified amount of time"* — and
//! *"it is of no use for the average performance to meet these
//! requirements"*, so worst-case response is what counts.
//!
//! This crate provides:
//!
//! * a task model ([`Task`], [`TaskSet`]) — periodic activations with
//!   relative deadlines, a handler body length and per-activation external
//!   I/O;
//! * a code generator ([`codegen`]) that assembles each task set into a
//!   DISC1 program (one dedicated interrupt-server stream per task) and an
//!   equivalent baseline program (all handlers share the single stream);
//! * a throughput-partition allocator ([`partition`]) implementing the
//!   paper's "General scheduling" idea: each task receives a share of the
//!   16-slot scheduler sequence proportional to its utilization;
//! * a host harness ([`harness`]) that drives either machine cycle by
//!   cycle, injects activations, observes completions and produces
//!   per-task response-time/deadline statistics;
//! * the interrupt-latency experiment ([`latency`]): dedicated-stream
//!   delivery on DISC versus context-switched delivery on the baseline,
//!   under configurable background load;
//! * the isolation soak harness ([`soak`]): seeded, deterministic fault
//!   campaigns (via `disc-faults`) aimed at one victim task per run, with
//!   every run checked against isolation invariants — non-victim tasks
//!   keep their throughput and deadlines — relative to a fault-free
//!   reference.
//!
//! # Example
//!
//! ```
//! use disc_rts::{harness, Task, TaskSet};
//!
//! let set = TaskSet::new(vec![Task::new("ctl", 500, 400).with_body(20)]);
//! let disc = harness::run_on_disc(&set, 20_000)?;
//! assert_eq!(disc.tasks[0].misses, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod codegen;
pub mod harness;
pub mod latency;
pub mod partition;
pub mod soak;
mod task;

pub use harness::{SimOutcome, TaskOutcome};
pub use latency::{latency_experiment, LatencyReport};
pub use soak::{RunVerdict, SoakConfig, SoakReport, SoakRun};
pub use task::{Task, TaskSet};
