//! Closed-form approximations of the model's measures, used to cross-check
//! the simulator and to reason about the architecture without running it.
//!
//! For an always-active load the standard-processor utilization has an
//! exact expectation:
//!
//! ```text
//! Ps = 1 / (1 + busy_per_instr + aljmp · (P − 1))
//! busy_per_instr = (alpha · tmem + (1 − alpha) · mean_io) / mean_req
//! ```
//!
//! and the fully-interleaved DISC (≥ P independent always-active streams,
//! no bus contention) approaches
//!
//! ```text
//! PD ≈ min(1, 1 / busy_per_instr_aggregate…)
//! ```
//!
//! bounded by the single shared bus: the machine cannot complete more than
//! one instruction per cycle, and the bus cannot serve more than one busy
//! cycle per cycle, so `PD ≤ min(1, mean_req_total / busy_per_instr)`.

use crate::load::LoadSpec;

/// Expected external-bus busy cycles per instruction of a load
/// (`alpha·tmem + (1−alpha)·mean_io`, amortized over `mean_req`).
pub fn busy_per_instruction(spec: &LoadSpec) -> f64 {
    match spec.mean_req {
        Some(req) if req > 0.0 => {
            (spec.alpha * spec.tmem as f64 + (1.0 - spec.alpha) * spec.mean_io) / req
        }
        _ => 0.0,
    }
}

/// Closed-form `Ps` for an always-active load on a `pipe_depth`-stage
/// standard processor.
pub fn ps_estimate(spec: &LoadSpec, pipe_depth: usize) -> f64 {
    1.0 / (1.0 + busy_per_instruction(spec) + spec.aljmp * (pipe_depth as f64 - 1.0))
}

/// Upper bound on DISC `PD` for `k` copies of an always-active load: the
/// issue port allows 1 instruction/cycle and the single bus allows
/// `1 / busy_per_instruction` instructions/cycle of bus demand; with
/// fewer than `pipe_depth` streams the jump flushes of each stream also
/// cap its own share.
pub fn pd_upper_bound(spec: &LoadSpec, k: usize) -> f64 {
    let busy = busy_per_instruction(spec);
    let bus_cap = if busy > 0.0 {
        1.0 / busy
    } else {
        f64::INFINITY
    };
    let duty = match spec.mean_on {
        Some(on) => on / (on + spec.mean_off),
        None => 1.0,
    };
    (k as f64 * duty).min(1.0).min(bus_cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, RunConfig, Workload};

    #[test]
    fn busy_per_instruction_matches_hand_calculation() {
        // load 1: (0.5·2 + 0.5·20)/10 = 1.1
        let b = busy_per_instruction(&LoadSpec::load1());
        assert!((b - 1.1).abs() < 1e-12, "got {b}");
        assert_eq!(busy_per_instruction(&LoadSpec::load3()), 0.0);
    }

    #[test]
    fn simulated_ps_matches_closed_form() {
        for spec in [LoadSpec::load1(), LoadSpec::load3()] {
            let cfg = RunConfig::new(Workload::partitioned(&spec, 1)).with_cycles(300_000);
            let m = simulate(&cfg);
            let analytic = ps_estimate(&spec, 4);
            assert!(
                (m.ps() - analytic).abs() < 0.02,
                "{}: simulated Ps {} vs analytic {}",
                spec.name,
                m.ps(),
                analytic
            );
        }
    }

    #[test]
    fn simulated_pd_respects_upper_bound() {
        for k in 1..=4 {
            let spec = LoadSpec::load1();
            let cfg = RunConfig::new(Workload::partitioned(&spec, k)).with_cycles(200_000);
            let m = simulate(&cfg);
            let bound = pd_upper_bound(&spec, k);
            assert!(
                m.pd() <= bound + 0.02,
                "k={k}: PD {} exceeds bound {bound}",
                m.pd()
            );
        }
    }

    #[test]
    fn dsp_load_bound_is_one() {
        assert_eq!(pd_upper_bound(&LoadSpec::load3(), 4), 1.0);
        // And the simulator reaches it.
        let cfg = RunConfig::new(Workload::partitioned(&LoadSpec::load3(), 4)).with_cycles(100_000);
        assert!(simulate(&cfg).pd() > 0.99);
    }

    #[test]
    fn duty_cycle_caps_single_stream_pd() {
        let spec = LoadSpec::load2(); // ~50% duty
        let bound = pd_upper_bound(&spec, 1);
        assert!((0.45..=0.55).contains(&bound));
        let cfg = RunConfig::new(Workload::partitioned(&spec, 1)).with_cycles(200_000);
        assert!(simulate(&cfg).pd() <= bound + 0.02);
    }
}
