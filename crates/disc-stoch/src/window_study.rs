//! Stochastic evaluation of stack-window sizing — one of the paper's
//! stated future-work items: *"the depth and size of memory usage in the
//! stack windows could be evaluated by stochastic means."*
//!
//! The model drives a real [`StackWindow`] (the same component the
//! cycle-accurate machine uses) with a stochastic call/return process: a
//! random walk over call depth with Poisson-distributed local-frame sizes,
//! mildly biased toward the root so depth has a stationary distribution.
//! The outputs are the spill/fill traffic and the stall overhead per call
//! as a function of the physical register-file depth — exactly the curve a
//! DISC implementor needs to size the file.

use disc_core::{StackWindow, WindowPolicy};

use crate::dist::Sampler;
use crate::report::Table;

/// Parameters of the stochastic call/return process.
#[derive(Debug, Clone, PartialEq)]
pub struct CallProfile {
    /// Probability that the next procedure event is a call (vs. return);
    /// values below 0.5 keep the walk stable around shallow depths.
    pub call_bias: f64,
    /// Mean locals allocated per frame (Poisson, plus the return slot).
    pub mean_locals: f64,
    /// Instructions executed between procedure events (cost context).
    pub mean_body: f64,
}

impl CallProfile {
    /// A leaf-heavy control workload (shallow call trees, small frames).
    pub fn control() -> Self {
        CallProfile {
            call_bias: 0.45,
            mean_locals: 1.5,
            mean_body: 12.0,
        }
    }

    /// A recursion-heavy workload (deep call chains, larger frames).
    pub fn recursive() -> Self {
        CallProfile {
            call_bias: 0.49,
            mean_locals: 3.0,
            mean_body: 6.0,
        }
    }
}

/// Result of one window-sizing run.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStudy {
    /// Physical register-file depth used.
    pub depth: usize,
    /// Calls simulated.
    pub calls: u64,
    /// Instructions simulated (bodies + call/return overhead).
    pub instructions: u64,
    /// Words spilled to backing store.
    pub spills: u64,
    /// Words filled back.
    pub fills: u64,
    /// Stall cycles charged by the spill engine.
    pub stall_cycles: u64,
    /// Deepest logical stack reached.
    pub peak_depth: usize,
}

impl WindowStudy {
    /// Spill+fill words per call.
    pub fn traffic_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            (self.spills + self.fills) as f64 / self.calls as f64
        }
    }

    /// Fraction of execution time lost to spill stalls.
    pub fn stall_overhead(&self) -> f64 {
        let total = self.instructions + self.stall_cycles;
        if total == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / total as f64
        }
    }
}

/// Runs the call/return process against a window file of the given
/// physical `depth` for `calls` procedure calls.
///
/// # Panics
///
/// Panics if `depth <= 8` (must exceed the visible window).
pub fn run_window_study(profile: &CallProfile, depth: usize, calls: u64, seed: u64) -> WindowStudy {
    let mut window = StackWindow::new(depth, WindowPolicy::AutoSpill);
    let mut sampler = Sampler::new(seed);
    let mut frames: Vec<u32> = Vec::new(); // locals per open frame
    let mut done_calls = 0u64;
    let mut instructions = 0u64;
    let mut stalls = 0u64;
    while done_calls < calls {
        instructions += sampler.poisson(profile.mean_body);
        let call = frames.is_empty() || sampler.bernoulli(profile.call_bias);
        if call {
            // Call: return slot + locals.
            let locals = sampler.poisson(profile.mean_locals) as u32;
            stalls += window.adjust(1 + locals as i32).stall_cycles as u64;
            frames.push(locals);
            done_calls += 1;
            instructions += 1 + locals as u64; // call + local initializers
        } else {
            let locals = frames.pop().expect("checked non-empty");
            stalls += window.adjust(-((1 + locals) as i32)).stall_cycles as u64;
            instructions += 1; // ret
        }
    }
    WindowStudy {
        depth,
        calls: done_calls,
        instructions,
        spills: window.spills(),
        fills: window.fills(),
        stall_cycles: stalls,
        peak_depth: window.max_depth(),
    }
}

/// The window-sizing table: spill traffic and stall overhead versus
/// physical depth, for both call profiles.
pub fn sweep_window_depth(calls: u64, seed: u64) -> Table {
    let mut t = Table::new(
        "Sweep: stack-window physical depth (spill traffic / stall overhead)",
        &[
            "ctl words/call",
            "ctl stall %",
            "rec words/call",
            "rec stall %",
        ],
        3,
    );
    // Each depth point is an independent pair of runs; sweep them
    // concurrently and emit rows in depth order.
    let depths = [12usize, 16, 24, 32, 48, 64, 96];
    let rows = disc_par::par_map(depths.to_vec(), |depth| {
        let ctl = run_window_study(&CallProfile::control(), depth, calls, seed);
        let rec = run_window_study(&CallProfile::recursive(), depth, calls, seed);
        vec![
            ctl.traffic_per_call(),
            ctl.stall_overhead() * 100.0,
            rec.traffic_per_call(),
            rec.stall_overhead() * 100.0,
        ]
    });
    for (depth, row) in depths.iter().zip(rows) {
        t.push_row(&format!("depth={depth:>3}"), row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_files_spill_less() {
        let p = CallProfile::recursive();
        let shallow = run_window_study(&p, 12, 20_000, 7);
        let deep = run_window_study(&p, 96, 20_000, 7);
        assert!(
            shallow.traffic_per_call() > deep.traffic_per_call(),
            "shallow {} vs deep {}",
            shallow.traffic_per_call(),
            deep.traffic_per_call()
        );
        assert!(shallow.stall_overhead() >= deep.stall_overhead());
    }

    #[test]
    fn control_workload_fits_small_files() {
        let s = run_window_study(&CallProfile::control(), 64, 20_000, 3);
        assert!(
            s.stall_overhead() < 0.02,
            "a 64-deep file should nearly eliminate control-code spills, got {}",
            s.stall_overhead()
        );
    }

    #[test]
    fn call_return_process_is_balanced() {
        let s = run_window_study(&CallProfile::control(), 32, 10_000, 1);
        assert_eq!(s.calls, 10_000);
        assert!(s.peak_depth >= 8, "walk must move");
        assert!(s.instructions > s.calls, "bodies execute between calls");
    }

    #[test]
    fn study_is_reproducible() {
        let a = run_window_study(&CallProfile::recursive(), 24, 5_000, 42);
        let b = run_window_study(&CallProfile::recursive(), 24, 5_000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_table_is_monotone_in_depth() {
        let t = sweep_window_depth(8_000, 11);
        assert_eq!(t.rows().len(), 7);
        // Recursive stall overhead decreases (weakly) down the rows.
        for r in 0..t.rows().len() - 1 {
            let here = t.value(r, 3).unwrap();
            let next = t.value(r + 1, 3).unwrap();
            assert!(
                next <= here + 0.5,
                "stall overhead should not grow with depth: row {r}: {here} -> {next}"
            );
        }
    }
}
