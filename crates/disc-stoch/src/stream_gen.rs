//! Stochastic instruction-stream generators.

use crate::dist::Sampler;
use crate::load::LoadSpec;

/// Burst length used for always-active components inside a mixture
/// (instructions per segment of the paper's "statistical combination").
const MIX_BURST: f64 = 50.0;

/// A modeled instruction drawn from the stream's renewal process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenInstr {
    /// Ordinary single-cycle instruction.
    Plain,
    /// Flow-modifying instruction (jump/call/return/branch/interrupt —
    /// the paper's `aljmp` class).
    Jump,
    /// External access with the given total access time in cycles.
    External {
        /// `true` when the request went to memory (`alpha`), `false` for
        /// I/O.
        is_mem: bool,
        /// Access time in cycles (`tmem` or a `Poisson(mean_io)` draw).
        latency: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// `remaining` instructions of the active burst.
    Active { remaining: u64 },
    /// `remaining` cycles of inactivity.
    Inactive { remaining: u64 },
}

/// One stochastic instruction stream (a mixture of [`LoadSpec`]
/// components, cycled burst-by-burst).
#[derive(Debug, Clone)]
pub struct StochStream {
    components: Vec<LoadSpec>,
    comp: usize,
    phase: Phase,
    /// Instructions until the next external request (None = never).
    to_next_req: Option<u64>,
    /// Cancelled access to replay once the bus frees.
    replay: Option<GenInstr>,
    sampler: Sampler,
    /// Instructions generated (for diagnostics).
    generated: u64,
}

impl StochStream {
    /// Creates a stream cycling through `components`, seeded
    /// deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty.
    pub fn new(components: Vec<LoadSpec>, seed: u64) -> Self {
        assert!(!components.is_empty(), "stream needs a component");
        let mut s = StochStream {
            components,
            comp: 0,
            phase: Phase::Active { remaining: 0 },
            to_next_req: None,
            replay: None,
            sampler: Sampler::new(seed),
            generated: 0,
        };
        s.begin_burst();
        s
    }

    fn spec(&self) -> &LoadSpec {
        &self.components[self.comp]
    }

    fn begin_burst(&mut self) {
        let (mean_on, mean_req) = {
            let spec = self.spec();
            (spec.mean_on, spec.mean_req)
        };
        let remaining = match mean_on {
            Some(m) => self.sampler.poisson_at_least_one(m),
            // An always-active component in a mixture still has to yield
            // to its partners; give it the default mixing burst length.
            None if self.components.len() > 1 => self.sampler.poisson_at_least_one(MIX_BURST),
            None => u64::MAX,
        };
        self.phase = Phase::Active { remaining };
        self.to_next_req = match mean_req {
            Some(m) => Some(self.sampler.poisson_at_least_one(m)),
            None => None,
        };
    }

    fn end_burst(&mut self) {
        // Mixtures rotate to the next component for the next burst; an
        // always-active component contributes no inactive gap.
        let spec = self.spec();
        let gap = if spec.always_active() && self.components.len() > 1 {
            0
        } else {
            self.sampler.poisson_at_least_one(spec.mean_off.max(1.0))
        };
        self.comp = (self.comp + 1) % self.components.len();
        if gap == 0 {
            self.begin_burst();
        } else {
            self.phase = Phase::Inactive { remaining: gap };
        }
    }

    /// `true` when the stream can supply an instruction this cycle.
    pub fn active(&self) -> bool {
        matches!(self.phase, Phase::Active { .. })
    }

    /// Advances inactive time by one cycle (call once per cycle while the
    /// stream is inactive).
    pub fn tick_inactive(&mut self) {
        if let Phase::Inactive { remaining } = &mut self.phase {
            *remaining -= 1;
            if *remaining == 0 {
                self.begin_burst();
            }
        }
    }

    /// Stashes a cancelled external access for replay (bus was busy).
    pub fn push_replay(&mut self, instr: GenInstr) {
        self.replay = Some(instr);
    }

    /// Draws the next instruction of the stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream is inactive (callers check
    /// [`active`](Self::active)).
    pub fn next_instr(&mut self) -> GenInstr {
        if let Some(instr) = self.replay.take() {
            return instr;
        }
        let Phase::Active { remaining } = &mut self.phase else {
            panic!("next_instr on an inactive stream");
        };
        *remaining = remaining.saturating_sub(1);
        let burst_over = *remaining == 0;
        self.generated += 1;

        // External request due?
        let instr = if let Some(t) = &mut self.to_next_req {
            *t -= 1;
            if *t == 0 {
                let (alpha, tmem, mean_io, mean_req) = {
                    let s = self.spec();
                    (s.alpha, s.tmem, s.mean_io, s.mean_req)
                };
                if let Some(m) = mean_req {
                    self.to_next_req = Some(self.sampler.poisson_at_least_one(m));
                }
                let is_mem = self.sampler.bernoulli(alpha);
                let latency = if is_mem {
                    tmem
                } else {
                    self.sampler.poisson_at_least_one(mean_io) as u32
                };
                GenInstr::External { is_mem, latency }
            } else {
                self.plain_or_jump()
            }
        } else {
            self.plain_or_jump()
        };

        if burst_over {
            self.end_burst();
        }
        instr
    }

    fn plain_or_jump(&mut self) -> GenInstr {
        let aljmp = self.spec().aljmp;
        if self.sampler.bernoulli(aljmp) {
            GenInstr::Jump
        } else {
            GenInstr::Plain
        }
    }

    /// Instructions generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_active_load_never_idles() {
        let mut s = StochStream::new(vec![LoadSpec::load1()], 1);
        for _ in 0..10_000 {
            assert!(s.active());
            let _ = s.next_instr();
        }
    }

    #[test]
    fn duty_cycled_load_alternates() {
        let mut s = StochStream::new(vec![LoadSpec::load2()], 2);
        let mut active_slots = 0u64;
        let mut idle_slots = 0u64;
        for _ in 0..100_000 {
            if s.active() {
                active_slots += 1;
                let _ = s.next_instr();
            } else {
                idle_slots += 1;
                s.tick_inactive();
            }
        }
        let duty = active_slots as f64 / (active_slots + idle_slots) as f64;
        assert!(
            (0.4..=0.6).contains(&duty),
            "load 2 is ~50% duty, got {duty}"
        );
    }

    #[test]
    fn jump_fraction_matches_aljmp() {
        let mut s = StochStream::new(vec![LoadSpec::load1()], 3);
        let n = 50_000;
        let jumps = (0..n)
            .filter(|_| matches!(s.next_instr(), GenInstr::Jump))
            .count();
        let frac = jumps as f64 / n as f64;
        // External slots displace some jumps; accept a band around 0.2.
        assert!((0.15..=0.25).contains(&frac), "aljmp fraction {frac}");
    }

    #[test]
    fn request_spacing_matches_mean_req() {
        let mut s = StochStream::new(vec![LoadSpec::load1()], 4);
        let n = 100_000;
        let ext = (0..n)
            .filter(|_| matches!(s.next_instr(), GenInstr::External { .. }))
            .count();
        let spacing = n as f64 / ext as f64;
        assert!(
            (9.0..=11.0).contains(&spacing),
            "mean request spacing {spacing}"
        );
    }

    #[test]
    fn dsp_load_never_goes_external() {
        let mut s = StochStream::new(vec![LoadSpec::load3()], 5);
        for _ in 0..50_000 {
            assert!(!matches!(s.next_instr(), GenInstr::External { .. }));
        }
    }

    #[test]
    fn memory_fraction_matches_alpha() {
        let mut s = StochStream::new(vec![LoadSpec::load1()], 6);
        let mut mem = 0u64;
        let mut io = 0u64;
        for _ in 0..200_000 {
            if let GenInstr::External { is_mem, latency } = s.next_instr() {
                if is_mem {
                    mem += 1;
                    assert_eq!(latency, 2, "memory access time is tmem");
                } else {
                    io += 1;
                    assert!(latency >= 1);
                }
            }
        }
        let frac = mem as f64 / (mem + io) as f64;
        assert!((0.45..=0.55).contains(&frac), "alpha fraction {frac}");
    }

    #[test]
    fn replay_returns_same_instruction_first() {
        let mut s = StochStream::new(vec![LoadSpec::load1()], 7);
        let cancelled = GenInstr::External {
            is_mem: false,
            latency: 17,
        };
        s.push_replay(cancelled);
        assert_eq!(s.next_instr(), cancelled);
    }

    #[test]
    fn mixture_rotates_components() {
        // Mix a jumpy and a jump-free load with short bursts; observed
        // jump fraction must sit between the two components'.
        let a = LoadSpec {
            name: "jumpy".into(),
            mean_on: Some(20.0),
            mean_off: 1.0,
            mean_req: None,
            alpha: 0.0,
            tmem: 0,
            mean_io: 0.0,
            aljmp: 0.5,
        };
        let b = LoadSpec {
            aljmp: 0.0,
            name: "straight".into(),
            ..a.clone()
        };
        let mut s = StochStream::new(vec![a, b], 8);
        let mut jumps = 0u64;
        let mut total = 0u64;
        for _ in 0..200_000 {
            if s.active() {
                total += 1;
                if matches!(s.next_instr(), GenInstr::Jump) {
                    jumps += 1;
                }
            } else {
                s.tick_inactive();
            }
        }
        let frac = jumps as f64 / total as f64;
        assert!(
            (0.15..=0.35).contains(&frac),
            "mixture jump fraction {frac} should sit between 0 and 0.5"
        );
    }
}
