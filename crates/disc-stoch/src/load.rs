//! Workload parameterization — the paper's Table 4.1.
//!
//! The available scan of the paper garbles the numeric cells of Table 4.1,
//! so the preset values below are chosen to match the prose
//! characterization of each load (see DESIGN.md §2/§4); every generator
//! prints them so the substitution is explicit.

/// Stochastic parameters of one program load (a Table 4.1 column).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSpec {
    /// Display name (`"load 1"`, `"load 1:4"`, …).
    pub name: String,
    /// Mean instructions per active burst; `None` = always active.
    pub mean_on: Option<f64>,
    /// Mean cycles per inactive gap (ignored when always active).
    pub mean_off: f64,
    /// Mean instructions between external access requests; `None` = the
    /// load never leaves internal memory (the DSP case).
    pub mean_req: Option<f64>,
    /// Probability an external request goes to memory (`alpha`); the rest
    /// are I/O.
    pub alpha: f64,
    /// External memory access time in cycles (`tmem`).
    pub tmem: u32,
    /// Mean I/O access time in cycles (`mean_io`, Poisson distributed).
    pub mean_io: f64,
    /// Fraction of instructions that modify program flow (`aljmp`).
    pub aljmp: f64,
}

impl LoadSpec {
    /// Load 1 — *"typical RTS behavior … always active"*.
    pub fn load1() -> Self {
        LoadSpec {
            name: "load 1".into(),
            mean_on: None,
            mean_off: 0.0,
            mean_req: Some(10.0),
            alpha: 0.5,
            tmem: 2,
            mean_io: 20.0,
            aljmp: 0.20,
        }
    }

    /// Load 2 — *"alternatively active and inactive"* RTS behavior.
    pub fn load2() -> Self {
        LoadSpec {
            name: "load 2".into(),
            mean_on: Some(50.0),
            mean_off: 50.0,
            ..Self::load1()
        }
    }

    /// Load 3 — *"a DSP type program running only from internal memory"*.
    pub fn load3() -> Self {
        LoadSpec {
            name: "load 3".into(),
            mean_on: None,
            mean_off: 0.0,
            mean_req: None,
            alpha: 0.0,
            tmem: 0,
            mean_io: 0.0,
            aljmp: 0.05,
        }
    }

    /// Load 4 — *"an interrupt driven program which is only active while
    /// handling an interrupt"*.
    pub fn load4() -> Self {
        LoadSpec {
            name: "load 4".into(),
            mean_on: Some(25.0),
            mean_off: 100.0,
            mean_req: Some(15.0),
            alpha: 0.3,
            tmem: 2,
            mean_io: 25.0,
            aljmp: 0.25,
        }
    }

    /// The four presets in order.
    pub fn presets() -> Vec<LoadSpec> {
        vec![Self::load1(), Self::load2(), Self::load3(), Self::load4()]
    }

    /// Renames the load.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.into();
        self
    }

    /// Builder-style field override for sweeps.
    pub fn with_aljmp(mut self, aljmp: f64) -> Self {
        self.aljmp = aljmp;
        self
    }

    /// Builder-style field override for sweeps.
    pub fn with_mean_req(mut self, mean_req: Option<f64>) -> Self {
        self.mean_req = mean_req;
        self
    }

    /// Builder-style field override for sweeps.
    pub fn with_mean_io(mut self, mean_io: f64) -> Self {
        self.mean_io = mean_io;
        self
    }

    /// Builder-style field override for sweeps.
    pub fn with_tmem(mut self, tmem: u32) -> Self {
        self.tmem = tmem;
        self
    }

    /// Builder-style field override for sweeps.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// `true` when the load has no inactive phases.
    pub fn always_active(&self) -> bool {
        self.mean_on.is_none()
    }
}

/// Assignment of loads to instruction streams for one simulation run.
///
/// A stream carries one or more component [`LoadSpec`]s; with several, the
/// stream alternates between them burst-by-burst — the paper's
/// *"statistical combination of loads 1 and 4 into a single IS"*
/// (`load (1:4)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    streams: Vec<Vec<LoadSpec>>,
    /// Display name.
    pub name: String,
}

impl Workload {
    /// One stream per spec.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn separate(specs: Vec<LoadSpec>) -> Self {
        assert!(!specs.is_empty(), "workload needs at least one load");
        let name = specs
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .join(" | ");
        Workload {
            streams: specs.into_iter().map(|s| vec![s]).collect(),
            name,
        }
    }

    /// The same load partitioned into `k` statistically identical streams
    /// (a Table 4.2 row cell).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn partitioned(spec: &LoadSpec, k: usize) -> Self {
        assert!(k > 0, "at least one stream required");
        Workload {
            streams: (0..k).map(|_| vec![spec.clone()]).collect(),
            name: format!("{} / {k} ISs", spec.name),
        }
    }

    /// All specs statistically combined into a single stream
    /// (`load (1:X)` in Table 4.3).
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn combined(specs: Vec<LoadSpec>) -> Self {
        assert!(!specs.is_empty(), "workload needs at least one load");
        let name = specs
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .join(":");
        Workload {
            streams: vec![specs],
            name: format!("load ({name})"),
        }
    }

    /// Arbitrary stream assignment (each inner vector is one stream's
    /// component mixture).
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or any stream has no components.
    pub fn custom(name: &str, streams: Vec<Vec<LoadSpec>>) -> Self {
        assert!(!streams.is_empty(), "workload needs at least one stream");
        assert!(
            streams.iter().all(|s| !s.is_empty()),
            "every stream needs at least one component"
        );
        Workload {
            streams,
            name: name.into(),
        }
    }

    /// Number of instruction streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Component mixture of stream `s`.
    pub fn stream(&self, s: usize) -> &[LoadSpec] {
        &self.streams[s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_prose() {
        assert!(LoadSpec::load1().always_active());
        assert!(!LoadSpec::load2().always_active());
        assert_eq!(LoadSpec::load3().mean_req, None, "DSP never goes external");
        let l4 = LoadSpec::load4();
        assert!(l4.mean_off > l4.mean_on.unwrap(), "mostly dormant");
    }

    #[test]
    fn partitioned_replicates_spec() {
        let w = Workload::partitioned(&LoadSpec::load2(), 3);
        assert_eq!(w.stream_count(), 3);
        for s in 0..3 {
            assert_eq!(w.stream(s)[0].name, "load 2");
        }
    }

    #[test]
    fn combined_is_single_stream_mixture() {
        let w = Workload::combined(vec![LoadSpec::load1(), LoadSpec::load4()]);
        assert_eq!(w.stream_count(), 1);
        assert_eq!(w.stream(0).len(), 2);
        assert!(w.name.contains("1") && w.name.contains("4"));
    }

    #[test]
    fn builders_override_fields() {
        let l = LoadSpec::load1().with_aljmp(0.4).with_tmem(9);
        assert_eq!(l.aljmp, 0.4);
        assert_eq!(l.tmem, 9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_workload_rejected() {
        let _ = Workload::separate(vec![]);
    }
}
