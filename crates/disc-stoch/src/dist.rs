//! Random sampling for the stochastic model.
//!
//! Implemented locally (Knuth's product method plus a normal approximation
//! for large means) to keep the dependency footprint at `rand` alone.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seedable sampler over the distributions the model needs.
#[derive(Debug, Clone)]
pub struct Sampler {
    rng: SmallRng,
}

impl Sampler {
    /// Creates a sampler from a seed (runs are reproducible per seed).
    pub fn new(seed: u64) -> Self {
        Sampler {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draws `Poisson(mean)`. Means below 30 use Knuth's product method;
    /// larger means use the normal approximation `N(mean, mean)` rounded
    /// and clamped at zero.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean.is_finite() && mean >= 0.0, "invalid Poisson mean");
        if mean == 0.0 {
            return 0;
        }
        if mean < 30.0 {
            let l = (-mean).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.rng.gen::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let z = self.normal();
            let v = mean + mean.sqrt() * z;
            if v < 0.0 {
                0
            } else {
                v.round() as u64
            }
        }
    }

    /// Like [`poisson`](Self::poisson) but never returns zero (a zero-length
    /// phase would be degenerate for on/off renewals).
    pub fn poisson_at_least_one(&mut self, mean: f64) -> u64 {
        self.poisson(mean).max(1)
    }

    /// Draws a standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }

    /// Draws a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.rng.gen_range(0..n)
    }
}

/// Exposes the sampler's xoshiro256++ state so stochastic experiments can
/// be checkpointed and resumed mid-stream: restoring the state continues
/// the exact draw sequence the snapshot interrupted.
impl disc_snap::ReplayableRng for Sampler {
    fn rng_state(&self) -> Vec<u8> {
        let mut w = disc_snap::SnapWriter::new();
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.into_bytes()
    }

    fn set_rng_state(&mut self, state: &[u8]) -> Result<(), disc_snap::SnapError> {
        let mut r = disc_snap::SnapReader::new(state);
        let mut s = [0u64; 4];
        for word in s.iter_mut() {
            *word = r.get_u64()?;
        }
        r.finish()?;
        self.rng = SmallRng::from_state(s);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(samples: &[u64]) -> f64 {
        samples.iter().sum::<u64>() as f64 / samples.len() as f64
    }

    #[test]
    fn poisson_small_mean_is_unbiased() {
        let mut s = Sampler::new(1);
        let samples: Vec<u64> = (0..20_000).map(|_| s.poisson(4.0)).collect();
        let m = mean_of(&samples);
        assert!((3.9..=4.1).contains(&m), "mean {m}");
        // Variance ≈ mean for Poisson.
        let var =
            samples.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((3.5..=4.5).contains(&var), "variance {var}");
    }

    #[test]
    fn poisson_large_mean_is_unbiased() {
        let mut s = Sampler::new(2);
        let samples: Vec<u64> = (0..20_000).map(|_| s.poisson(100.0)).collect();
        let m = mean_of(&samples);
        assert!((98.0..=102.0).contains(&m), "mean {m}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut s = Sampler::new(3);
        assert_eq!(s.poisson(0.0), 0);
        assert_eq!(s.poisson_at_least_one(0.0), 1);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut s = Sampler::new(4);
        let hits = (0..10_000).filter(|_| s.bernoulli(0.3)).count();
        assert!((2_800..=3_200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn seeds_reproduce() {
        let a: Vec<u64> = {
            let mut s = Sampler::new(42);
            (0..32).map(|_| s.poisson(7.0)).collect()
        };
        let b: Vec<u64> = {
            let mut s = Sampler::new(42);
            (0..32).map(|_| s.poisson(7.0)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid Poisson mean")]
    fn negative_mean_rejected() {
        Sampler::new(0).poisson(-1.0);
    }

    #[test]
    fn rng_state_resumes_the_draw_stream() {
        use disc_snap::ReplayableRng;
        let mut s = Sampler::new(99);
        for _ in 0..100 {
            let _ = s.poisson(5.0);
        }
        let state = s.rng_state();
        let expected: Vec<u64> = (0..32).map(|_| s.poisson(5.0)).collect();

        let mut resumed = Sampler::new(0);
        resumed.set_rng_state(&state).expect("restore");
        let got: Vec<u64> = (0..32).map(|_| resumed.poisson(5.0)).collect();
        assert_eq!(got, expected, "resumed sampler continues the stream");
        assert!(resumed.set_rng_state(&state[1..]).is_err(), "bad length");
    }
}
