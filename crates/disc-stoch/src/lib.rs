//! The stochastic evaluation model of the DISC architecture — Section 4 of
//! the paper.
//!
//! *"A stochastic model was developed to evaluate the DISC architecture.
//! Poisson distributions, with the indicated means, were assumed for the
//! number of consecutive instructions for which the IS is active (meanon),
//! or inactive (meanoff), between external access requests (mean_req), and
//! for I/O request times (mean_io)."*
//!
//! Rather than executing real programs, each instruction stream is a
//! renewal process ([`StochStream`]) parameterized by a [`LoadSpec`]; the
//! [`Sequencer`] applies the exact DISC1 scheduling and flush rules of
//! §4.1 (it reuses the hardware scheduler from `disc-core`):
//!
//! * a jump-type instruction flushes all in-pipe instructions of its own
//!   stream;
//! * an external access with nonzero access time flushes its stream's
//!   in-pipe instructions and parks the stream until the data returns;
//! * an access that finds the bus busy is itself flushed and re-issued
//!   once the bus frees.
//!
//! Two measures come out ([`RunMetrics`]): `PD`, processor utilization on
//! DISC, and `delta = (PD - Ps)/Ps × 100%`, where `Ps` is the utilization
//! of a standard single-stream processor on the same consumed workload:
//! `Ps = N / (N + bus_busy + jumps × (pipe_length − 1))`.
//!
//! The [`tables`] module packages the runs behind Tables 4.1–4.3 and
//! the jump-only / I/O-only / pipeline-depth / scheduler sweeps of §4.2.
//!
//! # Example
//!
//! ```
//! use disc_stoch::{simulate, LoadSpec, RunConfig, Workload};
//!
//! // Load 1 partitioned over four streams (a Table 4.2 cell).
//! let cfg = RunConfig::new(Workload::partitioned(&LoadSpec::load1(), 4))
//!     .with_cycles(100_000)
//!     .with_seed(7);
//! let m = simulate(&cfg);
//! assert!(m.pd() > m.ps(), "multistreaming must beat the baseline here");
//! ```

pub mod analytic;
mod dist;
mod experiment;
mod load;
mod metrics;
mod report;
mod sequencer;
mod stream_gen;
pub mod window_study;

pub use dist::Sampler;
pub use experiment::{
    crossover_streams, simulate, simulate_seeds, sweep, RunConfig, Summary, SweepPoint,
    DEFAULT_CYCLES, DEFAULT_SEEDS,
};
pub use load::{LoadSpec, Workload};
pub use metrics::RunMetrics;
pub use report::Table;
pub use sequencer::Sequencer;
pub use stream_gen::{GenInstr, StochStream};
pub use window_study::{run_window_study, sweep_window_depth, CallProfile, WindowStudy};

pub mod tables {
    //! Ready-made generators for each table of the paper.
    pub use crate::experiment::tables::*;
}
