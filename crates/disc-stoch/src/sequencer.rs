//! The modeled DISC1 sequencer (§4.1).
//!
//! *"The model simulates the sequencer used in DISC1, so that any sequence
//! that can run on DISC1 can be simulated."* The pipeline carries modeled
//! instructions from the stochastic stream generators; jumps and external
//! accesses apply the same flush/wait/bus-busy rules as the cycle-accurate
//! machine, and the scheduler is literally the `disc-core` hardware
//! scheduler.

use disc_core::{SchedulePolicy, Scheduler};

use crate::load::Workload;
use crate::metrics::RunMetrics;
use crate::stream_gen::{GenInstr, StochStream};

#[derive(Debug, Clone, Copy)]
struct PipeSlot {
    stream: usize,
    instr: GenInstr,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wait {
    None,
    /// Waiting for its own bus transaction.
    Txn,
    /// Waiting for the bus to free before replaying a cancelled access.
    BusFree,
}

/// The stochastic-model pipeline + scheduler + bus.
#[derive(Debug)]
pub struct Sequencer {
    streams: Vec<StochStream>,
    wait: Vec<Wait>,
    pipe: Vec<Option<PipeSlot>>,
    scheduler: Scheduler,
    bus_remaining: u32,
    bus_owner: Option<usize>,
    metrics: RunMetrics,
}

impl Sequencer {
    /// Builds a sequencer for `workload` with the given pipeline depth and
    /// scheduler policy. Streams are seeded from `seed` (one derived seed
    /// per stream).
    ///
    /// # Panics
    ///
    /// Panics if `pipe_depth` is not in `3..=8` or the schedule references
    /// missing streams.
    pub fn new(
        workload: &Workload,
        pipe_depth: usize,
        schedule: SchedulePolicy,
        seed: u64,
    ) -> Self {
        assert!((3..=8).contains(&pipe_depth), "pipe depth must be 3..=8");
        let n = workload.stream_count();
        let streams = (0..n)
            .map(|s| {
                StochStream::new(
                    workload.stream(s).to_vec(),
                    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(s as u64 + 1),
                )
            })
            .collect();
        Sequencer {
            streams,
            wait: vec![Wait::None; n],
            pipe: vec![None; pipe_depth],
            scheduler: Scheduler::new(schedule, n),
            bus_remaining: 0,
            bus_owner: None,
            metrics: RunMetrics {
                pipe_depth,
                ..RunMetrics::default()
            },
        }
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Runs `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        let depth = self.pipe.len();

        // 1. Bus progress.
        if self.bus_remaining > 0 {
            self.metrics.bus_busy_cycles += 1;
            self.bus_remaining -= 1;
            if self.bus_remaining == 0 {
                if let Some(owner) = self.bus_owner.take() {
                    self.wait[owner] = Wait::None;
                }
                for w in &mut self.wait {
                    if *w == Wait::BusFree {
                        *w = Wait::None;
                    }
                }
            }
        }

        // 2. Inactive streams burn idle time.
        for (s, st) in self.streams.iter_mut().enumerate() {
            if self.wait[s] == Wait::None && !st.active() {
                st.tick_inactive();
            }
        }

        // 3. Retire + resolve. The paper's model resolves control and bus
        // effects when the instruction completes the pipe: "By the time an
        // instruction modifies the program sequence, there will be several
        // instructions in the pipe which belong to the incorrect
        // sequence" — with a full single-stream pipe that is
        // `pipe_length − 1` instructions, matching the `Ps` formula.
        if let Some(slot) = self.pipe[depth - 1].take() {
            match slot.instr {
                GenInstr::Plain => self.metrics.executed += 1,
                GenInstr::Jump => {
                    self.metrics.executed += 1;
                    self.metrics.jumps += 1;
                    let dropped = self.flush_younger(depth - 1, slot.stream);
                    self.metrics.dropped_jump += dropped;
                }
                GenInstr::External { latency, .. } => {
                    if latency == 0 {
                        // Zero-wait accesses behave like plain
                        // instructions (§4.1).
                        self.metrics.executed += 1;
                    } else if self.bus_remaining > 0 {
                        // Bus busy: the access itself is flushed along
                        // with its younger same-stream slots; it replays
                        // once the bus frees.
                        self.metrics.bus_rejections += 1;
                        let dropped = self.flush_younger(depth - 1, slot.stream) + 1;
                        self.metrics.dropped_bus_busy += dropped;
                        self.streams[slot.stream].push_replay(slot.instr);
                        self.wait[slot.stream] = Wait::BusFree;
                    } else {
                        self.metrics.executed += 1;
                        self.metrics.external_accesses += 1;
                        self.bus_remaining = latency;
                        self.bus_owner = Some(slot.stream);
                        let dropped = self.flush_younger(depth - 1, slot.stream);
                        self.metrics.dropped_io += dropped;
                        self.wait[slot.stream] = Wait::Txn;
                    }
                }
            }
        }
        for i in (1..depth).rev() {
            self.pipe[i] = self.pipe[i - 1].take();
        }

        // 5. Fetch through the hardware scheduler.
        let ready: Vec<bool> = self
            .streams
            .iter()
            .enumerate()
            .map(|(s, st)| self.wait[s] == Wait::None && st.active())
            .collect();
        match self.scheduler.pick(&ready) {
            Some(s) => {
                let instr = self.streams[s].next_instr();
                self.pipe[0] = Some(PipeSlot { stream: s, instr });
            }
            None => self.metrics.bubbles += 1,
        }

        self.metrics.cycles += 1;
    }

    fn flush_younger(&mut self, upto: usize, stream: usize) -> u64 {
        let mut dropped = 0;
        for slot in self.pipe[..upto].iter_mut() {
            if slot.map(|s| s.stream) == Some(stream) {
                *slot = None;
                dropped += 1;
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadSpec;

    fn rr(n: usize) -> SchedulePolicy {
        SchedulePolicy::round_robin(n)
    }

    fn run_load(workload: Workload, cycles: u64, seed: u64) -> RunMetrics {
        let n = workload.stream_count();
        let mut seq = Sequencer::new(&workload, 4, rr(n), seed);
        seq.run(cycles);
        seq.metrics().clone()
    }

    #[test]
    fn pure_compute_single_stream_pays_jump_penalty() {
        let spec = LoadSpec::load3(); // aljmp = 0.05, no I/O
        let m = run_load(Workload::partitioned(&spec, 1), 200_000, 1);
        // Expected PD ≈ 1 / (1 + aljmp * (ex slots flushed ≈ 2)).
        assert!(m.pd() > 0.8 && m.pd() < 0.99, "PD = {}", m.pd());
        assert!(m.dropped_jump > 0);
        assert_eq!(m.bus_busy_cycles, 0);
    }

    #[test]
    fn four_streams_remove_hazard_cost() {
        let spec = LoadSpec::load3();
        let m = run_load(Workload::partitioned(&spec, 4), 200_000, 1);
        assert!(m.pd() > 0.99, "PD = {}", m.pd());
        assert_eq!(m.dropped_jump, 0, "interleaving removes jump flushes");
    }

    #[test]
    fn utilization_rises_with_partitioning() {
        // The core Table 4.2 shape.
        let spec = LoadSpec::load1();
        let mut last = 0.0;
        for k in 1..=4 {
            let m = run_load(Workload::partitioned(&spec, k), 300_000, 3);
            assert!(
                m.pd() > last,
                "PD must rise with k: k={k} gives {} after {last}",
                m.pd()
            );
            last = m.pd();
        }
    }

    #[test]
    fn duty_cycled_load_idles_alone_but_fills_with_partners() {
        let spec = LoadSpec::load2();
        let one = run_load(Workload::partitioned(&spec, 1), 300_000, 4);
        let four = run_load(Workload::partitioned(&spec, 4), 300_000, 4);
        assert!(one.pd() < 0.45, "50% duty load alone: PD = {}", one.pd());
        assert!(four.pd() > one.pd() * 1.8, "partitioning fills the gaps");
        assert!(one.delta() < 0.0, "1 IS is worse than the baseline");
        assert!(four.delta() > 50.0, "4 ISs dramatically better");
    }

    #[test]
    fn bus_saturates_io_heavy_workloads() {
        let spec = LoadSpec::load1();
        let m = run_load(Workload::partitioned(&spec, 4), 300_000, 5);
        // Expected bus demand ≈ 1.1 cycles/instruction > 1: the single
        // asynchronous bus is the bottleneck and stays mostly busy.
        let busy_frac = m.bus_busy_cycles as f64 / m.cycles as f64;
        assert!(busy_frac > 0.65, "bus busy fraction {busy_frac}");
        assert!(m.bus_rejections > 0, "contention must occur");
    }

    #[test]
    fn single_stream_disc_is_worse_than_standard() {
        // §4.1: the flush-on-IO assumption "makes DISC performance worse
        // than a single IS computer" when only one IS runs.
        let spec = LoadSpec::load1();
        let m = run_load(Workload::partitioned(&spec, 1), 300_000, 6);
        assert!(
            m.delta() <= 0.0,
            "delta for a single IS should be <= 0, got {}",
            m.delta()
        );
    }

    #[test]
    fn separated_loads_beat_combined_single_stream() {
        // The Table 4.3 shape: running load 1 and load 4 in separate ISs
        // improves delta over statistically combining them into one IS
        // (PD alone can move either way when the shared bus is the
        // bottleneck — delta normalizes by the consumed workload).
        let combined = run_load(
            Workload::combined(vec![LoadSpec::load1(), LoadSpec::load4()]),
            300_000,
            7,
        );
        let separated = run_load(
            Workload::separate(vec![LoadSpec::load1(), LoadSpec::load4()]),
            300_000,
            7,
        );
        assert!(
            separated.delta() > combined.delta() + 10.0,
            "separated delta {} should clearly beat combined delta {}",
            separated.delta(),
            combined.delta()
        );
    }

    #[test]
    fn metrics_are_reproducible_per_seed() {
        let spec = LoadSpec::load4();
        let a = run_load(Workload::partitioned(&spec, 2), 50_000, 42);
        let b = run_load(Workload::partitioned(&spec, 2), 50_000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_latency_accesses_cost_nothing() {
        let spec = LoadSpec::load1().with_tmem(0).with_alpha(1.0);
        let m = run_load(Workload::partitioned(&spec, 1), 100_000, 8);
        assert_eq!(m.bus_busy_cycles, 0);
        assert_eq!(m.external_accesses, 0, "zero-wait accesses bypass the bus");
    }

    #[test]
    fn accounting_identity_holds() {
        let spec = LoadSpec::load1();
        let m = run_load(Workload::partitioned(&spec, 2), 100_000, 9);
        // Every generated instruction either retired, was dropped, or is
        // still in flight (pipe depth bound).
        let in_flight_bound = 4;
        let accounted = m.executed + m.dropped_total();
        let generated: u64 = accounted; // cross-check via bounds below
        assert!(generated <= m.cycles * 2);
        assert!(m.executed > 0);
        assert!(m.cycles - m.bubbles >= m.executed + m.dropped_total() - in_flight_bound);
    }
}
