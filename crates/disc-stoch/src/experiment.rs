//! Experiment drivers: run configurations, multi-seed summaries and the
//! generators behind each of the paper's tables and sweep figures.

use disc_core::SchedulePolicy;

use crate::load::{LoadSpec, Workload};
use crate::metrics::RunMetrics;
use crate::report::Table;
use crate::sequencer::Sequencer;

/// Default simulated horizon per run.
pub const DEFAULT_CYCLES: u64 = 200_000;

/// Default number of seeds per configuration.
pub const DEFAULT_SEEDS: u64 = 5;

/// One simulation configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Stream/load assignment.
    pub workload: Workload,
    /// Pipeline depth (DISC1 = 4).
    pub pipe_depth: usize,
    /// Scheduler policy; `None` selects an even round-robin over the
    /// workload's streams.
    pub schedule: Option<SchedulePolicy>,
    /// Simulated cycles.
    pub cycles: u64,
    /// Base random seed.
    pub seed: u64,
}

impl RunConfig {
    /// Creates a config with DISC1 defaults.
    pub fn new(workload: Workload) -> Self {
        RunConfig {
            workload,
            pipe_depth: 4,
            schedule: None,
            cycles: DEFAULT_CYCLES,
            seed: 1,
        }
    }

    /// Sets the pipeline depth.
    pub fn with_pipe_depth(mut self, depth: usize) -> Self {
        self.pipe_depth = depth;
        self
    }

    /// Sets the scheduler policy.
    pub fn with_schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Sets the simulated horizon.
    pub fn with_cycles(mut self, cycles: u64) -> Self {
        self.cycles = cycles;
        self
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn schedule_for(&self) -> SchedulePolicy {
        self.schedule
            .clone()
            .unwrap_or_else(|| SchedulePolicy::round_robin(self.workload.stream_count()))
    }
}

/// Runs one configuration to completion.
pub fn simulate(cfg: &RunConfig) -> RunMetrics {
    let mut seq = Sequencer::new(&cfg.workload, cfg.pipe_depth, cfg.schedule_for(), cfg.seed);
    seq.run(cfg.cycles);
    seq.metrics().clone()
}

/// Multi-seed aggregate of a configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Mean `PD` across seeds.
    pub pd_mean: f64,
    /// Standard deviation of `PD`.
    pub pd_sd: f64,
    /// Mean `Ps` across seeds.
    pub ps_mean: f64,
    /// Mean `delta` across seeds (percent).
    pub delta_mean: f64,
    /// Standard deviation of `delta`.
    pub delta_sd: f64,
    /// Number of seeds run.
    pub runs: u64,
}

/// Runs `seeds` seeds of a configuration and aggregates.
///
/// The per-seed runs are independent and execute on a
/// [`disc_par::par_map`] pool; results are collected in seed order, so
/// the aggregate is identical to the serial loop it replaced.
///
/// # Panics
///
/// Panics if `seeds` is zero.
pub fn simulate_seeds(cfg: &RunConfig, seeds: u64) -> Summary {
    assert!(seeds > 0, "at least one seed required");
    let configs: Vec<RunConfig> = (0..seeds)
        .map(|i| cfg.clone().with_seed(cfg.seed.wrapping_add(i * 7919)))
        .collect();
    let runs = disc_par::par_map(configs, |c| {
        let m = simulate(&c);
        (m.pd(), m.ps(), m.delta())
    });
    let mut pds = Vec::with_capacity(seeds as usize);
    let mut pss = Vec::with_capacity(seeds as usize);
    let mut deltas = Vec::with_capacity(seeds as usize);
    for (pd, ps, delta) in runs {
        pds.push(pd);
        pss.push(ps);
        deltas.push(delta);
    }
    let stat = |xs: &[f64]| {
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        (mean, var.sqrt())
    };
    let (pd_mean, pd_sd) = stat(&pds);
    let (ps_mean, _) = stat(&pss);
    let (delta_mean, delta_sd) = stat(&deltas);
    Summary {
        pd_mean,
        pd_sd,
        ps_mean,
        delta_mean,
        delta_sd,
        runs: seeds,
    }
}

/// Finds the smallest stream count (1..=max_streams) at which DISC beats
/// the standard processor (`delta > 0`) for `spec` partitioned across
/// streams — the crossover the paper's conclusions describe. Returns
/// `None` when even `max_streams` streams do not reach break-even (e.g.
/// bus-saturated workloads).
pub fn crossover_streams(
    spec: &crate::LoadSpec,
    max_streams: usize,
    cycles: u64,
    seeds: u64,
) -> Option<usize> {
    for k in 1..=max_streams.min(disc_core::SEQUENCE_SLOTS) {
        let cfg = RunConfig::new(Workload::partitioned(spec, k)).with_cycles(cycles);
        if simulate_seeds(&cfg, seeds).delta_mean > 0.0 {
            return Some(k);
        }
    }
    None
}

/// One point of a parameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Human-readable point label.
    pub label: String,
    /// Swept parameter value.
    pub x: f64,
    /// Number of streams at this point.
    pub streams: usize,
    /// Aggregated results.
    pub summary: Summary,
}

/// Sweeps a parameter by mapping each `(x, workload)` pair to a point.
///
/// Points run concurrently; the returned vector is in input order.
pub fn sweep(
    points: impl IntoIterator<Item = (f64, Workload)>,
    configure: impl Fn(RunConfig) -> RunConfig + Sync,
    seeds: u64,
) -> Vec<SweepPoint> {
    disc_par::par_map(points.into_iter().collect(), |(x, workload)| {
        let streams = workload.stream_count();
        let label = workload.name.clone();
        let cfg = configure(RunConfig::new(workload));
        SweepPoint {
            label,
            x,
            streams,
            summary: simulate_seeds(&cfg, seeds),
        }
    })
}

pub mod tables {
    //! Generators for each table and sweep of the paper's evaluation.

    use super::*;

    /// Table 4.1 — the parameter sets (values substituted per DESIGN.md;
    /// the published scan garbles the originals).
    pub fn table_4_1() -> Table {
        let mut t = Table::new(
            "Table 4.1 - Parameter Set for Typical Programs",
            &[
                "meanon", "meanoff", "mean_req", "alpha", "tmem", "mean_io", "aljmp",
            ],
            2,
        );
        let all: Vec<LoadSpec> = vec![
            LoadSpec::load1(),
            LoadSpec::load2(),
            LoadSpec::load3(),
            LoadSpec::load4(),
        ];
        for l in &all {
            t.push_row(
                &l.name,
                vec![
                    l.mean_on.unwrap_or(f64::INFINITY),
                    l.mean_off,
                    l.mean_req.unwrap_or(f64::INFINITY),
                    l.alpha,
                    l.tmem as f64,
                    l.mean_io,
                    l.aljmp,
                ],
            );
        }
        t
    }

    /// Table 4.2 — `PD` (a) and `delta` (b) for loads 1–4 partitioned into
    /// 1..=4 instruction streams.
    pub fn table_4_2(cycles: u64, seeds: u64) -> (Table, Table) {
        let cols = ["1 IS", "2 ISs", "3 ISs", "4 ISs"];
        let mut pd = Table::new("Table 4.2a - Processor Utilization PD", &cols, 3);
        let mut delta = Table::new("Table 4.2b - Delta (%)", &cols, 1);
        // All load × stream-count cells are independent runs: flatten the
        // grid, simulate concurrently, and reassemble rows in order.
        let specs = LoadSpec::presets();
        let cells: Vec<(LoadSpec, usize)> = specs
            .iter()
            .flat_map(|spec| (1..=4).map(move |k| (spec.clone(), k)))
            .collect();
        let results = disc_par::par_map(cells, |(spec, k)| {
            let cfg = RunConfig::new(Workload::partitioned(&spec, k)).with_cycles(cycles);
            simulate_seeds(&cfg, seeds)
        });
        for (r, spec) in specs.iter().enumerate() {
            let row = &results[r * 4..r * 4 + 4];
            pd.push_row(&spec.name, row.iter().map(|s| s.pd_mean).collect());
            delta.push_row(&spec.name, row.iter().map(|s| s.delta_mean).collect());
        }
        (pd, delta)
    }

    /// Table 4.3 — load 1 paired with each other load: combined into one
    /// IS, separated into two, load 1 split into two (3 ISs), and both
    /// split (4 ISs). Returns (`PD`, `delta`).
    pub fn table_4_3(cycles: u64, seeds: u64) -> (Table, Table) {
        let cols = ["Combined", "Separated", "Three ISs", "Four ISs"];
        let mut pd = Table::new("Table 4.3a - Processor Utilization PD", &cols, 3);
        let mut delta = Table::new("Table 4.3b - Delta (%)", &cols, 1);
        let l1 = LoadSpec::load1();
        let others = [LoadSpec::load2(), LoadSpec::load3(), LoadSpec::load4()];
        // Flatten the pairing × partitioning grid and run every cell
        // concurrently, exactly as in `table_4_2`.
        let cells: Vec<Workload> = others
            .iter()
            .flat_map(|other| {
                vec![
                    Workload::combined(vec![l1.clone(), other.clone()]),
                    Workload::separate(vec![l1.clone(), other.clone()]),
                    Workload::custom(
                        "three",
                        vec![vec![l1.clone()], vec![l1.clone()], vec![other.clone()]],
                    ),
                    Workload::custom(
                        "four",
                        vec![
                            vec![l1.clone()],
                            vec![l1.clone()],
                            vec![other.clone()],
                            vec![other.clone()],
                        ],
                    ),
                ]
            })
            .collect();
        let results = disc_par::par_map(cells, |w| {
            let cfg = RunConfig::new(w).with_cycles(cycles);
            simulate_seeds(&cfg, seeds)
        });
        for (r, other) in others.iter().enumerate() {
            let row = &results[r * 4..r * 4 + 4];
            let label = format!("load 1 + {}", other.name);
            pd.push_row(&label, row.iter().map(|s| s.pd_mean).collect());
            delta.push_row(&label, row.iter().map(|s| s.delta_mean).collect());
        }
        (pd, delta)
    }

    /// §4.2 jump-only sweep: no external requests, `aljmp` varied, 1–4
    /// streams. Returns a `PD` table (rows = `aljmp`, columns = streams).
    pub fn sweep_jump(cycles: u64, seeds: u64) -> Table {
        let mut t = Table::new(
            "Sweep: effect of jump instructions only (PD)",
            &["1 IS", "2 ISs", "3 ISs", "4 ISs"],
            3,
        );
        let points = [0.05, 0.1, 0.2, 0.3, 0.4];
        let cells: Vec<(f64, usize)> = points
            .iter()
            .flat_map(|&aljmp| (1..=4).map(move |k| (aljmp, k)))
            .collect();
        let pds = disc_par::par_map(cells, |(aljmp, k)| {
            let spec = LoadSpec::load3().with_aljmp(aljmp).named("jump");
            let cfg = RunConfig::new(Workload::partitioned(&spec, k)).with_cycles(cycles);
            simulate_seeds(&cfg, seeds).pd_mean
        });
        for (r, aljmp) in points.iter().enumerate() {
            t.push_row(&format!("aljmp={aljmp:.2}"), pds[r * 4..r * 4 + 4].to_vec());
        }
        t
    }

    /// §4.2 I/O-only sweep: no jumps, request spacing varied, 1–4 streams.
    pub fn sweep_io(cycles: u64, seeds: u64) -> Table {
        let mut t = Table::new(
            "Sweep: effect of external I/O only (PD)",
            &["1 IS", "2 ISs", "3 ISs", "4 ISs"],
            3,
        );
        let points = [5.0, 10.0, 20.0, 40.0, 80.0];
        let cells: Vec<(f64, usize)> = points
            .iter()
            .flat_map(|&mean_req| (1..=4).map(move |k| (mean_req, k)))
            .collect();
        let pds = disc_par::par_map(cells, |(mean_req, k)| {
            let spec = LoadSpec::load1()
                .with_aljmp(0.0)
                .with_mean_req(Some(mean_req))
                .named("io");
            let cfg = RunConfig::new(Workload::partitioned(&spec, k)).with_cycles(cycles);
            simulate_seeds(&cfg, seeds).pd_mean
        });
        for (r, mean_req) in points.iter().enumerate() {
            t.push_row(
                &format!("mean_req={mean_req:>4.0}"),
                pds[r * 4..r * 4 + 4].to_vec(),
            );
        }
        t
    }

    /// §4.2 pipeline-length sweep on load 1 (PD; rows = depth,
    /// columns = streams).
    pub fn sweep_pipeline(cycles: u64, seeds: u64) -> Table {
        let cols = ["1 IS", "2 ISs", "4 ISs", "8 ISs"];
        let mut t = Table::new("Sweep: pipeline length (PD, load 1)", &cols, 3);
        let depths = [3usize, 4, 5, 6, 8];
        let cells: Vec<(usize, usize)> = depths
            .iter()
            .flat_map(|&depth| [1usize, 2, 4, 8].map(move |k| (depth, k)))
            .collect();
        let pds = disc_par::par_map(cells, |(depth, k)| {
            let cfg = RunConfig::new(Workload::partitioned(&LoadSpec::load1(), k))
                .with_cycles(cycles)
                .with_pipe_depth(depth);
            simulate_seeds(&cfg, seeds).pd_mean
        });
        for (r, depth) in depths.iter().enumerate() {
            t.push_row(&format!("depth={depth}"), pds[r * 4..r * 4 + 4].to_vec());
        }
        t
    }

    /// §4.2 scheduler-sequence sweep: different partition tables over the
    /// same 4-stream workload (PD and per-run delta columns).
    pub fn sweep_scheduler(cycles: u64, seeds: u64) -> Table {
        let mut t = Table::new(
            "Sweep: scheduler sequence (load 1 x 4 ISs)",
            &["PD", "delta %"],
            3,
        );
        let schedules: Vec<(&str, SchedulePolicy)> = vec![
            ("even 4/4/4/4", SchedulePolicy::partitioned(&[4, 4, 4, 4])),
            ("skewed 8/4/2/2", SchedulePolicy::partitioned(&[8, 4, 2, 2])),
            (
                "extreme 13/1/1/1",
                SchedulePolicy::partitioned(&[13, 1, 1, 1]),
            ),
            (
                "weighted-deficit 4:4:4:4",
                SchedulePolicy::WeightedDeficit(vec![4, 4, 4, 4]),
            ),
        ];
        for (name, sched) in schedules {
            let cfg = RunConfig::new(Workload::partitioned(&LoadSpec::load1(), 4))
                .with_cycles(cycles)
                .with_schedule(sched);
            let s = simulate_seeds(&cfg, seeds);
            t.push_row(name, vec![s.pd_mean, s.delta_mean]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::tables::*;
    use super::*;

    const CYCLES: u64 = 60_000;
    const SEEDS: u64 = 3;

    #[test]
    fn summary_aggregates_multiple_seeds() {
        let cfg = RunConfig::new(Workload::partitioned(&LoadSpec::load1(), 2)).with_cycles(30_000);
        let s = simulate_seeds(&cfg, 4);
        assert_eq!(s.runs, 4);
        assert!(s.pd_mean > 0.0 && s.pd_mean < 1.0);
        assert!(s.pd_sd < 0.1, "seeds should agree broadly");
    }

    #[test]
    fn table_4_2_shape_matches_paper() {
        let (pd, delta) = table_4_2(CYCLES, SEEDS);
        // Utilization rises with the degree of partitioning (each row).
        for r in 0..4 {
            for c in 0..3 {
                assert!(
                    pd.value(r, c + 1).unwrap() >= pd.value(r, c).unwrap() - 0.02,
                    "PD should not drop with more streams (row {r})"
                );
            }
            // "The range of improvement … is dramatic as long as at least
            // two ISs are enabled."
            assert!(
                delta.value(r, 3).unwrap() > delta.value(r, 0).unwrap(),
                "delta must improve from 1 to 4 ISs (row {r})"
            );
        }
        // Load 3 (DSP) is already near 1.0 alone but still gains a little.
        let dsp_1 = pd.value(2, 0).unwrap();
        let dsp_4 = pd.value(2, 3).unwrap();
        assert!(dsp_1 > 0.8);
        assert!(dsp_4 > dsp_1);
    }

    #[test]
    fn table_4_3_shape_matches_paper() {
        let (pd, _delta) = table_4_3(CYCLES, SEEDS);
        for r in 0..3 {
            let combined = pd.value(r, 0).unwrap();
            let four = pd.value(r, 3).unwrap();
            assert!(
                four > combined,
                "four ISs must beat the combined single IS (row {r})"
            );
        }
    }

    #[test]
    fn jump_sweep_interleaving_removes_penalty() {
        let t = sweep_jump(CYCLES, SEEDS);
        // At every aljmp, 4 streams beat 1 stream; at high aljmp the gap
        // is large.
        for r in 0..t.rows().len() {
            assert!(t.value(r, 3).unwrap() > t.value(r, 0).unwrap());
        }
        let worst_single = t.value(4, 0).unwrap(); // aljmp = 0.4, 1 IS
        let best_four = t.value(4, 3).unwrap();
        assert!(best_four - worst_single > 0.2, "gap should be dramatic");
    }

    #[test]
    fn io_sweep_relative_gain_shrinks_with_sparse_requests() {
        let t = sweep_io(CYCLES, SEEDS);
        // With very frequent I/O the shared bus saturates and caps the
        // absolute gap, but the *relative* gain of 4 ISs over 1 IS is
        // largest there and fades as requests thin out.
        let ratio_at = |r: usize| t.value(r, 3).unwrap() / t.value(r, 0).unwrap();
        assert!(
            ratio_at(0) > ratio_at(4),
            "relative multistream gain must fade with sparse I/O: {} vs {}",
            ratio_at(0),
            ratio_at(4)
        );
        // PD rises monotonically with sparser requests at any stream count.
        for c in 0..4 {
            for r in 0..4 {
                assert!(t.value(r + 1, c).unwrap() >= t.value(r, c).unwrap());
            }
        }
    }

    #[test]
    fn pipeline_sweep_deep_pipes_need_more_streams() {
        let t = sweep_pipeline(CYCLES, SEEDS);
        // On a deep pipe, 8 streams beat 1 stream by more than on a
        // shallow pipe.
        let shallow_gap = t.value(0, 3).unwrap() - t.value(0, 0).unwrap();
        let deep_gap = t.value(4, 3).unwrap() - t.value(4, 0).unwrap();
        assert!(deep_gap >= shallow_gap - 0.02);
    }

    #[test]
    fn scheduler_sweep_runs_all_policies() {
        let t = sweep_scheduler(CYCLES, SEEDS);
        assert_eq!(t.rows().len(), 4);
        for r in 0..4 {
            assert!(t.value(r, 0).unwrap() > 0.3, "policy {r} PD sane");
        }
    }

    #[test]
    fn crossover_matches_table_shapes() {
        // Load 1 crosses to positive delta at 2 streams; load 3 (DSP) at 2
        // as well (its 1-stream delta is ~0 but not positive); load 4 only
        // at 4.
        assert_eq!(
            crossover_streams(&LoadSpec::load1(), 8, CYCLES, SEEDS),
            Some(2)
        );
        let l4 = crossover_streams(&LoadSpec::load4(), 8, CYCLES, SEEDS);
        assert!(
            l4.is_some() && l4.unwrap() >= 3,
            "load 4 needs many streams: {l4:?}"
        );
    }

    #[test]
    fn table_4_1_lists_every_load() {
        let t = table_4_1();
        assert_eq!(t.rows().len(), 4);
        assert!(t.to_string().contains("load 3"));
    }
}
