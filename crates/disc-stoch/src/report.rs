//! ASCII table rendering for experiment output.

use std::fmt;

/// A simple numeric table with row labels, rendered in fixed-width ASCII
/// (and exportable as CSV), used by every table/figure generator.
///
/// # Example
///
/// ```
/// use disc_stoch::Table;
///
/// let mut t = Table::new("Demo", &["a", "b"], 2);
/// t.push_row("row 1", vec![1.0, 2.5]);
/// let text = t.to_string();
/// assert!(text.contains("Demo"));
/// assert!(text.contains("2.50"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    precision: usize,
}

impl Table {
    /// Creates an empty table with the given title, column headers and
    /// numeric precision.
    pub fn new(title: &str, columns: &[&str], precision: usize) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            precision,
        }
    }

    /// Appends a labelled row.
    ///
    /// # Panics
    ///
    /// Panics when the value count does not match the column count.
    pub fn push_row(&mut self, label: &str, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row `{label}` has {} values for {} columns",
            values.len(),
            self.columns.len()
        );
        self.rows.push((label.to_string(), values));
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Row data.
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// Value at (`row`, `col`), if present.
    pub fn value(&self, row: usize, col: usize) -> Option<f64> {
        self.rows.get(row).and_then(|(_, v)| v.get(col)).copied()
    }

    /// CSV rendering (header row included).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("label");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(label);
            for v in values {
                out.push(',');
                out.push_str(&format!("{:.*}", self.precision, v));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([5])
            .max()
            .unwrap_or(5);
        let col_width = self
            .columns
            .iter()
            .map(|c| c.len())
            .chain([self.precision + 6])
            .max()
            .unwrap_or(10);
        writeln!(f, "{}", self.title)?;
        write!(f, "{:label_width$}", "")?;
        for c in &self.columns {
            write!(f, "  {c:>col_width$}")?;
        }
        writeln!(f)?;
        let total = label_width + (col_width + 2) * self.columns.len();
        writeln!(f, "{}", "-".repeat(total))?;
        for (label, values) in &self.rows {
            write!(f, "{label:label_width$}")?;
            for v in values {
                write!(f, "  {:>col_width$.*}", self.precision, v)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T", &["c1", "c2"], 3);
        t.push_row("r1", vec![0.5, 1.0]);
        t.push_row("longer row", vec![-2.25, 100.0]);
        t
    }

    #[test]
    fn renders_all_cells() {
        let text = sample().to_string();
        assert!(text.contains("0.500"));
        assert!(text.contains("-2.250"));
        assert!(text.contains("longer row"));
        assert!(text.contains("c2"));
    }

    #[test]
    fn csv_roundtrips_values() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "label,c1,c2");
        assert_eq!(lines[1], "r1,0.500,1.000");
    }

    #[test]
    fn value_accessor() {
        let t = sample();
        assert_eq!(t.value(1, 1), Some(100.0));
        assert_eq!(t.value(9, 0), None);
    }

    #[test]
    #[should_panic(expected = "values for")]
    fn mismatched_row_rejected() {
        sample().push_row("bad", vec![1.0]);
    }
}
