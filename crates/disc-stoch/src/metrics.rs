//! The paper's performance measures: `PD`, `Ps` and `delta`.

/// Counters produced by one [`Sequencer`](crate::Sequencer) run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Instructions completed (retired, not flushed).
    pub executed: u64,
    /// Flow-modifying instructions completed.
    pub jumps: u64,
    /// Cycles the external data bus was busy.
    pub bus_busy_cycles: u64,
    /// Instructions dropped by same-stream jump flushes.
    pub dropped_jump: u64,
    /// Instructions dropped when an external access parked their stream.
    pub dropped_io: u64,
    /// Instructions dropped because an access found the bus busy
    /// (includes the cancelled access itself).
    pub dropped_bus_busy: u64,
    /// Cycles in which no stream could issue.
    pub bubbles: u64,
    /// External accesses issued to the bus.
    pub external_accesses: u64,
    /// Accesses cancelled because the bus was busy.
    pub bus_rejections: u64,
    /// Pipeline depth the run used (enters the `Ps` formula).
    pub pipe_depth: usize,
}

impl RunMetrics {
    /// `PD` — *"processor utilization on DISC"*: completed instructions
    /// per cycle.
    pub fn pd(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.executed as f64 / self.cycles as f64
        }
    }

    /// `Ps` — utilization of the standard single-stream processor on the
    /// same consumed workload:
    /// `N / (N + bus_busy + jumps × (pipe_length − 1))`.
    ///
    /// *"This assumes that instructions are not being executed in a
    /// standard processor when it is waiting for data … every time a jump
    /// type instruction is executed, the standard processor will require
    /// (pipe_length − 1) cycles to be flushed from the pipeline."*
    pub fn ps(&self) -> f64 {
        if self.executed == 0 {
            return 0.0;
        }
        let n = self.executed as f64;
        let penalty =
            self.bus_busy_cycles as f64 + self.jumps as f64 * (self.pipe_depth as f64 - 1.0);
        n / (n + penalty)
    }

    /// `delta = (PD − Ps) / Ps × 100%`.
    pub fn delta(&self) -> f64 {
        let ps = self.ps();
        if ps == 0.0 {
            0.0
        } else {
            (self.pd() - ps) / ps * 100.0
        }
    }

    /// Total dropped instructions.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_jump + self.dropped_io + self.dropped_bus_busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            cycles: 1000,
            executed: 600,
            jumps: 100,
            bus_busy_cycles: 200,
            pipe_depth: 4,
            ..Default::default()
        }
    }

    #[test]
    fn pd_is_throughput() {
        assert!((metrics().pd() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ps_formula_matches_paper() {
        // N=600, busy=200, jumps*(P-1)=300 -> 600/1100.
        let ps = metrics().ps();
        assert!((ps - 600.0 / 1100.0).abs() < 1e-12);
    }

    #[test]
    fn delta_sign_tracks_comparison() {
        let m = metrics();
        // PD=0.6 > Ps≈0.545 -> positive delta.
        assert!(m.delta() > 0.0);
        let worse = RunMetrics {
            cycles: 2000,
            ..metrics()
        };
        assert!(worse.delta() < 0.0, "PD=0.3 < Ps -> negative");
    }

    #[test]
    fn empty_run_is_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.pd(), 0.0);
        assert_eq!(m.ps(), 0.0);
        assert_eq!(m.delta(), 0.0);
    }

    #[test]
    fn deeper_pipes_penalize_standard_processor_more() {
        let shallow = RunMetrics {
            pipe_depth: 4,
            ..metrics()
        };
        let deep = RunMetrics {
            pipe_depth: 8,
            ..metrics()
        };
        assert!(deep.ps() < shallow.ps());
    }
}
