//! Reproductions of the paper's figures on the cycle-accurate machine.

use disc_core::{Machine, MachineConfig, SchedulePolicy, StepMode};
use disc_isa::{Program, Reg};

/// Figure 3.1 — the interleaved pipeline: five independent streams on a
/// five-stage pipe; every stage holds a different stream every cycle.
///
/// # Panics
///
/// Panics if the demo program fails to assemble or run (a bug).
pub fn fig_3_1_interleaved_pipeline() -> String {
    fig_3_1_with(StepMode::CycleByCycle)
}

/// [`fig_3_1_interleaved_pipeline`] under an explicit [`StepMode`]. The
/// equivalence tests render every figure in both modes and require
/// byte-identical text.
pub fn fig_3_1_with(mode: StepMode) -> String {
    let mut src = String::new();
    for s in 0..5 {
        src.push_str(&format!(".stream {s}, l{s}\n"));
        src.push_str(&format!(
            "l{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    addi r2, r2, 1\n    jmp l{s}\n"
        ));
    }
    let program = Program::assemble(&src).unwrap();
    // An exact 5-slot sequence keeps consecutive slots on distinct
    // streams (a 16-slot table over 5 streams would double up).
    let cfg = MachineConfig::disc1()
        .with_streams(5)
        .with_pipeline_depth(5)
        .with_schedule(SchedulePolicy::Sequence(vec![0, 1, 2, 3, 4]))
        .with_step_mode(mode);
    let mut m = Machine::new(cfg, &program);
    // Warm the pipe, then trace a window.
    m.run(10).unwrap();
    m.trace_start(12);
    m.run(12).unwrap();
    let trace = m.trace_take().unwrap();
    let mut out = String::from(
        "Figure 3.1 - Interleaved Pipeline\n\
         (five streams s0..s4 on a 5-stage pipe; each column is one cycle)\n\n",
    );
    out.push_str(&trace.pipeline_diagram(&["IF", "ID", "RR", "EX", "WR"]));
    out.push_str(&format!(
        "\njump flushes during window: {}\n",
        m.stats().flushed_jump
    ));
    out
}

/// Figure 3.2 — the interleaved pipeline during a jump: with five streams
/// resident, no other instruction in the pipe belongs to the jumping
/// stream, so nothing is flushed; a single-stream run of the same code
/// flushes on every taken jump.
///
/// # Panics
///
/// Panics if the demo program fails to assemble or run (a bug).
pub fn fig_3_2_jump() -> String {
    fig_3_2_with(StepMode::CycleByCycle)
}

/// [`fig_3_2_jump`] under an explicit [`StepMode`].
pub fn fig_3_2_with(mode: StepMode) -> String {
    let body = "    addi r0, r0, 1\n    addi r1, r1, 1\n    addi r2, r2, 1\n";
    let run_with = |streams: usize| {
        let mut src = String::new();
        for s in 0..streams {
            src.push_str(&format!(".stream {s}, l{s}\nl{s}:\n{body}    jmp l{s}\n"));
        }
        let program = Program::assemble(&src).unwrap();
        let seq = (0..streams as u8).collect::<Vec<_>>();
        let cfg = MachineConfig::disc1()
            .with_streams(streams.max(1))
            .with_pipeline_depth(5)
            .with_schedule(SchedulePolicy::Sequence(seq))
            .with_step_mode(mode);
        let mut m = Machine::new(cfg, &program);
        m.run(400).unwrap();
        let st = m.stats();
        (st.flushed_jump, st.utilization())
    };
    let (flush1, pd1) = run_with(1);
    let (flush5, pd5) = run_with(5);
    format!(
        "Figure 3.2 - Interleaved Pipeline During a Jump\n\n\
         same loop, 400 cycles, 5-stage pipe:\n\
         1 stream : {flush1:>4} instructions flushed by jumps, PD = {pd1:.3}\n\
         5 streams: {flush5:>4} instructions flushed by jumps, PD = {pd5:.3}\n\n\
         With >= pipe-depth streams resident, no instruction behind a jump\n\
         belongs to the jumping stream, so the flush disappears.\n"
    )
}

/// Figure 3.3 — dynamic throughput reallocation: four streams with a
/// statically partitioned schedule (T/2, T/6+, T/6+, T/8) observed across
/// activity phases; idle streams' slots flow to whoever is ready.
///
/// # Panics
///
/// Panics if the demo program fails to assemble or run (a bug).
pub fn fig_3_3_dynamic() -> String {
    fig_3_3_with(StepMode::CycleByCycle)
}

/// [`fig_3_3_dynamic`] under an explicit [`StepMode`].
pub fn fig_3_3_with(mode: StepMode) -> String {
    let mut src = String::new();
    for s in 0..4 {
        src.push_str(&format!(".stream {s}, l{s}\n"));
        src.push_str(&format!(
            "l{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    addi r2, r2, 1\n    \
             addi r3, r3, 1\n    addi r4, r4, 1\n    addi r5, r5, 1\n    jmp l{s}\n"
        ));
    }
    let program = Program::assemble(&src).unwrap();
    let cfg = MachineConfig::disc1()
        .with_schedule(SchedulePolicy::partitioned(&[8, 3, 3, 2]))
        .with_step_mode(mode);
    let mut m = Machine::new(cfg, &program);
    m.set_idle_exit(false);

    let mut out = String::from(
        "Figure 3.3 - Dynamic Instruction Stream Diagram\n\
         static partition: IS1 = 8/16 (T/2), IS2 = 3/16, IS3 = 3/16, IS4 = 2/16\n\n\
         phase                        IS1    IS2    IS3    IS4  (share of issued instructions)\n",
    );
    let mut phase = |m: &mut Machine, label: &str, active: [bool; 4]| {
        for (s, on) in active.iter().enumerate() {
            m.set_reg(s, Reg::Ir, if *on { 1 } else { 0 });
        }
        // Let in-flight instructions of deactivated streams drain before
        // measuring the phase.
        m.run(50).unwrap();
        let before: Vec<u64> = m.stats().retired.clone();
        m.run(2_000).unwrap();
        let after: Vec<u64> = m.stats().retired.clone();
        let delta: Vec<u64> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
        let total: u64 = delta.iter().sum::<u64>().max(1);
        out.push_str(&format!("{label:<26}"));
        for d in &delta {
            out.push_str(&format!("  {:>4.1}%", *d as f64 / total as f64 * 100.0));
        }
        out.push('\n');
    };
    phase(&mut m, "only IS1 active", [true, false, false, false]);
    phase(&mut m, "all active", [true, true, true, true]);
    phase(&mut m, "IS3 inactive", [true, true, false, true]);
    phase(&mut m, "IS1 finished", [false, true, true, true]);
    out.push_str(
        "\nA stream statically assigned T/2 receives T when alone; an idle\n\
         stream's share is dynamically reallocated to the ready streams.\n",
    );
    out
}

/// Figures 3.4/3.5 — the stack window: AWP movement across calls, window
/// allocation and returns, with the register renaming visible.
///
/// # Panics
///
/// Panics if the demo program fails to assemble or run (a bug).
pub fn fig_3_4_stack_window() -> String {
    fig_3_4_with(StepMode::CycleByCycle)
}

/// [`fig_3_4_stack_window`] under an explicit [`StepMode`]. This figure
/// single-steps the machine, where skipping never engages; the knob
/// still exercises the mode plumbing.
pub fn fig_3_4_with(mode: StepMode) -> String {
    let program = Program::assemble(
        r#"
        .stream 0, main
    main:
        ldi r0, 7
        call f
        sta r0, 0x10
        halt
    f:
        winc 2
        ldi r0, 100
        ldi r1, 200
        call g
        wdec 2
        ret
    g:
        addi r1, r1, 0
        ret
    "#,
    )
    .unwrap();
    let mut m = Machine::new(MachineConfig::disc1().with_step_mode(mode), &program);
    let mut out = String::from(
        "Figures 3.4/3.5 - Stack Window Movements\n\n\
         cycle  AWP  event\n",
    );
    let mut last_awp = m.stream(0).window().awp();
    out.push_str(&format!("{:>5}  {last_awp:>3}  initial window\n", 0));
    for _ in 0..200 {
        if m.halted() {
            break;
        }
        m.step().unwrap();
        let awp = m.stream(0).window().awp();
        if awp != last_awp {
            let dir = if awp > last_awp {
                "AWP incremented (fresh R0 allocated)"
            } else {
                "AWP decremented (window popped)"
            };
            out.push_str(&format!("{:>5}  {awp:>3}  {dir}\n", m.cycle()));
            last_awp = awp;
        }
    }
    out.push_str(&format!(
        "\npeak window depth: {} registers; spills: {}; fills: {}\n",
        m.stream(0).window().max_depth(),
        m.stream(0).window().spills(),
        m.stream(0).window().fills(),
    ));
    out
}

/// Figure 3.6 — the DISC1 block diagram, rendered from the live machine
/// configuration.
pub fn fig_3_6_block_diagram() -> String {
    let cfg = MachineConfig::disc1();
    format!(
        "Figure 3.6 - Block Diagram of DISC1\n\n\
         +-------------------------------------------------------------+\n\
         |  program memory (24-bit program bus, Harvard organization)  |\n\
         +-------------------------------------------------------------+\n\
                |  fetch\n\
         +-------------------------------------------------------------+\n\
         |  HARDWARE SCHEDULER: {}-slot sequence table, 1/16 grain,     |\n\
         |  dynamic reallocation of idle slots                          |\n\
         +-------------------------------------------------------------+\n\
                |  one instruction per cycle\n\
         +-------------------------------------------------------------+\n\
         |  {}-stage pipeline: IF -> RD -> EX -> WR                      |\n\
         |  (jumps resolve in EX; flush only their own stream)          |\n\
         +-------------------------------------------------------------+\n\
            |            |            |             |\n\
         +--------+  +--------+  +---------------+  +----------------+\n\
         | {} x IS |  | 16x16  |  | internal RAM  |  | ABI: async     |\n\
         | context|  | MULT   |  | {} words      |  | 16-bit data bus|\n\
         | PC,SR, |  +--------+  | shared, tset  |  | 1 transaction  |\n\
         | IR,MR, |              | semaphores    |  | wait-states    |\n\
         | {}-deep |              +---------------+  +----------------+\n\
         | stack  |\n\
         | window |   4 global registers shared between all streams\n\
         +--------+   per-stream vectored interrupts, bits 7..1 + bg\n",
        disc_core::SEQUENCE_SLOTS,
        cfg.pipeline_depth,
        cfg.streams,
        cfg.internal_words,
        cfg.window_depth,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_3_1_shows_all_five_streams() {
        let d = fig_3_1_interleaved_pipeline();
        for s in 0..5 {
            assert!(d.contains(&format!("s{s}")), "stream {s} missing:\n{d}");
        }
        assert!(d.contains("flushes during window: 0"));
    }

    #[test]
    fn fig_3_2_contrasts_flush_behaviour() {
        let d = fig_3_2_jump();
        assert!(d.contains("5 streams:    0 instructions"), "{d}");
    }

    #[test]
    fn fig_3_3_reallocates_shares() {
        let d = fig_3_3_dynamic();
        let lines: Vec<&str> = d.lines().collect();
        let only = lines.iter().find(|l| l.contains("only IS1")).unwrap();
        assert!(only.contains("100.0%"), "sole stream takes all: {only}");
        let finished = lines.iter().find(|l| l.contains("IS1 finished")).unwrap();
        assert!(
            finished.trim_end().starts_with("IS1 finished") && finished.contains("0.0%"),
            "idle stream keeps nothing: {finished}"
        );
    }

    #[test]
    fn fig_3_4_tracks_window_motion() {
        let d = fig_3_4_stack_window();
        assert!(d.contains("AWP incremented"));
        assert!(d.contains("AWP decremented"));
    }

    #[test]
    fn fig_3_6_reflects_config() {
        let d = fig_3_6_block_diagram();
        assert!(d.contains("1024 words"));
        assert!(d.contains("4-stage"));
    }
}
