//! Profiling harness: runs a single named workload hot for long enough
//! that a sampling profiler (`perf`, `gprofng`) gets a clean picture of
//! the simulator's dispatch loop, without the multi-workload mixing and
//! timing scaffolding of `bench_core`.
//!
//! Usage: `profile_target [workload] [cycles]` where `workload` is one of
//! `compute` (default), `branch`, `io` or `irq`, and `cycles` is the
//! total simulated cycle count (default 50 million). Built and driven by
//! `make profile`.

use disc_core::{DispatchMode, Machine, MachineConfig};
use disc_isa::Program;

fn compute_program(streams: usize) -> Program {
    let mut src = String::new();
    for s in 0..streams {
        src.push_str(&format!(".stream {s}, l{s}\n"));
        src.push_str(&format!(
            "l{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    addi r2, r2, 1\n    jmp l{s}\n"
        ));
    }
    Program::assemble(&src).expect("compute program assembles")
}

fn branch_program(streams: usize) -> Program {
    let mut src = String::new();
    for s in 0..streams {
        src.push_str(&format!(".stream {s}, l{s}\n"));
        src.push_str(&format!(
            "l{s}:\n    addi r0, r0, 1\n    cmpi r0, 4\n    jnz l{s}\n    ldi r0, 0\n    jmp l{s}\n"
        ));
    }
    Program::assemble(&src).expect("branch program assembles")
}

fn io_program() -> Program {
    Program::assemble(
        ".stream 0, a\n.stream 1, b\n\
         a: lui r0, 0x80\nla: ld r1, [r0]\n    st r1, [r0]\n    jmp la\n\
         b: ldi r0, 0\nlb: addi r0, r0, 1\n    jmp lb\n",
    )
    .expect("io program assembles")
}

fn irq_program(busy_streams: usize) -> Program {
    let mut src = String::new();
    for s in 0..busy_streams {
        src.push_str(&format!(".stream {s}, work{s}\n"));
        src.push_str(&format!(
            "work{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    jmp work{s}\n"
        ));
    }
    src.push_str(".vector 3, 5, isr\n");
    src.push_str("isr:\n    lda r0, 0x40\n    addi r0, r0, 1\n    sta r0, 0x40\n    reti\n");
    Program::assemble(&src).expect("irq program assembles")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let workload = args.next().unwrap_or_else(|| "compute".to_string());
    let cycles: u64 = args
        .next()
        .map(|c| c.parse().expect("cycles must be an integer"))
        .unwrap_or(50_000_000);
    let dispatch = match std::env::var("DISC_DISPATCH").as_deref() {
        Ok("legacy") => DispatchMode::Legacy,
        _ => DispatchMode::Superblock,
    };

    let (program, streams) = match workload.as_str() {
        "compute" => (compute_program(4), 4),
        "branch" => (branch_program(4), 4),
        "io" => (io_program(), 2),
        "irq" => (irq_program(3), 4),
        other => {
            eprintln!("unknown workload {other:?} (want compute|branch|io|irq)");
            std::process::exit(2);
        }
    };
    let config = MachineConfig::disc1()
        .with_streams(streams)
        .with_dispatch_mode(dispatch);
    let mut m = Machine::new(config, &program);
    if workload == "irq" {
        m.set_idle_exit(false);
        let mut c = 0;
        while c < cycles {
            m.raise_interrupt(3, 5);
            let chunk = 50.min(cycles - c);
            m.run(chunk).expect("irq run");
            c += chunk;
        }
    } else {
        m.run(cycles).expect("run");
    }
    let sb = m.superblock_stats();
    eprintln!(
        "{workload}: {} cycles, {} retired, {} bursts covering {} cycles ({:.1}% hit rate), {} entry rejects",
        m.stats().cycles,
        m.stats().retired_total(),
        sb.bursts,
        sb.burst_cycles,
        100.0 * sb.hit_rate(m.stats().cycles),
        sb.entry_rejects,
    );
    std::hint::black_box(m.stats().retired_total());
}
