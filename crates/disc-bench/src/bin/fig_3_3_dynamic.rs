//! Regenerates Figure 3.3 — dynamic throughput reallocation.

fn main() {
    print!("{}", disc_bench::figures::fig_3_3_dynamic());
}
