//! Regenerates Figure 3.6 — the DISC1 block diagram.

fn main() {
    print!("{}", disc_bench::figures::fig_3_6_block_diagram());
}
