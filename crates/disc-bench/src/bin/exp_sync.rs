//! E-SYNC: inter-stream synchronization — semaphore polling vs interrupt
//! join.

fn main() {
    print!("{}", disc_bench::experiments::sync_experiment());
}
