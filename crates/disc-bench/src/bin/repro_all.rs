//! Runs every table, figure and experiment generator in order — the full
//! reproduction pass recorded in EXPERIMENTS.md. Pass `--quick` to reduce
//! the stochastic runs, and `--csv <dir>` to additionally export every
//! table as CSV and every figure/experiment as text into `<dir>`.

use std::path::PathBuf;

fn csv_dir() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn save(dir: &Option<PathBuf>, name: &str, contents: &str) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        std::fs::write(dir.join(name), contents).expect("write export");
    }
}

fn main() {
    let (cycles, seeds) = disc_bench::run_scale();
    let dir = csv_dir();
    println!("=== DISC reproduction: all tables, figures and experiments ===");
    println!("stochastic runs: {seeds} seeds x {cycles} cycles per cell\n");

    let t41 = disc_stoch::tables::table_4_1();
    println!("{t41}");
    save(&dir, "table_4_1.csv", &t41.to_csv());
    let (pd2, d2) = disc_stoch::tables::table_4_2(cycles, seeds);
    println!("{pd2}");
    println!("{d2}");
    save(&dir, "table_4_2a.csv", &pd2.to_csv());
    save(&dir, "table_4_2b.csv", &d2.to_csv());
    let (pd3, d3) = disc_stoch::tables::table_4_3(cycles, seeds);
    println!("{pd3}");
    println!("{d3}");
    save(&dir, "table_4_3a.csv", &pd3.to_csv());
    save(&dir, "table_4_3b.csv", &d3.to_csv());
    for (name, table) in [
        ("sweep_jump", disc_stoch::tables::sweep_jump(cycles, seeds)),
        ("sweep_io", disc_stoch::tables::sweep_io(cycles, seeds)),
        (
            "sweep_pipeline",
            disc_stoch::tables::sweep_pipeline(cycles, seeds),
        ),
        (
            "sweep_scheduler",
            disc_stoch::tables::sweep_scheduler(cycles, seeds),
        ),
        (
            "sweep_window",
            disc_stoch::sweep_window_depth(cycles / 4, 11),
        ),
    ] {
        println!("{table}");
        save(&dir, &format!("{name}.csv"), &table.to_csv());
    }
    for (name, text) in [
        (
            "fig_3_1",
            disc_bench::figures::fig_3_1_interleaved_pipeline(),
        ),
        ("fig_3_2", disc_bench::figures::fig_3_2_jump()),
        ("fig_3_3", disc_bench::figures::fig_3_3_dynamic()),
        ("fig_3_4", disc_bench::figures::fig_3_4_stack_window()),
        ("fig_3_6", disc_bench::figures::fig_3_6_block_diagram()),
        ("exp_latency", disc_bench::experiments::latency_table()),
        ("exp_sync", disc_bench::experiments::sync_experiment()),
        (
            "ablation_scheduler",
            disc_bench::experiments::scheduler_ablation(),
        ),
    ] {
        println!("{text}");
        save(&dir, &format!("{name}.txt"), &text);
    }
    if let Some(d) = &dir {
        println!("exports written to {}", d.display());
    }
}
