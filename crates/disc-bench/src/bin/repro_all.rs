//! Runs every table, figure and experiment generator in order — the full
//! reproduction pass recorded in EXPERIMENTS.md. Pass `--quick` to reduce
//! the stochastic runs, and `--csv <dir>` to additionally export every
//! table as CSV and every figure/experiment as text into `<dir>`. Every
//! run also writes a schema-versioned `results/repro_all.report.json`
//! summarizing the tables, the cycle-attribution profile of the Table 4.1
//! machine workload, and the producing configuration.

use std::path::PathBuf;

use disc_obs::{Json, RunReport};

fn csv_dir() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn save(dir: &Option<PathBuf>, name: &str, contents: &str) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        std::fs::write(dir.join(name), contents).expect("write export");
    }
}

fn main() {
    let (cycles, seeds) = disc_bench::run_scale();
    let dir = csv_dir();
    let mut report_tables: Vec<(String, Json)> = Vec::new();
    println!("=== DISC reproduction: all tables, figures and experiments ===");
    println!("stochastic runs: {seeds} seeds x {cycles} cycles per cell\n");

    let t41 = disc_stoch::tables::table_4_1();
    println!("{t41}");
    save(&dir, "table_4_1.csv", &t41.to_csv());
    report_tables.push(("table_4_1".into(), disc_bench::table_json(&t41)));
    let (pd2, d2) = disc_stoch::tables::table_4_2(cycles, seeds);
    println!("{pd2}");
    println!("{d2}");
    save(&dir, "table_4_2a.csv", &pd2.to_csv());
    save(&dir, "table_4_2b.csv", &d2.to_csv());
    report_tables.push(("table_4_2a".into(), disc_bench::table_json(&pd2)));
    report_tables.push(("table_4_2b".into(), disc_bench::table_json(&d2)));
    let (pd3, d3) = disc_stoch::tables::table_4_3(cycles, seeds);
    println!("{pd3}");
    println!("{d3}");
    save(&dir, "table_4_3a.csv", &pd3.to_csv());
    save(&dir, "table_4_3b.csv", &d3.to_csv());
    report_tables.push(("table_4_3a".into(), disc_bench::table_json(&pd3)));
    report_tables.push(("table_4_3b".into(), disc_bench::table_json(&d3)));
    for (name, table) in [
        ("sweep_jump", disc_stoch::tables::sweep_jump(cycles, seeds)),
        ("sweep_io", disc_stoch::tables::sweep_io(cycles, seeds)),
        (
            "sweep_pipeline",
            disc_stoch::tables::sweep_pipeline(cycles, seeds),
        ),
        (
            "sweep_scheduler",
            disc_stoch::tables::sweep_scheduler(cycles, seeds),
        ),
        (
            "sweep_window",
            disc_stoch::sweep_window_depth(cycles / 4, 11),
        ),
    ] {
        println!("{table}");
        save(&dir, &format!("{name}.csv"), &table.to_csv());
        report_tables.push((name.to_string(), disc_bench::table_json(&table)));
    }
    for (name, text) in [
        (
            "fig_3_1",
            disc_bench::figures::fig_3_1_interleaved_pipeline(),
        ),
        ("fig_3_2", disc_bench::figures::fig_3_2_jump()),
        ("fig_3_3", disc_bench::figures::fig_3_3_dynamic()),
        ("fig_3_4", disc_bench::figures::fig_3_4_stack_window()),
        ("fig_3_6", disc_bench::figures::fig_3_6_block_diagram()),
        ("exp_latency", disc_bench::experiments::latency_table()),
        ("exp_sync", disc_bench::experiments::sync_experiment()),
        (
            "ablation_scheduler",
            disc_bench::experiments::scheduler_ablation(),
        ),
    ] {
        println!("{text}");
        save(&dir, &format!("{name}.txt"), &text);
    }
    // Cycle attribution for the Table 4.1 machine workload, appended
    // after all the historical output so prior sections stay
    // byte-identical.
    let attribution = disc_bench::experiments::cycle_attribution();
    println!("{attribution}");
    save(&dir, "cycle_attribution.txt", &attribution);
    if let Some(d) = &dir {
        println!("exports written to {}", d.display());
    }

    let t0 = std::time::Instant::now();
    let machine = disc_bench::experiments::cycle_attribution_machine();
    let wall = t0.elapsed().as_secs_f64();
    let report = RunReport::from_machine_timed("repro_all", &machine, Some(wall))
        .section(
            "scale",
            Json::obj([
                (
                    "mode",
                    Json::str(if cycles == disc_bench::FULL_CYCLES {
                        "full"
                    } else {
                        "quick"
                    }),
                ),
                ("cycles_per_cell", Json::U64(cycles)),
                ("seeds", Json::U64(seeds)),
            ]),
        )
        .section("tables", Json::Obj(report_tables));
    match report.write_under("results", "repro_all") {
        Ok(path) => println!("run report written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write run report: {e}"),
    }
}
