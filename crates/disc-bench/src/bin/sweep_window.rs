//! Future-work study from §5 of the paper: stack-window physical depth
//! versus spill traffic and stall overhead, evaluated by stochastic means.

use disc_obs::{Json, RunReport};

fn main() {
    let calls = if std::env::args().any(|a| a == "--quick") {
        8_000
    } else {
        50_000
    };
    let table = disc_stoch::sweep_window_depth(calls, 11);
    println!("{table}");
    println!("(ctl = leaf-heavy control code, rec = recursion-heavy; {calls} calls)");
    // Cell cost here is measured in calls, not cycles, so the timing
    // section carries no cycle throughput.
    let report = RunReport::new("sweep_window")
        .section("scale", Json::obj([("calls", Json::U64(calls))]))
        .section("table", disc_bench::table_json(&table))
        .section(
            "timing",
            disc_obs::timing_json(
                disc_core::StepMode::CycleByCycle,
                None,
                &disc_core::SkipStats::default(),
            ),
        );
    match report.write_under("results", "sweep_window") {
        Ok(path) => eprintln!("run report written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write run report: {e}"),
    }
}
