//! Future-work study from §5 of the paper: stack-window physical depth
//! versus spill traffic and stall overhead, evaluated by stochastic means.

fn main() {
    let calls = if std::env::args().any(|a| a == "--quick") {
        8_000
    } else {
        50_000
    };
    println!("{}", disc_stoch::sweep_window_depth(calls, 11));
    println!("(ctl = leaf-heavy control code, rec = recursion-heavy; {calls} calls)");
}
