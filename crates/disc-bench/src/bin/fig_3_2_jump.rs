//! Regenerates Figure 3.2 — the interleaved pipeline during a jump.

fn main() {
    print!("{}", disc_bench::figures::fig_3_2_jump());
}
