//! Regenerates Table 4.2 — processor utilization `PD` (a) and `delta` (b)
//! for loads 1–4 partitioned into 1..=4 instruction streams.
//! Pass `--quick` for a reduced run.

fn main() {
    let (cycles, seeds) = disc_bench::run_scale();
    let (pd, delta) = disc_stoch::tables::table_4_2(cycles, seeds);
    println!("{pd}");
    println!("{delta}");
    println!("({seeds} seeds x {cycles} cycles per cell)");
}
