//! Regenerates Figures 3.4/3.5 — stack window movements.

fn main() {
    print!("{}", disc_bench::figures::fig_3_4_stack_window());
}
