//! Regenerates Figure 3.1 — the interleaved pipeline diagram.

fn main() {
    print!("{}", disc_bench::figures::fig_3_1_interleaved_pipeline());
}
