//! Bounded isolation soak: seeded fault campaigns over the real-time
//! workload, asserting that faults aimed at one victim task never steal
//! throughput or deadlines from the others.
//!
//! Exit status is 0 only when every run is clean, so CI can gate on it.
//! A failing seed prints in the summary and replays exactly with
//! `--runs 1 --base-seed <seed>`.
//!
//! Usage: `soak [--runs N] [--horizon CYCLES] [--base-seed SEED]
//! [--step-mode MODE] [--report PATH] [--checkpoint DIR [--resume]]`
//! (worker count follows `DISC_JOBS`). `--report` writes the campaign's
//! schema-versioned run report JSON to PATH in addition to the stdout
//! summary. `--step-mode` selects `cycle-by-cycle` (default) or
//! `event-skip`; the campaign verdict must be identical either way.
//!
//! `--checkpoint DIR` journals every completed run to
//! `DIR/soak.journal` the moment it finishes, making the campaign
//! crash-resumable: after a `kill -9`, rerunning with `--resume` (same
//! DIR, same campaign flags) replays the journalled runs from disk,
//! simulates only the missing ones, and produces a report identical to
//! an uninterrupted campaign. A journal recorded under different
//! campaign flags is refused by fingerprint.

use disc_core::StepMode;
use disc_rts::SoakConfig;

fn parse_u64(args: &mut std::env::Args, flag: &str) -> u64 {
    let value = args
        .next()
        .unwrap_or_else(|| panic!("{flag} needs a value"));
    let radix_stripped = value.strip_prefix("0x");
    match radix_stripped {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => value.parse(),
    }
    .unwrap_or_else(|e| panic!("bad {flag} value {value:?}: {e}"))
}

fn main() {
    let mut cfg = SoakConfig::default();
    let mut report_path: Option<std::path::PathBuf> = None;
    let mut checkpoint: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" | "--seeds" => cfg.runs = parse_u64(&mut args, &arg),
            "--horizon" => cfg.horizon = parse_u64(&mut args, &arg),
            "--base-seed" => cfg.base_seed = parse_u64(&mut args, &arg),
            "--report" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| panic!("--report needs a path"));
                report_path = Some(std::path::PathBuf::from(value));
            }
            "--checkpoint" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| panic!("--checkpoint needs a directory"));
                checkpoint = Some(std::path::PathBuf::from(value));
            }
            "--resume" => resume = true,
            "--step-mode" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| panic!("--step-mode needs a value"));
                cfg.step_mode = match value.as_str() {
                    "cycle-by-cycle" => StepMode::CycleByCycle,
                    "event-skip" => StepMode::EventSkip,
                    other => panic!(
                        "bad --step-mode value {other:?} (expected cycle-by-cycle or event-skip)"
                    ),
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: soak [--runs N] [--horizon CYCLES] [--base-seed SEED] \
                     [--step-mode cycle-by-cycle|event-skip] [--report PATH] \
                     [--checkpoint DIR [--resume]]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    eprintln!(
        "soak: {} runs x {} cycles, base seed {:#x}, {} jobs",
        cfg.runs,
        cfg.horizon,
        cfg.base_seed,
        disc_par::max_jobs().min(cfg.runs.max(1) as usize),
    );
    if resume && checkpoint.is_none() {
        eprintln!("--resume needs --checkpoint DIR (try --help)");
        std::process::exit(2);
    }
    let t0 = std::time::Instant::now();
    let (report, resumed) = match &checkpoint {
        Some(dir) => {
            let path = dir.join("soak.journal");
            let fingerprint = disc_rts::soak::campaign_fingerprint(&cfg);
            let journal = if resume {
                disc_par::Journal::resume(&path, fingerprint)
            } else {
                disc_par::Journal::create(&path, fingerprint)
            }
            .unwrap_or_else(|e| {
                eprintln!("soak: {e}");
                std::process::exit(2);
            });
            let (report, stats) = disc_rts::soak::run_campaign_resumable(&cfg, &journal);
            eprintln!(
                "checkpoint: {} of {} runs replayed from {}, {} executed",
                stats.loaded,
                stats.total,
                path.display(),
                stats.executed,
            );
            (report, Some((stats, path)))
        }
        None => (disc_rts::soak::run_campaign(&cfg), None),
    };
    let wall_secs = t0.elapsed().as_secs_f64();
    print!("{}", report.summary());
    if let Some(path) = report_path {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create report dir");
            }
        }
        let mut run_report = report.run_report_timed(&cfg, Some(wall_secs));
        if let Some((stats, journal)) = &resumed {
            run_report = run_report.with_resume(
                stats.loaded as u64,
                stats.executed as u64,
                &journal.display().to_string(),
            );
        }
        std::fs::write(&path, run_report.render()).expect("write run report");
        eprintln!("run report written to {}", path.display());
    }
    if !report.passed() {
        std::process::exit(1);
    }
}
