//! §4.2 sweep: effect of jump instructions only. Pass `--quick` to reduce.

use disc_obs::{Json, RunReport};

fn main() {
    let (cycles, seeds) = disc_bench::run_scale();
    let table = disc_stoch::tables::sweep_jump(cycles, seeds);
    println!("{table}");
    let report = RunReport::new("sweep_jump")
        .section(
            "scale",
            Json::obj([
                ("cycles_per_cell", Json::U64(cycles)),
                ("seeds", Json::U64(seeds)),
            ]),
        )
        .section("table", disc_bench::table_json(&table));
    match report.write_under("results", "sweep_jump") {
        Ok(path) => eprintln!("run report written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write run report: {e}"),
    }
}
