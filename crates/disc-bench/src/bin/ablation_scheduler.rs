//! A-SCHED: scheduler-partition ablation on a real-time task set.

fn main() {
    print!("{}", disc_bench::experiments::scheduler_ablation());
}
