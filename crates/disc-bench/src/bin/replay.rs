//! Re-executes a `disc-replay/v1` recording (see `disc_bench::replay`).
//!
//! ```text
//! cargo run --release -p disc-bench --bin replay -- run.replay
//! cargo run --release -p disc-bench --bin replay -- run.replay --to-cycle 5000
//! ```
//!
//! Without `--to-cycle`, the recording is replayed to its end and the
//! final machine state is verified **byte for byte** against the snapshot
//! embedded in the file; any difference is a determinism bug (or a
//! simulator change — re-record) and exits 1. With `--to-cycle N`, the
//! re-execution stops at cycle `N` and prints a state digest instead —
//! the time-travel primitive for bisecting where a long run goes wrong.

use std::process::exit;

use disc_bench::replay::{replay, ReplayLog};

fn fail(msg: &str) -> ! {
    eprintln!("replay: {msg}");
    exit(2);
}

fn main() {
    let mut path: Option<String> = None;
    let mut to_cycle: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--to-cycle" => {
                let v = args.next().unwrap_or_default();
                match v.parse() {
                    Ok(n) => to_cycle = Some(n),
                    Err(_) => fail(&format!("invalid --to-cycle value {v:?}")),
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: replay <file.replay> [--to-cycle N]\n\
                     \n\
                     Re-executes a disc-replay/v1 recording deterministically.\n\
                     \n\
                     --to-cycle N   stop at machine cycle N (print a state digest)\n\
                     \n\
                     Without --to-cycle the replay runs to the recording's end and\n\
                     verifies the final state byte-for-byte against the embedded\n\
                     snapshot; a mismatch exits 1."
                );
                return;
            }
            other if other.starts_with('-') => fail(&format!("unknown argument {other}")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    fail("more than one input file given");
                }
            }
        }
    }
    let Some(path) = path else {
        fail("no input file (try --help)");
    };

    let bytes = std::fs::read(&path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let log =
        ReplayLog::load(&bytes).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
    println!(
        "replay: {path}: {} streams, {} taped events, recording ends at cycle {}",
        log.config.streams,
        log.events.len(),
        log.end_cycle
    );

    let machine = match replay(&log, to_cycle) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("replay: {e}");
            exit(1);
        }
    };

    let stats = machine.stats();
    println!(
        "replay: stopped at cycle {} ({} instructions retired)",
        stats.cycles,
        stats.retired.iter().sum::<u64>()
    );
    for s in 0..machine.stream_count() {
        let st = machine.stream(s);
        println!(
            "  stream {s}: pc {:#06x}  ir {:#04x}  retired {}",
            st.pc(),
            st.ir(),
            stats.retired[s]
        );
    }

    let full_replay = !matches!(to_cycle, Some(c) if c < log.end_cycle);
    if full_replay {
        if machine.snapshot() == log.final_snapshot {
            println!("replay: verified — final state is byte-identical to the recording");
        } else {
            eprintln!("replay: FINAL STATE DIVERGES from the recorded snapshot");
            exit(1);
        }
    }
}
