//! §4.2 sweep: pipeline length versus stream count. Pass `--quick` to reduce.

use disc_obs::{Json, RunReport};

fn main() {
    let (cycles, seeds) = disc_bench::run_scale();
    let t0 = std::time::Instant::now();
    let table = disc_stoch::tables::sweep_pipeline(cycles, seeds);
    let wall = t0.elapsed().as_secs_f64();
    println!("{table}");
    let report = RunReport::new("sweep_pipeline")
        .section(
            "scale",
            Json::obj([
                ("cycles_per_cell", Json::U64(cycles)),
                ("seeds", Json::U64(seeds)),
            ]),
        )
        .section("table", disc_bench::table_json(&table))
        .section(
            "timing",
            disc_bench::sweep_timing(&table, cycles, seeds, wall),
        );
    match report.write_under("results", "sweep_pipeline") {
        Ok(path) => eprintln!("run report written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write run report: {e}"),
    }
}
