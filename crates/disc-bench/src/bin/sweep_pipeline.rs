//! §4.2 sweep: pipeline length versus stream count. Pass `--quick` to reduce.

fn main() {
    let (cycles, seeds) = disc_bench::run_scale();
    println!("{}", disc_stoch::tables::sweep_pipeline(cycles, seeds));
}
