//! Differential fuzzer: random DISC1 programs on the cycle-accurate
//! machine vs the `disc-ref` golden-reference interpreter.
//!
//! ```text
//! cargo run --release -p disc-bench --bin fuzz -- --seed 0 --count 1000
//! ```
//!
//! Runs the checked-in regression corpus first, then `count` fresh seeds
//! starting at `seed`, fanned out over `DISC_JOBS` workers. On any
//! divergence the failing program is minimized and its listing printed;
//! exit status 1 signals failure so CI can gate on it.

use std::path::PathBuf;
use std::process::exit;

use disc_bench::fuzz::{
    self, generate, minimize, run_campaign, run_campaign_forked, sparse_listing,
};

fn parse_u64(name: &str, value: &str) -> u64 {
    let parsed = if let Some(hex) = value.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        value.parse()
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("fuzz: invalid value for {name}: {value}");
        exit(2);
    })
}

/// Parses a regression-corpus file: one seed per line, `#` comments and
/// blank lines ignored, `0x` hex accepted.
fn parse_corpus(path: &PathBuf) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("fuzz: cannot read corpus {}", path.display());
        exit(2);
    };
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| parse_u64("corpus seed", l))
        .collect()
}

fn default_corpus() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fuzz/regressions.txt")
}

fn default_artifacts() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fuzz/artifacts")
}

fn main() {
    let mut seed: u64 = 0;
    let mut count: u64 = 1000;
    let mut corpus = Some(default_corpus());
    let mut minimize_failures = true;
    let mut fork = false;
    let mut artifacts = default_artifacts();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = args.next().unwrap_or_default();
                seed = parse_u64("--seed", &v);
            }
            "--count" => {
                let v = args.next().unwrap_or_default();
                count = parse_u64("--count", &v);
            }
            "--corpus" => {
                let v = args.next().unwrap_or_default();
                corpus = Some(PathBuf::from(v));
            }
            "--no-corpus" => corpus = None,
            "--no-minimize" => minimize_failures = false,
            "--fork" => fork = true,
            "--artifacts" => {
                let v = args.next().unwrap_or_default();
                if v.is_empty() {
                    eprintln!("fuzz: --artifacts needs a directory");
                    exit(2);
                }
                artifacts = PathBuf::from(v);
            }
            "--help" | "-h" => {
                println!(
                    "usage: fuzz [--seed N] [--count N] [--corpus PATH | --no-corpus] \
                     [--no-minimize] [--fork] [--artifacts DIR]\n\
                     \n\
                     Differential fuzzing of disc-core against disc-ref.\n\
                     \n\
                     --seed N        first generated seed (default 0; 0x hex ok)\n\
                     --count N       number of fresh seeds to run (default 1000)\n\
                     --corpus PATH   regression seed file (default: crate's fuzz/regressions.txt)\n\
                     --no-corpus     skip the regression corpus\n\
                     --no-minimize   report divergences without shrinking them\n\
                     --fork          fork-based mode coverage: warm up once per seed,\n\
                     \u{20}               snapshot, fork every step x dispatch combo from the\n\
                     \u{20}               warm point; failures leave crash artifacts\n\
                     --artifacts DIR where --fork writes crash artifacts\n\
                     \u{20}               (default: crate's fuzz/artifacts/)\n\
                     \n\
                     Parallelism follows DISC_JOBS (default: all cores)."
                );
                return;
            }
            other => {
                eprintln!("fuzz: unknown argument {other} (try --help)");
                exit(2);
            }
        }
    }

    let corpus_seeds = corpus.as_ref().map(parse_corpus).unwrap_or_default();
    if !corpus_seeds.is_empty() {
        println!(
            "fuzz: corpus {} seeds, then {count} seeds from {seed:#x}",
            corpus_seeds.len()
        );
    } else {
        println!("fuzz: {count} seeds from {seed:#x}");
    }

    let report = if fork {
        run_campaign_forked(&corpus_seeds, seed, count, Some(&artifacts))
    } else {
        run_campaign(&corpus_seeds, seed, count)
    };
    println!(
        "fuzz: {} programs, {} reference instructions, {} divergences{}",
        report.programs,
        report.instructions,
        report.divergences.len(),
        if fork { " (fork mode)" } else { "" }
    );

    if report.passed() {
        return;
    }
    for div in &report.divergences {
        eprint!("{div}");
        // Fork-mode failures already carry a replayable artifact; the
        // nop-out minimizer runs the non-fork comparison, which may not
        // reproduce a mode-specific divergence, so skip it there.
        if minimize_failures && !fork {
            let gp = generate(div.seed);
            let min = minimize(&gp);
            match fuzz::compare(&min) {
                Err(final_div) => {
                    eprintln!("  minimized program ({} streams):", min.streams);
                    for line in sparse_listing(&min.program).lines() {
                        eprintln!("    {line}");
                    }
                    for d in &final_div.details {
                        eprintln!("    still differs: {d}");
                    }
                }
                Ok(_) => eprintln!(
                    "  (divergence not stable under re-run; seed {:#x})",
                    div.seed
                ),
            }
        }
        eprintln!(
            "  reproduce: cargo run -p disc-bench --bin fuzz -- {}--no-corpus --seed {:#x} --count 1",
            if fork { "--fork " } else { "" },
            div.seed
        );
    }
    exit(1);
}
