//! Prints Table 4.1 — the stochastic parameter sets for the four loads.

fn main() {
    let t = disc_stoch::tables::table_4_1();
    println!("{t}");
    println!("(values substituted to match the paper's prose; see DESIGN.md)");
}
