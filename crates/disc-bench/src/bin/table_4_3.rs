//! Regenerates Table 4.3 — load 1 paired with loads 2/3/4: combined into
//! one IS, separated, load 1 split (3 ISs), both split (4 ISs).
//! Pass `--quick` for a reduced run.

fn main() {
    let (cycles, seeds) = disc_bench::run_scale();
    let (pd, delta) = disc_stoch::tables::table_4_3(cycles, seeds);
    println!("{pd}");
    println!("{delta}");
    println!("({seeds} seeds x {cycles} cycles per cell)");
}
