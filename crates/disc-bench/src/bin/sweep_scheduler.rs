//! §4.2 sweep: scheduler sequence variants. Pass `--quick` to reduce.

fn main() {
    let (cycles, seeds) = disc_bench::run_scale();
    println!("{}", disc_stoch::tables::sweep_scheduler(cycles, seeds));
}
