//! E-LAT: interrupt latency, DISC dedicated stream vs baseline context
//! switch, idle and under load.

fn main() {
    print!("{}", disc_bench::experiments::latency_table());
}
