//! §4.2 sweep: effect of external I/O only. Pass `--quick` to reduce.

fn main() {
    let (cycles, seeds) = disc_bench::run_scale();
    println!("{}", disc_stoch::tables::sweep_io(cycles, seeds));
}
