//! Dumps a VCD waveform of the interleaved pipeline (Figure 3.1 as a
//! waveform): four streams, one signal per stage. Pipe to a file and open
//! in GTKWave. Optional argument: number of cycles (default 64).

use disc_core::{Machine, MachineConfig};
use disc_isa::Program;

fn main() {
    let cycles: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let mut src = String::new();
    for s in 0..4 {
        src.push_str(&format!(
            ".stream {s}, l{s}\nl{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    \
             lui r2, 0x80\n    ld r3, [r2]\n    jmp l{s}\n"
        ));
    }
    let program = Program::assemble(&src).expect("demo assembles");
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    m.trace_start(cycles as usize);
    m.run(cycles).expect("demo runs");
    let trace = m.trace_take().expect("trace collected");
    print!("{}", trace.to_vcd(&["IF", "RD", "EX", "WR"]));
}
