//! Simulator-throughput benchmark: how many simulated machine cycles per
//! wall-clock second the cycle-accurate DISC1 core sustains on three
//! representative workloads (compute-bound, I/O-bound, interrupt-heavy).
//!
//! Writes `BENCH_core.json` (override with `--out <path>`) containing the
//! measured rates next to the recorded seed-commit baseline, so the
//! speedup of the predecoded/allocation-free hot loop is auditable from
//! the file alone. Pass `--smoke` for a fast schema-only run (used by CI);
//! smoke rates are not comparable to the full run, so the baseline fields
//! are `null` there.

use std::time::Instant;

use disc_core::{Machine, MachineConfig};
use disc_isa::Program;

/// Simulated cycles per timed repetition (full mode).
const FULL_CYCLES: u64 = 2_000_000;
/// Simulated cycles per timed repetition (smoke mode).
const SMOKE_CYCLES: u64 = 5_000;
/// Timed repetitions per workload; the median is reported.
const REPS: usize = 3;

/// Throughput of the seed commit (pre predecode/allocation-free rework),
/// in simulated cycles per wall second. Measured with this same binary
/// built at the seed tree, full mode, on the reference container — see
/// EXPERIMENTS.md "Performance" for the procedure.
const SEED_BASELINE: &[(&str, f64)] = &[
    ("compute_bound_4s", SEED_COMPUTE),
    ("io_bound_2s", SEED_IO),
    ("interrupt_heavy_3s", SEED_IRQ),
];
const SEED_COMPUTE: f64 = 4_729_671.0;
const SEED_IO: f64 = 7_871_148.0;
const SEED_IRQ: f64 = 6_203_363.0;

fn compute_program(streams: usize) -> Program {
    let mut src = String::new();
    for s in 0..streams {
        src.push_str(&format!(".stream {s}, l{s}\n"));
        src.push_str(&format!(
            "l{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    addi r2, r2, 1\n    jmp l{s}\n"
        ));
    }
    Program::assemble(&src).expect("compute program assembles")
}

fn io_program() -> Program {
    Program::assemble(
        ".stream 0, a\n.stream 1, b\n\
         a: lui r0, 0x80\nla: ld r1, [r0]\n    st r1, [r0]\n    jmp la\n\
         b: ldi r0, 0\nlb: addi r0, r0, 1\n    jmp lb\n",
    )
    .expect("io program assembles")
}

fn irq_program(busy_streams: usize) -> Program {
    let mut src = String::new();
    for s in 0..busy_streams {
        src.push_str(&format!(".stream {s}, work{s}\n"));
        src.push_str(&format!(
            "work{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    jmp work{s}\n"
        ));
    }
    src.push_str(".vector 3, 5, isr\n");
    src.push_str("isr:\n    lda r0, 0x40\n    addi r0, r0, 1\n    sta r0, 0x40\n    reti\n");
    Program::assemble(&src).expect("irq program assembles")
}

struct Measurement {
    name: &'static str,
    description: &'static str,
    sim_cycles: u64,
    wall_ns: u128,
}

impl Measurement {
    fn rate(&self) -> f64 {
        self.sim_cycles as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// Times `run` (which must simulate exactly `sim_cycles` cycles) over
/// one warmup plus [`REPS`] timed repetitions and keeps the median.
fn measure(
    name: &'static str,
    description: &'static str,
    sim_cycles: u64,
    run: impl Fn(u64),
) -> Measurement {
    run(sim_cycles); // warmup
    let mut times: Vec<u128> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            run(sim_cycles);
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    Measurement {
        name,
        description,
        sim_cycles,
        wall_ns: times[times.len() / 2],
    }
}

fn bench_compute(cycles: u64) -> Measurement {
    let program = compute_program(4);
    measure(
        "compute_bound_4s",
        "4 streams of register arithmetic, no external bus traffic",
        cycles,
        |n| {
            let mut m = Machine::new(MachineConfig::disc1().with_streams(4), &program);
            m.run(n).expect("compute run");
            assert_eq!(m.stats().cycles, n);
            std::hint::black_box(m.stats().retired_total());
        },
    )
}

fn bench_io(cycles: u64) -> Measurement {
    let program = io_program();
    measure(
        "io_bound_2s",
        "1 stream hammering external loads/stores + 1 compute stream",
        cycles,
        |n| {
            let mut m = Machine::new(MachineConfig::disc1().with_streams(2), &program);
            m.run(n).expect("io run");
            assert_eq!(m.stats().cycles, n);
            std::hint::black_box(m.stats().external_accesses);
        },
    )
}

fn bench_irq(cycles: u64) -> Measurement {
    let program = irq_program(3);
    measure(
        "interrupt_heavy_3s",
        "3 busy streams + dormant server stream, interrupt raised every 50 cycles",
        cycles,
        |n| {
            let mut m = Machine::new(MachineConfig::disc1(), &program);
            m.set_idle_exit(false);
            let mut c = 0;
            while c < n {
                m.raise_interrupt(3, 5);
                for _ in 0..50.min(n - c) {
                    m.step().expect("irq step");
                }
                c += 50.min(n - c);
            }
            assert_eq!(m.stats().cycles, n);
            std::hint::black_box(m.stats().vectors_taken[3]);
        },
    )
}

fn seed_rate(name: &str) -> Option<f64> {
    SEED_BASELINE
        .iter()
        .find(|(n, r)| *n == name && *r > 0.0)
        .map(|(_, r)| *r)
}

fn json_f64(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => format!("{v:.1}"),
        _ => "null".to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_core.json".to_string());
    let cycles = if smoke { SMOKE_CYCLES } else { FULL_CYCLES };

    eprintln!(
        "bench_core: {} mode, {cycles} simulated cycles x {REPS} reps per workload",
        if smoke { "smoke" } else { "full" }
    );
    let runs = [bench_compute(cycles), bench_io(cycles), bench_irq(cycles)];

    let mut entries = Vec::new();
    for m in &runs {
        let rate = m.rate();
        // Smoke runs are too short to compare against the recorded
        // full-mode baseline.
        let seed = if smoke { None } else { seed_rate(m.name) };
        let speedup = seed.map(|s| rate / s);
        eprintln!(
            "  {:<22} {:>12.0} sim cycles/s{}",
            m.name,
            rate,
            speedup
                .map(|s| format!("  ({s:.2}x vs seed)"))
                .unwrap_or_default()
        );
        entries.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"description\": \"{}\",\n      \
             \"sim_cycles\": {},\n      \"wall_ns\": {},\n      \
             \"sim_cycles_per_sec\": {},\n      \
             \"seed_sim_cycles_per_sec\": {},\n      \"speedup_vs_seed\": {}\n    }}",
            m.name,
            m.description,
            m.sim_cycles,
            m.wall_ns,
            json_f64(Some(rate)),
            json_f64(seed),
            speedup
                .filter(|s| s.is_finite())
                .map(|s| format!("{s:.3}"))
                .unwrap_or_else(|| "null".to_string()),
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"disc-bench-core/v1\",\n  \"mode\": \"{}\",\n  \
         \"cycles_per_run\": {},\n  \"reps\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        cycles,
        REPS,
        entries.join(",\n")
    );
    std::fs::write(&out, &json).expect("write benchmark json");
    eprintln!("wrote {out}");
}
