//! Simulator-throughput benchmark: how many simulated machine cycles per
//! wall-clock second the cycle-accurate DISC1 core sustains on five
//! representative workloads (compute-bound, branch-heavy, I/O-bound,
//! interrupt-heavy, and a quiescence-heavy timer idle loop).
//!
//! Every workload is timed in both [`StepMode`]s *and* both
//! [`DispatchMode`]s, so `BENCH_core.json` records what event skipping
//! buys (`skip_speedup`) and what the superblock dispatcher buys
//! (`dispatch_speedup`, the default rate over `legacy_sim_cycles_per_sec`)
//! next to the recorded seed-commit baseline. Pass `--smoke` for a fast
//! schema-only run (used by CI); smoke rates are not comparable to the
//! full run, so the baseline fields are `null` there. Pass `--check` to
//! re-measure and fail (exit 1) if any workload's cycle-by-cycle rate
//! drops more than 25% below the committed `BENCH_core.json` baseline
//! (override the path with `--baseline <path>`); that is the CI
//! perf-regression gate. The check honors `DISC_DISPATCH=superblock` /
//! `DISC_DISPATCH=legacy`, timing that dispatcher and comparing it
//! against the matching baseline column, so CI gates both modes.
//!
//! `DISC_BENCH_REPS` and `DISC_BENCH_CYCLES` override the repetition
//! count and the simulated cycles per repetition (`make bench-check`
//! uses `DISC_BENCH_REPS=1` for a quick gate). Invalid values abort with
//! an error instead of being silently ignored.

use std::time::Instant;

use disc_bus::{PeripheralBus, Timer};
use disc_core::{DispatchMode, Machine, MachineConfig, StepMode};
use disc_isa::Program;

/// Simulated cycles per timed repetition (full mode).
const FULL_CYCLES: u64 = 2_000_000;
/// Simulated cycles per timed repetition (smoke mode).
const SMOKE_CYCLES: u64 = 5_000;
/// Timed repetitions per workload; the median is reported.
const REPS: usize = 3;
/// A `--check` run must sustain at least this fraction of the committed
/// baseline rate on every workload.
const CHECK_FLOOR: f64 = 0.75;

/// Throughput of the seed commit (pre predecode/allocation-free rework),
/// in simulated cycles per wall second. Measured with this same binary
/// built at the seed tree, full mode, on the reference container — see
/// EXPERIMENTS.md "Performance" for the procedure. `timer_idle_1s` has
/// no entry: the workload did not exist at the seed commit.
const SEED_BASELINE: &[(&str, f64)] = &[
    ("compute_bound_4s", SEED_COMPUTE),
    ("io_bound_2s", SEED_IO),
    ("interrupt_heavy_3s", SEED_IRQ),
];
const SEED_COMPUTE: f64 = 4_729_671.0;
const SEED_IO: f64 = 7_871_148.0;
const SEED_IRQ: f64 = 6_203_363.0;

fn compute_program(streams: usize) -> Program {
    let mut src = String::new();
    for s in 0..streams {
        src.push_str(&format!(".stream {s}, l{s}\n"));
        src.push_str(&format!(
            "l{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    addi r2, r2, 1\n    jmp l{s}\n"
        ));
    }
    Program::assemble(&src).expect("compute program assembles")
}

fn branch_program(streams: usize) -> Program {
    let mut src = String::new();
    for s in 0..streams {
        src.push_str(&format!(".stream {s}, l{s}\n"));
        src.push_str(&format!(
            "l{s}:\n    addi r0, r0, 1\n    cmpi r0, 4\n    jnz l{s}\n    ldi r0, 0\n    jmp l{s}\n"
        ));
    }
    Program::assemble(&src).expect("branch program assembles")
}

fn io_program() -> Program {
    Program::assemble(
        ".stream 0, a\n.stream 1, b\n\
         a: lui r0, 0x80\nla: ld r1, [r0]\n    st r1, [r0]\n    jmp la\n\
         b: ldi r0, 0\nlb: addi r0, r0, 1\n    jmp lb\n",
    )
    .expect("io program assembles")
}

fn irq_program(busy_streams: usize) -> Program {
    let mut src = String::new();
    for s in 0..busy_streams {
        src.push_str(&format!(".stream {s}, work{s}\n"));
        src.push_str(&format!(
            "work{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    jmp work{s}\n"
        ));
    }
    src.push_str(".vector 3, 5, isr\n");
    src.push_str("isr:\n    lda r0, 0x40\n    addi r0, r0, 1\n    sta r0, 0x40\n    reti\n");
    Program::assemble(&src).expect("irq program assembles")
}

fn timer_program() -> Program {
    Program::assemble(
        ".stream 0, idle\n.vector 0, 5, isr\n\
         idle:\n    stop\n\
         isr:\n    lda r0, 0x40\n    addi r0, r0, 1\n    sta r0, 0x40\n    reti\n",
    )
    .expect("timer program assembles")
}

struct Measurement {
    name: &'static str,
    description: &'static str,
    sim_cycles: u64,
    wall_ns: u128,
    /// Median wall time of the same workload under [`StepMode::EventSkip`].
    skip_wall_ns: u128,
    /// Median wall time under [`DispatchMode::Legacy`] (cycle-by-cycle).
    legacy_wall_ns: u128,
}

impl Measurement {
    fn rate(&self) -> f64 {
        self.sim_cycles as f64 / (self.wall_ns as f64 / 1e9)
    }

    fn skip_rate(&self) -> f64 {
        self.sim_cycles as f64 / (self.skip_wall_ns as f64 / 1e9)
    }

    fn legacy_rate(&self) -> f64 {
        self.sim_cycles as f64 / (self.legacy_wall_ns as f64 / 1e9)
    }
}

/// What a benchmark pass measures: the gated dispatcher only (`--check`)
/// or every step/dispatch mode combination (full and smoke runs).
#[derive(Clone, Copy)]
struct Plan {
    /// Dispatch mode for the primary (cycle-by-cycle) timing.
    dispatch: DispatchMode,
    /// Also time event-skip and legacy-dispatch passes.
    all_modes: bool,
}

/// Times `run` (which must simulate exactly `sim_cycles` cycles in the
/// given modes) over one warmup plus `reps` timed repetitions and keeps
/// the median.
fn median_ns(
    sim_cycles: u64,
    reps: usize,
    mode: StepMode,
    dispatch: DispatchMode,
    run: &impl Fn(u64, StepMode, DispatchMode),
) -> u128 {
    run(sim_cycles, mode, dispatch); // warmup
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            run(sim_cycles, mode, dispatch);
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn measure(
    name: &'static str,
    description: &'static str,
    sim_cycles: u64,
    reps: usize,
    plan: Plan,
    run: impl Fn(u64, StepMode, DispatchMode),
) -> Measurement {
    let wall_ns = median_ns(
        sim_cycles,
        reps,
        StepMode::CycleByCycle,
        plan.dispatch,
        &run,
    );
    let (skip_wall_ns, legacy_wall_ns) = if plan.all_modes {
        (
            median_ns(sim_cycles, reps, StepMode::EventSkip, plan.dispatch, &run),
            median_ns(
                sim_cycles,
                reps,
                StepMode::CycleByCycle,
                DispatchMode::Legacy,
                &run,
            ),
        )
    } else {
        (wall_ns, wall_ns)
    };
    Measurement {
        name,
        description,
        sim_cycles,
        wall_ns,
        skip_wall_ns,
        legacy_wall_ns,
    }
}

fn bench_compute(cycles: u64, reps: usize, plan: Plan) -> Measurement {
    let program = compute_program(4);
    measure(
        "compute_bound_4s",
        "4 streams of register arithmetic, no external bus traffic",
        cycles,
        reps,
        plan,
        |n, mode, dispatch| {
            let config = MachineConfig::disc1()
                .with_streams(4)
                .with_step_mode(mode)
                .with_dispatch_mode(dispatch);
            let mut m = Machine::new(config, &program);
            m.run(n).expect("compute run");
            assert_eq!(m.stats().cycles, n);
            std::hint::black_box(m.stats().retired_total());
        },
    )
}

fn bench_branch(cycles: u64, reps: usize, plan: Plan) -> Measurement {
    let program = branch_program(4);
    measure(
        "branch_heavy_4s",
        "4 streams in tight count-to-4 loops, a taken branch every few ops",
        cycles,
        reps,
        plan,
        |n, mode, dispatch| {
            let config = MachineConfig::disc1()
                .with_streams(4)
                .with_step_mode(mode)
                .with_dispatch_mode(dispatch);
            let mut m = Machine::new(config, &program);
            m.run(n).expect("branch run");
            assert_eq!(m.stats().cycles, n);
            std::hint::black_box(m.stats().retired_total());
        },
    )
}

fn bench_io(cycles: u64, reps: usize, plan: Plan) -> Measurement {
    let program = io_program();
    measure(
        "io_bound_2s",
        "1 stream hammering external loads/stores + 1 compute stream",
        cycles,
        reps,
        plan,
        |n, mode, dispatch| {
            let config = MachineConfig::disc1()
                .with_streams(2)
                .with_step_mode(mode)
                .with_dispatch_mode(dispatch);
            let mut m = Machine::new(config, &program);
            m.run(n).expect("io run");
            assert_eq!(m.stats().cycles, n);
            std::hint::black_box(m.stats().external_accesses);
        },
    )
}

fn bench_irq(cycles: u64, reps: usize, plan: Plan) -> Measurement {
    let program = irq_program(3);
    measure(
        "interrupt_heavy_3s",
        "3 busy streams + dormant server stream, interrupt raised every 50 cycles",
        cycles,
        reps,
        plan,
        |n, mode, dispatch| {
            let config = MachineConfig::disc1()
                .with_step_mode(mode)
                .with_dispatch_mode(dispatch);
            let mut m = Machine::new(config, &program);
            m.set_idle_exit(false);
            let mut c = 0;
            while c < n {
                m.raise_interrupt(3, 5);
                let chunk = 50.min(n - c);
                m.run(chunk).expect("irq run");
                c += chunk;
            }
            assert_eq!(m.stats().cycles, n);
            std::hint::black_box(m.stats().vectors_taken[3]);
        },
    )
}

fn bench_timer_idle(cycles: u64, reps: usize, plan: Plan) -> Measurement {
    let program = timer_program();
    measure(
        "timer_idle_1s",
        "1 parked stream woken by a periodic timer every 1000 cycles (quiescence-heavy)",
        cycles,
        reps,
        plan,
        |n, mode, dispatch| {
            let mut bus = PeripheralBus::new();
            bus.map(0x9000, Timer::REGS, Box::new(Timer::periodic(1000, 0, 5)))
                .expect("map timer");
            let config = MachineConfig::disc1()
                .with_streams(1)
                .with_step_mode(mode)
                .with_dispatch_mode(dispatch);
            let mut m = Machine::with_bus(config, &program, Box::new(bus));
            m.set_idle_exit(false);
            m.run(n).expect("timer run");
            assert_eq!(m.stats().cycles, n);
            std::hint::black_box(m.stats().vectors_taken[0]);
        },
    )
}

/// Measures what fork-based mode coverage saves: covering all four
/// step × dispatch mode combinations of a `warm + tail` workload by full
/// re-execution versus snapshotting the shared warm point once and
/// forking each combo for the tail only (the `fuzz --fork` strategy).
/// Returns wall(full) / wall(forked); with the 90/10 split used here the
/// ideal value is 4·(w+t)/(w+4t+ε) ≈ 3.1×.
fn fork_fuzz_speedup(cycles: u64) -> f64 {
    let program = compute_program(4);
    let warm = cycles * 9 / 10;
    let tail = cycles - warm;
    let combos = [
        (StepMode::CycleByCycle, DispatchMode::Legacy),
        (StepMode::CycleByCycle, DispatchMode::Superblock),
        (StepMode::EventSkip, DispatchMode::Legacy),
        (StepMode::EventSkip, DispatchMode::Superblock),
    ];
    let config = |step, dispatch| {
        MachineConfig::disc1()
            .with_streams(4)
            .with_step_mode(step)
            .with_dispatch_mode(dispatch)
    };

    let t0 = Instant::now();
    for (step, dispatch) in combos {
        let mut m = Machine::new(config(step, dispatch), &program);
        m.run(warm + tail).expect("full-coverage run");
        std::hint::black_box(m.stats().retired_total());
    }
    let full = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mut base = Machine::new(
        config(StepMode::CycleByCycle, DispatchMode::Legacy),
        &program,
    );
    base.run(warm).expect("warm-up run");
    let snap = base.snapshot();
    for (step, dispatch) in combos {
        let mut fork = Machine::new(config(step, dispatch), &program);
        fork.restore(&snap).expect("fork restores");
        fork.run(tail).expect("fork tail run");
        std::hint::black_box(fork.stats().retired_total());
    }
    let forked = t0.elapsed().as_secs_f64();

    full / forked
}

fn seed_rate(name: &str) -> Option<f64> {
    SEED_BASELINE
        .iter()
        .find(|(n, r)| *n == name && *r > 0.0)
        .map(|(_, r)| *r)
}

fn json_f64(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => format!("{v:.1}"),
        _ => "null".to_string(),
    }
}

/// Reads a positive-integer environment override, aborting with a clear
/// error when the variable is set but not a positive integer.
fn env_override(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse::<u64>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            eprintln!("bench_core: {name}={raw:?} is not a positive integer");
            std::process::exit(2);
        }
    }
}

/// One workload's committed baseline rates.
struct BaselineEntry {
    name: String,
    /// Default-dispatch (superblock) cycle-by-cycle rate.
    rate: f64,
    /// Legacy-dispatch rate; absent in pre-v3 baselines.
    legacy_rate: Option<f64>,
}

/// Extracts the per-workload rates from a committed `BENCH_core.json`.
/// The file is generated by this binary, so a line-oriented scan of the
/// stable formatting is sufficient — no JSON parser needed.
fn parse_baseline(text: &str) -> Vec<BaselineEntry> {
    let field = |line: &str, key: &str| -> Option<String> {
        let rest = line.trim().strip_prefix(&format!("\"{key}\":"))?;
        Some(rest.trim().trim_end_matches(',').trim_matches('"').into())
    };
    let mut out: Vec<BaselineEntry> = Vec::new();
    let mut name: Option<String> = None;
    for line in text.lines() {
        if let Some(v) = field(line, "name") {
            name = Some(v);
        } else if let Some(v) = field(line, "sim_cycles_per_sec") {
            if let (Some(n), Ok(rate)) = (name.take(), v.parse::<f64>()) {
                out.push(BaselineEntry {
                    name: n,
                    rate,
                    legacy_rate: None,
                });
            }
        } else if let Some(v) = field(line, "legacy_sim_cycles_per_sec") {
            if let (Some(last), Ok(rate)) = (out.last_mut(), v.parse::<f64>()) {
                last.legacy_rate = Some(rate);
            }
        }
    }
    out
}

/// Dispatch mode gated by `--check`, from `DISC_DISPATCH` (defaults to
/// the superblock dispatcher, which is also the machine default).
fn dispatch_from_env() -> DispatchMode {
    match std::env::var("DISC_DISPATCH") {
        Ok(v) if v == "legacy" => DispatchMode::Legacy,
        Ok(v) if v == "superblock" => DispatchMode::Superblock,
        Ok(v) => {
            eprintln!("bench_core: DISC_DISPATCH={v:?} is not \"superblock\" or \"legacy\"");
            std::process::exit(2);
        }
        Err(_) => DispatchMode::Superblock,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = arg_after("--out").unwrap_or_else(|| "BENCH_core.json".to_string());
    let baseline_path = arg_after("--baseline").unwrap_or_else(|| "BENCH_core.json".to_string());
    let reps = env_override("DISC_BENCH_REPS").map_or(REPS, |n| n as usize);
    let cycles =
        env_override("DISC_BENCH_CYCLES").unwrap_or(if smoke { SMOKE_CYCLES } else { FULL_CYCLES });

    eprintln!(
        "bench_core: {} mode, {cycles} simulated cycles x {reps} reps per workload",
        if check {
            "check"
        } else if smoke {
            "smoke"
        } else {
            "full"
        }
    );
    // The check gate compares only cycle-by-cycle rates in the gated
    // dispatch mode, so skip the other timings there to keep it quick.
    let plan = Plan {
        dispatch: if check {
            dispatch_from_env()
        } else {
            DispatchMode::Superblock
        },
        all_modes: !check,
    };
    let runs = [
        bench_compute(cycles, reps, plan),
        bench_branch(cycles, reps, plan),
        bench_io(cycles, reps, plan),
        bench_irq(cycles, reps, plan),
        bench_timer_idle(cycles, reps, plan),
    ];

    if check {
        let legacy = matches!(plan.dispatch, DispatchMode::Legacy);
        eprintln!(
            "bench_core: gating {} dispatch",
            if legacy { "legacy" } else { "superblock" }
        );
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline = parse_baseline(&text);
        assert!(
            !baseline.is_empty(),
            "no workload rates found in {baseline_path}"
        );
        let mut failures: Vec<String> = Vec::new();
        for m in &runs {
            let rate = m.rate();
            let base = baseline.iter().find(|b| b.name == m.name).and_then(|b| {
                if legacy {
                    b.legacy_rate
                } else {
                    Some(b.rate)
                }
            });
            let Some(base) = base else {
                eprintln!(
                    "  {:<22} {rate:>12.0} sim cycles/s  (no baseline, skipped)",
                    m.name
                );
                continue;
            };
            let delta_pct = (rate / base - 1.0) * 100.0;
            let ok = rate / base >= CHECK_FLOOR;
            eprintln!(
                "  {:<22} {rate:>12.0} sim cycles/s  ({delta_pct:+.1}% vs baseline {base:.0}) {}",
                m.name,
                if ok { "ok" } else { "REGRESSION" }
            );
            if !ok {
                failures.push(format!(
                    "{}: {delta_pct:+.1}% ({rate:.0} vs baseline {base:.0})",
                    m.name
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!(
                "bench_core: throughput regression: workload(s) fell below {:.0}% of {baseline_path}:",
                CHECK_FLOOR * 100.0
            );
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "bench_core: all workloads within {:.0}% of baseline",
            CHECK_FLOOR * 100.0
        );
        return;
    }

    let mut entries = Vec::new();
    for m in &runs {
        let rate = m.rate();
        let skip_rate = m.skip_rate();
        let legacy_rate = m.legacy_rate();
        // Smoke runs are too short to compare against the recorded
        // full-mode baseline.
        let seed = if smoke { None } else { seed_rate(m.name) };
        let speedup = seed.map(|s| rate / s);
        eprintln!(
            "  {:<22} {:>12.0} sim cycles/s  legacy {:>12.0} ({:.2}x)  event-skip {:>12.0} ({:.2}x){}",
            m.name,
            rate,
            legacy_rate,
            rate / legacy_rate,
            skip_rate,
            skip_rate / rate,
            speedup
                .map(|s| format!("  ({s:.2}x vs seed)"))
                .unwrap_or_default()
        );
        entries.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"description\": \"{}\",\n      \
             \"sim_cycles\": {},\n      \"wall_ns\": {},\n      \
             \"sim_cycles_per_sec\": {},\n      \
             \"legacy_sim_cycles_per_sec\": {},\n      \"dispatch_speedup\": {},\n      \
             \"event_skip_sim_cycles_per_sec\": {},\n      \"skip_speedup\": {},\n      \
             \"seed_sim_cycles_per_sec\": {},\n      \"speedup_vs_seed\": {}\n    }}",
            m.name,
            m.description,
            m.sim_cycles,
            m.wall_ns,
            json_f64(Some(rate)),
            json_f64(Some(legacy_rate)),
            json_f64(Some(rate / legacy_rate)),
            json_f64(Some(skip_rate)),
            json_f64(Some(skip_rate / rate)),
            json_f64(seed),
            speedup
                .filter(|s| s.is_finite())
                .map(|s| format!("{s:.3}"))
                .unwrap_or_else(|| "null".to_string()),
        ));
    }
    let fork_speedup = fork_fuzz_speedup(cycles);
    eprintln!(
        "  fork_fuzz_speedup      {fork_speedup:.2}x (4-combo coverage, forked vs full re-execution)"
    );
    let json = format!(
        "{{\n  \"schema\": \"disc-bench-core/v3\",\n  \"mode\": \"{}\",\n  \
         \"cycles_per_run\": {},\n  \"reps\": {},\n  \
         \"fork_fuzz_speedup\": {:.3},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        cycles,
        reps,
        fork_speedup,
        entries.join(",\n")
    );
    std::fs::write(&out, &json).expect("write benchmark json");
    eprintln!("wrote {out}");
}
