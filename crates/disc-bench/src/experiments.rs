//! Cycle-accurate experiments beyond the paper's tables: interrupt
//! latency (E-LAT) and inter-stream synchronization cost (E-SYNC).

use disc_core::{Exit, Machine, MachineConfig};
use disc_isa::Program;
use disc_rts::latency_experiment;

/// E-LAT: dedicated-stream interrupt delivery on DISC versus
/// context-switched delivery on the baseline, idle and under load.
///
/// # Panics
///
/// Panics if a simulation errors (a bug).
pub fn latency_table() -> String {
    let mut out = String::from(
        "Experiment E-LAT - Interrupt latency (cycles, raise -> first handler fetch)\n\n\
         configuration                   mean     p50     p99   worst\n\
         --------------------------------------------------------------\n",
    );
    let idle = latency_experiment(0, 50, 300).unwrap();
    let loaded = latency_experiment(3, 50, 300).unwrap();
    let rows = [
        (
            "DISC dedicated stream, idle",
            idle.disc_summary(),
            idle.disc_percentiles(),
        ),
        (
            "DISC dedicated stream, loaded",
            loaded.disc_summary(),
            loaded.disc_percentiles(),
        ),
        (
            "baseline ctx switch, idle",
            idle.baseline_summary(),
            idle.baseline_percentiles(),
        ),
        (
            "baseline ctx switch, loaded",
            loaded.baseline_summary(),
            loaded.baseline_percentiles(),
        ),
    ];
    for (label, (mean, worst), (p50, p99, _)) in rows {
        out.push_str(&format!(
            "{label:<30}  {mean:>6.1} {:>7} {:>7} {worst:>7}\n",
            p50.unwrap_or(0),
            p99.unwrap_or(0)
        ));
    }
    out.push_str(
        "\nDISC starts the handler within a few cycles because the context is\n\
         already resident; the baseline pays the register save every time.\n",
    );
    out
}

/// E-SYNC: synchronizing two streams by semaphore polling versus by
/// inter-stream interrupt (§3.6.3): *"the computation throughput which
/// would be spent polling will be dynamically allocated to the active
/// ISs."*
///
/// # Panics
///
/// Panics if a program fails to assemble or run (a bug).
pub fn sync_experiment() -> String {
    // Stream 0: background counter (measures reclaimed throughput).
    // Stream 1: producer that takes a while, then releases the consumer.
    // Stream 2: consumer waiting for the producer.
    let poll_src = r#"
        .stream 0, bg
        .stream 1, producer
        .stream 2, consumer
    bg: addi r0, r0, 1
        jmp bg
    producer:
        ldi r1, 400
    p:  subi r1, r1, 1
        jnz p
        ldi r2, 1
        sta r2, 0x20        ; release flag
        stop
    consumer:
    spin:
        lda r1, 0x20        ; poll the flag
        cmpi r1, 1
        jnz spin
        ldi r3, 1
        sta r3, 0x21
        stop
    "#;
    let irq_src = r#"
        .stream 0, bg
        .stream 1, producer
        .stream 2, consumer
        .vector 2, 4, resume
    bg: addi r0, r0, 1
        jmp bg
    producer:
        ldi r1, 400
    p:  subi r1, r1, 1
        jnz p
        signal 2, 4         ; wake the consumer directly
        stop
    consumer:
        stop                ; deactivated until signalled
    resume:
        ldi r3, 1
        sta r3, 0x21
        reti
    "#;
    let run = |src: &str| {
        let program = Program::assemble(src).unwrap();
        let mut m = Machine::new(MachineConfig::disc1().with_streams(3), &program);
        m.set_idle_exit(false);
        // Run until the consumer finishes, bounded.
        for _ in 0..20_000 {
            if m.step().unwrap() != disc_core::Status::Running
                || m.internal_memory().read(0x21) == 1
            {
                break;
            }
        }
        assert_eq!(m.internal_memory().read(0x21), 1, "consumer must finish");
        let done_at = m.cycle();
        // Keep running to a fixed horizon so background totals compare.
        while m.cycle() < 6_000 {
            if m.run(6_000 - m.cycle()).unwrap() == Exit::Halted {
                break;
            }
        }
        (done_at, m.stats().retired[0], m.stats().retired[2])
    };
    let (poll_done, poll_bg, poll_consumer) = run(poll_src);
    let (irq_done, irq_bg, irq_consumer) = run(irq_src);
    format!(
        "Experiment E-SYNC - Inter-stream synchronization (6000-cycle horizon)\n\n\
         method               sync done at  background instrs  consumer instrs\n\
         ----------------------------------------------------------------------\n\
         semaphore polling    {poll_done:>12}  {poll_bg:>17}  {poll_consumer:>15}\n\
         interrupt join       {irq_done:>12}  {irq_bg:>17}  {irq_consumer:>15}\n\n\
         The polling consumer burns pipeline slots re-reading the flag; with\n\
         the interrupt join those slots flow to the background stream.\n"
    )
}

/// Ablation A-SCHED: how the scheduler partition shapes real-time
/// behaviour. The same task set runs under an even round-robin, a
/// utilization-proportional partition (the paper's "General scheduling")
/// and a deliberately starved partition; deadline misses, worst response
/// and background throughput are compared.
///
/// # Panics
///
/// Panics if a simulation errors (a bug).
pub fn scheduler_ablation() -> String {
    use disc_core::SchedulePolicy;
    use disc_rts::{harness, partition, Task, TaskSet};

    let set = TaskSet::new(vec![
        Task::new("tight", 800, 550).with_body(35),
        Task::new("bulk", 2000, 1800).with_body(150),
    ]);
    let variants: Vec<(&str, Option<SchedulePolicy>)> = vec![
        ("even round-robin", None),
        (
            "deadline-aware partition",
            Some(partition::schedule_for(&set)),
        ),
        (
            "background-hog 13/2/1",
            Some(SchedulePolicy::partitioned(&[13, 2, 1])),
        ),
        (
            "weighted-deficit 2/7/7",
            Some(SchedulePolicy::WeightedDeficit(vec![2, 7, 7])),
        ),
    ];
    let mut out = String::from(
        "Ablation A-SCHED - scheduler partition vs real-time behaviour\n\
         (tasks: tight 800/550 body 35; bulk 2000/1800 body 150; 60k cycles)\n\n\
         policy                     misses  worst tight  worst bulk  background\n\
         -----------------------------------------------------------------------\n",
    );
    for (name, schedule) in variants {
        let r = harness::run_on_disc_with_schedule(&set, 60_000, schedule).unwrap();
        out.push_str(&format!(
            "{name:<26} {:>6} {:>12} {:>11} {:>11}\n",
            r.total_misses(),
            r.tasks[0].max_response,
            r.tasks[1].max_response,
            r.background_retired,
        ));
    }
    out.push_str(
        "\nPartitioning is the real-time control knob: starving the task\n\
         streams (background-hog) stretches responses toward the deadline,\n\
         while the deadline-aware partition bounds every response within\n\
         its analytic budget.\n",
    );
    out
}

/// Builds and runs the cycle-accurate analogue of the Table 4.1 workload
/// mix: four streams carrying the table's four load classes — `load1`
/// pure compute, `load2` jump-heavy, `load3` I/O-heavy, `load4` mixed —
/// so the per-stream cycle attribution can be inspected on a machine run
/// instead of the stochastic model.
///
/// # Panics
///
/// Panics if the workload fails to assemble or run (a bug).
pub fn cycle_attribution_machine() -> Machine {
    let src = r#"
        .stream 0, compute
        .stream 1, jumpy
        .stream 2, io
        .stream 3, mixed
    compute:
        addi r0, r0, 1
        addi r1, r1, 1
        addi r2, r2, 1
        addi r3, r3, 1
        addi r4, r4, 1
        jmp compute
    jumpy:
        addi r0, r0, 1
        jmp jumpy
    io:
        lui r0, 0x80
    ioloop:
        ld r1, [r0]
        addi r1, r1, 1
        jmp ioloop
    mixed:
        lui r0, 0x81
    mloop:
        addi r1, r1, 1
        addi r2, r2, 1
        add r3, r1, r2
        ld r4, [r0]
        addi r5, r5, 1
        jmp mloop
    "#;
    let program = Program::assemble(src).unwrap();
    let mut m = Machine::new(MachineConfig::disc1(), &program);
    m.run(20_000).unwrap();
    m
}

/// Renders the per-stream cycle-attribution breakdown for the Table 4.1
/// workload mix (see [`cycle_attribution_machine`]).
///
/// # Panics
///
/// Panics if the workload fails to assemble or run (a bug).
pub fn cycle_attribution() -> String {
    let m = cycle_attribution_machine();
    let stats = m.stats();
    let mut out = String::from(
        "Cycle attribution - Table 4.1 workload mix on the cycle-accurate machine\n\
         (s0 compute, s1 jump-heavy, s2 I/O-heavy, s3 mixed; share of elapsed cycles)\n\n",
    );
    out.push_str(&stats.attribution.table());
    out.push_str(&format!(
        "\nPD = {:.3} over {} cycles; every row sums to the elapsed cycle count.\n",
        stats.utilization(),
        stats.cycles
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_attribution_balances_and_differentiates_loads() {
        let m = cycle_attribution_machine();
        let stats = m.stats();
        assert!(
            stats.attribution.check(stats.cycles).is_ok(),
            "attribution must sum to elapsed cycles"
        );
        let a = &stats.attribution;
        // The I/O-heavy stream must show more bus waiting than the pure
        // compute stream, which should never touch the bus.
        assert!(a.bus_txn_wait[2] > a.bus_txn_wait[0]);
        assert_eq!(a.bus_txn_wait[0], 0);
        let table = cycle_attribution();
        assert!(table.contains("bus-txn-wait"));
        assert!(table.contains("s3"));
    }

    #[test]
    fn latency_table_orders_architectures() {
        let t = latency_table();
        assert!(t.contains("DISC dedicated stream"));
        assert!(t.contains("baseline ctx switch"));
    }

    #[test]
    fn scheduler_ablation_covers_all_policies() {
        let t = scheduler_ablation();
        assert!(t.contains("even round-robin"));
        assert!(t.contains("deadline-aware partition"));
        assert!(t.contains("background-hog"));
        assert!(t.contains("weighted-deficit"));
    }

    #[test]
    fn sync_experiment_interrupt_join_frees_throughput() {
        let t = sync_experiment();
        // Parse the two background columns and compare.
        let grab = |needle: &str| -> u64 {
            let line = t.lines().find(|l| l.contains(needle)).unwrap();
            let cols: Vec<&str> = line.split_whitespace().collect();
            cols[cols.len() - 2].parse().unwrap()
        };
        let poll_bg = grab("semaphore polling");
        let irq_bg = grab("interrupt join");
        assert!(
            irq_bg > poll_bg,
            "interrupt join must free background throughput: {irq_bg} vs {poll_bg}"
        );
    }
}
