//! Differential fuzzing of the cycle-accurate machine against the
//! `disc-ref` golden-reference interpreter.
//!
//! A splitmix64-seeded generator produces random DISC1 programs that are
//! *constrained to terminate* (bounded loops, balanced call/return and
//! window motion, forward-only conditional skips, self-signals whose
//! handlers return) and *constrained to be schedule-deterministic* (each
//! stream owns disjoint memory regions and globals; `ir`/`mr` are never
//! ALU operands; multi-stream programs end in `stop`, never `halt`). Each
//! program runs on both models — the machine under a randomized
//! microarchitecture (pipeline depth, window depth, bus latency, sequence
//! table) and the reference interpreter — and the final architectural
//! state is compared field by field: per-stream window stacks, AWP, `sp`,
//! flags, `ir`/`mr`, service state, retired-instruction counts (and, for
//! programs without cross-stream signals, the exact per-stream retired
//! program-order), plus globals, internal memory and external memory.
//!
//! On mismatch, [`minimize`] nops out instructions to a fixed point while
//! preserving the divergence, so regressions land as one-line seeds plus
//! a small listing.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::replay::ReplayLog;
use disc_core::{
    CycleRecord, DispatchMode, Exit, Machine, MachineConfig, SchedulePolicy, StepMode, TraceEvent,
    TraceSink,
};
use disc_isa::{encode::encode, AluImmOp, AluOp, AwpMode, Cond, Instruction, Program, Reg};
use disc_ref::{RefConfig, RefExit, RefMachine};

/// Cycle budget for the machine; generated programs finish far earlier,
/// so hitting this is itself reported as a divergence.
pub const MACHINE_CYCLES: u64 = 400_000;

/// Instruction budget for the reference interpreter.
pub const REF_STEPS: u64 = 200_000;

// ---- seeded generator ---------------------------------------------------

/// splitmix64: tiny, seedable, and identical on every platform.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// `true` with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[self.below(items.len() as u64) as usize]
    }
}

/// A generated program plus the microarchitecture it should run under and
/// the comparison mode it supports.
#[derive(Debug, Clone)]
pub struct GenProgram {
    /// Seed that produced it.
    pub seed: u64,
    /// The program image (entries + vectors included).
    pub program: Program,
    /// Streams the machine must be configured with.
    pub streams: usize,
    /// `true` when the exact per-stream retired-pc sequences are
    /// schedule-independent (no cross-stream signals); `false` compares
    /// retired counts and final state only.
    pub exact: bool,
    /// Randomized machine pipeline depth (architecturally invisible).
    pub pipeline_depth: usize,
    /// Window file depth for both models.
    pub window_depth: usize,
    /// Uniform external bus latency (architecturally invisible).
    pub ext_latency: u32,
    /// Random 16-slot sequence table, or `None` for round-robin
    /// (architecturally invisible).
    pub schedule: Option<Vec<u8>>,
    /// Timing mode for the machine run (architecturally invisible). When
    /// [`StepMode::EventSkip`] is drawn, the runner additionally executes
    /// a second, sink-free machine where quiescence skipping can actually
    /// engage (the retire-log sink pins it off on the primary machine)
    /// and requires its final state and statistics to be identical.
    pub step_mode: StepMode,
    /// Execute dispatcher for the machine run (architecturally
    /// invisible). Like the step mode, [`DispatchMode::Superblock`] only
    /// engages on the sink-free cross-check machine — the retire-log sink
    /// pins burst execution off on the primary machine.
    pub dispatch_mode: DispatchMode,
    /// External address ranges `[lo, hi)` the program may touch, for the
    /// external-memory comparison sweep.
    pub ext_regions: Vec<(u16, u16)>,
}

/// Per-stream code/data layout constants. Stream `s` owns:
/// code `[s*0x400, (s+1)*0x400)` (fork targets must fit in 12 bits, so
/// all code lives below 0x1000), internal data `[0x80+s*0x40, …+0x40)`,
/// low external data `[0x500+s*0x100, …+0x100)` (reachable by `lda`/
/// `sta`) and high external data `[0x8000+s*0x100, …+0x100)`.
const CODE_STRIDE: u16 = 0x400;
const FN_OFF: u16 = 0x300;
const HANDLER_OFF: u16 = 0x340;
const HANDLER_STRIDE: u16 = 0x20;
const INT_BASE: u16 = 0x80;
const INT_STRIDE: u16 = 0x40;
// Low enough that every ext-low address fits `ldi`'s signed 12-bit
// immediate (max 0x440 + 3*0x100 + 0x3e < 0x800).
const EXT_LO_BASE: u16 = 0x440;
const EXT_HI_BASE: u16 = 0x8000;
const EXT_STRIDE: u16 = 0x100;
/// IR bit targets of cross-stream signals (handler always installed).
const CROSS_BIT: u8 = 4;
/// Self-signal bits that may get vectored handlers.
const VECTORED_BITS: [u8; 3] = [2, 3, 5];
/// Non-vectored scratch bit (raised and cleared within one block).
const SCRATCH_BIT: u8 = 1;

/// ALU source pool: window registers, `sp`, own global, rarely `sr`
/// (never `ir`/`mr`, whose mid-pipeline effects are timing-dependent).
fn pick_src(rng: &mut SplitMix64, own_global: Reg) -> Reg {
    let roll = rng.below(100);
    if roll < 70 {
        Reg::window(rng.below(8) as u8)
    } else if roll < 80 {
        Reg::Sp
    } else if roll < 92 {
        own_global
    } else {
        Reg::Sr
    }
}

fn pick_alu_op(rng: &mut SplitMix64) -> AluOp {
    rng.pick(&AluOp::ALL)
}

fn pick_alu_imm_op(rng: &mut SplitMix64) -> AluImmOp {
    rng.pick(&AluImmOp::ALL)
}

/// One random computational instruction with no window motion.
fn gen_flat_alu(rng: &mut SplitMix64, own_global: Reg, dests: &[Reg]) -> Instruction {
    let rd = rng.pick(dests);
    if rng.chance(45) {
        Instruction::AluImm {
            op: pick_alu_imm_op(rng),
            awp: AwpMode::None,
            rd,
            rs: pick_src(rng, own_global),
            imm: rng.below(256) as u8,
        }
    } else {
        Instruction::Alu {
            op: pick_alu_op(rng),
            awp: AwpMode::None,
            rd,
            rs: pick_src(rng, own_global),
            rt: pick_src(rng, own_global),
        }
    }
}

/// Emits one stream's program into `program`. `restricted` disables window
/// motion, calls and self-signals (used for cross-signal receivers, whose
/// handler must always find the background window where it left it).
#[allow(clippy::too_many_arguments)]
fn gen_stream(
    rng: &mut SplitMix64,
    program: &mut Program,
    s: usize,
    streams: usize,
    restricted: bool,
    cross_sender: bool,
    end_with_halt: bool,
    ext_regions: &mut Vec<(u16, u16)>,
) {
    let base = s as u16 * CODE_STRIDE;
    let own_global = Reg::global(s.min(3) as u8);
    let int_lo = INT_BASE + s as u16 * INT_STRIDE;
    let ext_lo = EXT_LO_BASE + s as u16 * EXT_STRIDE;
    let ext_hi = EXT_HI_BASE + s as u16 * EXT_STRIDE;
    ext_regions.push((ext_lo, ext_lo + EXT_STRIDE));
    ext_regions.push((ext_hi, ext_hi + EXT_STRIDE));

    let mut pc = base;
    let mut emit = |program: &mut Program, pc: &mut u16, i: Instruction| {
        program.set_instruction(*pc, &i);
        *pc = pc.wrapping_add(1);
    };

    // Leaf functions: `winc 2`, a little work on the fresh registers,
    // `ret 2`. The return address sits at the callee's R2, so bodies only
    // ever write R0/R1.
    let mut functions = Vec::new();
    if !restricted {
        let nfuncs = rng.below(3);
        let mut fpc = base + FN_OFF;
        for _ in 0..nfuncs {
            functions.push(fpc);
            emit(program, &mut fpc, Instruction::Winc { n: 2 });
            for _ in 0..rng.range(1, 3) {
                let i = gen_flat_alu(rng, own_global, &[Reg::R0, Reg::R1]);
                emit(program, &mut fpc, i);
            }
            emit(program, &mut fpc, Instruction::Ret { pop: 2 });
            fpc = fpc.wrapping_add(2);
        }
    }

    // Vectored self-signal handlers: balanced `winc 2`/`wdec 2` framing,
    // work confined to the fresh registers, optional store to a cell the
    // background never touches, `reti`.
    let mut vectored = Vec::new();
    if !restricted {
        for (i, &bit) in VECTORED_BITS.iter().enumerate() {
            if !rng.chance(40) {
                continue;
            }
            let mut hpc = base + HANDLER_OFF + i as u16 * HANDLER_STRIDE;
            program.set_vector(s, bit, hpc);
            vectored.push(bit);
            emit(program, &mut hpc, Instruction::Winc { n: 2 });
            for _ in 0..rng.range(1, 3) {
                let i = gen_flat_alu(rng, own_global, &[Reg::R0, Reg::R1]);
                emit(program, &mut hpc, i);
            }
            if rng.chance(50) {
                let cell = int_lo + 0x38 + bit as u16;
                emit(
                    program,
                    &mut hpc,
                    Instruction::Sta {
                        awp: AwpMode::None,
                        src: Reg::R0,
                        addr: cell,
                    },
                );
            }
            emit(program, &mut hpc, Instruction::Wdec { n: 2 });
            emit(program, &mut hpc, Instruction::Reti);
        }
    }

    // Cross-signal receiver handler: writes a seed-derived constant into a
    // dedicated cell. `winc 1` gives it a fresh R0 so the background's
    // registers survive; the receiver's background never moves its window,
    // so the handler's write always lands in the same physical slot.
    if restricted {
        let mut hpc = base + HANDLER_OFF + 3 * HANDLER_STRIDE;
        program.set_vector(s, CROSS_BIT, hpc);
        let marker = rng.below(0x800) as i16;
        emit(program, &mut hpc, Instruction::Winc { n: 1 });
        emit(
            program,
            &mut hpc,
            Instruction::Ldi {
                awp: AwpMode::None,
                rd: Reg::R0,
                imm: marker,
            },
        );
        emit(
            program,
            &mut hpc,
            Instruction::Sta {
                awp: AwpMode::None,
                src: Reg::R0,
                addr: int_lo + 0x3f,
            },
        );
        emit(program, &mut hpc, Instruction::Wdec { n: 1 });
        emit(program, &mut hpc, Instruction::Reti);
    }

    // Body. Stream 0 of a multi-stream program forks the others first.
    if s == 0 {
        for t in 1..streams {
            emit(
                program,
                &mut pc,
                Instruction::Fork {
                    stream: t as u8,
                    target: t as u16 * CODE_STRIDE,
                },
            );
        }
    }

    let nblocks = rng.range(3, 9);
    for _ in 0..nblocks {
        let kind = rng.below(if restricted { 4 } else { 8 });
        match kind {
            // Straight-line ALU with optional (balanced) window motion.
            0 => {
                let mut net: i32 = 0;
                for _ in 0..rng.range(1, 6) {
                    let mut i = gen_flat_alu(
                        rng,
                        own_global,
                        &[
                            Reg::R0,
                            Reg::R1,
                            Reg::R2,
                            Reg::R3,
                            Reg::R4,
                            Reg::R5,
                            Reg::Sp,
                            own_global,
                            Reg::Sr,
                        ],
                    );
                    if !restricted {
                        let awp = match rng.below(10) {
                            0 | 1 => AwpMode::Inc,
                            2 if net > 0 => AwpMode::Dec,
                            _ => AwpMode::None,
                        };
                        net += match awp {
                            AwpMode::Inc => 1,
                            AwpMode::Dec => -1,
                            AwpMode::None => 0,
                        };
                        match &mut i {
                            Instruction::Alu { awp: a, .. }
                            | Instruction::AluImm { awp: a, .. } => *a = awp,
                            _ => {}
                        }
                    }
                    emit(program, &mut pc, i);
                }
                if net > 0 {
                    emit(program, &mut pc, Instruction::Wdec { n: net as u8 });
                }
            }
            // Memory traffic in the stream's own regions.
            1 => {
                for _ in 0..rng.range(1, 5) {
                    gen_mem_op(rng, program, &mut pc, &mut emit, int_lo, ext_lo, ext_hi);
                }
            }
            // Bounded counted loop on R7.
            2 => {
                let n = rng.range(1, 5) as i16;
                emit(
                    program,
                    &mut pc,
                    Instruction::Ldi {
                        awp: AwpMode::None,
                        rd: Reg::R7,
                        imm: n,
                    },
                );
                let top = pc;
                for _ in 0..rng.range(1, 4) {
                    let i = gen_flat_alu(
                        rng,
                        own_global,
                        &[Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5],
                    );
                    emit(program, &mut pc, i);
                }
                emit(
                    program,
                    &mut pc,
                    Instruction::AluImm {
                        op: AluImmOp::Subi,
                        awp: AwpMode::None,
                        rd: Reg::R7,
                        rs: Reg::R7,
                        imm: 1,
                    },
                );
                emit(
                    program,
                    &mut pc,
                    Instruction::Jmp {
                        cond: Cond::Nz,
                        target: top,
                    },
                );
            }
            // Compare + forward conditional skip.
            3 => {
                let cmp = if rng.chance(50) {
                    Instruction::Alu {
                        op: AluOp::Cmp,
                        awp: AwpMode::None,
                        rd: Reg::R0,
                        rs: pick_src(rng, own_global),
                        rt: pick_src(rng, own_global),
                    }
                } else {
                    Instruction::AluImm {
                        op: AluImmOp::Cmpi,
                        awp: AwpMode::None,
                        rd: Reg::R0,
                        rs: pick_src(rng, own_global),
                        imm: rng.below(256) as u8,
                    }
                };
                emit(program, &mut pc, cmp);
                let jump_at = pc;
                emit(program, &mut pc, Instruction::Nop); // patched below
                for _ in 0..rng.range(1, 3) {
                    let i = gen_flat_alu(
                        rng,
                        own_global,
                        &[Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5],
                    );
                    emit(program, &mut pc, i);
                }
                program.set_instruction(
                    jump_at,
                    &Instruction::Jmp {
                        cond: rng.pick(&Cond::ALL),
                        target: pc,
                    },
                );
            }
            // Call a leaf function.
            4 => {
                if let Some(&f) = functions.first() {
                    let f = if functions.len() > 1 && rng.chance(50) {
                        functions[1]
                    } else {
                        f
                    };
                    emit(program, &mut pc, Instruction::Call { target: f });
                }
            }
            // Vectored self-signal: the handler preempts before the next
            // instruction of this stream.
            5 => {
                if !vectored.is_empty() {
                    let bit = rng.pick(&vectored);
                    emit(
                        program,
                        &mut pc,
                        Instruction::Signal {
                            stream: s as u8,
                            bit,
                        },
                    );
                }
            }
            // Non-vectored self-signal: keeps the stream active at
            // background level until the matching `clri`.
            6 => {
                emit(
                    program,
                    &mut pc,
                    Instruction::Signal {
                        stream: s as u8,
                        bit: SCRATCH_BIT,
                    },
                );
                for _ in 0..rng.range(0, 2) {
                    let i = gen_flat_alu(rng, own_global, &[Reg::R0, Reg::R1, Reg::R2]);
                    emit(program, &mut pc, i);
                }
                emit(program, &mut pc, Instruction::Clri { bit: SCRATCH_BIT });
            }
            // Deep balanced window excursion (exercises spill/fill).
            _ => {
                let k = rng.range(4, 20) as u8;
                emit(program, &mut pc, Instruction::Winc { n: k });
                for _ in 0..rng.range(1, 3) {
                    let i = gen_flat_alu(rng, own_global, &[Reg::R0, Reg::R1, Reg::R2, Reg::R3]);
                    emit(program, &mut pc, i);
                }
                emit(program, &mut pc, Instruction::Wdec { n: k });
            }
        }
    }

    // Cross-stream signals go out last, just before the sender parks.
    if cross_sender {
        for t in 1..streams {
            emit(
                program,
                &mut pc,
                Instruction::Signal {
                    stream: t as u8,
                    bit: CROSS_BIT,
                },
            );
        }
    }

    if end_with_halt {
        emit(program, &mut pc, Instruction::Halt);
    } else {
        emit(program, &mut pc, Instruction::Stop);
    }
}

/// One random load/store/`tset` confined to the stream's own regions.
fn gen_mem_op(
    rng: &mut SplitMix64,
    program: &mut Program,
    pc: &mut u16,
    emit: &mut impl FnMut(&mut Program, &mut u16, Instruction),
    int_lo: u16,
    ext_lo: u16,
    ext_hi: u16,
) {
    let region = rng.below(3);
    let cell = rng.range(8, 0x37) as u16;
    let dest = Reg::window(rng.below(6) as u8);
    let src = Reg::window(rng.below(6) as u8);
    match region {
        // Internal or low-external memory: directly addressable.
        0 | 1 => {
            let lo = if region == 0 { int_lo } else { ext_lo };
            let addr = lo + cell;
            match rng.below(4) {
                0 => emit(
                    program,
                    pc,
                    Instruction::Lda {
                        awp: AwpMode::None,
                        rd: dest,
                        addr,
                    },
                ),
                1 | 2 => emit(
                    program,
                    pc,
                    Instruction::Sta {
                        awp: AwpMode::None,
                        src,
                        addr,
                    },
                ),
                _ => {
                    // Base+offset form through R6.
                    emit(
                        program,
                        pc,
                        Instruction::Ldi {
                            awp: AwpMode::None,
                            rd: Reg::R6,
                            imm: addr as i16,
                        },
                    );
                    let offset = rng.range(0, 15) as i8 - 8;
                    let i = if rng.chance(20) {
                        Instruction::Tset {
                            rd: dest,
                            base: Reg::R6,
                            offset,
                        }
                    } else if rng.chance(50) {
                        Instruction::Ld {
                            awp: AwpMode::None,
                            rd: dest,
                            base: Reg::R6,
                            offset,
                        }
                    } else {
                        Instruction::St {
                            awp: AwpMode::None,
                            src,
                            base: Reg::R6,
                            offset,
                        }
                    };
                    emit(program, pc, i);
                }
            }
        }
        // High external memory: build the base with `ldi`+`lui`.
        _ => {
            let addr = ext_hi + cell;
            emit(
                program,
                pc,
                Instruction::Ldi {
                    awp: AwpMode::None,
                    rd: Reg::R6,
                    imm: (addr & 0xff) as i16,
                },
            );
            emit(
                program,
                pc,
                Instruction::Lui {
                    rd: Reg::R6,
                    imm: (addr >> 8) as u8,
                },
            );
            let offset = rng.range(0, 15) as i8 - 8;
            let i = match rng.below(3) {
                0 => Instruction::Ld {
                    awp: AwpMode::None,
                    rd: dest,
                    base: Reg::R6,
                    offset,
                },
                1 => Instruction::St {
                    awp: AwpMode::None,
                    src,
                    base: Reg::R6,
                    offset,
                },
                _ => Instruction::Tset {
                    rd: dest,
                    base: Reg::R6,
                    offset,
                },
            };
            emit(program, pc, i);
        }
    }
}

/// Generates the whole differential test case for `seed`.
pub fn generate(seed: u64) -> GenProgram {
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed);
    let streams = if rng.chance(50) {
        1
    } else {
        rng.range(2, 4) as usize
    };
    let cross = streams > 1 && rng.chance(35);
    let mut program = Program::new();
    let mut ext_regions = Vec::new();
    program.set_entry(0, 0);
    for s in 0..streams {
        let restricted = cross && s > 0;
        let end_with_halt = streams == 1 && rng.chance(50);
        gen_stream(
            &mut rng,
            &mut program,
            s,
            streams,
            restricted,
            cross && s == 0,
            end_with_halt,
            &mut ext_regions,
        );
    }
    let schedule = if streams > 1 && rng.chance(50) {
        // Random 16-slot table. Every stream must appear at least once: a
        // stream absent from the sequence table has a static share of
        // zero and is never issued — even dynamic reallocation only scans
        // the table — so a live stream left out would starve forever.
        let mut table: Vec<u8> = (0..16)
            .map(|i| {
                if i < streams {
                    i as u8
                } else {
                    rng.below(streams as u64) as u8
                }
            })
            .collect();
        // Fisher–Yates shuffle preserves the guaranteed coverage.
        for i in (1..table.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            table.swap(i, j);
        }
        Some(table)
    } else {
        None
    };
    GenProgram {
        seed,
        program,
        streams,
        exact: !cross,
        pipeline_depth: rng.range(3, 6) as usize,
        window_depth: rng.pick(&[12usize, 16, 64]),
        ext_latency: rng.below(4) as u32,
        schedule,
        step_mode: if rng.chance(50) {
            StepMode::EventSkip
        } else {
            StepMode::CycleByCycle
        },
        // Drawn after every pre-existing knob so older corpus seeds keep
        // generating the exact same programs and configurations.
        dispatch_mode: if rng.chance(50) {
            DispatchMode::Superblock
        } else {
            DispatchMode::Legacy
        },
        ext_regions,
    }
}

// ---- differential runner ------------------------------------------------

/// Trace sink collecting the machine's per-stream retire order.
struct RetireLog {
    per_stream: Vec<Vec<u16>>,
}

impl TraceSink for RetireLog {
    fn record_cycle(&mut self, record: CycleRecord) {
        for event in &record.events {
            if let TraceEvent::Retire { stream, pc } = event {
                self.per_stream[*stream].push(*pc);
            }
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// A confirmed difference between the two models.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Seed of the generated program.
    pub seed: u64,
    /// What differed, field by field.
    pub details: Vec<String>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "seed {:#x} diverged:", self.seed)?;
        for d in &self.details {
            writeln!(f, "  - {d}")?;
        }
        Ok(())
    }
}

fn machine_config(gp: &GenProgram) -> MachineConfig {
    let mut cfg = MachineConfig::disc1()
        .with_streams(gp.streams)
        .with_window_depth(gp.window_depth)
        .with_default_ext_latency(gp.ext_latency)
        .with_step_mode(gp.step_mode)
        .with_dispatch_mode(gp.dispatch_mode);
    cfg.pipeline_depth = gp.pipeline_depth;
    if let Some(table) = &gp.schedule {
        cfg = cfg.with_schedule(SchedulePolicy::Sequence(table.clone()));
    }
    cfg
}

fn ref_config(gp: &GenProgram) -> RefConfig {
    RefConfig::disc1().with_streams(gp.streams)
}

/// Runs `gp` on both models under the given budgets and compares the
/// final architectural state. `Ok(steps)` reports the instructions the
/// reference model executed.
pub fn compare_with_budget(
    gp: &GenProgram,
    machine_cycles: u64,
    ref_steps: u64,
) -> Result<u64, Divergence> {
    let mut details = Vec::new();

    let mut machine = Machine::new(machine_config(gp), &gp.program);
    machine.set_trace_sink(Box::new(RetireLog {
        per_stream: vec![Vec::new(); gp.streams],
    }));
    let m_exit = machine.run(machine_cycles);
    let retire_log = machine
        .take_trace_sink()
        .and_then(|sink| sink.into_any().downcast::<RetireLog>().ok())
        .expect("retire log sink");

    // When the timing knob drew EventSkip or the dispatch knob drew
    // Superblock, the primary machine above had both fast paths pinned
    // off by its trace sink; run a second, sink-free machine where they
    // can engage and hold it to the same exit, statistics (including
    // cycle attribution) and final state.
    let cross_check =
        gp.step_mode == StepMode::EventSkip || gp.dispatch_mode == DispatchMode::Superblock;
    let skipper = cross_check.then(|| {
        let mut skipper = Machine::new(machine_config(gp), &gp.program);
        let exit = skipper.run(machine_cycles);
        (skipper, exit)
    });

    let mut reference = RefMachine::new(ref_config(gp), &gp.program);
    let r_exit = reference.run(ref_steps);
    let steps = reference.steps();

    // Exit status. Budget exhaustion on either side is a divergence by
    // definition: generated programs are termination-bounded.
    let exits_match = matches!(
        (&m_exit, r_exit),
        (Ok(Exit::Halted), RefExit::Halted) | (Ok(Exit::AllIdle), RefExit::AllIdle)
    );
    if !exits_match {
        details.push(format!(
            "exit status: machine {m_exit:?} vs reference {r_exit:?}"
        ));
        return Err(Divergence {
            seed: gp.seed,
            details,
        });
    }

    let ext_addrs = ext_addr_set(gp, &reference);
    diff_against_reference(
        &mut machine,
        &retire_log,
        &reference,
        gp,
        &ext_addrs,
        &mut details,
    );

    // Sink-free cross-check (event skip and/or superblock dispatch
    // engaged): must be indistinguishable from the pinned run.
    if let Some((mut skipper, s_exit)) = skipper {
        if s_exit != m_exit {
            details.push(format!(
                "sink-free: exit {s_exit:?} vs cycle-by-cycle {m_exit:?}"
            ));
        }
        diff_machines(
            "sink-free",
            &mut machine,
            &mut skipper,
            gp.streams,
            reference.internal_len() as u16,
            &ext_addrs,
            &mut details,
        );
    }

    if details.is_empty() {
        Ok(steps)
    } else {
        Err(Divergence {
            seed: gp.seed,
            details,
        })
    }
}

/// Runs `gp` with the default budgets.
pub fn compare(gp: &GenProgram) -> Result<u64, Divergence> {
    compare_with_budget(gp, MACHINE_CYCLES, REF_STEPS)
}

/// Generates and compares one seed.
pub fn check_seed(seed: u64) -> Result<u64, Divergence> {
    compare(&generate(seed))
}

/// Every external address either model may have touched.
fn ext_addr_set(gp: &GenProgram, reference: &RefMachine) -> BTreeSet<u16> {
    let mut ext_addrs: BTreeSet<u16> = reference.external_addrs().into_iter().collect();
    for &(lo, hi) in &gp.ext_regions {
        ext_addrs.extend(lo..hi);
    }
    ext_addrs
}

/// Field-by-field comparison of the machine's final architectural state
/// against the reference interpreter's; mismatches append to `details`.
fn diff_against_reference(
    machine: &mut Machine,
    retire_log: &RetireLog,
    reference: &RefMachine,
    gp: &GenProgram,
    ext_addrs: &BTreeSet<u16>,
    details: &mut Vec<String>,
) {
    for s in 0..gp.streams {
        let m_retired = machine.stats().retired[s];
        let log = &retire_log.per_stream[s];
        if m_retired != log.len() as u64 {
            details.push(format!(
                "stream {s}: machine retire counter {m_retired} disagrees with its own trace ({})",
                log.len()
            ));
        }
        if m_retired != reference.retired(s) {
            details.push(format!(
                "stream {s}: retired {m_retired} vs reference {}",
                reference.retired(s)
            ));
        }
        if gp.exact && log.as_slice() != reference.retired_pcs(s) {
            let min = log
                .iter()
                .zip(reference.retired_pcs(s))
                .take_while(|(a, b)| a == b)
                .count();
            details.push(format!(
                "stream {s}: retire order first differs at instruction {min} \
                 (machine {:?}…, reference {:?}…)",
                log.get(min),
                reference.retired_pcs(s).get(min)
            ));
        }
        let st = machine.stream(s);
        if st.ir() != reference.ir(s) {
            details.push(format!(
                "stream {s}: ir {:#04x} vs {:#04x}",
                st.ir(),
                reference.ir(s)
            ));
        }
        if st.mr() != reference.mr(s) {
            details.push(format!(
                "stream {s}: mr {:#04x} vs {:#04x}",
                st.mr(),
                reference.mr(s)
            ));
        }
        if st.flags().to_word() != reference.flags_word(s) {
            details.push(format!(
                "stream {s}: flags {:#x} vs {:#x}",
                st.flags().to_word(),
                reference.flags_word(s)
            ));
        }
        if st.service_depth() != reference.service_depth(s)
            || st.service_level() != reference.service_level(s)
        {
            details.push(format!(
                "stream {s}: service depth/level {}/{} vs {}/{}",
                st.service_depth(),
                st.service_level(),
                reference.service_depth(s),
                reference.service_level(s)
            ));
        }
        let m_window = st.window();
        if m_window.awp() != reference.awp(s) {
            details.push(format!(
                "stream {s}: awp {} vs {}",
                m_window.awp(),
                reference.awp(s)
            ));
        }
        let depth = m_window.max_depth().max(reference.max_window_depth(s));
        for slot in 0..depth {
            if m_window.read_slot(slot) != reference.window_slot(s, slot) {
                details.push(format!(
                    "stream {s}: window slot {slot}: {:#06x} vs {:#06x}",
                    m_window.read_slot(slot),
                    reference.window_slot(s, slot)
                ));
            }
        }
        let m_sp = machine.reg(s, Reg::Sp);
        if m_sp != reference.sp(s) {
            details.push(format!(
                "stream {s}: sp {m_sp:#06x} vs {:#06x}",
                reference.sp(s)
            ));
        }
        // PCs are only architecturally pinned for parked (inactive)
        // streams; an active stream's machine PC includes fetch-ahead.
        if !st.active() && !reference.active(s) && st.pc() != reference.pc(s) {
            details.push(format!(
                "stream {s}: parked pc {:#06x} vs {:#06x}",
                st.pc(),
                reference.pc(s)
            ));
        }
    }

    for g in 0..disc_isa::GLOBAL_REGS {
        if machine.global(g) != reference.global(g) {
            details.push(format!(
                "global g{g}: {:#06x} vs {:#06x}",
                machine.global(g),
                reference.global(g)
            ));
        }
    }

    for addr in 0..reference.internal_len() as u16 {
        if machine.internal_memory().read(addr) != reference.internal(addr) {
            details.push(format!(
                "internal[{addr:#x}]: {:#06x} vs {:#06x}",
                machine.internal_memory().read(addr),
                reference.internal(addr)
            ));
        }
    }

    for &addr in ext_addrs {
        let m_val = machine.bus_mut().read(addr);
        if m_val != reference.external(addr) {
            details.push(format!(
                "external[{addr:#x}]: {m_val:#06x} vs {:#06x}",
                reference.external(addr)
            ));
        }
    }
}

/// Compares two machines' complete final states — statistics (cycle
/// attribution included), per-stream control state, window stacks, `sp`,
/// globals, internal and touched external memory. Mismatches append to
/// `details`, prefixed with `label`; the second machine of each reported
/// pair is `expected`.
fn diff_machines(
    label: &str,
    expected: &mut Machine,
    candidate: &mut Machine,
    streams: usize,
    internal_len: u16,
    ext_addrs: &BTreeSet<u16>,
    details: &mut Vec<String>,
) {
    if candidate.stats() != expected.stats() {
        details.push(format!(
            "{label}: stats diverge:\n    got   {:?}\n    exact {:?}",
            candidate.stats(),
            expected.stats()
        ));
    }
    for s in 0..streams {
        let a = expected.stream(s);
        let b = candidate.stream(s);
        let ctl = |st: &disc_core::Stream| {
            (
                st.pc(),
                st.ir(),
                st.mr(),
                st.flags().to_word(),
                st.service_depth(),
                st.service_level(),
                st.window().awp(),
            )
        };
        if ctl(a) != ctl(b) {
            details.push(format!(
                "{label}: stream {s} control state {:?} vs {:?}",
                ctl(b),
                ctl(a)
            ));
        }
        for slot in 0..a.window().max_depth() {
            if a.window().read_slot(slot) != b.window().read_slot(slot) {
                details.push(format!(
                    "{label}: stream {s} window slot {slot}: {:#06x} vs {:#06x}",
                    b.window().read_slot(slot),
                    a.window().read_slot(slot)
                ));
            }
        }
        if expected.reg(s, Reg::Sp) != candidate.reg(s, Reg::Sp) {
            details.push(format!(
                "{label}: stream {s} sp {:#06x} vs {:#06x}",
                candidate.reg(s, Reg::Sp),
                expected.reg(s, Reg::Sp)
            ));
        }
    }
    for g in 0..disc_isa::GLOBAL_REGS {
        if expected.global(g) != candidate.global(g) {
            details.push(format!(
                "{label}: global g{g}: {:#06x} vs {:#06x}",
                candidate.global(g),
                expected.global(g)
            ));
        }
    }
    for addr in 0..internal_len {
        if expected.internal_memory().read(addr) != candidate.internal_memory().read(addr) {
            details.push(format!(
                "{label}: internal[{addr:#x}]: {:#06x} vs {:#06x}",
                candidate.internal_memory().read(addr),
                expected.internal_memory().read(addr)
            ));
        }
    }
    for &addr in ext_addrs {
        if expected.bus_mut().read(addr) != candidate.bus_mut().read(addr) {
            details.push(format!("{label}: external[{addr:#x}] diverges"));
        }
    }
}

// ---- fork-based mode coverage -------------------------------------------

/// Cycles the shared warm-up phase runs before the fork snapshot is
/// taken. Small on purpose: generated programs are short, and the forks
/// must re-execute most of each program under their own timing modes for
/// the coverage to mean anything.
pub const WARM_CYCLES: u64 = 256;

/// Every step-mode × dispatch-mode combination the machine supports.
pub const MODE_COMBOS: [(StepMode, DispatchMode); 4] = [
    (StepMode::CycleByCycle, DispatchMode::Legacy),
    (StepMode::CycleByCycle, DispatchMode::Superblock),
    (StepMode::EventSkip, DispatchMode::Legacy),
    (StepMode::EventSkip, DispatchMode::Superblock),
];

/// A fork-mode fuzz failure: the divergence plus everything needed to
/// reproduce it without re-running the campaign — the generated program
/// and its knobs, the warm-point snapshot the forks started from, and the
/// base machine's final state for a one-invocation `replay` check.
#[derive(Debug)]
pub struct ForkFailure {
    /// What differed, per [`compare_with_budget`]'s conventions.
    pub divergence: Divergence,
    /// The generated test case (program image + microarchitecture knobs).
    pub gp: GenProgram,
    /// Snapshot at the shared warm point (the "pre-divergence" state).
    pub snapshot: Vec<u8>,
    /// Cycle the base machine finished at.
    pub end_cycle: u64,
    /// The base machine's final snapshot.
    pub final_snapshot: Vec<u8>,
}

fn fork_failure(
    gp: &GenProgram,
    details: Vec<String>,
    snapshot: Vec<u8>,
    machine: &Machine,
) -> Box<ForkFailure> {
    Box::new(ForkFailure {
        divergence: Divergence {
            seed: gp.seed,
            details,
        },
        gp: gp.clone(),
        snapshot,
        end_cycle: machine.stats().cycles,
        final_snapshot: machine.snapshot(),
    })
}

/// Fork-based differential check: generates and warms up **once** per
/// seed, snapshots, and forks a machine per [`MODE_COMBOS`] entry from
/// the shared warm point instead of re-executing every mode from cold.
///
/// The base machine (pinned cycle-by-cycle, legacy dispatch, retire-log
/// sink) runs to completion and is compared field by field against the
/// `disc-ref` interpreter exactly like [`compare_with_budget`]; each fork
/// then runs only the post-snapshot tail under its own timing mode and
/// must land on the identical final state and statistics. The
/// `(CycleByCycle, Legacy)` fork doubles as a restore-fidelity check —
/// it re-executes the base tail from the snapshot and must agree.
pub fn compare_forked(gp: &GenProgram) -> Result<u64, Box<ForkFailure>> {
    let mut details = Vec::new();

    let base_cfg = machine_config(gp)
        .with_step_mode(StepMode::CycleByCycle)
        .with_dispatch_mode(DispatchMode::Legacy);
    let mut machine = Machine::new(base_cfg, &gp.program);
    machine.set_trace_sink(Box::new(RetireLog {
        per_stream: vec![Vec::new(); gp.streams],
    }));
    let warm_exit = machine.run(WARM_CYCLES.min(MACHINE_CYCLES));
    let snapshot = machine.snapshot();
    let m_exit = match warm_exit {
        Ok(Exit::CycleLimit) => machine.run(MACHINE_CYCLES - WARM_CYCLES.min(MACHINE_CYCLES)),
        other => other,
    };
    let retire_log = machine
        .take_trace_sink()
        .and_then(|sink| sink.into_any().downcast::<RetireLog>().ok())
        .expect("retire log sink");

    let mut reference = RefMachine::new(ref_config(gp), &gp.program);
    let r_exit = reference.run(REF_STEPS);
    let steps = reference.steps();

    let exits_match = matches!(
        (&m_exit, r_exit),
        (Ok(Exit::Halted), RefExit::Halted) | (Ok(Exit::AllIdle), RefExit::AllIdle)
    );
    if !exits_match {
        details.push(format!(
            "exit status: machine {m_exit:?} vs reference {r_exit:?}"
        ));
        return Err(fork_failure(gp, details, snapshot, &machine));
    }

    let ext_addrs = ext_addr_set(gp, &reference);
    diff_against_reference(
        &mut machine,
        &retire_log,
        &reference,
        gp,
        &ext_addrs,
        &mut details,
    );

    for (step, dispatch) in MODE_COMBOS {
        let cfg = machine_config(gp)
            .with_step_mode(step)
            .with_dispatch_mode(dispatch);
        let mut fork = Machine::new(cfg, &gp.program);
        if let Err(e) = fork.restore(&snapshot) {
            details.push(format!("fork {step:?}/{dispatch:?}: restore failed: {e}"));
            continue;
        }
        let f_exit = fork.run(MACHINE_CYCLES);
        if f_exit != m_exit {
            details.push(format!(
                "fork {step:?}/{dispatch:?}: exit {f_exit:?} vs base {m_exit:?}"
            ));
        }
        diff_machines(
            &format!("fork {step:?}/{dispatch:?}"),
            &mut machine,
            &mut fork,
            gp.streams,
            reference.internal_len() as u16,
            &ext_addrs,
            &mut details,
        );
    }

    if details.is_empty() {
        Ok(steps)
    } else {
        Err(fork_failure(gp, details, snapshot, &machine))
    }
}

/// Generates and fork-checks one seed.
///
/// # Errors
///
/// Returns the [`ForkFailure`] when any mode combo or the reference
/// comparison diverges.
pub fn fork_check_seed(seed: u64) -> Result<u64, Box<ForkFailure>> {
    compare_forked(&generate(seed))
}

/// Writes a crash-artifact pair for a fork-mode failure into `dir`:
/// `seed-<hex>.replay`, a `disc-replay/v1` log whose starting snapshot is
/// the pre-divergence warm point (so the failure reproduces in one
/// `replay` invocation), and `seed-<hex>.txt` with the seed, every
/// generator knob and the divergence details. Returns the path stem.
///
/// # Errors
///
/// Propagates filesystem errors from creating `dir` or writing the files.
pub fn write_artifact(dir: &Path, failure: &ForkFailure) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let gp = &failure.gp;
    let stem = dir.join(format!("seed-{:016x}", failure.divergence.seed));
    let log = ReplayLog {
        config: machine_config(gp)
            .with_step_mode(StepMode::CycleByCycle)
            .with_dispatch_mode(DispatchMode::Legacy),
        program: gp.program.clone(),
        start: failure.snapshot.clone(),
        events: Vec::new(),
        end_cycle: failure.end_cycle,
        final_snapshot: failure.final_snapshot.clone(),
    };
    std::fs::write(stem.with_extension("replay"), log.save())?;

    let mut txt = String::new();
    let _ = writeln!(txt, "seed: {:#x}", gp.seed);
    let _ = writeln!(
        txt,
        "streams: {} (exact retire-order comparison: {})",
        gp.streams, gp.exact
    );
    let _ = writeln!(
        txt,
        "pipeline_depth: {}  window_depth: {}  ext_latency: {}",
        gp.pipeline_depth, gp.window_depth, gp.ext_latency
    );
    let _ = writeln!(txt, "schedule: {:?}", gp.schedule);
    let _ = writeln!(
        txt,
        "drawn step_mode: {:?}  dispatch_mode: {:?}",
        gp.step_mode, gp.dispatch_mode
    );
    let _ = writeln!(
        txt,
        "warm-point snapshot taken after at most {WARM_CYCLES} cycles; \
         base machine finished at cycle {}",
        failure.end_cycle
    );
    let _ = writeln!(txt);
    let _ = write!(txt, "{}", failure.divergence);
    let _ = writeln!(txt, "\nreproduce:");
    let _ = writeln!(
        txt,
        "  cargo run -p disc-bench --bin fuzz -- --fork --no-corpus --seed {:#x} --count 1",
        gp.seed
    );
    let _ = writeln!(
        txt,
        "  cargo run -p disc-bench --bin replay -- {}",
        stem.with_extension("replay").display()
    );
    std::fs::write(stem.with_extension("txt"), txt)?;
    Ok(stem)
}

fn write_panic_artifact(dir: &Path, seed: u64, msg: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("seed-{seed:016x}.txt"));
    std::fs::write(
        path,
        format!(
            "seed: {seed:#x}\nworker panicked: {msg}\n\nreproduce:\n  \
             cargo run -p disc-bench --bin fuzz -- --fork --no-corpus \
             --seed {seed:#x} --count 1\n"
        ),
    )
}

/// Fork-mode campaign: like [`run_campaign`], but each seed is checked
/// through [`fork_check_seed`] — generate and warm up once, fork per mode
/// combo — and any failure (divergence or worker panic) leaves a crash
/// artifact in `artifact_dir` via [`write_artifact`]. A panic yields a
/// knobs-only artifact: no pre-divergence snapshot survives an unwound
/// worker, but the seed alone regenerates the case.
pub fn run_campaign_forked(
    extra_seeds: &[u64],
    base_seed: u64,
    count: u64,
    artifact_dir: Option<&Path>,
) -> CampaignReport {
    let mut seeds: Vec<u64> = extra_seeds.to_vec();
    seeds.extend((0..count).map(|i| base_seed.wrapping_add(i)));
    let results = disc_par::par_map(seeds, |seed| {
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fork_check_seed(seed)));
        match outcome {
            Ok(Ok(steps)) => Ok(steps),
            Ok(Err(failure)) => {
                let mut div = failure.divergence.clone();
                if let Some(dir) = artifact_dir {
                    match write_artifact(dir, &failure) {
                        Ok(stem) => div
                            .details
                            .push(format!("artifact: {}.replay", stem.display())),
                        Err(e) => div.details.push(format!("artifact write failed: {e}")),
                    }
                }
                Err(div)
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(|s| s.as_str())
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic payload");
                let mut details = vec![format!("worker panicked: {msg}")];
                if let Some(dir) = artifact_dir {
                    if let Err(e) = write_panic_artifact(dir, seed, msg) {
                        details.push(format!("artifact write failed: {e}"));
                    }
                }
                Err(Divergence { seed, details })
            }
        }
    });
    let mut report = CampaignReport::default();
    for outcome in results {
        report.programs += 1;
        match outcome {
            Ok(steps) => report.instructions += steps,
            Err(div) => report.divergences.push(div),
        }
    }
    report
}

// ---- minimization -------------------------------------------------------

/// Shrinks a diverging program by nopping out instructions to a fixed
/// point: an instruction stays nopped only while the divergence persists.
/// Returns the minimized test case.
pub fn minimize(gp: &GenProgram) -> GenProgram {
    let nop = encode(&Instruction::Nop);
    let mut current = gp.clone();
    if compare(&current).is_ok() {
        return current;
    }
    loop {
        let mut changed = false;
        let len = current.program.len() as u16;
        for addr in 0..len {
            if current.program.word(addr) == nop {
                continue;
            }
            let mut candidate = current.clone();
            candidate.program.set_word(addr, nop);
            // Keep the candidate only for a *usable* divergence: nopping
            // out a terminator can send the reference itself past its
            // step budget, which is a shrinking artifact, not the bug.
            if matches!(compare(&candidate), Err(d) if divergence_is_usable(&d)) {
                current = candidate;
                changed = true;
            }
        }
        if !changed {
            return current;
        }
    }
}

/// A divergence worth shrinking toward: not a reference-side budget
/// exhaustion (which usually means the shrink destroyed termination).
fn divergence_is_usable(d: &Divergence) -> bool {
    !d.details.iter().any(|line| line.contains("StepLimit"))
}

/// Disassembly of the non-`nop` words of a (typically minimized) program.
pub fn sparse_listing(program: &Program) -> String {
    let nop = encode(&Instruction::Nop);
    let mut out = String::new();
    for (addr, word) in program.iter() {
        if word == nop {
            continue;
        }
        let _ = writeln!(out, "{addr:#06x}: {}", disc_isa::disasm::format_word(word));
    }
    out
}

// ---- campaign driver ----------------------------------------------------

/// Outcome of a fuzz campaign.
#[derive(Debug, Default)]
pub struct CampaignReport {
    /// Programs compared.
    pub programs: u64,
    /// Reference instructions executed (architectural work covered).
    pub instructions: u64,
    /// Divergent seeds, in the order found.
    pub divergences: Vec<Divergence>,
}

impl CampaignReport {
    /// `true` when every program matched.
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Compares `count` seeds starting at `base_seed`, fanned out over
/// `disc-par` workers, plus every explicit seed in `extra_seeds` first.
pub fn run_campaign(extra_seeds: &[u64], base_seed: u64, count: u64) -> CampaignReport {
    let mut seeds: Vec<u64> = extra_seeds.to_vec();
    seeds.extend((0..count).map(|i| base_seed.wrapping_add(i)));
    let results = disc_par::par_map(seeds, |seed| (seed, check_seed(seed)));
    let mut report = CampaignReport::default();
    for (_, outcome) in results {
        report.programs += 1;
        match outcome {
            Ok(steps) => report.instructions += steps,
            Err(div) => report.divergences.push(div),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = generate(42);
        let b = generate(42);
        assert_eq!(a.program, b.program);
        assert_eq!(a.streams, b.streams);
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn generated_programs_terminate_and_match() {
        for seed in 0..40 {
            let steps = check_seed(seed).unwrap_or_else(|d| panic!("{d}"));
            assert!(steps > 0, "seed {seed} executed nothing");
        }
    }

    #[test]
    fn seeds_cover_single_and_multi_stream() {
        let mut single = 0;
        let mut multi = 0;
        let mut cross = 0;
        for seed in 0..64 {
            let gp = generate(seed);
            if gp.streams == 1 {
                single += 1;
            } else {
                multi += 1;
            }
            if !gp.exact {
                cross += 1;
            }
        }
        assert!(single > 10 && multi > 10, "{single} single / {multi} multi");
        assert!(cross > 3, "cross-signal programs too rare: {cross}");
    }

    #[test]
    fn minimize_keeps_a_real_divergence() {
        // Manufacture a divergence by corrupting a copy of the machine's
        // input: run the comparison against a program whose entry block
        // differs. Simplest robust check: a program that halts with a
        // known mismatch never minimizes to a matching one.
        let gp = generate(7);
        let min = minimize(&gp);
        // A matching program minimizes to itself (no-op).
        assert_eq!(min.program, gp.program);
    }

    #[test]
    fn sparse_listing_skips_nops() {
        let gp = generate(3);
        let listing = sparse_listing(&gp.program);
        assert!(!listing.is_empty());
        assert!(!listing.contains("nop"));
    }

    #[test]
    fn fork_mode_matches_on_fresh_seeds() {
        for seed in 0..24 {
            let steps = fork_check_seed(seed).unwrap_or_else(|f| panic!("{}", f.divergence));
            assert!(steps > 0, "seed {seed} executed nothing");
        }
    }

    #[test]
    fn corpus_replays_clean_through_fork_mode() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz/regressions.txt");
        let text = std::fs::read_to_string(path).expect("corpus readable");
        let seeds: Vec<u64> = text
            .lines()
            .map(|l| l.split('#').next().unwrap_or("").trim())
            .filter(|l| !l.is_empty())
            .map(|l| {
                l.strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| l.parse())
                    .expect("corpus seed parses")
            })
            .collect();
        assert!(!seeds.is_empty(), "corpus has seeds");
        for seed in seeds {
            fork_check_seed(seed).unwrap_or_else(|f| panic!("corpus: {}", f.divergence));
        }
    }

    #[test]
    fn artifacts_reproduce_in_one_replay_invocation() {
        // Manufacture a failure record from a healthy run: the artifact
        // machinery must work regardless of what the divergence was.
        let gp = generate(5);
        let cfg = machine_config(&gp)
            .with_step_mode(StepMode::CycleByCycle)
            .with_dispatch_mode(DispatchMode::Legacy);
        let mut m = Machine::new(cfg, &gp.program);
        let warm_exit = m.run(WARM_CYCLES);
        let snapshot = m.snapshot();
        if matches!(warm_exit, Ok(Exit::CycleLimit)) {
            m.run(MACHINE_CYCLES).expect("base run");
        }
        let failure = ForkFailure {
            divergence: Divergence {
                seed: gp.seed,
                details: vec!["synthetic failure for the artifact test".into()],
            },
            gp: gp.clone(),
            snapshot,
            end_cycle: m.stats().cycles,
            final_snapshot: m.snapshot(),
        };

        let dir = std::env::temp_dir().join(format!("disc-fuzz-artifacts-{}", std::process::id()));
        let stem = write_artifact(&dir, &failure).expect("artifact written");

        let bytes = std::fs::read(stem.with_extension("replay")).expect("replay file exists");
        let log = ReplayLog::load(&bytes).expect("artifact log loads");
        let replayed = crate::replay::replay(&log, None).expect("artifact replays");
        assert_eq!(
            replayed.snapshot(),
            log.final_snapshot,
            "one replay invocation reproduces the recorded run"
        );

        let notes = std::fs::read_to_string(stem.with_extension("txt")).expect("notes exist");
        assert!(notes.contains("seed: 0x5"));
        assert!(notes.contains("--fork"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forked_campaign_reports_like_the_plain_one() {
        let report = run_campaign_forked(&[3], 0, 4, None);
        assert_eq!(report.programs, 5);
        assert!(report.passed(), "divergences: {:?}", report.divergences);
        assert!(report.instructions > 0);
    }
}
