//! Deterministic record–replay of cycle-accurate machine runs.
//!
//! A [`ReplayLog`] is a self-contained `disc-replay/v1` file: the full
//! [`MachineConfig`] (including the timing-only step/dispatch modes), the
//! program image (words, entry points, interrupt vectors), a starting
//! [`Machine::snapshot`], the tape of external inputs applied during the
//! recording (today: [`Machine::raise_interrupt`] calls, stamped with the
//! cycle they landed on), the cycle the recording ended at, and a final
//! snapshot of the machine state at that cycle.
//!
//! [`replay`] rebuilds the machine, restores the starting snapshot, and
//! re-applies the tape at the recorded cycles; because the simulator is
//! deterministic, the replayed machine reaches a *byte-identical* final
//! snapshot — statistics, cycle attribution and all. Passing `to_cycle`
//! stops the re-execution mid-tape instead, which is the time-travel
//! primitive: bisect a long run for the cycle where a property first goes
//! wrong without ever re-running from cold.
//!
//! v1 limitation: the replayed machine runs on the default [`FlatBus`]
//! (external memory is part of the snapshot, so its *contents* survive);
//! recordings of machines on peripheral buses would need the host to
//! rebuild the same bus, which the file format cannot express yet.
//!
//! [`FlatBus`]: disc_core::FlatBus

use disc_core::{Exit, Machine, MachineConfig, SimError, SnapError, SnapReader, SnapWriter};
use disc_isa::Program;

/// Format tag leading every serialized replay log.
pub const REPLAY_FORMAT: &str = "disc-replay/v1";

/// One external input applied during a recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputEvent {
    /// [`Machine::raise_interrupt`]`(stream, bit)` issued when the
    /// machine stood at `cycle` (between cycles, i.e. after `cycle`
    /// cycles had executed).
    RaiseIrq {
        /// Machine cycle count at the moment the interrupt was raised.
        cycle: u64,
        /// Target stream.
        stream: usize,
        /// IR bit to set.
        bit: u8,
    },
}

/// A complete recording: everything needed to re-execute a run.
#[derive(Debug, Clone)]
pub struct ReplayLog {
    /// Machine configuration of the recorded run.
    pub config: MachineConfig,
    /// Program image the run executed.
    pub program: Program,
    /// Snapshot at the start of the recording.
    pub start: Vec<u8>,
    /// External inputs in the order (and at the cycles) they were applied.
    pub events: Vec<InputEvent>,
    /// Machine cycle count when the recording ended.
    pub end_cycle: u64,
    /// Snapshot at [`end_cycle`](Self::end_cycle); [`replay`] to the end
    /// must reproduce these bytes exactly.
    pub final_snapshot: Vec<u8>,
}

impl ReplayLog {
    /// Serializes the log as a `disc-replay/v1` byte stream.
    pub fn save(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_str(REPLAY_FORMAT);
        self.config.save_into(&mut w);
        let words: Vec<(u16, u32)> = self.program.iter().collect();
        w.put_usize(words.len());
        for (addr, word) in words {
            w.put_u16(addr);
            w.put_u32(word);
        }
        for s in 0..disc_isa::MAX_STREAMS {
            w.put_opt_u16(self.program.entry(s));
        }
        for s in 0..disc_isa::MAX_STREAMS {
            for bit in 1..disc_isa::IRQ_LEVELS as u8 {
                w.put_opt_u16(self.program.vector(s, bit));
            }
        }
        w.put_bytes(&self.start);
        w.put_usize(self.events.len());
        for ev in &self.events {
            let InputEvent::RaiseIrq { cycle, stream, bit } = ev;
            w.put_u64(*cycle);
            w.put_usize(*stream);
            w.put_u8(*bit);
        }
        w.put_u64(self.end_cycle);
        w.put_bytes(&self.final_snapshot);
        w.into_bytes()
    }

    /// Deserializes a `disc-replay/v1` byte stream.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on truncation, a wrong format tag, or a
    /// malformed event tape (events out of cycle order or past the end).
    pub fn load(bytes: &[u8]) -> Result<ReplayLog, SnapError> {
        let mut r = SnapReader::new(bytes);
        r.expect_str(REPLAY_FORMAT)?;
        let config = MachineConfig::restore_from(&mut r)?;
        let nwords = r.get_usize()?;
        let mut program = Program::new();
        for _ in 0..nwords {
            let addr = r.get_u16()?;
            let word = r.get_u32()?;
            program.set_word(addr, word);
        }
        for s in 0..disc_isa::MAX_STREAMS {
            if let Some(pc) = r.get_opt_u16()? {
                program.set_entry(s, pc);
            }
        }
        for s in 0..disc_isa::MAX_STREAMS {
            for bit in 1..disc_isa::IRQ_LEVELS as u8 {
                if let Some(pc) = r.get_opt_u16()? {
                    program.set_vector(s, bit, pc);
                }
            }
        }
        let start = r.get_bytes()?.to_vec();
        let nevents = r.get_usize()?;
        let mut events = Vec::with_capacity(nevents.min(1 << 16));
        let mut last_cycle = 0u64;
        for _ in 0..nevents {
            let cycle = r.get_u64()?;
            let stream = r.get_usize()?;
            let bit = r.get_u8()?;
            if cycle < last_cycle {
                return Err(SnapError::Corrupt(format!(
                    "event tape out of order: cycle {cycle} after {last_cycle}"
                )));
            }
            if stream >= config.streams || bit as usize >= disc_isa::IRQ_LEVELS {
                return Err(SnapError::Corrupt(format!(
                    "event targets stream {stream} bit {bit} outside the configuration"
                )));
            }
            last_cycle = cycle;
            events.push(InputEvent::RaiseIrq { cycle, stream, bit });
        }
        let end_cycle = r.get_u64()?;
        if end_cycle < last_cycle {
            return Err(SnapError::Corrupt(format!(
                "recording ends at cycle {end_cycle} before its last event at {last_cycle}"
            )));
        }
        let final_snapshot = r.get_bytes()?.to_vec();
        r.finish()?;
        Ok(ReplayLog {
            config,
            program,
            start,
            events,
            end_cycle,
            final_snapshot,
        })
    }
}

/// Records a run as the host drives it: route every external input
/// through the recorder so it lands on the tape with its cycle stamp.
///
/// ```no_run
/// # use disc_bench::replay::Recorder;
/// # use disc_core::{Machine, MachineConfig};
/// # use disc_isa::Program;
/// # let config = MachineConfig::disc1();
/// # let program = Program::new();
/// let mut m = Machine::new(config.clone(), &program);
/// let mut rec = Recorder::begin(&m, &config, &program);
/// rec.raise_irq(&mut m, 3, 5);
/// m.run(1_000).unwrap();
/// let log = rec.finish(&m);
/// std::fs::write("run.replay", log.save()).unwrap();
/// ```
#[derive(Debug)]
pub struct Recorder {
    config: MachineConfig,
    program: Program,
    start: Vec<u8>,
    events: Vec<InputEvent>,
}

impl Recorder {
    /// Starts recording `m` (snapshots its current state). `config` and
    /// `program` must be the ones the machine was built with.
    pub fn begin(m: &Machine, config: &MachineConfig, program: &Program) -> Recorder {
        Recorder {
            config: config.clone(),
            program: program.clone(),
            start: m.snapshot(),
            events: Vec::new(),
        }
    }

    /// Raises an interrupt on the machine and tapes it at the current
    /// cycle.
    pub fn raise_irq(&mut self, m: &mut Machine, stream: usize, bit: u8) {
        self.events.push(InputEvent::RaiseIrq {
            cycle: m.stats().cycles,
            stream,
            bit,
        });
        m.raise_interrupt(stream, bit);
    }

    /// Ends the recording, capturing the machine's final snapshot.
    pub fn finish(self, m: &Machine) -> ReplayLog {
        ReplayLog {
            config: self.config,
            program: self.program,
            start: self.start,
            events: self.events,
            end_cycle: m.stats().cycles,
            final_snapshot: m.snapshot(),
        }
    }
}

/// Why a replay could not complete.
#[derive(Debug)]
pub enum ReplayError {
    /// The log or its embedded snapshot failed to decode or restore.
    Snap(SnapError),
    /// The re-executed machine hit a fatal simulation error the recording
    /// did not contain.
    Sim(SimError),
    /// The machine stopped making progress (halted or idle) at `at`
    /// before reaching `want`, so the tape cannot be honoured — the
    /// recording and the simulator disagree.
    Stalled {
        /// Cycle the machine stopped advancing at.
        at: u64,
        /// Cycle the tape needed it to reach.
        want: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Snap(e) => write!(f, "replay log error: {e}"),
            ReplayError::Sim(e) => write!(f, "simulation error during replay: {e}"),
            ReplayError::Stalled { at, want } => write!(
                f,
                "machine stopped at cycle {at} but the tape runs to {want}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<SnapError> for ReplayError {
    fn from(e: SnapError) -> Self {
        ReplayError::Snap(e)
    }
}

/// Advances `m` to exactly `target` cycles, surfacing a [`ReplayError`]
/// if it stops making progress first. A machine that halts or idles *at*
/// the target is fine — that is how recordings end.
fn run_to(m: &mut Machine, target: u64) -> Result<(), ReplayError> {
    loop {
        let now = m.stats().cycles;
        if now >= target {
            return Ok(());
        }
        match m.run(target - now) {
            Ok(Exit::CycleLimit) => {}
            Ok(_) => {
                if m.stats().cycles < target {
                    return Err(ReplayError::Stalled {
                        at: m.stats().cycles,
                        want: target,
                    });
                }
            }
            Err(e) => return Err(ReplayError::Sim(e)),
        }
    }
}

/// Re-executes `log` from its starting snapshot, applying the input tape
/// at the recorded cycles. Runs to `to_cycle` (clamped to the recording's
/// end) when given, otherwise to the recording's end; returns the machine
/// for inspection. Events stamped exactly at the stopping cycle are
/// applied before returning, matching the order they were taped in.
///
/// # Errors
///
/// Returns [`ReplayError`] when the log is malformed, the configuration
/// cannot restore the snapshot, or the re-executed machine deviates from
/// the tape's timeline.
pub fn replay(log: &ReplayLog, to_cycle: Option<u64>) -> Result<Machine, ReplayError> {
    let mut m = Machine::new(log.config.clone(), &log.program);
    m.restore(&log.start)?;
    let end = to_cycle.map_or(log.end_cycle, |c| c.min(log.end_cycle));
    for ev in &log.events {
        let InputEvent::RaiseIrq { cycle, stream, bit } = ev;
        if *cycle > end {
            break;
        }
        run_to(&mut m, *cycle)?;
        m.raise_interrupt(*stream, *bit);
    }
    run_to(&mut m, end)?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn irq_program() -> Program {
        Program::assemble(
            ".stream 0, work\n.vector 3, 5, isr\n\
             work:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    jmp work\n\
             isr:\n    lda r0, 0x40\n    addi r0, r0, 1\n    sta r0, 0x40\n    reti\n",
        )
        .expect("irq program assembles")
    }

    /// Drives an interrupt-fed run under `config`, recording it.
    fn record_run(config: &MachineConfig, program: &Program) -> ReplayLog {
        let mut m = Machine::new(config.clone(), program);
        m.set_idle_exit(false);
        let mut rec = Recorder::begin(&m, config, program);
        for _ in 0..40 {
            rec.raise_irq(&mut m, 3, 5);
            m.run(50).expect("chunk runs");
        }
        rec.finish(&m)
    }

    #[test]
    fn replay_reproduces_the_run_byte_for_byte() {
        let program = irq_program();
        let config = disc_core::MachineConfig::disc1();
        let log = record_run(&config, &program);
        assert_eq!(log.end_cycle, 2_000);
        assert_eq!(log.events.len(), 40);

        let replayed = replay(&log, None).expect("replay completes");
        assert_eq!(
            replayed.snapshot(),
            log.final_snapshot,
            "replayed final state must be byte-identical"
        );
    }

    #[test]
    fn replay_survives_serialization_and_mode_variants() {
        let program = irq_program();
        for (step, dispatch) in [
            (
                disc_core::StepMode::CycleByCycle,
                disc_core::DispatchMode::Legacy,
            ),
            (
                disc_core::StepMode::EventSkip,
                disc_core::DispatchMode::Superblock,
            ),
        ] {
            let config = disc_core::MachineConfig::disc1()
                .with_step_mode(step)
                .with_dispatch_mode(dispatch);
            let log = record_run(&config, &program);
            let bytes = log.save();
            let loaded = ReplayLog::load(&bytes).expect("log loads");
            assert_eq!(loaded.save(), bytes, "save/load round-trips");
            let replayed = replay(&loaded, None).expect("replay completes");
            assert_eq!(replayed.snapshot(), loaded.final_snapshot);
        }
    }

    #[test]
    fn to_cycle_stops_mid_tape_and_resumes_deterministically() {
        let program = irq_program();
        let config = disc_core::MachineConfig::disc1();
        let log = record_run(&config, &program);

        let mut mid = replay(&log, Some(777)).expect("partial replay");
        assert_eq!(mid.stats().cycles, 777);

        // Continuing the partial replay by hand — applying the rest of
        // the tape — must converge on the same final bytes.
        for ev in &log.events {
            let InputEvent::RaiseIrq { cycle, stream, bit } = ev;
            if *cycle <= 777 {
                continue;
            }
            let now = mid.stats().cycles;
            mid.run(*cycle - now).expect("advance");
            mid.raise_interrupt(*stream, *bit);
        }
        let now = mid.stats().cycles;
        mid.run(log.end_cycle - now).expect("tail");
        assert_eq!(mid.snapshot(), log.final_snapshot);
    }

    #[test]
    fn corrupt_logs_are_rejected() {
        let program = irq_program();
        let config = disc_core::MachineConfig::disc1();
        let log = record_run(&config, &program);
        let bytes = log.save();

        assert!(
            ReplayLog::load(&bytes[..bytes.len() - 1]).is_err(),
            "truncated"
        );
        let mut wrong_tag = bytes.clone();
        // The format string sits just past the length prefix.
        wrong_tag[9] ^= 0x20;
        assert!(ReplayLog::load(&wrong_tag).is_err(), "wrong format tag");

        let mut out_of_order = log.clone();
        out_of_order.events.reverse();
        assert!(
            ReplayLog::load(&out_of_order.save()).is_err(),
            "tape out of cycle order"
        );
    }
}
