//! Benchmark and reproduction harness.
//!
//! Every table and figure of the paper has a generator here (exercised by
//! the `src/bin` targets and unit tests) and a Criterion micro-benchmark
//! under `benches/`. Table generators live in `disc-stoch`; this crate
//! adds the figure reproductions, which run on the *cycle-accurate*
//! machine, plus the latency and synchronization experiments.

pub mod experiments;
pub mod figures;
pub mod fuzz;
pub mod replay;

use disc_core::{SkipStats, StepMode};
use disc_obs::Json;

/// Builds the v2 `timing` section for a stochastic sweep report: the
/// model is stepped cycle by cycle (event skipping applies only to the
/// cycle-accurate machine), and every table cell is `seeds` independent
/// runs of `cycles` cycles, so the wall-clock throughput is exact.
pub fn sweep_timing(table: &disc_stoch::Table, cycles: u64, seeds: u64, wall_secs: f64) -> Json {
    let total = (table.rows().len() * table.columns().len()) as u64 * seeds * cycles;
    let rate = (wall_secs > 0.0).then(|| total as f64 / wall_secs);
    disc_obs::timing_json(StepMode::CycleByCycle, rate, &SkipStats::default())
}

/// Renders a `disc-stoch` result table as JSON for inclusion in a
/// [`disc_obs::RunReport`] section.
pub fn table_json(table: &disc_stoch::Table) -> Json {
    Json::obj([
        ("title", Json::str(table.title())),
        (
            "columns",
            Json::Arr(table.columns().iter().map(Json::str).collect()),
        ),
        (
            "rows",
            Json::Arr(
                table
                    .rows()
                    .iter()
                    .map(|(label, values)| {
                        Json::obj([
                            ("label", Json::str(label)),
                            (
                                "values",
                                Json::Arr(values.iter().map(|&v| Json::F64(v)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Standard horizon for "full" table runs.
pub const FULL_CYCLES: u64 = 200_000;

/// Reduced horizon for quick/CI runs.
pub const QUICK_CYCLES: u64 = 40_000;

/// Seeds for full runs.
pub const FULL_SEEDS: u64 = 5;

/// Seeds for quick runs.
pub const QUICK_SEEDS: u64 = 2;

/// Picks (cycles, seeds) from the command line: `--quick` selects the
/// reduced configuration.
pub fn run_scale() -> (u64, u64) {
    if std::env::args().any(|a| a == "--quick") {
        (QUICK_CYCLES, QUICK_SEEDS)
    } else {
        (FULL_CYCLES, FULL_SEEDS)
    }
}
