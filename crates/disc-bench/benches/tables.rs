//! One benchmark per paper table: regenerates Table 4.1, a reduced
//! Table 4.2 and a reduced Table 4.3 (shape-preserving, smaller horizon).

use criterion::{criterion_group, criterion_main, Criterion};

const CYCLES: u64 = 10_000;
const SEEDS: u64 = 1;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_tables");
    group.sample_size(10);
    group.bench_function("table_4_1", |b| {
        b.iter(|| std::hint::black_box(disc_stoch::tables::table_4_1().to_string()))
    });
    group.bench_function("table_4_2_reduced", |b| {
        b.iter(|| {
            let (pd, delta) = disc_stoch::tables::table_4_2(CYCLES, SEEDS);
            std::hint::black_box((pd.to_string(), delta.to_string()))
        })
    });
    group.bench_function("table_4_3_reduced", |b| {
        b.iter(|| {
            let (pd, delta) = disc_stoch::tables::table_4_3(CYCLES, SEEDS);
            std::hint::black_box((pd.to_string(), delta.to_string()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
