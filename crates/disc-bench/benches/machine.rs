//! Microbenchmarks of the cycle-accurate DISC1 machine and the
//! single-stream baseline: simulation speed of interleaved compute,
//! bus-bound I/O, and interrupt delivery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disc_baseline::{BaselineConfig, BaselineMachine};
use disc_core::{Machine, MachineConfig};
use disc_isa::Program;

fn compute_program(streams: usize) -> Program {
    let mut src = String::new();
    for s in 0..streams {
        src.push_str(&format!(".stream {s}, l{s}\n"));
        src.push_str(&format!(
            "l{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    addi r2, r2, 1\n    jmp l{s}\n"
        ));
    }
    Program::assemble(&src).unwrap()
}

fn io_program() -> Program {
    Program::assemble(
        ".stream 0, a\n.stream 1, b\na: lui r0, 0x80\nla: ld r1, [r0]\n jmp la\n\
         b: ldi r0, 0\nlb: addi r0, r0, 1\n jmp lb\n",
    )
    .unwrap()
}

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_accurate_machine");
    group.sample_size(20);
    for streams in [1usize, 4] {
        let program = compute_program(streams);
        group.bench_with_input(
            BenchmarkId::new("compute_10k_cycles", streams),
            &program,
            |b, p| {
                b.iter(|| {
                    let mut m = Machine::new(MachineConfig::disc1().with_streams(streams), p);
                    m.run(10_000).unwrap();
                    std::hint::black_box(m.stats().utilization())
                });
            },
        );
    }
    let io = io_program();
    group.bench_function("io_bound_10k_cycles", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::disc1().with_streams(2), &io);
            m.run(10_000).unwrap();
            std::hint::black_box(m.stats().external_accesses)
        });
    });
    let single = compute_program(1);
    group.bench_function("baseline_10k_cycles", |b| {
        b.iter(|| {
            let mut m = BaselineMachine::new(BaselineConfig::default(), &single);
            m.run(10_000).unwrap();
            std::hint::black_box(m.stats().utilization())
        });
    });
    group.bench_function("assemble_200_lines", |b| {
        let mut src = String::from(".stream 0, main\nmain:\n");
        for i in 0..200 {
            src.push_str(&format!("l{i}: addi r{}, r{}, 1\n", i % 8, i % 8));
        }
        src.push_str("halt\n");
        b.iter(|| std::hint::black_box(Program::assemble(&src).unwrap()));
    });
    group.bench_function("compile_and_run_script", |b| {
        let src = "var n = 30; var sum = 0; \
                   while (n) { sum = sum + n * n; n = n - 1; } mem[0x10] = sum;";
        b.iter(|| std::hint::black_box(disc_cc::compile_and_run(src, 100_000).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
