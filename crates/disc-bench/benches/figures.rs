//! One benchmark per paper figure and per §4.2 sweep (reduced horizons)
//! plus the two cycle-accurate experiments.

use criterion::{criterion_group, criterion_main, Criterion};

const CYCLES: u64 = 10_000;
const SEEDS: u64 = 1;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_figures");
    group.sample_size(10);
    group.bench_function("fig_3_1_pipeline", |b| {
        b.iter(|| std::hint::black_box(disc_bench::figures::fig_3_1_interleaved_pipeline()))
    });
    group.bench_function("fig_3_2_jump", |b| {
        b.iter(|| std::hint::black_box(disc_bench::figures::fig_3_2_jump()))
    });
    group.bench_function("fig_3_3_dynamic", |b| {
        b.iter(|| std::hint::black_box(disc_bench::figures::fig_3_3_dynamic()))
    });
    group.bench_function("fig_3_4_stack_window", |b| {
        b.iter(|| std::hint::black_box(disc_bench::figures::fig_3_4_stack_window()))
    });
    group.bench_function("fig_3_6_block_diagram", |b| {
        b.iter(|| std::hint::black_box(disc_bench::figures::fig_3_6_block_diagram()))
    });
    group.finish();

    let mut sweeps = c.benchmark_group("paper_sweeps");
    sweeps.sample_size(10);
    sweeps.bench_function("sweep_jump_reduced", |b| {
        b.iter(|| std::hint::black_box(disc_stoch::tables::sweep_jump(CYCLES, SEEDS)))
    });
    sweeps.bench_function("sweep_io_reduced", |b| {
        b.iter(|| std::hint::black_box(disc_stoch::tables::sweep_io(CYCLES, SEEDS)))
    });
    sweeps.bench_function("sweep_pipeline_reduced", |b| {
        b.iter(|| std::hint::black_box(disc_stoch::tables::sweep_pipeline(CYCLES, SEEDS)))
    });
    sweeps.bench_function("sweep_scheduler_reduced", |b| {
        b.iter(|| std::hint::black_box(disc_stoch::tables::sweep_scheduler(CYCLES, SEEDS)))
    });
    sweeps.finish();

    let mut experiments = c.benchmark_group("experiments");
    experiments.sample_size(10);
    experiments.bench_function("exp_latency", |b| {
        b.iter(|| std::hint::black_box(disc_rts::latency_experiment(3, 10, 200).unwrap()))
    });
    experiments.bench_function("exp_sync", |b| {
        b.iter(|| std::hint::black_box(disc_bench::experiments::sync_experiment()))
    });
    experiments.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
