//! Microbenchmarks of the stochastic sequencer (Section 4 model):
//! cycles-per-second throughput at 1 and 4 streams, and a full Table 4.2
//! cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disc_core::SchedulePolicy;
use disc_stoch::{LoadSpec, Sequencer, Workload};

fn bench_sequencer(c: &mut Criterion) {
    let mut group = c.benchmark_group("stoch_sequencer");
    group.sample_size(20);
    for streams in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("load1_10k_cycles", streams),
            &streams,
            |b, &k| {
                b.iter(|| {
                    let w = Workload::partitioned(&LoadSpec::load1(), k);
                    let mut seq = Sequencer::new(&w, 4, SchedulePolicy::round_robin(k), 42);
                    seq.run(10_000);
                    std::hint::black_box(seq.metrics().pd())
                });
            },
        );
    }
    group.bench_function("table_4_2_cell", |b| {
        b.iter(|| {
            let w = Workload::partitioned(&LoadSpec::load2(), 4);
            let cfg = disc_stoch::RunConfig::new(w).with_cycles(20_000);
            std::hint::black_box(disc_stoch::simulate(&cfg).delta())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sequencer);
criterion_main!(benches);
