//! Equivalence tests for [`StepMode::EventSkip`]: fast-forwarding through
//! quiescent cycles must be architecturally invisible. Every scenario here
//! runs twice — cycle-by-cycle and event-skip — through `Machine::run`
//! (never a manual step loop) and demands identical final architectural
//! state, `MachineStats` (including per-stream `CycleAttribution`,
//! bucket for bucket), and `RunReport` content modulo the timing section.
//!
//! Coverage: the bench workloads (io_bound_2s, interrupt_heavy_3s,
//! timer_idle_1s), a stuck-peripheral fault plan under the `Fault` bus
//! policy, a watchdog-bite recovery loop, the fig_* figure workloads, the
//! differential-fuzz regression corpus with the mode forced on, a seeded
//! soak campaign, and byte-identical JSONL traces (a per-cycle sink pins
//! skipping off).

use disc_bench::figures;
use disc_bench::fuzz::{compare, generate};
use disc_bus::{ExtRam, PeripheralBus, Timer, Watchdog};
use disc_core::{BusFaultPolicy, Machine, MachineConfig, StepMode};
use disc_faults::{AddrRange, FaultInjector, FaultPlan, FaultWindow};
use disc_isa::{Program, Reg};
use disc_obs::{config_fingerprint, config_json, stats_json, JsonlSink};
use disc_rts::soak;

/// Runs `build`+`drive` in both step modes and asserts the results are
/// indistinguishable. `expect_skips` additionally requires that the
/// event-skip run actually fast-forwarded (otherwise the scenario proves
/// nothing about skipping).
fn assert_modes_equivalent(
    label: &str,
    expect_skips: bool,
    build: impl Fn(StepMode) -> Machine,
    drive: impl Fn(&mut Machine),
) {
    let mut cbc = build(StepMode::CycleByCycle);
    drive(&mut cbc);
    let mut skip = build(StepMode::EventSkip);
    drive(&mut skip);

    // Stats — covers cycles, retired counts, vectors, bus counters and
    // the per-stream attribution in one structural comparison…
    assert_eq!(cbc.stats(), skip.stats(), "{label}: stats diverge");
    // …but attribution exactness is the property under test, so check it
    // bucket for bucket with its own message, and require the skip run's
    // buckets to still sum to its cycle count.
    assert_eq!(
        cbc.stats().attribution,
        skip.stats().attribution,
        "{label}: cycle attribution diverges"
    );
    skip.stats()
        .attribution
        .check(skip.stats().cycles)
        .unwrap_or_else(|e| panic!("{label}: skip-run attribution unbalanced: {e:?}"));

    // Final architectural state, stream by stream.
    for s in 0..cbc.stream_count() {
        let a = cbc.stream(s);
        let b = skip.stream(s);
        assert_eq!(a.pc(), b.pc(), "{label}: stream {s} pc");
        assert_eq!(a.ir(), b.ir(), "{label}: stream {s} ir");
        assert_eq!(a.mr(), b.mr(), "{label}: stream {s} mr");
        assert_eq!(
            a.flags().to_word(),
            b.flags().to_word(),
            "{label}: stream {s} flags"
        );
        assert_eq!(
            (a.service_depth(), a.service_level()),
            (b.service_depth(), b.service_level()),
            "{label}: stream {s} service state"
        );
        assert_eq!(
            a.window().awp(),
            b.window().awp(),
            "{label}: stream {s} awp"
        );
        for slot in 0..a.window().max_depth() {
            assert_eq!(
                a.window().read_slot(slot),
                b.window().read_slot(slot),
                "{label}: stream {s} window slot {slot}"
            );
        }
        assert_eq!(
            cbc.reg(s, Reg::Sp),
            skip.reg(s, Reg::Sp),
            "{label}: stream {s} sp"
        );
    }
    for g in 0..disc_isa::GLOBAL_REGS {
        assert_eq!(cbc.global(g), skip.global(g), "{label}: global g{g}");
    }
    for addr in 0..cbc.config().internal_words as u16 {
        assert_eq!(
            cbc.internal_memory().read(addr),
            skip.internal_memory().read(addr),
            "{label}: internal[{addr:#x}]"
        );
    }

    // Skip accounting: the default mode never skips; the scenario's
    // quiescence expectation must hold in event-skip mode.
    assert_eq!(cbc.skip_stats().skips, 0, "{label}: default mode skipped");
    if expect_skips {
        let st = skip.skip_stats();
        assert!(st.skips > 0, "{label}: event skip never engaged");
        assert!(st.cycles_skipped >= st.skips, "{label}: skip bookkeeping");
    }

    // RunReport equivalence modulo the timing section: the config
    // fingerprint, the rendered config and the full stats tree are what
    // the report is built from.
    assert_eq!(
        config_fingerprint(cbc.config()),
        config_fingerprint(skip.config()),
        "{label}: config fingerprints diverge"
    );
    assert_eq!(
        config_json(cbc.config()),
        config_json(skip.config()),
        "{label}: config sections diverge"
    );
    assert_eq!(
        stats_json(cbc.stats()),
        stats_json(skip.stats()),
        "{label}: stats sections diverge"
    );
}

fn io_program() -> Program {
    Program::assemble(
        ".stream 0, a\n.stream 1, b\n\
         a: lui r0, 0x80\nla: ld r1, [r0]\n    st r1, [r0]\n    jmp la\n\
         b: ldi r0, 0\nlb: addi r0, r0, 1\n    jmp lb\n",
    )
    .expect("io program assembles")
}

#[test]
fn io_bound_2s_attribution_matches() {
    let program = io_program();
    assert_modes_equivalent(
        "io_bound_2s",
        false, // the compute stream keeps a slot live every cycle
        |mode| {
            let config = MachineConfig::disc1().with_streams(2).with_step_mode(mode);
            Machine::new(config, &program)
        },
        |m| {
            m.run(50_000).expect("io run");
        },
    );
}

#[test]
fn interrupt_heavy_3s_attribution_matches() {
    let mut src = String::new();
    for s in 0..3 {
        src.push_str(&format!(".stream {s}, work{s}\n"));
        src.push_str(&format!(
            "work{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    jmp work{s}\n"
        ));
    }
    src.push_str(".vector 3, 5, isr\n");
    src.push_str("isr:\n    lda r0, 0x40\n    addi r0, r0, 1\n    sta r0, 0x40\n    reti\n");
    let program = Program::assemble(&src).expect("irq program assembles");
    assert_modes_equivalent(
        "interrupt_heavy_3s",
        false, // three busy streams: never quiescent
        |mode| {
            let mut m = Machine::new(MachineConfig::disc1().with_step_mode(mode), &program);
            m.set_idle_exit(false);
            m
        },
        |m| {
            // Same driver as the bench workload: an external interrupt
            // every 50 cycles, advanced through run(), not step().
            for _ in 0..400 {
                m.raise_interrupt(3, 5);
                m.run(50).expect("irq run");
            }
        },
    );
}

#[test]
fn timer_idle_quiescence_matches_and_skips() {
    let program = Program::assemble(
        ".stream 0, idle\n.vector 0, 5, isr\n\
         idle:\n    stop\n\
         isr:\n    lda r0, 0x40\n    addi r0, r0, 1\n    sta r0, 0x40\n    reti\n",
    )
    .expect("timer program assembles");
    assert_modes_equivalent(
        "timer_idle",
        true, // parked between timer fires: quiescence-dominated
        |mode| {
            let mut bus = PeripheralBus::new();
            bus.map(0x9000, Timer::REGS, Box::new(Timer::periodic(1_000, 0, 5)))
                .expect("map timer");
            let config = MachineConfig::disc1().with_streams(1).with_step_mode(mode);
            let mut m = Machine::with_bus(config, &program, Box::new(bus));
            m.set_idle_exit(false);
            m
        },
        |m| {
            m.run(60_000).expect("timer run");
        },
    );
}

#[test]
fn stuck_peripheral_fault_plan_matches() {
    // One stream hammering a device that a deterministic fault plan
    // wedges mid-run; the Fault bus policy's ABI timeout is the only
    // thing that unsticks it, so the run alternates quiescent waits with
    // bursts of recovery work.
    let program = Program::assemble(
        ".stream 0, a\n\
         a: lui r0, 0x80\nla: ld r1, [r0]\n    st r1, [r0]\n    jmp la\n",
    )
    .expect("stuck program assembles");
    assert_modes_equivalent(
        "stuck_peripheral",
        true,
        |mode| {
            let mut bus = PeripheralBus::new();
            bus.map(0x8000, 16, Box::new(ExtRam::new(16, 3)))
                .expect("map device ram");
            let plan = FaultPlan::new(0xbad).stuck(
                AddrRange::new(0x8000, 0x800f),
                FaultWindow::between(2_000, 8_000),
            );
            let injector = FaultInjector::new(plan, Box::new(bus));
            let config = MachineConfig::disc1()
                .with_streams(1)
                .with_bus_fault(BusFaultPolicy::Fault)
                .with_abi_timeout(64)
                .with_step_mode(mode);
            Machine::with_bus(config, &program, Box::new(injector))
        },
        |m| {
            m.run(20_000).expect("stuck run");
        },
    );
}

#[test]
fn watchdog_bite_matches() {
    // A parked "wedged" stream that only runs when the watchdog bites;
    // the recovery handler kicks the dog and parks again, so the whole
    // run is timeout-long quiescent stretches punctuated by handlers.
    let program = Program::assemble(
        ".stream 0, idle\n.vector 0, 7, isr\n\
         idle:\n    stop\n\
         isr:\n    ldi r0, 1\n    lui r1, 0x90\n    st r0, [r1]\n    reti\n",
    )
    .expect("watchdog program assembles");
    assert_modes_equivalent(
        "watchdog_bite",
        true,
        |mode| {
            let mut bus = PeripheralBus::new();
            bus.map(0x9000, Watchdog::REGS, Box::new(Watchdog::new(500, 0, 7)))
                .expect("map watchdog");
            let config = MachineConfig::disc1().with_streams(1).with_step_mode(mode);
            let mut m = Machine::with_bus(config, &program, Box::new(bus));
            m.set_idle_exit(false);
            m
        },
        |m| {
            m.run(30_000).expect("watchdog run");
        },
    );
}

#[test]
fn fig_workloads_render_identically_across_modes() {
    assert_eq!(
        figures::fig_3_1_with(StepMode::CycleByCycle),
        figures::fig_3_1_with(StepMode::EventSkip),
        "fig 3.1 diverges"
    );
    assert_eq!(
        figures::fig_3_2_with(StepMode::CycleByCycle),
        figures::fig_3_2_with(StepMode::EventSkip),
        "fig 3.2 diverges"
    );
    assert_eq!(
        figures::fig_3_3_with(StepMode::CycleByCycle),
        figures::fig_3_3_with(StepMode::EventSkip),
        "fig 3.3 diverges"
    );
    assert_eq!(
        figures::fig_3_4_with(StepMode::CycleByCycle),
        figures::fig_3_4_with(StepMode::EventSkip),
        "fig 3.4 diverges"
    );
}

#[test]
fn fuzz_corpus_identical_across_modes() {
    // Replay the whole regression corpus with EventSkip forced on: the
    // differential runner then executes three models per seed — the
    // sink-pinned machine, a sink-free event-skip machine, and the
    // golden-reference interpreter — and requires all to agree.
    let corpus = include_str!("../fuzz/regressions.txt");
    let mut seeds = 0;
    for line in corpus.lines() {
        let entry = line.split('#').next().unwrap_or("").trim();
        if entry.is_empty() {
            continue;
        }
        let seed = entry
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).expect("hex seed"))
            .unwrap_or_else(|| entry.parse().expect("decimal seed"));
        let mut gp = generate(seed);
        gp.step_mode = StepMode::EventSkip;
        if let Err(div) = compare(&gp) {
            panic!("corpus seed diverged under event skip:\n{div}");
        }
        seeds += 1;
    }
    assert!(seeds > 0, "corpus must not be empty");
}

#[test]
fn seeded_soak_campaign_identical_across_modes() {
    let cfg = |mode| soak::SoakConfig {
        runs: 4,
        horizon: 20_000,
        step_mode: mode,
        ..soak::SoakConfig::default()
    };
    let cbc_cfg = cfg(StepMode::CycleByCycle);
    let skip_cfg = cfg(StepMode::EventSkip);
    let cbc = soak::run_campaign(&cbc_cfg);
    let skip = soak::run_campaign(&skip_cfg);
    // Verdicts, fault logs, per-run stats and the reference outcome must
    // all be identical…
    assert_eq!(cbc, skip, "soak campaigns diverge across step modes");
    // …and so must the untimed run reports (the config fingerprint
    // deliberately ignores step_mode).
    assert_eq!(
        cbc.run_report(&cbc_cfg).render(),
        skip.run_report(&skip_cfg).render(),
        "soak run reports diverge across step modes"
    );
}

#[test]
fn jsonl_trace_bytes_identical_and_sink_pins_skipping() {
    // A per-cycle sink must see every cycle, so attaching one both pins
    // skipping off and yields byte-identical trace output in either mode
    // — even on a workload that otherwise skips heavily.
    let program = Program::assemble(
        ".stream 0, idle\n.vector 0, 5, isr\n\
         idle:\n    stop\n\
         isr:\n    lda r0, 0x40\n    addi r0, r0, 1\n    sta r0, 0x40\n    reti\n",
    )
    .expect("timer program assembles");
    let trace_bytes = |mode| {
        let mut bus = PeripheralBus::new();
        bus.map(0x9000, Timer::REGS, Box::new(Timer::periodic(400, 0, 5)))
            .expect("map timer");
        let config = MachineConfig::disc1().with_streams(1).with_step_mode(mode);
        let mut m = Machine::with_bus(config, &program, Box::new(bus));
        m.set_idle_exit(false);
        m.set_trace_sink(Box::new(JsonlSink::new(Vec::<u8>::new())));
        m.run(5_000).expect("traced run");
        let skips = m.skip_stats().skips;
        let sink = m
            .take_trace_sink()
            .unwrap()
            .into_any()
            .downcast::<JsonlSink<Vec<u8>>>()
            .unwrap();
        let (bytes, err) = sink.into_inner();
        assert!(err.is_none(), "sink write error");
        (bytes, skips)
    };
    let (cbc_bytes, cbc_skips) = trace_bytes(StepMode::CycleByCycle);
    let (skip_bytes, skip_skips) = trace_bytes(StepMode::EventSkip);
    assert_eq!(cbc_skips, 0);
    assert_eq!(skip_skips, 0, "a per-cycle sink must pin skipping off");
    assert!(!cbc_bytes.is_empty(), "trace must not be empty");
    assert_eq!(cbc_bytes, skip_bytes, "trace bytes diverge across modes");
}
