//! Differential-fuzzing smoke test: replays the regression corpus and a
//! fixed block of fresh seeds on every test run. The full campaign runs
//! via `make fuzz` / `make fuzz-long`; this keeps a meaningful slice of
//! it in `cargo test`.

use disc_bench::fuzz::{check_seed, generate, run_campaign};

/// Seeds checked by `cargo test` on every run. The fuzz binary's default
/// campaign covers 1000; CI runs that too (`make fuzz`).
const SMOKE_SEEDS: u64 = 200;

#[test]
fn regression_corpus_stays_green() {
    let corpus = include_str!("../fuzz/regressions.txt");
    let seeds: Vec<u64> = corpus
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| {
            l.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).expect("hex seed"))
                .unwrap_or_else(|| l.parse().expect("decimal seed"))
        })
        .collect();
    assert!(!seeds.is_empty(), "corpus must not be empty");
    for seed in seeds {
        if let Err(div) = check_seed(seed) {
            panic!("regression seed resurfaced:\n{div}");
        }
    }
}

#[test]
fn fresh_seed_block_matches() {
    let report = run_campaign(&[], 0, SMOKE_SEEDS);
    assert_eq!(report.programs, SMOKE_SEEDS);
    assert!(report.instructions > 0);
    if !report.passed() {
        let mut msg = String::new();
        for d in &report.divergences {
            msg.push_str(&d.to_string());
        }
        panic!("{} divergences:\n{msg}", report.divergences.len());
    }
}

#[test]
fn microarchitecture_knobs_are_exercised() {
    // The generator must actually vary the timing-only knobs, otherwise
    // the differential test silently loses most of its power.
    let gps: Vec<_> = (0..128).map(generate).collect();
    assert!(gps.iter().any(|g| g.schedule.is_some()), "sequence tables");
    assert!(gps.iter().any(|g| g.ext_latency == 0), "zero-latency bus");
    assert!(gps.iter().any(|g| g.ext_latency > 1), "slow bus");
    assert!(gps.iter().any(|g| g.window_depth < 64), "shallow windows");
    assert!(
        gps.iter()
            .map(|g| g.pipeline_depth)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
            > 2,
        "pipeline depths"
    );
    assert!(gps.iter().any(|g| !g.exact), "cross-signal programs");
    assert!(
        gps.iter()
            .any(|g| g.step_mode == disc_core::StepMode::EventSkip),
        "event-skip runs"
    );
    assert!(
        gps.iter()
            .any(|g| g.step_mode == disc_core::StepMode::CycleByCycle),
        "cycle-by-cycle runs"
    );
}
