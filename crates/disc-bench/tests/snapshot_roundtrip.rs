//! Snapshot-roundtrip equivalence suite: for every workload family the
//! repo measures — the fig_* figure programs, the bench workloads
//! (io_bound_2s, interrupt_heavy_3s), a stuck-peripheral fault plan, and
//! the differential-fuzz regression corpus — and for all four
//! {DispatchMode × StepMode} combinations, a run split at an arbitrary
//! snapshot point must be **byte-identical** to the uninterrupted run:
//!
//! * snapshot → restore into a fresh machine → snapshot reproduces the
//!   blob exactly (restore is byte-stable), and
//! * both the original machine continuing past the snapshot point and
//!   the restored copy reach the *same final snapshot* as a machine that
//!   ran the whole horizon in one `run` call — diagnostic counters
//!   (bursts, entry rejects, skips) included, not just architectural
//!   state.
//!
//! The second property is the chunk-boundary transparency contract:
//! where the caller happens to cut its `run` calls (which is exactly
//! what a snapshot/restore cycle does) must be invisible, or
//! record-replay could never verify byte-for-byte.

use disc_bench::fuzz::generate;
use disc_bus::{ExtRam, PeripheralBus};
use disc_core::{
    BusFaultPolicy, DispatchMode, Exit, Machine, MachineConfig, SchedulePolicy, StepMode,
};
use disc_faults::{AddrRange, FaultInjector, FaultPlan, FaultWindow};
use disc_isa::Program;

const COMBOS: [(DispatchMode, StepMode); 4] = [
    (DispatchMode::Legacy, StepMode::CycleByCycle),
    (DispatchMode::Legacy, StepMode::EventSkip),
    (DispatchMode::Superblock, StepMode::CycleByCycle),
    (DispatchMode::Superblock, StepMode::EventSkip),
];

/// Advances `m` to absolute cycle `target`, raising each `(cycle,
/// stream, bit)` interrupt exactly when the machine reaches its cycle.
/// Stops early (and permanently) once the machine halts, breaks, or
/// parks idle — deterministic regardless of how callers chunk it.
fn drive(m: &mut Machine, target: u64, irqs: &[(u64, usize, u8)]) {
    loop {
        let now = m.cycle();
        if now >= target {
            return;
        }
        for &(cycle, stream, bit) in irqs {
            if cycle == now {
                m.raise_interrupt(stream, bit);
            }
        }
        let next = irqs
            .iter()
            .map(|&(cycle, _, _)| cycle)
            .filter(|&cycle| cycle > now && cycle < target)
            .min()
            .unwrap_or(target);
        match m.run(next - now).expect("drive run") {
            Exit::CycleLimit => {}
            _ => return,
        }
    }
}

/// The whole property for one scenario: for every dispatch × step combo,
/// an uninterrupted run, a run split at ~40% of the horizon, and a run
/// restored from the split point's snapshot must all end in the same
/// snapshot bytes.
fn assert_roundtrip(
    label: &str,
    horizon: u64,
    irqs: &[(u64, usize, u8)],
    build: impl Fn(DispatchMode, StepMode) -> Machine,
) {
    for (dispatch, step) in COMBOS {
        let tag = format!("{label} [{dispatch:?}/{step:?}]");

        let mut oneshot = build(dispatch, step);
        drive(&mut oneshot, horizon, irqs);
        let final_blob = oneshot.snapshot();

        let mut split = build(dispatch, step);
        drive(&mut split, horizon * 2 / 5, irqs);
        let mid_blob = split.snapshot();

        let mut restored = build(dispatch, step);
        restored
            .restore(&mid_blob)
            .unwrap_or_else(|e| panic!("{tag}: restore failed: {e}"));
        assert_eq!(
            restored.snapshot(),
            mid_blob,
            "{tag}: restore is not byte-stable"
        );

        drive(&mut split, horizon, irqs);
        drive(&mut restored, horizon, irqs);
        assert_eq!(
            split.snapshot(),
            final_blob,
            "{tag}: split run diverged from the one-shot run"
        );
        assert_eq!(
            restored.snapshot(),
            final_blob,
            "{tag}: restored run diverged from the one-shot run"
        );
    }
}

#[test]
fn fig_3_1_interleaved_pipeline_roundtrips() {
    let mut src = String::new();
    for s in 0..5 {
        src.push_str(&format!(".stream {s}, l{s}\n"));
        src.push_str(&format!(
            "l{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    addi r2, r2, 1\n    jmp l{s}\n"
        ));
    }
    let program = Program::assemble(&src).expect("fig 3.1 program");
    assert_roundtrip("fig_3_1", 4_000, &[], |dispatch, step| {
        let cfg = MachineConfig::disc1()
            .with_streams(5)
            .with_pipeline_depth(5)
            .with_schedule(SchedulePolicy::Sequence(vec![0, 1, 2, 3, 4]))
            .with_dispatch_mode(dispatch)
            .with_step_mode(step);
        Machine::new(cfg, &program)
    });
}

#[test]
fn fig_3_2_jump_flush_roundtrips() {
    // The jump-flush scenario: a single resident stream, so every taken
    // jump flushes its pipeline slots — the flush machinery is live at
    // whatever cycle the snapshot lands on.
    let program = Program::assemble(".stream 0, l\nl:\n    addi r0, r0, 1\n    jmp l\n")
        .expect("fig 3.2 program");
    assert_roundtrip("fig_3_2", 4_000, &[], |dispatch, step| {
        let cfg = MachineConfig::disc1()
            .with_streams(1)
            .with_dispatch_mode(dispatch)
            .with_step_mode(step);
        Machine::new(cfg, &program)
    });
}

#[test]
fn fig_3_3_dynamic_partition_roundtrips() {
    let mut src = String::new();
    for s in 0..4 {
        src.push_str(&format!(".stream {s}, l{s}\n"));
        src.push_str(&format!(
            "l{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    addi r2, r2, 1\n    \
             addi r3, r3, 1\n    addi r4, r4, 1\n    addi r5, r5, 1\n    jmp l{s}\n"
        ));
    }
    let program = Program::assemble(&src).expect("fig 3.3 program");
    assert_roundtrip("fig_3_3", 6_000, &[], |dispatch, step| {
        let cfg = MachineConfig::disc1()
            .with_schedule(SchedulePolicy::partitioned(&[8, 3, 3, 2]))
            .with_dispatch_mode(dispatch)
            .with_step_mode(step);
        Machine::new(cfg, &program)
    });
}

#[test]
fn fig_3_4_stack_window_roundtrips() {
    // Call/window traffic in a loop so window-stack state is mid-flight
    // at the snapshot point (the figure's own program halts too early to
    // split).
    let program = Program::assemble(
        r#"
        .stream 0, main
    main:
        ldi r0, 7
    again:
        call f
        sta r0, 0x10
        jmp again
    f:
        winc 2
        ldi r0, 100
        ldi r1, 200
        call g
        wdec 2
        ret
    g:
        addi r1, r1, 0
        ret
    "#,
    )
    .expect("fig 3.4 program");
    assert_roundtrip("fig_3_4", 4_000, &[], |dispatch, step| {
        let cfg = MachineConfig::disc1()
            .with_dispatch_mode(dispatch)
            .with_step_mode(step);
        Machine::new(cfg, &program)
    });
}

#[test]
fn io_bound_2s_roundtrips() {
    let program = Program::assemble(
        ".stream 0, a\n.stream 1, b\n\
         a: lui r0, 0x80\nla: ld r1, [r0]\n    st r1, [r0]\n    jmp la\n\
         b: ldi r0, 0\nlb: addi r0, r0, 1\n    jmp lb\n",
    )
    .expect("io program");
    assert_roundtrip("io_bound_2s", 20_000, &[], |dispatch, step| {
        let cfg = MachineConfig::disc1()
            .with_streams(2)
            .with_dispatch_mode(dispatch)
            .with_step_mode(step);
        Machine::new(cfg, &program)
    });
}

#[test]
fn interrupt_heavy_3s_roundtrips() {
    let mut src = String::new();
    for s in 0..3 {
        src.push_str(&format!(".stream {s}, work{s}\n"));
        src.push_str(&format!(
            "work{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    jmp work{s}\n"
        ));
    }
    src.push_str(".vector 3, 5, isr\n");
    src.push_str("isr:\n    lda r0, 0x40\n    addi r0, r0, 1\n    sta r0, 0x40\n    reti\n");
    let program = Program::assemble(&src).expect("irq program");
    // An external interrupt every 50 cycles, including ones that land
    // right around the 40% snapshot cut.
    let irqs: Vec<(u64, usize, u8)> = (1..160).map(|i| (i * 50, 3usize, 5u8)).collect();
    assert_roundtrip("interrupt_heavy_3s", 8_000, &irqs, |dispatch, step| {
        let cfg = MachineConfig::disc1()
            .with_dispatch_mode(dispatch)
            .with_step_mode(step);
        let mut m = Machine::new(cfg, &program);
        m.set_idle_exit(false);
        m
    });
}

#[test]
fn stuck_peripheral_fault_plan_roundtrips() {
    // A deterministic fault plan wedges the device mid-run; the snapshot
    // cut at 8_000 lands inside the stuck window (2_000..8_000 covers
    // the cut at 20_000 * 2 / 5 = 8_000), so ABI timeout recovery state
    // and the injector's RNG/log are all live across the roundtrip.
    let program = Program::assemble(
        ".stream 0, a\n\
         a: lui r0, 0x80\nla: ld r1, [r0]\n    st r1, [r0]\n    jmp la\n",
    )
    .expect("stuck program");
    assert_roundtrip("stuck_peripheral", 20_000, &[], |dispatch, step| {
        let mut bus = PeripheralBus::new();
        bus.map(0x8000, 16, Box::new(ExtRam::new(16, 3)))
            .expect("map device ram");
        let plan = FaultPlan::new(0xbad).stuck(
            AddrRange::new(0x8000, 0x800f),
            FaultWindow::between(2_000, 9_000),
        );
        let injector = FaultInjector::new(plan, Box::new(bus));
        let cfg = MachineConfig::disc1()
            .with_streams(1)
            .with_bus_fault(BusFaultPolicy::Fault)
            .with_abi_timeout(64)
            .with_dispatch_mode(dispatch)
            .with_step_mode(step);
        Machine::with_bus(cfg, &program, Box::new(injector))
    });
}

#[test]
fn fuzz_corpus_programs_roundtrip() {
    // The checked-in regression corpus plus a few fresh seeds: generated
    // programs cover windows, cross-stream signals, tset, random
    // schedules and pipeline depths — shapes no hand-written scenario
    // hits. The generator's own step/dispatch draw is overridden so
    // every program runs under all four combos.
    let corpus =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz/regressions.txt"))
            .expect("read corpus");
    let mut seeds: Vec<u64> = corpus
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| {
            l.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| l.parse())
                .expect("corpus seed")
        })
        .take(8)
        .collect();
    seeds.extend(0..4);

    for seed in seeds {
        let gp = generate(seed);
        assert_roundtrip(
            &format!("fuzz seed {seed:#x}"),
            10_000,
            &[],
            |dispatch, step| {
                let mut cfg = MachineConfig::disc1()
                    .with_streams(gp.streams)
                    .with_window_depth(gp.window_depth)
                    .with_default_ext_latency(gp.ext_latency)
                    .with_dispatch_mode(dispatch)
                    .with_step_mode(step);
                cfg.pipeline_depth = gp.pipeline_depth;
                if let Some(table) = &gp.schedule {
                    cfg = cfg.with_schedule(SchedulePolicy::Sequence(table.clone()));
                }
                Machine::new(cfg, &gp.program)
            },
        );
    }
}
