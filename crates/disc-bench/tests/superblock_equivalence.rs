//! Boundary-semantics tests for [`DispatchMode::Superblock`]: executing
//! hazard-free runs of predecoded ops in a tight loop must be
//! architecturally invisible. Every scenario runs twice — legacy
//! dispatch and superblock dispatch — through `Machine::run` (never a
//! manual step loop) and demands identical final architectural state,
//! `MachineStats` (including per-stream `CycleAttribution`, bucket for
//! bucket), and `RunReport` content.
//!
//! Coverage targets the burst *boundaries*, where the dispatcher must
//! hand back to the slow path at exactly the right cycle:
//! an interrupt arriving mid-run, window spill triggered by the op that
//! ends a block, a fault-plan window opening inside a would-be block,
//! event-skip composing with superblocks on the timer-idle workload,
//! decode faults surfacing from inside a burst, and a per-cycle trace
//! sink pinning bursts off with byte-identical output.

use disc_bench::fuzz::{compare, generate};
use disc_bus::{ExtRam, PeripheralBus, Timer};
use disc_core::{BusFaultPolicy, DispatchMode, Machine, MachineConfig, SimError, StepMode};
use disc_faults::{AddrRange, FaultInjector, FaultPlan, FaultWindow};
use disc_isa::{Program, Reg};
use disc_obs::{config_fingerprint, config_json, stats_json, JsonlSink};

/// Runs `build`+`drive` under both dispatchers and asserts the results
/// are indistinguishable. `expect_bursts` additionally requires that the
/// superblock run actually executed bursts (otherwise the scenario
/// proves nothing about the fast path).
fn assert_dispatch_equivalent(
    label: &str,
    expect_bursts: bool,
    build: impl Fn(DispatchMode) -> Machine,
    drive: impl Fn(&mut Machine),
) {
    let mut legacy = build(DispatchMode::Legacy);
    drive(&mut legacy);
    let mut burst = build(DispatchMode::Superblock);
    drive(&mut burst);

    // Stats — covers cycles, retired counts, vectors, bus counters and
    // the per-stream attribution in one structural comparison…
    assert_eq!(legacy.stats(), burst.stats(), "{label}: stats diverge");
    // …but attribution exactness is the property under test, so check it
    // bucket for bucket with its own message, and require the burst
    // run's buckets to still sum to its cycle count.
    assert_eq!(
        legacy.stats().attribution,
        burst.stats().attribution,
        "{label}: cycle attribution diverges"
    );
    burst
        .stats()
        .attribution
        .check(burst.stats().cycles)
        .unwrap_or_else(|e| panic!("{label}: burst-run attribution unbalanced: {e:?}"));

    // Final architectural state, stream by stream.
    for s in 0..legacy.stream_count() {
        let a = legacy.stream(s);
        let b = burst.stream(s);
        assert_eq!(a.pc(), b.pc(), "{label}: stream {s} pc");
        assert_eq!(a.ir(), b.ir(), "{label}: stream {s} ir");
        assert_eq!(a.mr(), b.mr(), "{label}: stream {s} mr");
        assert_eq!(
            a.flags().to_word(),
            b.flags().to_word(),
            "{label}: stream {s} flags"
        );
        assert_eq!(
            (a.service_depth(), a.service_level()),
            (b.service_depth(), b.service_level()),
            "{label}: stream {s} service state"
        );
        assert_eq!(
            a.window().awp(),
            b.window().awp(),
            "{label}: stream {s} awp"
        );
        for slot in 0..a.window().max_depth() {
            assert_eq!(
                a.window().read_slot(slot),
                b.window().read_slot(slot),
                "{label}: stream {s} window slot {slot}"
            );
        }
        assert_eq!(
            legacy.reg(s, Reg::Sp),
            burst.reg(s, Reg::Sp),
            "{label}: stream {s} sp"
        );
    }
    for g in 0..disc_isa::GLOBAL_REGS {
        assert_eq!(legacy.global(g), burst.global(g), "{label}: global g{g}");
    }
    for addr in 0..legacy.config().internal_words as u16 {
        assert_eq!(
            legacy.internal_memory().read(addr),
            burst.internal_memory().read(addr),
            "{label}: internal[{addr:#x}]"
        );
    }

    // Burst accounting: legacy dispatch never bursts; the scenario's
    // expectation must hold under superblock dispatch.
    let lsb = legacy.superblock_stats();
    assert_eq!(lsb.bursts, 0, "{label}: legacy dispatch burst");
    assert_eq!(lsb.burst_cycles, 0, "{label}: legacy dispatch burst");
    if expect_bursts {
        let sb = burst.superblock_stats();
        assert!(sb.bursts > 0, "{label}: superblock dispatch never burst");
        assert!(
            sb.burst_cycles >= sb.bursts,
            "{label}: burst bookkeeping ({} bursts, {} cycles)",
            sb.bursts,
            sb.burst_cycles
        );
        let total_issues: u64 = burst.stats().attribution.issue.iter().sum();
        assert!(
            sb.burst_issues <= total_issues,
            "{label}: more burst issues ({}) than total issues ({total_issues})",
            sb.burst_issues
        );
    }

    // RunReport equivalence: the config fingerprint, the rendered config
    // and the full stats tree are what the report is built from, and the
    // dispatch mode (like the step mode) is deliberately excluded.
    assert_eq!(
        config_fingerprint(legacy.config()),
        config_fingerprint(burst.config()),
        "{label}: config fingerprints diverge"
    );
    assert_eq!(
        config_json(legacy.config()),
        config_json(burst.config()),
        "{label}: config sections diverge"
    );
    assert_eq!(
        stats_json(legacy.stats()),
        stats_json(burst.stats()),
        "{label}: stats sections diverge"
    );
}

fn compute_program(streams: usize) -> Program {
    let mut src = String::new();
    for s in 0..streams {
        src.push_str(&format!(".stream {s}, l{s}\n"));
        src.push_str(&format!(
            "l{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    addi r2, r2, 1\n    jmp l{s}\n"
        ));
    }
    Program::assemble(&src).expect("compute program assembles")
}

/// Pure compute: one long burst should cover nearly the whole run.
#[test]
fn compute_bound_bursts_and_matches() {
    let program = compute_program(4);
    assert_dispatch_equivalent(
        "compute_bound_4s",
        true,
        |dispatch| {
            let config = MachineConfig::disc1()
                .with_streams(4)
                .with_dispatch_mode(dispatch);
            Machine::new(config, &program)
        },
        |m| {
            m.run(50_000).expect("compute run");
        },
    );
}

/// Branch-heavy loops: taken jumps flush in-burst and must not end it.
#[test]
fn branch_heavy_bursts_and_matches() {
    let mut src = String::new();
    for s in 0..4 {
        src.push_str(&format!(".stream {s}, l{s}\n"));
        src.push_str(&format!(
            "l{s}:\n    addi r0, r0, 1\n    cmpi r0, 4\n    jnz l{s}\n    ldi r0, 0\n    jmp l{s}\n"
        ));
    }
    let program = Program::assemble(&src).expect("branch program assembles");
    assert_dispatch_equivalent(
        "branch_heavy_4s",
        true,
        |dispatch| {
            let config = MachineConfig::disc1()
                .with_streams(4)
                .with_dispatch_mode(dispatch);
            Machine::new(config, &program)
        },
        |m| {
            m.run(50_000).expect("branch run");
        },
    );
}

/// Boundary (a): an interrupt arrives mid-run. The burst must stop at
/// the wake source and deliver with legacy-identical latency accounting.
#[test]
fn interrupt_mid_run_matches() {
    let mut src = String::new();
    for s in 0..3 {
        src.push_str(&format!(".stream {s}, work{s}\n"));
        src.push_str(&format!(
            "work{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    jmp work{s}\n"
        ));
    }
    src.push_str(".vector 3, 5, isr\n");
    src.push_str("isr:\n    lda r0, 0x40\n    addi r0, r0, 1\n    sta r0, 0x40\n    reti\n");
    let program = Program::assemble(&src).expect("irq program assembles");
    assert_dispatch_equivalent(
        "interrupt_mid_run",
        true,
        |dispatch| {
            let config = MachineConfig::disc1().with_dispatch_mode(dispatch);
            let mut m = Machine::new(config, &program);
            m.set_idle_exit(false);
            m
        },
        |m| {
            // The run() chunking mirrors the bench driver, but the raises
            // are spaced out: a pending vector rejects burst entry, so
            // interrupt-free chunks are where blocks form and the chunks
            // with a raise are where delivery cuts into them.
            for i in 0..400 {
                if i % 4 == 0 {
                    m.raise_interrupt(3, 5);
                }
                m.run(50).expect("irq run");
            }
        },
    );
}

/// Boundary (a'): a *peripheral-raised* interrupt arrives strictly inside
/// one long `run()` call, so the burst limit itself (the bus `next_event`
/// horizon) is what must stop the block.
#[test]
fn timer_interrupt_inside_single_run_matches() {
    let program = Program::assemble(
        ".stream 0, work\n.vector 0, 5, isr\n\
         work:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    jmp work\n\
         isr:\n    lda r0, 0x40\n    addi r0, r0, 1\n    sta r0, 0x40\n    reti\n",
    )
    .expect("timer-work program assembles");
    assert_dispatch_equivalent(
        "timer_interrupt_inside_run",
        true,
        |dispatch| {
            let mut bus = PeripheralBus::new();
            bus.map(0x9000, Timer::REGS, Box::new(Timer::periodic(700, 0, 5)))
                .expect("map timer");
            let config = MachineConfig::disc1()
                .with_streams(1)
                .with_dispatch_mode(dispatch);
            let mut m = Machine::with_bus(config, &program, Box::new(bus));
            m.set_idle_exit(false);
            m
        },
        |m| {
            m.run(40_000).expect("timer-work run");
        },
    );
}

/// Boundary (b): window spill triggers at the op ending a block. `winc`
/// is not burst-safe, so every block built over the addi stretches ends
/// at a `winc` fetch — and with a shallow window file that same `winc`'s
/// AWP motion is what spills. Its spill-stall accounting must be
/// cycle-identical to legacy dispatch.
#[test]
fn spill_at_block_end_matches() {
    let program = Program::assemble(
        ".stream 0, main\n\
         main:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    addi r2, r2, 1\n\
         \x20   winc 4\n    addi r0, r0, 1\n    addi r1, r1, 1\n    winc 4\n\
         \x20   addi r0, r0, 1\n    addi r1, r1, 1\n    winc 4\n\
         \x20   addi r0, r0, 1\n    wdec 4\n    wdec 4\n    wdec 4\n    jmp main\n",
    )
    .expect("spill program assembles");
    assert_dispatch_equivalent(
        "spill_at_block_end",
        true,
        |dispatch| {
            // A window file barely deeper than one visible window: the
            // winc ladder crosses the spill threshold every iteration.
            let config = MachineConfig::disc1()
                .with_streams(1)
                .with_window_depth(12)
                .with_dispatch_mode(dispatch);
            Machine::new(config, &program)
        },
        |m| {
            m.run(30_000).expect("spill run");
            // The scenario is only meaningful if the window actually
            // spilled (in both runs — drive executes on each machine).
            assert!(
                m.stats().spill_stall_cycles[0] > 0,
                "spill workload never spilled"
            );
        },
    );
}

/// Boundary (c): a fault plan wedges the peripheral inside what would be
/// a block; the ABI timeout path (abort + bus-error interrupt) must be
/// cycle-identical.
#[test]
fn fault_plan_window_inside_block_matches() {
    let program = Program::assemble(
        ".stream 0, a\n\
         a: lui r0, 0x80\nla: addi r1, r1, 1\n    addi r2, r2, 1\n    ld r3, [r0]\n    jmp la\n",
    )
    .expect("fault program assembles");
    assert_dispatch_equivalent(
        "fault_plan_window",
        true,
        |dispatch| {
            let mut bus = PeripheralBus::new();
            bus.map(0x8000, 16, Box::new(ExtRam::new(16, 3)))
                .expect("map device ram");
            let plan = FaultPlan::new(0xbad).stuck(
                AddrRange::new(0x8000, 0x800f),
                FaultWindow::between(2_000, 8_000),
            );
            let injector = FaultInjector::new(plan, Box::new(bus));
            let config = MachineConfig::disc1()
                .with_streams(1)
                .with_bus_fault(BusFaultPolicy::Fault)
                .with_abi_timeout(64)
                .with_dispatch_mode(dispatch);
            Machine::with_bus(config, &program, Box::new(injector))
        },
        |m| {
            m.run(20_000).expect("fault run");
        },
    );
}

/// Boundary (d): event skip and superblocks compose on the timer-idle
/// workload — quiescent stretches skip, busy stretches burst, and the
/// result is identical to legacy dispatch in the same step mode.
#[test]
fn event_skip_composes_with_superblocks() {
    let program = Program::assemble(
        ".stream 0, idle\n.vector 0, 5, isr\n\
         idle:\n    stop\n\
         isr:\n    lda r0, 0x40\n    addi r0, r0, 1\n    sta r0, 0x40\n    reti\n",
    )
    .expect("timer program assembles");
    for mode in [StepMode::CycleByCycle, StepMode::EventSkip] {
        assert_dispatch_equivalent(
            &format!("timer_idle_1s/{mode:?}"),
            false, // parked stream + bus-op-dense handler: blocks can't form
            |dispatch| {
                let mut bus = PeripheralBus::new();
                bus.map(0x9000, Timer::REGS, Box::new(Timer::periodic(1_000, 0, 5)))
                    .expect("map timer");
                let config = MachineConfig::disc1()
                    .with_streams(1)
                    .with_step_mode(mode)
                    .with_dispatch_mode(dispatch);
                let mut m = Machine::with_bus(config, &program, Box::new(bus));
                m.set_idle_exit(false);
                m
            },
            |m| {
                m.run(60_000).expect("timer run");
            },
        );
    }
}

/// A decode fault surfacing from inside a burst must error at the same
/// cycle with the same fault coordinates as the legacy dispatcher.
#[test]
fn decode_fault_in_burst_matches() {
    // A burst-friendly compute prologue whose straight-line fallthrough
    // runs into an undecodable word: the fault is fetched from inside a
    // would-be superblock.
    let mut program = Program::assemble(
        ".stream 0, l0\nl0:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    addi r2, r2, 1\n    nop\n",
    )
    .expect("base assembles");
    let bad_addr = program.len() as u16;
    let bad_word = 63 << 18; // unassigned opcode
    program.set_word(bad_addr, bad_word);
    let run = |dispatch| {
        let config = MachineConfig::disc1()
            .with_streams(1)
            .with_dispatch_mode(dispatch);
        let mut m = Machine::new(config, &program);
        let err = m.run(1_000).expect_err("must fault");
        (err, m.stats().cycles, m.stats().retired[0])
    };
    let (legacy_err, legacy_cycles, legacy_retired) = run(DispatchMode::Legacy);
    let (burst_err, burst_cycles, burst_retired) = run(DispatchMode::Superblock);
    match (&legacy_err, &burst_err) {
        (
            SimError::Decode {
                stream: ls,
                pc: lp,
                word: lw,
            },
            SimError::Decode {
                stream: bs,
                pc: bp,
                word: bw,
            },
        ) => {
            assert_eq!((ls, lp, lw), (bs, bp, bw), "fault coordinates diverge");
            assert_eq!((*lp, *lw), (bad_addr, bad_word), "unexpected fault site");
        }
        other => panic!("expected decode faults, got {other:?}"),
    }
    assert_eq!(legacy_cycles, burst_cycles, "fault cycle diverges");
    assert_eq!(legacy_retired, burst_retired, "retired at fault diverges");
}

/// A per-cycle trace sink pins bursts off and yields byte-identical
/// JSONL output under either dispatcher.
#[test]
fn trace_sink_pins_bursts_and_bytes_match() {
    let program = compute_program(2);
    let trace_bytes = |dispatch| {
        let config = MachineConfig::disc1()
            .with_streams(2)
            .with_dispatch_mode(dispatch);
        let mut m = Machine::new(config, &program);
        m.set_trace_sink(Box::new(JsonlSink::new(Vec::<u8>::new())));
        m.run(2_000).expect("traced run");
        let bursts = m.superblock_stats().bursts;
        let sink = m
            .take_trace_sink()
            .unwrap()
            .into_any()
            .downcast::<JsonlSink<Vec<u8>>>()
            .unwrap();
        let (bytes, err) = sink.into_inner();
        assert!(err.is_none(), "sink write error");
        (bytes, bursts)
    };
    let (legacy_bytes, legacy_bursts) = trace_bytes(DispatchMode::Legacy);
    let (burst_bytes, burst_bursts) = trace_bytes(DispatchMode::Superblock);
    assert_eq!(legacy_bursts, 0);
    assert_eq!(burst_bursts, 0, "a per-cycle sink must pin bursts off");
    assert!(!legacy_bytes.is_empty(), "trace must not be empty");
    assert_eq!(
        legacy_bytes, burst_bytes,
        "trace bytes diverge across dispatchers"
    );
}

/// Replay the regression corpus with superblock dispatch forced on: the
/// differential runner executes the sink-pinned machine, a sink-free
/// superblock machine, and the golden reference, and requires all three
/// to agree.
#[test]
fn fuzz_corpus_identical_across_dispatchers() {
    let corpus = include_str!("../fuzz/regressions.txt");
    let mut seeds = 0;
    for line in corpus.lines() {
        let entry = line.split('#').next().unwrap_or("").trim();
        if entry.is_empty() {
            continue;
        }
        let seed = entry
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).expect("hex seed"))
            .unwrap_or_else(|| entry.parse().expect("decimal seed"));
        let mut gp = generate(seed);
        gp.dispatch_mode = DispatchMode::Superblock;
        if let Err(div) = compare(&gp) {
            panic!("corpus seed diverged under superblock dispatch:\n{div}");
        }
        seeds += 1;
    }
    assert!(seeds > 0, "corpus must not be empty");
}

/// The corpus pins added with the dispatch-mode knob must actually draw
/// it (they are meaningless as superblock coverage otherwise).
#[test]
fn superblock_corpus_pins_draw_the_knob() {
    for seed in [0x29u64, 0x1b, 0x3f] {
        let gp = generate(seed);
        assert_eq!(
            gp.dispatch_mode,
            DispatchMode::Superblock,
            "seed {seed:#x} no longer draws superblock dispatch"
        );
    }
}
