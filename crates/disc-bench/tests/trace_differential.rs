//! Differential test: the ring-buffer `Trace` must reproduce the
//! pre-refactor trace byte-for-byte.
//!
//! The old `Trace` was a `Vec` evicting with `remove(0)`; the refactor
//! replaced it with a `VecDeque` ring. Here we run the figure 3.1 and
//! figure 3.3 workloads twice — once with the bounded ring installed,
//! once with an unbounded collector sink — replay the collector's records
//! through the *old* eviction semantics, and demand the ring kept exactly
//! the same records and renders exactly the same pipeline diagram and VCD
//! text.

use disc_core::{CycleRecord, Machine, MachineConfig, SchedulePolicy, Trace, TraceSink};
use disc_isa::{Program, Reg};

/// Unbounded record collector (stands in for "what the machine emitted").
struct CollectSink {
    records: Vec<CycleRecord>,
}

impl TraceSink for CollectSink {
    fn record_cycle(&mut self, record: CycleRecord) {
        self.records.push(record);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// The pre-refactor bounded-buffer semantics: `Vec` + `remove(0)`.
fn naive_bounded(records: &[CycleRecord], capacity: usize) -> Vec<CycleRecord> {
    let mut kept: Vec<CycleRecord> = Vec::new();
    for r in records {
        if capacity == 0 {
            // The old code panicked here; "keep nothing" is the fixed
            // behavior, and an empty reference matches an empty ring.
            continue;
        }
        if kept.len() == capacity {
            kept.remove(0);
        }
        kept.push(r.clone());
    }
    kept
}

/// Runs `build()` twice — ring-traced and collector-traced — and checks
/// the ring against the old semantics at `capacity`, byte-for-byte on
/// rendered output.
fn assert_ring_matches_naive(
    build: impl Fn() -> Machine,
    drive: impl Fn(&mut Machine),
    capacity: usize,
    stages: &[&str],
) {
    let mut ringed = build();
    ringed.trace_start(capacity);
    drive(&mut ringed);
    let ring = ringed.trace_take().expect("ring trace comes back");

    let mut collected = build();
    collected.set_trace_sink(Box::new(CollectSink {
        records: Vec::new(),
    }));
    drive(&mut collected);
    let sink = collected
        .take_trace_sink()
        .unwrap()
        .into_any()
        .downcast::<CollectSink>()
        .unwrap();
    let reference = naive_bounded(&sink.records, capacity);

    assert_eq!(ring.records().len(), reference.len());
    for (got, want) in ring.records().iter().zip(&reference) {
        assert_eq!(got, want, "ring diverged from remove(0) semantics");
    }

    // Replay the reference records through a fresh Trace and compare the
    // *rendered* artifacts byte-for-byte.
    let mut replay = Trace::new(capacity);
    for r in reference {
        replay.push(r);
    }
    assert_eq!(
        ring.pipeline_diagram(stages),
        replay.pipeline_diagram(stages)
    );
    assert_eq!(ring.to_vcd(stages), replay.to_vcd(stages));
}

#[test]
fn fig_3_1_workload_ring_matches_pre_refactor() {
    let build = || {
        let mut src = String::new();
        for s in 0..5 {
            src.push_str(&format!(".stream {s}, l{s}\n"));
            src.push_str(&format!(
                "l{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    addi r2, r2, 1\n    jmp l{s}\n"
            ));
        }
        let program = Program::assemble(&src).unwrap();
        let cfg = MachineConfig::disc1()
            .with_streams(5)
            .with_pipeline_depth(5)
            .with_schedule(SchedulePolicy::Sequence(vec![0, 1, 2, 3, 4]));
        let mut m = Machine::new(cfg, &program);
        m.run(10).unwrap(); // same warmup as the figure generator
        m
    };
    let drive = |m: &mut Machine| {
        m.run(48).unwrap();
    };
    let stages = ["IF", "ID", "RR", "EX", "WR"];
    // Capacity below the run length forces eviction; equal capacity and
    // zero capacity cover the no-evict and keep-nothing paths.
    for capacity in [12, 48, 0] {
        assert_ring_matches_naive(build, drive, capacity, &stages);
    }
}

#[test]
fn fig_3_3_workload_ring_matches_pre_refactor() {
    let build = || {
        let mut src = String::new();
        for s in 0..4 {
            src.push_str(&format!(".stream {s}, l{s}\n"));
            src.push_str(&format!(
                "l{s}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    addi r2, r2, 1\n    \
                 addi r3, r3, 1\n    addi r4, r4, 1\n    addi r5, r5, 1\n    jmp l{s}\n"
            ));
        }
        let program = Program::assemble(&src).unwrap();
        let cfg = MachineConfig::disc1().with_schedule(SchedulePolicy::partitioned(&[8, 3, 3, 2]));
        let mut m = Machine::new(cfg, &program);
        m.set_idle_exit(false);
        m
    };
    // Phase activity changes mid-trace, as in the figure: all four
    // streams run, then stream 0 idles and its slots are reallocated.
    let drive = |m: &mut Machine| {
        m.run(60).unwrap();
        m.set_reg(0, Reg::Ir, 0);
        m.run(60).unwrap();
    };
    let stages = ["IF", "RD", "EX", "WR"];
    for capacity in [32, 120, 0] {
        assert_ring_matches_naive(build, drive, capacity, &stages);
    }
}
